"""Tests for the SVG substrate: node model, attribute translation
(Appendix A), rendering, canvas flattening and bounding boxes."""

import pytest

from repro.lang import evaluate, parse_expr, parse_program
from repro.lang.errors import SvgError
from repro.svg import (AttrRef, BBox, Canvas, SvgNode, canvas_bbox,
                       color_number_to_css, parse_canvas,
                       path_data_to_string, points_to_string, render_canvas,
                       render_node, rgba_to_css, shape_bbox,
                       transform_to_string, translate_attr, value_to_node)


def node_of(source):
    return value_to_node(evaluate(parse_expr(source)))


def canvas_of(source):
    program = parse_program(source)
    return Canvas.from_value(program.evaluate())


class TestValueToNode:
    def test_basic_shape(self):
        node = node_of("['rect' [['x' 1] ['y' 2]] []]")
        assert node.kind == "rect"
        assert node.attr("x").value == 1.0

    def test_children_recursion(self):
        node = node_of("['svg' [] [['rect' [] []] ['circle' [] []]]]")
        assert [child.kind for child in node.children] == ["rect", "circle"]

    def test_last_attr_binding_wins(self):
        node = node_of("['rect' [['x' 1] ['x' 9]] []]")
        assert node.attr("x").value == 9.0

    def test_hidden_detection(self):
        node = node_of("['rect' [['HIDDEN' '']] []]")
        assert node.hidden

    @pytest.mark.parametrize("bad", [
        "'just a string'",
        "['rect' []]",                     # missing children
        "[1 [] []]",                       # non-string kind
        "['rect' [['x' 1] [2]] []]",       # malformed attr pair
        "['rect' [] 'kids']",              # non-list children
    ])
    def test_malformed_nodes_rejected(self, bad):
        with pytest.raises(SvgError):
            node_of(bad)

    def test_parse_canvas_requires_svg_kind(self):
        with pytest.raises(SvgError):
            parse_canvas(evaluate(parse_expr("['rect' [] []]")))


class TestAttrTranslation:
    def _text(self, source_value, key="points"):
        value = evaluate(parse_expr(source_value))
        return translate_attr(key, value)[1]

    def test_string_passthrough(self):
        value = evaluate(parse_expr("'lightblue'"))
        assert translate_attr("fill", value) == ("fill", "lightblue")

    def test_number_no_units(self):
        value = evaluate(parse_expr("50"))
        assert translate_attr("x", value) == ("x", "50")

    def test_number_fractional(self):
        value = evaluate(parse_expr("52.5"))
        assert translate_attr("x", value) == ("x", "52.5")

    def test_points(self):
        assert self._text("[[0 0] [10 5.5]]") == "0,0 10,5.5"

    def test_points_malformed(self):
        with pytest.raises(SvgError):
            self._text("[[0] [10 5]]")

    def test_rgba(self):
        assert self._text("[255 0 128 0.5]", "fill") == \
            "rgba(255,0,128,0.5)"

    def test_color_number_hue(self):
        value = evaluate(parse_expr("120"))
        name, text = translate_attr("fill", value)
        assert text.startswith("hsl(120")

    def test_color_number_grayscale_band(self):
        assert color_number_to_css(360.0) == "rgb(0,0,0)"
        assert color_number_to_css(500.0) == "rgb(255,255,255)"

    def test_color_number_clamped(self):
        assert color_number_to_css(-10.0).startswith("hsl(0")

    def test_path_data(self):
        assert self._text("['M' 0 0 'L' 10 10 'Z']", "d") == "M 0 0 L 10 10 Z"

    def test_path_data_bad_command(self):
        with pytest.raises(SvgError):
            self._text("['X' 1 2]", "d")

    def test_path_data_bad_arity(self):
        with pytest.raises(SvgError):
            self._text("['C' 1 2 3]", "d")

    def test_transform_rotate(self):
        assert self._text("[['rotate' 45 100 100]]", "transform") == \
            "rotate(45,100,100)"

    def test_transform_unknown_command(self):
        with pytest.raises(SvgError):
            self._text("[['spin' 45]]", "transform")

    @pytest.mark.parametrize("key", ["ZONES", "HIDDEN", "TEXT"])
    def test_editor_attrs_stripped(self, key):
        value = evaluate(parse_expr("'x'"))
        assert translate_attr(key, value) is None


class TestRendering:
    def test_self_closing(self):
        node = node_of("['rect' [['x' 1]] []]")
        assert render_node(node) == '<rect x="1"/>'

    def test_text_content(self):
        node = node_of("['text' [['x' 1] ['TEXT' 'hi']] []]")
        rendered = render_node(node)
        assert ">" in rendered and "hi" in rendered

    def test_escaping(self):
        node = node_of("['text' [['TEXT' 'a<b&c']] []]")
        assert "a&lt;b&amp;c" in render_node(node)

    def test_canvas_has_xmlns(self):
        canvas = canvas_of("(svg [(rect 'red' 1 2 3 4)])")
        rendered = render_canvas(canvas.root)
        assert 'xmlns="http://www.w3.org/2000/svg"' in rendered

    def test_hidden_shapes_excluded_by_default(self):
        canvas = canvas_of("(svg [(ghost (rect 'red' 1 2 3 4))])")
        assert "<rect" not in render_canvas(canvas.root)

    def test_hidden_shapes_included_on_request(self):
        canvas = canvas_of("(svg [(ghost (rect 'red' 1 2 3 4))])")
        assert "<rect" in render_canvas(canvas.root, include_hidden=True)


class TestCanvas:
    def test_flattening_order(self):
        canvas = canvas_of(
            "(svg [(rect 'r' 1 1 1 1) (circle 'c' 2 2 2)])")
        assert [shape.kind for shape in canvas] == ["rect", "circle"]

    def test_nested_svg_flattened(self):
        canvas = canvas_of(
            "(svg [['svg' [] [(rect 'r' 1 1 1 1)]] (circle 'c' 2 2 2)])")
        assert [shape.kind for shape in canvas] == ["rect", "circle"]

    def test_get_num_simple(self):
        canvas = canvas_of("(svg [(rect 'r' 7 8 9 10)])")
        assert canvas[0].get_num(AttrRef("x", ("x",))).value == 7.0

    def test_get_num_point_coordinate(self):
        canvas = canvas_of(
            "(svg [(polygon 'f' 's' 1 [[1 2] [3 4]])])")
        ref = AttrRef("points[1].y", ("points", 1, 1))
        assert canvas[0].get_num(ref).value == 4.0

    def test_get_num_path_number(self):
        canvas = canvas_of(
            "(svg [(path 'f' 's' 1 ['M' 10 20 'L' 30 40])])")
        ref = AttrRef("d[2]", ("d", 2))
        assert canvas[0].get_num(ref).value == 30.0

    def test_path_coordinate_axes(self):
        canvas = canvas_of(
            "(svg [(path 'f' 's' 1 ['M' 1 2 'H' 3 'V' 4 'L' 5 6])])")
        assert canvas[0].path_coordinate_axes() == [0, 1, 0, 1, 0, 1]

    def test_visible_shapes_excludes_ghosts(self):
        canvas = canvas_of(
            "(svg [(ghost (rect 'r' 1 1 1 1)) (circle 'c' 2 2 2)])")
        assert len(canvas.visible_shapes()) == 1

    def test_all_numeric_traces_nonempty(self, sine_canvas):
        traces = sine_canvas.all_numeric_traces()
        # 12 boxes x (x, y, width, height) = 48 numeric attributes
        assert len(traces) == 48


class TestBBox:
    def test_rect(self):
        canvas = canvas_of("(svg [(rect 'r' 10 20 30 40)])")
        box = shape_bbox(canvas[0])
        assert (box.x_min, box.y_min, box.x_max, box.y_max) == \
            (10, 20, 40, 60)

    def test_circle(self):
        canvas = canvas_of("(svg [(circle 'c' 100 100 30)])")
        box = shape_bbox(canvas[0])
        assert box.width == 60 and box.center == (100, 100)

    def test_line(self):
        canvas = canvas_of("(svg [(line 's' 1 10 40 30 20)])")
        box = shape_bbox(canvas[0])
        assert (box.x_min, box.y_min, box.x_max, box.y_max) == \
            (10, 20, 30, 40)

    def test_polygon(self):
        canvas = canvas_of(
            "(svg [(polygon 'f' 's' 1 [[0 0] [10 0] [5 8]])])")
        box = shape_bbox(canvas[0])
        assert box.x_max == 10 and box.y_max == 8

    def test_path(self):
        canvas = canvas_of(
            "(svg [(path 'f' 's' 1 ['M' 0 0 'L' 20 10])])")
        box = shape_bbox(canvas[0])
        assert box.x_max == 20 and box.y_max == 10

    def test_union(self):
        box = BBox(0, 0, 1, 1).union(BBox(5, 5, 6, 6))
        assert (box.x_min, box.y_max) == (0, 6)

    def test_contains(self):
        assert BBox(0, 0, 10, 10).contains(5, 5)
        assert not BBox(0, 0, 10, 10).contains(15, 5)

    def test_canvas_bbox_union(self, sine_canvas):
        box = canvas_bbox(sine_canvas)
        assert box.x_min == 50.0   # first box x

"""Incremental-Prepare equivalence: the change-set-driven pipeline must be
indistinguishable from a from-scratch Prepare after arbitrary gestures.

The core pipeline (repro.core.pipeline) reuses per-shape analyses,
assignments, triggers and sliders across ``release()`` based on the
gesture's accumulated change set.  These tests drive randomized (seeded)
multi-step gestures across the corpus and check, after every release, that
the cached state — assignments, triggers, sliders, hover captions with
selected/unselected sets, and the active zone count — equals what
``assign_canvas`` + ``compute_triggers`` + ``collect_sliders`` compute from
scratch on the same program and canvas.
"""

import random

import pytest

from repro.bench import naive_prepare, prepare_equal
from repro.editor import LiveSession
from repro.examples import example_source

#: >=10 corpus examples spanning the shape kinds and zone varieties:
#: rects, polygons, paths, circles, rotation/FILL zones, sliders, and the
#: guard-heavy cases where drags flip control flow.
EXAMPLES = (
    "sine_wave_of_boxes",
    "three_boxes",
    "ferris_wheel",
    "chicago_flag",
    "color_wheel",
    "n_boxes_slider",
    "tessellation",
    "sliders",
    "us13_flag",
    "solar_system",
    "eye_icon",
    "keyboard",
)

GESTURES = 3
MAX_STEPS = 6


def _assert_prepare_matches(session):
    state = naive_prepare(session.pipeline)
    assert prepare_equal(session.pipeline, *state), \
        "incremental Prepare diverged from from-scratch Prepare"
    naive_assignments = state[0]
    assert session.active_zone_count() == len(naive_assignments.chosen)
    # Hover captions go through the same assignment data both ways.
    for key in naive_assignments.chosen:
        info = session.hover(*key)
        active, caption, selected, unselected = \
            naive_assignments.hover_data(*key)
        assert (info.active, info.caption, info.selected,
                info.unselected) == (active, caption, selected, unselected)


def _random_gesture(session, rng):
    keys = sorted(session.triggers)
    key = keys[rng.randrange(len(keys))]
    session.start_drag(*key)
    for _ in range(rng.randint(2, MAX_STEPS)):
        session.drag(rng.uniform(-60.0, 60.0), rng.uniform(-60.0, 60.0))
    session.release()


@pytest.mark.parametrize("name", EXAMPLES)
def test_random_gestures_keep_prepare_equal(name):
    rng = random.Random(f"prepare-{name}")
    session = LiveSession(example_source(name))
    _assert_prepare_matches(session)
    for _ in range(GESTURES):
        if not session.triggers:
            pytest.skip(f"{name} has no active zones")
        _random_gesture(session, rng)
        _assert_prepare_matches(session)


@pytest.mark.parametrize("name", ("sine_wave_of_boxes", "tessellation"))
def test_biased_heuristic_gestures_keep_prepare_equal(name):
    rng = random.Random(f"biased-{name}")
    session = LiveSession(example_source(name), heuristic="biased")
    for _ in range(GESTURES):
        _random_gesture(session, rng)
        _assert_prepare_matches(session)


def test_slider_moves_keep_prepare_equal():
    """Built-in slider moves run the whole pipeline incrementally too."""
    rng = random.Random("prepare-sliders")
    session = LiveSession(example_source("sine_wave_of_boxes"))
    (loc, slider), = [(loc, s) for loc, s in session.sliders.items()]
    for _ in range(4):
        session.set_slider(loc, rng.uniform(slider.lo, slider.hi))
        _assert_prepare_matches(session)
    session.undo()
    _assert_prepare_matches(session)


def test_undo_during_drag_keeps_prepare_equal():
    """Undo with a drag in flight aborts the gesture and must leave the
    Prepare state equal to a from-scratch one (the pipeline cannot bound
    the difference with a cheap change set there)."""
    session = LiveSession(example_source("ferris_wheel"))
    session.start_drag(6, "INTERIOR")
    session.drag(7.0, 7.0)
    session.release()
    session.start_drag(0, "INTERIOR")
    session.drag(-9.0, 4.0)
    session.undo()
    _assert_prepare_matches(session)


def test_unreleased_gesture_change_reaches_next_release():
    """start_drag without releasing the previous gesture must not drop
    that gesture's accumulated change from the next Prepare."""
    session = LiveSession(example_source("ferris_wheel"))
    session.start_drag(6, "INTERIOR")
    session.drag(7.0, 7.0)                      # never released
    session.start_drag(0, "INTERIOR")
    session.drag(-9.0, 4.0)
    session.release()
    _assert_prepare_matches(session)


def test_undo_after_gesture_keeps_prepare_equal():
    rng = random.Random("prepare-undo")
    session = LiveSession(example_source("ferris_wheel"))
    for _ in range(2):
        _random_gesture(session, rng)
    while session.history:
        session.undo()
        _assert_prepare_matches(session)

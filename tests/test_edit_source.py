"""LiveSession.edit_source: the edit path end to end.

The acceptance bar for the edit path: a value-only literal edit reuses
the incremental pipeline (no full re-evaluation — asserted on guard-cache
and trace *identity*), structural edits escalate correctly, and the
session state after any mix of drags, edits, undos, snapshots and
rehydrations is byte-identical to a session freshly opened on the same
text.
"""

import pytest

from repro.bench.edit_latency import _session_signature
from repro.editor import LiveSession
from repro.editor.session import EditorError
from repro.examples import example_source
from repro.lang.errors import LittleSyntaxError

SOURCE = "(def x 10) (svg [(rect 'teal' x 20 30 40)])"


def assert_matches_fresh(session: LiveSession) -> None:
    """The session must be observably identical to a fresh one opened on
    its current text (parse-stable coordinates; see the benchmark)."""
    fresh = LiveSession(session.source())
    assert _session_signature(session) == _session_signature(fresh)


class TestValueEdits:
    def test_value_edit_reuses_recorded_evaluation(self):
        session = LiveSession(SOURCE)
        cache = session.pipeline._eval_cache
        diff = session.edit_source(SOURCE.replace("20", "60"))
        assert diff.kind == "value"
        # Guard identity: the recorded evaluation was *replayed*, not
        # re-recorded — a full re-eval would have installed a new cache.
        assert session.pipeline._eval_cache is cache
        assert 'y="60"' in session.export_svg()
        assert_matches_fresh(session)

    def test_value_edit_preserves_unaffected_traces(self):
        session = LiveSession(example_source("three_boxes"))
        before = [shape.trace_sig() for shape in session.canvas]
        text = session.source().replace("[40 28", "[40 45")   # y0: 28 → 45
        assert session.edit_source(text).kind == "value"
        after = [shape.trace_sig() for shape in session.canvas]
        # Trace identity: the incremental canvas rebuild kept every trace
        # object (signatures are identity-based), exactly like a drag.
        assert after == before
        assert_matches_fresh(session)

    def test_value_edit_pushes_history_and_undoes_incrementally(self):
        session = LiveSession(SOURCE)
        svg_before = session.export_svg()
        session.edit_source(SOURCE.replace("10", "70"))
        assert len(session.history) == 1
        cache = session.pipeline._eval_cache
        session.undo()
        assert session.pipeline._eval_cache is cache  # still incremental
        assert session.export_svg() == svg_before

    def test_value_edit_updates_slider(self):
        session = LiveSession("(def n 3{1-8})\n"
                              "(svg [(rect 'red' 10 20 (* n 10) 40)])")
        loc = next(iter(session.sliders))
        session.edit_source(session.source().replace("3{1-8}", "5{1-8}"))
        assert session.sliders[loc].value == 5.0
        assert_matches_fresh(session)

    def test_guard_flipping_value_edit_escalates_and_stays_identical(self):
        session = LiveSession(example_source("n_boxes_slider"))
        text = session.source().replace("5!{1-10}", "8!{1-10}")
        assert text != session.source()
        diff = session.edit_source(text)      # box count: list length flips
        assert diff.kind == "value"
        assert_matches_fresh(session)


class TestIdentityEdits:
    def test_identity_edit_is_free(self):
        session = LiveSession(SOURCE)
        cache = session.pipeline._eval_cache
        output = session.pipeline.output
        diff = session.edit_source(session.source())
        assert diff.kind == "identity"
        assert not session.history                  # no undo entry
        assert session.pipeline._eval_cache is cache
        assert session.pipeline.output is output    # not even a rebuild

    def test_identity_edit_keeps_undo_incremental_and_exact(self):
        session = LiveSession(SOURCE)
        session.drag_zone(0, "INTERIOR", 25.0, 0.0)       # x: 10 → 35
        session.edit_source(session.source() + "\n\n")     # identity
        session.undo()                                     # undo the drag
        assert 'x="10"' in session.export_svg()            # not stale
        assert_matches_fresh(session)

    def test_identity_edit_adopts_formatting(self):
        session = LiveSession(SOURCE)
        spaced = SOURCE.replace(" (svg", "   (svg")
        session.edit_source(spaced)
        assert session.program.source == spaced
        assert_matches_fresh(session)


class TestStructuralEdits:
    def test_insertion_adds_shape_and_keeps_locs(self):
        session = LiveSession(SOURCE)
        x = session.program.user_locs()[0]
        diff = session.edit_source(
            "(def x 10) (svg [(rect 'teal' x 20 30 40) "
            "(circle 'red' 100 100 9)])")
        assert diff.kind == "structural"
        assert len(session.canvas) == 2
        assert session.program.user_locs()[0] == x  # survived the reparse
        assert_matches_fresh(session)

    def test_structural_edit_undo_restores_exactly(self):
        session = LiveSession(SOURCE)
        svg_before = session.export_svg()
        session.edit_source("(def x 10) (svg [(circle 'red' x 50 20)])")
        session.undo()
        assert session.export_svg() == svg_before
        assert_matches_fresh(session)

    def test_drag_edit_drag_mixed_session(self):
        """The paper's headline workflow: alternate direct manipulation
        and programmatic edits against one live artifact."""
        session = LiveSession(SOURCE)
        session.drag_zone(0, "INTERIOR", 25.0, 0.0)
        assert "(def x 35)" in session.source()
        diff = session.edit_source(session.source().replace("20", "60"))
        assert diff.kind == "value"
        session.drag_zone(0, "INTERIOR", 5.0, 0.0)
        assert "(def x 40)" in session.source()
        assert 'y="60"' in session.export_svg()
        assert_matches_fresh(session)
        for _ in range(len(session.history)):
            session.undo()
        assert session.source() == LiveSession(SOURCE).source()


class TestEditDuringDrag:
    def test_edit_commits_inflight_gesture(self):
        session = LiveSession(SOURCE)
        session.start_drag(0, "INTERIOR")
        session.drag(15.0, 0.0)
        diff = session.edit_source(session.source().replace("20", "80"))
        assert diff.kind == "value"
        assert session.dragging is None
        # Two undo steps: the edit, then the committed gesture.
        assert len(session.history) == 2
        assert_matches_fresh(session)

    def test_parse_error_leaves_drag_in_flight(self):
        session = LiveSession(SOURCE)
        session.start_drag(0, "INTERIOR")
        session.drag(15.0, 0.0)
        svg = session.export_svg()
        with pytest.raises(LittleSyntaxError):
            session.edit_source("(svg [(rect")
        assert session.dragging == (0, "INTERIOR")
        assert session.export_svg() == svg
        session.release()


class TestSnapshotAcrossEdits:
    def test_snapshot_restore_after_edits_is_byte_identical(self):
        session = LiveSession(SOURCE)
        session.drag_zone(0, "INTERIOR", 25.0, 0.0)
        session.edit_source(session.source().replace("20", "60"))
        session.edit_source(
            "(def x 35) (svg [(rect 'teal' x 60 30 40) "
            "(circle 'red' 9 9 9)])")
        session.drag_zone(1, "INTERIOR", 3.0, 4.0)
        restored = LiveSession.restore(session.snapshot())
        assert _session_signature(restored) == _session_signature(session)
        # Undo through the whole mixed history, in lockstep.
        while session.history:
            session.undo()
            restored.undo()
            assert restored.export_svg() == session.export_svg()
            assert restored.source() == session.source()

    def test_snapshot_midgesture_after_edit(self):
        session = LiveSession(SOURCE)
        session.edit_source(SOURCE.replace("10", "15"))
        session.start_drag(0, "INTERIOR")
        session.drag(2.0, 2.0)
        restored = LiveSession.restore(session.snapshot())
        assert restored.dragging == session.dragging
        for live in (session, restored):
            live.drag(6.0, 1.0)
            live.release()
        assert restored.export_svg() == session.export_svg()

    def test_snapshot_stays_jsonable(self):
        import json

        session = LiveSession(SOURCE)
        session.edit_source("(def x 10) (svg [(circle 'red' x 50 20)])")
        json.dumps(session.snapshot())


class TestErrors:
    def test_edit_to_unrunnable_program_rolls_back(self):
        from repro.lang.errors import LittleError

        session = LiveSession(SOURCE)
        svg = session.export_svg()
        with pytest.raises(LittleError):
            session.edit_source("(svg [(rect 'red' nope 1 2 3)])")
        # The edit is atomic: the failure surfaced, the session stayed
        # on its previous program, and no undo entry was left behind.
        assert not session.history
        assert session.export_svg() == svg
        assert session.drag_zone(0, "INTERIOR", 2.0, 2.0).all_solved

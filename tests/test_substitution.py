"""Tests for substitutions ρ and their application to programs (§2.2, §3)."""

import pytest

from repro.lang import parse_program, substitute, to_pylist
from repro.lang.ast import Loc
from repro.trace.substitution import Substitution


def find_loc(program, name):
    for loc in program.rho0:
        if loc.name == name:
            return loc
    raise AssertionError(f"no location named {name}")


class TestSubstitutionClass:
    def test_extend(self):
        a = Loc(1, "a")
        rho = Substitution().extend(a, 5.0)
        assert rho[a] == 5.0

    def test_extend_is_persistent(self):
        a = Loc(1, "a")
        rho1 = Substitution({a: 1.0})
        rho2 = rho1.extend(a, 2.0)
        assert rho1[a] == 1.0 and rho2[a] == 2.0

    def test_concat_rightmost_wins(self):
        a = Loc(1, "a")
        rho = Substitution({a: 1.0}).concat({a: 9.0})
        assert rho[a] == 9.0

    def test_changes_from(self):
        a, b = Loc(1, "a"), Loc(2, "b")
        base = {a: 1.0, b: 2.0}
        rho = Substitution(base).extend(a, 5.0)
        assert rho.changes_from(base) == {a: 5.0}

    def test_mapping_interface(self):
        a = Loc(1, "a")
        rho = Substitution({a: 1.0})
        assert len(rho) == 1
        assert list(rho) == [a]
        assert a in rho


class TestProgramSubstitution:
    def test_updates_literal(self, sine_program):
        x0 = find_loc(sine_program, "x0")
        updated = sine_program.substitute({x0: 95.0})
        assert "95" in updated.unparse().splitlines()[0]

    def test_original_unchanged(self, sine_program):
        x0 = find_loc(sine_program, "x0")
        sine_program.substitute({x0: 95.0})
        assert "50" in sine_program.unparse().splitlines()[0]

    def test_rho0_updated(self, sine_program):
        x0 = find_loc(sine_program, "x0")
        updated = sine_program.substitute({x0: 95.0})
        assert updated.rho0[x0] == 95.0

    def test_evaluation_reflects_update(self, sine_program):
        x0 = find_loc(sine_program, "x0")
        updated = sine_program.substitute({x0: 95.0})
        svg = to_pylist(updated.evaluate())
        first_box = to_pylist(to_pylist(svg[2])[0])
        attrs = {to_pylist(p)[0].value: to_pylist(p)[1]
                 for p in to_pylist(first_box[1])}
        assert attrs["x"].value == 95.0

    def test_annotations_preserved(self, sine_program):
        n = find_loc(sine_program, "n")
        updated = sine_program.substitute({n: 8.0})
        assert "8!{3-30}" in updated.unparse()

    def test_structure_shared_when_untouched(self, sine_program):
        updated = sine_program.substitute({})
        assert updated.user_ast is sine_program.user_ast

    def test_prelude_substitution_possible_when_unfrozen(self):
        program = parse_program("(svg [(rect 'r' (+ 10 0) 1 2 3)])",
                                prelude_frozen=False)
        prelude_loc = next(loc for loc in program.rho0 if loc.in_prelude)
        updated = program.substitute({prelude_loc: 123.0})
        assert updated.rho0[prelude_loc] == 123.0


class TestSubstituteFunction:
    def test_noop_returns_same_object(self):
        program = parse_program("(+ 1 2)")
        assert substitute(program.user_ast, {}) is program.user_ast

    def test_applies_inside_nested_structures(self):
        program = parse_program(
            "(def f (\\x [(+ x 1) 'k'])) (svg [(rect 'r' 5 5 5 5)])")
        target = next(loc for loc, value in program.rho0.items()
                      if value == 1.0 and not loc.in_prelude)
        new_ast = substitute(program.user_ast, {target: 99.0})
        new_rho = {loc: val
                   for loc, val in parse_program("(+ 1 2)").rho0.items()}
        assert new_ast is not program.user_ast

"""Corpus-wide checks: every example parses, evaluates, renders, prepares,
and can be manipulated."""

import pytest

from repro.editor import LiveSession
from repro.examples import (example_info, example_names, example_source,
                            load_example)
from repro.svg import Canvas, render_canvas
from repro.zones import assign_canvas

ALL_NAMES = example_names()


def test_corpus_size():
    assert len(ALL_NAMES) >= 50


def test_registry_metadata_complete():
    for name in ALL_NAMES:
        info = example_info(name)
        assert info.title and info.description


def test_unknown_example_rejected():
    with pytest.raises(KeyError):
        example_source("nonexistent_example")


@pytest.mark.parametrize("name", ALL_NAMES)
def test_example_evaluates_to_canvas(name):
    program = load_example(name)
    canvas = Canvas.from_value(program.evaluate())
    assert len(canvas) > 0


@pytest.mark.parametrize("name", ALL_NAMES)
def test_example_renders_to_svg(name):
    program = load_example(name)
    canvas = Canvas.from_value(program.evaluate())
    rendered = render_canvas(canvas.root, include_hidden=True)
    assert rendered.startswith("<svg")
    assert rendered.endswith("</svg>")


@pytest.mark.parametrize("name", ALL_NAMES)
def test_example_prepares_assignments(name):
    program = load_example(name)
    canvas = Canvas.from_value(program.evaluate())
    assignments = assign_canvas(canvas)
    # Every chosen assignment covers its zone's features.
    for assignment in assignments.chosen.values():
        assert len(assignment.theta) == len(assignment.zone.features)


@pytest.mark.parametrize("name", [
    "sine_wave_of_boxes", "three_boxes", "ferris_wheel", "chicago_flag",
    "keyboard", "tessellation", "fractal_tree", "sketch_n_sketch_logo",
])
def test_representative_examples_draggable(name):
    """A drag on some Active zone produces a program update that keeps the
    canvas well-formed."""
    session = LiveSession(example_source(name))
    (shape_index, zone_name), _ = next(iter(session.triggers.items()))
    before = session.source()
    result = session.drag_zone(shape_index, zone_name, 10.0, 5.0)
    if result.bindings:
        assert session.source() != before
    assert len(session.canvas) > 0


def test_example_unparse_reparse_stable():
    from repro.lang import parse_program
    for name in ("sine_wave_of_boxes", "ferris_wheel", "tile_pattern"):
        program = load_example(name)
        reparsed = parse_program(program.unparse())
        assert len(reparsed.rho0) == len(program.rho0)


def test_sliders_present_in_slider_examples():
    for name in ("sine_wave_of_boxes", "ferris_wheel", "hilbert_curve",
                 "n_boxes_slider"):
        session = LiveSession(example_source(name))
        assert session.sliders, f"{name} should expose built-in sliders"


def test_corpus_little_loc_total():
    """The corpus should be a substantial body of little code (the paper's
    68 examples span ~2,000 lines)."""
    total = 0
    for name in ALL_NAMES:
        for line in example_source(name).splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith(";"):
                total += 1
    assert total >= 500

"""Tests for the perf-trajectory tracker (scripts/trajectory.py)."""

import json
import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).parent.parent / "scripts"
sys.path.insert(0, str(SCRIPTS))

import trajectory  # noqa: E402

BASELINES = Path(__file__).parent.parent / "benchmarks" / "baselines"


def write_run(directory, tables):
    directory.mkdir(parents=True, exist_ok=True)
    for name, rows in tables.items():
        payload = {"name": name, "lines": [], "rows": rows, "meta": {}}
        with open(directory / f"BENCH_{name}.json", "w") as handle:
            json.dump(payload, handle)


@pytest.fixture
def two_runs(tmp_path):
    old = tmp_path / "run-old"
    new = tmp_path / "run-new"
    write_run(old, {
        "drag_latency": [
            {"name": "sine", "fast_sps": 1000.0, "naive_sps": 100.0,
             "outputs_identical": True},
            {"name": "flag", "fast_sps": 2000.0, "naive_sps": 150.0,
             "outputs_identical": True},
        ],
        "zone_table": [{"name": "sine", "zone_count": 12}],
    })
    write_run(new, {
        "drag_latency": [
            {"name": "sine", "fast_sps": 1100.0, "naive_sps": 95.0,
             "outputs_identical": True},
            {"name": "flag", "fast_sps": 1900.0, "naive_sps": 160.0,
             "outputs_identical": True},
        ],
        "zone_table": [{"name": "sine", "zone_count": 12}],
    })
    return old, new


class TestTrendReport:
    def test_two_runs_produce_a_trend_report(self, two_runs, capsys):
        old, new = two_runs
        code = trajectory.main([str(old), str(new)])
        assert code == 0
        output = capsys.readouterr().out
        assert "run-old -> run-new" in output
        assert "sine.fast_sps: 1000.0 -> 1100.0" in output
        assert "(x1.10)" in output
        assert "no timing regressions" in output

    def test_metrics_are_tracked_per_example(self, two_runs):
        old, new = two_runs
        runs = [trajectory.load_run(old), trajectory.load_run(new)]
        trends = trajectory.build_trends(runs, ["a", "b"])
        series = trends["tables"]["drag_latency"]["metrics"]
        assert series["sine.fast_sps"] == [1000.0, 1100.0]
        assert series["flag.naive_sps"] == [150.0, 160.0]
        # zone_count is not throughput-like and must not be tracked.
        assert trends["tables"]["zone_table"]["metrics"] == {}

    def test_json_output_is_machine_readable(self, two_runs, capsys):
        old, new = two_runs
        assert trajectory.main([str(old), str(new), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failures"] == []
        assert "drag_latency" in payload["trends"]["tables"]

    def test_dict_keyed_rows_are_normalized(self):
        table = {"rows": {"parse": {"name": "parse", "avg_rate": 2.0}}}
        assert trajectory.extract_metrics(table) == {("parse", "avg_rate"): 2.0}


class TestTimingFloor:
    def test_regression_below_floor_fails(self, two_runs, capsys):
        old, new = two_runs
        degraded = new.parent / "run-degraded"
        write_run(degraded, {
            "drag_latency": [
                {"name": "sine", "fast_sps": 400.0, "naive_sps": 95.0,
                 "outputs_identical": True},
            ],
        })
        code = trajectory.main([str(old), str(new), str(degraded)])
        assert code == 1
        output = capsys.readouterr().out
        assert "FAIL drag_latency.sine.fast_sps" in output

    def test_floor_is_configurable(self, two_runs):
        old, new = two_runs
        # naive_sps on sine fell 100 -> 95: fails at floor 0.99.
        assert trajectory.main([str(old), str(new), "--floor", "0.99"]) == 1
        assert trajectory.main([str(old), str(new), "--floor", "0.5"]) == 0


class TestCorrectnessMode:
    def test_clean_runs_pass(self, two_runs):
        old, new = two_runs
        assert trajectory.main([str(old), str(new), "--correctness"]) == 0

    def test_missing_table_fails(self, two_runs, capsys):
        old, new = two_runs
        (new / "BENCH_zone_table.json").unlink()
        assert trajectory.main([str(old), str(new), "--correctness"]) == 1
        assert "zone_table: table missing" in capsys.readouterr().out

    def test_emptied_rows_fail(self, two_runs, capsys):
        old, new = two_runs
        write_run(new, {"zone_table": []})
        assert trajectory.main([str(old), str(new), "--correctness"]) == 1
        assert "latest has none" in capsys.readouterr().out

    def test_false_identity_flag_fails(self, two_runs, capsys):
        old, new = two_runs
        write_run(new, {
            "drag_latency": [
                {"name": "sine", "fast_sps": 1100.0,
                 "outputs_identical": False},
            ],
        })
        assert trajectory.main([str(old), str(new), "--correctness"]) == 1
        output = capsys.readouterr().out
        assert "outputs_identical: expected true" in output

    def test_timing_drop_passes_correctness(self, two_runs):
        old, new = two_runs
        write_run(new, {
            "drag_latency": [
                {"name": "sine", "fast_sps": 1.0, "naive_sps": 1.0,
                 "outputs_identical": True}],
            "zone_table": [{"name": "sine", "zone_count": 12}],
        })
        assert trajectory.main([str(old), str(new), "--correctness"]) == 0


class TestCliErrors:
    def test_missing_directory(self, tmp_path, capsys):
        assert trajectory.main([str(tmp_path), "/nonexistent-run"]) == 2
        assert "no such run directory" in capsys.readouterr().err

    def test_empty_directory(self, two_runs, tmp_path, capsys):
        old, _ = two_runs
        empty = tmp_path / "empty"
        empty.mkdir()
        assert trajectory.main([str(old), str(empty)]) == 2
        assert "no BENCH_" in capsys.readouterr().err

    def test_single_run_is_rejected(self, two_runs, capsys):
        old, _ = two_runs
        assert trajectory.main([str(old)]) == 2
        assert "at least two" in capsys.readouterr().err


class TestCommittedBaselines:
    """The repository ships two real benchmark runs; CI replays the
    trajectory check against them plus the fresh benchmarks/out."""

    def test_baselines_exist_and_load(self):
        runs = sorted(BASELINES.glob("run-*"))
        assert len(runs) >= 2
        for run in runs:
            tables = trajectory.load_run(run)
            assert "drag_latency" in tables
            assert "perf_table" in tables

    def test_baselines_pass_correctness_mode(self, capsys):
        runs = sorted(str(p) for p in BASELINES.glob("run-*"))
        assert trajectory.main(runs + ["--correctness"]) == 0

    def test_baselines_produce_a_trend_report(self, capsys):
        runs = sorted(str(p) for p in BASELINES.glob("run-*"))
        trajectory.main(runs + ["--json"])
        payload = json.loads(capsys.readouterr().out)
        metrics = payload["trends"]["tables"]["drag_latency"]["metrics"]
        assert any(key.endswith("fast_sps") for key in metrics)

"""The structural differ (repro.lang.diff): classification and Loc
re-keying across reparses.

The load-bearing property: for every corpus example, re-parsing the
unparse of a parse is an *identity* edit — the differ proves it and the
edit costs nothing.  Targeted cases pin down the classification table
(value-only, rename-only, shape insertion, annotation changes, full
rewrites) and the Loc-stability guarantees each class makes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.changeset import FULL_CHANGE
from repro.examples import example_names, example_source
from repro.lang.diff import diff_source
from repro.lang.program import parse_program

SOURCE = "(def x 10) (svg [(rect 'red' x 20 30 40)])"


# ---------------------------------------------------------------------------
# Identity edits are free (corpus-wide property)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", example_names())
def test_unparse_reparse_is_empty_changeset(name):
    program = parse_program(example_source(name))
    diff = diff_source(program, program.unparse())
    assert diff.kind == "identity"
    assert not diff.change
    assert not diff.change.structural
    # The surviving program *is* the old one, substitution-for-free:
    assert diff.program.user_locs() == program.user_locs()
    assert diff.program.user_values() == program.user_values()
    assert diff.rekeyed == len(program.user_locs())
    assert diff.fresh == 0


def test_identity_edit_adopts_new_text():
    program = parse_program(SOURCE)
    spaced = SOURCE.replace(" 20", "    20")
    diff = diff_source(program, spaced)
    assert diff.kind == "identity"
    assert diff.program.source == spaced


# ---------------------------------------------------------------------------
# Value-only edits
# ---------------------------------------------------------------------------

def test_literal_only_edit_is_value_change():
    program = parse_program(SOURCE)
    diff = diff_source(program, SOURCE.replace("10", "99"))
    assert diff.kind == "value"
    assert not diff.change.structural
    assert {loc.display() for loc in diff.change.locs} == {"x"}
    assert diff.program.user_locs() == program.user_locs()
    assert diff.program.user_values() == [99.0, 20.0, 30.0, 40.0]


def test_multi_literal_edit_lists_every_changed_loc():
    program = parse_program(SOURCE)
    diff = diff_source(program,
                       "(def x 11) (svg [(rect 'red' x 21 30 41)])")
    assert diff.kind == "value"
    assert len(diff.change.locs) == 3


@settings(max_examples=25, deadline=None)
@given(values=st.lists(
    st.integers(min_value=-2000, max_value=2000).map(lambda n: n / 4),
    min_size=4, max_size=4))
def test_random_value_perturbations_roundtrip(values):
    program = parse_program(SOURCE)
    rho = dict(zip(program.user_locs(), values))
    edited_text = program.substitute(rho).unparse()
    diff = diff_source(program, edited_text)
    expected = {loc for loc, value in rho.items()
                if value != program.rho0[loc]}
    assert diff.kind == ("value" if expected else "identity")
    assert diff.change.locs == frozenset(expected)
    assert not diff.change.structural
    assert diff.program.unparse() == edited_text


# ---------------------------------------------------------------------------
# Structural edits: re-keying
# ---------------------------------------------------------------------------

def test_rename_only_edit_keeps_locs_and_adopts_name():
    program = parse_program(SOURCE)
    renamed = SOURCE.replace("x", "wide")
    diff = diff_source(program, renamed)
    assert diff.kind == "structural"
    assert diff.change.structural
    # Every literal survived the reparse with its old Loc (identity is
    # by ident) ...
    assert diff.program.user_locs() == program.user_locs()
    assert diff.rekeyed == 4 and diff.fresh == 0
    # ... the renamed binding's location displays the new name in the
    # edited program, while the old program (the undo history) keeps its
    # own Loc objects untouched.
    assert diff.program.user_locs()[0].display() == "wide"
    assert program.user_locs()[0].display() == "x"


def test_shape_insertion_keeps_surviving_locs():
    program = parse_program(SOURCE)
    inserted = ("(def x 10) (svg [(rect 'red' x 20 30 40) "
                "(circle 'blue' 100 100 5)])")
    diff = diff_source(program, inserted)
    assert diff.kind == "structural"
    assert diff.rekeyed == 4 and diff.fresh == 3
    assert diff.program.user_locs()[:4] == program.user_locs()
    # The inserted circle's literals are new locations.
    new_locs = diff.program.user_locs()[4:]
    assert all(loc not in program.user_locs() for loc in new_locs)


def test_def_insertion_anchors_spine_alignment():
    """Prepending a definition must not shift every later pairing: the
    surviving bindings anchor on their binder patterns."""
    program = parse_program(SOURCE)
    diff = diff_source(program, "(def pad 7) " + SOURCE)
    assert diff.kind == "structural"
    assert diff.rekeyed == 4 and diff.fresh == 1
    # No surviving literal changed value — the report must say so.
    assert not diff.change.locs
    # x (and the rect literals) kept their Locs; only pad's 7 is new.
    assert diff.program.user_locs()[1:] == program.user_locs()
    assert diff.program.user_locs()[1].display() == "x"
    assert diff.program.user_locs()[0] not in program.user_locs()


def test_def_deletion_anchors_spine_alignment():
    program = parse_program("(def pad 7) " + SOURCE)
    diff = diff_source(program, SOURCE)
    assert diff.kind == "structural"
    assert diff.rekeyed == 4 and diff.fresh == 0
    assert diff.program.user_locs() == program.user_locs()[1:]


def test_annotation_change_is_structural_with_fresh_loc():
    program = parse_program(SOURCE)
    diff = diff_source(program, SOURCE.replace("10", "10!"))
    assert diff.kind == "structural"
    # The re-annotated literal must NOT keep its old (unfrozen) Loc.
    assert diff.program.user_locs()[0] != program.user_locs()[0]
    assert diff.program.user_locs()[0].frozen
    assert diff.program.user_locs()[1:] == program.user_locs()[1:]


def test_range_annotation_change_is_structural():
    program = parse_program(SOURCE)
    diff = diff_source(program, SOURCE.replace("10", "10{0-50}"))
    assert diff.kind == "structural"
    # Slider ranges live on the ENum, not the Loc, so the Loc survives.
    assert diff.program.user_locs() == program.user_locs()


def test_unrelated_program_is_full():
    program = parse_program(SOURCE)
    diff = diff_source(program, "'hello'")
    assert diff.kind == "full"
    assert diff.change is FULL_CHANGE
    assert diff.rekeyed == 0


def test_def_to_let_sugar_change_is_not_value_only():
    program = parse_program(SOURCE)
    diff = diff_source(
        program, "(let x 10 (svg [(rect 'red' x 20 30 40)]))")
    assert diff.kind == "structural"
    assert diff.program.user_locs() == program.user_locs()


def test_structural_edit_keeps_prelude_overlays():
    program = parse_program(SOURCE, prelude_frozen=False)
    prelude_loc = next(loc for loc in program.rho0 if loc.in_prelude)
    modified = program.substitute(
        {prelude_loc: program.rho0[prelude_loc] + 7.0})
    assert modified.prelude_modified
    diff = diff_source(modified,
                       "(def x 10) (svg [(circle 'red' x 50 20)])")
    assert diff.change.structural
    assert diff.program.rho0[prelude_loc] == \
        program.rho0[prelude_loc] + 7.0
    assert diff.program.last_change.structural


def test_parse_error_propagates():
    from repro.lang.errors import LittleSyntaxError

    program = parse_program(SOURCE)
    with pytest.raises(LittleSyntaxError):
        diff_source(program, "(svg [(rect")

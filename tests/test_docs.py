"""The documentation is executable: markdown examples and public-API
docstrings run as doctests, and relative links must resolve.

``README.md`` and ``docs/*.md`` embed Python-console sessions; this
module extracts and runs them, so a behavior change that invalidates the
docs fails the suite instead of silently rotting.  The same applies to
the doctest examples on the public API of ``repro.core``, ``repro.serve``
and friends.
"""

import doctest
import importlib
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent

MARKDOWN_FILES = sorted(
    [REPO_ROOT / "README.md"] + list((REPO_ROOT / "docs").glob("*.md")))

#: Public modules whose docstring examples must run (module, class and
#: entry-point level docstrings alike — DocTestFinder walks them all).
DOCTEST_MODULES = [
    "repro.core.changeset",
    "repro.core.pipeline",
    "repro.core.run",
    "repro.core.sliders",
    "repro.lang.compile",
    "repro.lang.diff",
    "repro.lang.program",
    "repro.serve",
    "repro.serve.cache",
    "repro.serve.faults",
    "repro.serve.manager",
    "repro.serve.persist",
    "repro.serve.protocol",
    "repro.serve.shard",
    "repro.svg.importer",
    "repro.svg.ingest",
]


def run_examples(test: doctest.DocTest) -> None:
    runner = doctest.DocTestRunner(
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS)
    runner.run(test, out=sys.stdout.write)
    results = runner.summarize(verbose=False)
    assert results.failed == 0, \
        f"{results.failed} doctest failure(s) in {test.name}"


@pytest.mark.parametrize(
    "path", MARKDOWN_FILES, ids=[p.name for p in MARKDOWN_FILES])
def test_markdown_examples_run(path):
    parser = doctest.DocTestParser()
    test = parser.get_doctest(path.read_text(encoding="utf-8"),
                              {"__name__": "__main__"}, path.name,
                              str(path), 0)
    assert test.examples, f"{path.name} has no runnable examples"
    run_examples(test)


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_module_docstring_examples_run(module_name):
    module = importlib.import_module(module_name)
    finder = doctest.DocTestFinder(exclude_empty=True)
    tests = [test for test in finder.find(module) if test.examples]
    assert tests, f"{module_name} has no doctest examples"
    for test in tests:
        run_examples(test)


def test_no_dead_relative_links():
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        check_links = importlib.import_module("check_links")
    finally:
        sys.path.pop(0)
    dead = []
    for path in check_links.collect([REPO_ROOT / "README.md",
                                     REPO_ROOT / "docs"]):
        dead.extend((str(path), target, reason)
                    for target, reason in check_links.check_file(path))
    assert not dead, f"dead links: {dead}"


def test_readme_and_docs_exist_and_are_linked():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in readme
    assert "docs/little-language.md" in readme
    for name in ("architecture.md", "little-language.md"):
        assert (REPO_ROOT / "docs" / name).is_file()

"""Chaos suite: deterministic fault injection composed with concurrency.

Arms the injection points of :mod:`repro.serve.faults` and drives the
serve layer through the failure schedules production would take years
to produce, asserting the fault-containment contract:

1. **determinism** — the same ``(spec, seed)`` replays the exact same
   failure schedule: two fresh apps produce byte-identical response
   streams, injected failures included;
2. **quarantine + self-healing** — an unexpected dispatch failure
   yields a structured ``internal_error`` with an incident id, and the
   session's next touch transparently restores the last-good snapshot
   (the state of its last successful boundary command);
3. **no session is lost silently** — every session id keeps answering:
   ``ok``, a structured error, or (when healing itself is made
   impossible) a ``session_expired`` 410 — never a hang, a wedged lock,
   or a torn state;
4. **persister failure containment** — disk-full writes degrade
   ``health()``, retry, and drain once the disk recovers; a warm
   restart reproduces every session byte-for-byte.

The failure *schedule* comes from ``REPRO_FAULT_SEED`` (default 0); CI
runs the suite across several seeds.  Multi-threaded tests assert
invariants (the OS still owns the interleaving); single-threaded tests
get bit-stable schedules.
"""

import json
import os
import threading

from repro.editor import LiveSession
from repro.serve import ServeApp, SessionManager
from repro.serve.faults import FaultPlan, InjectedFault, fail_point
from repro.serve.persist import StatePersister, load_state

from test_serve_concurrency import (REPEAT, TEMPLATE, canonicalize,
                                    normalize, run_threads)

#: The chaos schedule's seed — CI sweeps several values.
SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

#: Commands that refresh the rolling last-good snapshot on success.
BOUNDARIES = frozenset({"open", "release", "edit", "set_slider", "undo"})


def drive_script(app, source, ops):
    """Open a session and run ``ops`` (request-dict factories taking the
    session id); returns ``(sid, [normalized responses])``."""
    opened = app.handle({"cmd": "open", "source": source})
    assert opened["ok"], opened
    sid = opened["session"]
    stream = [normalize(sid, opened)]
    for op in ops:
        stream.append(normalize(sid, app.handle(op(sid))))
    return sid, stream


def gesture_ops(rounds, index=0):
    """A deterministic drag/release/edit script (shape 0, INTERIOR)."""
    ops = []
    for r in range(rounds):
        dx, dy = float(2 + (r * 3 + index) % 9), float(1 + (r + index) % 7)
        ops.append(lambda sid, dx=dx, dy=dy: {
            "cmd": "drag", "session": sid, "shape": 0, "zone": "INTERIOR",
            "steps": [[dx, dy]]})
        ops.append(lambda sid: {"cmd": "release", "session": sid})
        if r % 3 == 2:
            ops.append(lambda sid, r=r, index=index: {
                "cmd": "edit", "session": sid,
                "source": TEMPLATE.format(v=10 + index + r)})
    return ops


# ---------------------------------------------------------------------------
# 1. Determinism: same (spec, seed) -> same schedule, byte for byte
# ---------------------------------------------------------------------------

class TestDeterminism:
    SPEC = "dispatch.drag:0.4,dispatch.release:0.3,budget.force:0.2"

    def run_once(self, seed):
        plan = FaultPlan(self.SPEC, seed=seed)
        app = ServeApp(faults=plan)
        _sid, stream = drive_script(app, TEMPLATE.format(v=10),
                                    gesture_ops(6 * REPEAT))
        return stream, plan.counts()

    def test_same_seed_replays_identical_failure_schedule(self):
        first, first_counts = self.run_once(SEED)
        second, second_counts = self.run_once(SEED)
        assert first_counts == second_counts
        assert canonicalize(first) == canonicalize(second)
        # The schedule actually exercised both outcomes at these rates.
        assert sum(first_counts.values()) > 0

    def test_plans_are_independent_of_draw_interleaving(self):
        # Drawing point A ten times before point B must not change
        # point B's schedule: each point owns its seeded stream.
        solo = FaultPlan({"a": 0.5, "b": 0.5}, seed=SEED)
        behaviour_b = [solo.should_fire("b") for _ in range(20)]
        interleaved = FaultPlan({"a": 0.5, "b": 0.5}, seed=SEED)
        for _ in range(10):
            interleaved.should_fire("a")
        assert [interleaved.should_fire("b")
                for _ in range(20)] == behaviour_b

    def test_wildcard_precedence(self):
        plan = FaultPlan({"dispatch.*": 1.0, "dispatch.render": 0.0},
                         seed=SEED)
        assert plan.rate_for("dispatch.drag") == 1.0
        assert plan.rate_for("dispatch.render") == 0.0   # exact wins
        assert plan.rate_for("persist.write") == 0.0     # not armed


# ---------------------------------------------------------------------------
# 2. Quarantine + self-healing at the protocol boundary
# ---------------------------------------------------------------------------

class TestQuarantineHealing:
    def test_incident_then_heal_restores_last_boundary_state(self):
        plan = FaultPlan({"dispatch.edit": 1.0}, seed=SEED)
        app = ServeApp(faults=plan)
        source = TEMPLATE.format(v=10)
        opened = app.handle({"cmd": "open", "source": source})
        sid = opened["session"]
        # Advance to a boundary: drag + release refreshes last-good.
        app.handle({"cmd": "drag", "session": sid, "shape": 0,
                    "zone": "INTERIOR", "steps": [[4, 3]]})
        released = app.handle({"cmd": "release", "session": sid})
        assert released["ok"]
        # Drag beyond the boundary — progress healing must discard.
        app.handle({"cmd": "drag", "session": sid, "shape": 0,
                    "zone": "INTERIOR", "steps": [[9, 9]]})
        failed = app.handle({"cmd": "edit", "session": sid,
                             "source": source})
        assert failed["error"]["code"] == "internal_error"
        assert failed["error"]["status"] == 500
        assert failed["error"]["incident"]
        assert app.manager.poisoned_count() == 1
        # Next touch self-heals to the release-time state.
        rendered = app.handle({"cmd": "render", "session": sid})
        assert rendered["ok"]
        assert rendered["svg"] == released["svg"]
        assert app.manager.poisoned_count() == 0
        stats = app.handle({"cmd": "stats"})["stats"]
        assert stats["incidents"] == 1 and stats["healed"] == 1
        assert stats["faults"] == {"dispatch.edit": 1}

    def test_budget_force_refuses_without_touching_state(self):
        plan = FaultPlan({"budget.force": 1.0}, seed=SEED)
        app = ServeApp(faults=plan)
        opened = app.handle({"cmd": "open",
                             "source": TEMPLATE.format(v=10)})
        sid = opened["session"]
        refused = app.handle({"cmd": "drag", "session": sid, "shape": 0,
                              "zone": "INTERIOR", "steps": [[4, 3]]})
        assert refused["error"]["code"] == "program_limit"
        assert refused["error"]["status"] == 422
        rendered = app.handle({"cmd": "render", "session": sid})
        assert rendered["ok"] and rendered["svg"] == opened["svg"]
        assert app.manager.poisoned_count() == 0     # refused, not torn
        assert app.handle({"cmd": "stats"})["stats"]["limit_errors"] == 1

    def test_compile_leader_fault_fails_open_without_wedging(self):
        plan = FaultPlan({"compile.leader": 1.0}, seed=SEED)
        app = ServeApp(faults=plan)
        source = TEMPLATE.format(v=10)
        failed = app.handle({"cmd": "open", "source": source})
        assert failed["error"]["code"] == "internal_error"
        # Failures are not cached and the flight is not wedged: disarm
        # and the same source opens cleanly.
        plan.rates["compile.leader"] = 0.0
        opened = app.handle({"cmd": "open", "source": source})
        assert opened["ok"], opened

    def test_deserialize_fault_ends_in_structured_410_never_a_hang(self):
        # Healing is impossible (every restore fails): the session must
        # degrade 500 -> 410, not wedge or resurrect corrupt state.
        plan = FaultPlan({"snapshot.deserialize": 1.0}, seed=SEED)
        app = ServeApp(manager=SessionManager(max_sessions=1,
                                              faults=plan))
        first = app.handle({"cmd": "open",
                            "source": TEMPLATE.format(v=10)})
        app.handle({"cmd": "open", "source": TEMPLATE.format(v=11)})
        sid = first["session"]
        poisoned = app.handle({"cmd": "render", "session": sid})
        assert poisoned["error"]["code"] == "internal_error"
        expired = app.handle({"cmd": "render", "session": sid})
        assert expired["error"]["code"] == "session_expired"
        assert expired["error"]["status"] == 410
        stats = app.handle({"cmd": "stats"})["stats"]
        assert stats["heal_failures"] == 1
        assert app.manager.poisoned_count() == 0


class TestSpecializeFaults:
    """Failed trace-compiler specialization (:mod:`repro.lang.compile`)
    is pure degradation: every response stays byte-identical to an
    unfaulted server, the failure is counted in ``/stats``, and no
    session is quarantined."""

    def test_specialize_fault_degrades_to_interpreter_identically(self):
        from repro.lang.compile import force_compiled

        source = TEMPLATE.format(v=10)
        ops = gesture_ops(4)
        with force_compiled(True):
            plan = FaultPlan({"compile.specialize": 1.0}, seed=SEED)
            faulted_app = ServeApp(faults=plan)
            _, faulted = drive_script(faulted_app, source, ops)
            clean_app = ServeApp()
            _, clean = drive_script(clean_app, source, ops)
        # never a wrong/missing answer (loc idents canonicalized: the
        # global counter differs between the two apps)
        assert canonicalize(faulted) == canonicalize(clean)
        stats = faulted_app.handle({"cmd": "stats"})["stats"]
        assert stats["faults"]["compile.specialize"] >= 1
        assert stats["specialize_failures"] >= 1
        assert stats["specializations"] == 0     # pinned to the interpreter
        assert faulted_app.manager.poisoned_count() == 0
        clean_stats = clean_app.handle({"cmd": "stats"})["stats"]
        assert clean_stats["specializations"] >= 1
        assert clean_stats["specialize_failures"] == 0


# ---------------------------------------------------------------------------
# 3. Snapshot failure containment (eviction + last-good refresh)
# ---------------------------------------------------------------------------

class TestSnapshotFaults:
    def test_serialize_storm_counts_and_keeps_sessions_correct(self):
        plan = FaultPlan({"snapshot.serialize": 1.0}, seed=SEED)
        logged = []
        manager = SessionManager(max_sessions=1, faults=plan,
                                 log=logged.append)
        app = ServeApp(manager=manager)
        source = TEMPLATE.format(v=10)
        opened = app.handle({"cmd": "open", "source": source})
        sid = opened["session"]
        # Boundary refresh fails: counted, session keeps working.
        app.handle({"cmd": "drag", "session": sid, "shape": 0,
                    "zone": "INTERIOR", "steps": [[4, 3]]})
        released = app.handle({"cmd": "release", "session": sid})
        assert released["ok"]
        assert manager.snapshot_failures >= 1
        # Eviction pressure: the snapshot fails, the victim is put
        # back, and the bystander open still succeeds.
        second = app.handle({"cmd": "open",
                             "source": TEMPLATE.format(v=11)})
        assert second["ok"], second
        stats = app.handle({"cmd": "stats"})["stats"]
        assert stats["evict_failures"] >= 1
        assert stats["live_sessions"] == 2       # shed deferred, not torn
        assert any("evict" in line for line in logged)
        mirror = LiveSession(source)
        mirror.start_drag(0, "INTERIOR")
        mirror.drag(4.0, 3.0)
        mirror.release()
        rendered = app.handle({"cmd": "render", "session": sid})
        assert rendered["ok"] and rendered["svg"] == mirror.export_svg()
        # Snapshot failures degrade nothing by themselves.
        assert manager.health()["ok"]


# ---------------------------------------------------------------------------
# 4. Persister: disk-full containment + warm-restart byte-identity
# ---------------------------------------------------------------------------

class TestPersistFaults:
    def test_disk_full_degrades_then_drains_on_recovery(self, tmp_path):
        plan = FaultPlan({"persist.write": 1.0}, seed=SEED)
        manager = SessionManager(max_sessions=8)
        persister = StatePersister(str(tmp_path), manager.persist_payload,
                                   faults=plan)
        manager.attach_persister(persister)
        app = ServeApp(manager=manager)
        opened = app.handle({"cmd": "open",
                             "source": TEMPLATE.format(v=10)})
        assert opened["ok"]
        assert persister.flush() > 0             # failed writes re-queued
        assert persister.consecutive_failures > 0
        health = manager.health()
        assert not health["ok"]
        assert "persist_failures" in health["degraded"]
        # The disk recovers: the retry queue drains and health clears.
        plan.rates["persist.write"] = 0.0
        assert persister.flush() == 0
        assert persister.consecutive_failures == 0
        assert manager.health()["ok"]
        payloads, corrupt = load_state(str(tmp_path))
        assert corrupt == 0
        assert {p["sid"] for p in payloads} == {opened["session"]}

    def test_warm_restart_reproduces_sessions_byte_for_byte(self,
                                                            tmp_path):
        manager = SessionManager(max_sessions=8)
        persister = StatePersister(str(tmp_path), manager.persist_payload)
        manager.attach_persister(persister)
        app = ServeApp(manager=manager)
        before = {}
        for i in range(4):
            opened = app.handle({"cmd": "open",
                                 "source": TEMPLATE.format(v=10 + i)})
            sid = opened["session"]
            app.handle({"cmd": "drag", "session": sid, "shape": 0,
                        "zone": "INTERIOR", "steps": [[3 + i, 2]]})
            if i % 2 == 0:
                app.handle({"cmd": "release", "session": sid})
            before[sid] = app.handle({"cmd": "source", "session": sid})
        manager.flush_state()
        persister.stop(flush=True)

        restarted = SessionManager(max_sessions=8)
        payloads, corrupt = load_state(str(tmp_path))
        assert corrupt == 0
        assert restarted.load_state(payloads) == len(before)
        app2 = ServeApp(manager=restarted)
        for sid, expected in before.items():
            after = app2.handle({"cmd": "source", "session": sid})
            assert after["ok"], after
            assert after["source"] == expected["source"]
        # Mid-flight gestures survived: odd sessions can still release.
        for sid in before:
            response = app2.handle({"cmd": "release", "session": sid})
            assert response["ok"] \
                or response["error"]["code"] == "no_drag"
        # Fresh ids never collide with restored ones.
        fresh = app2.handle({"cmd": "open",
                             "source": TEMPLATE.format(v=99)})
        assert fresh["ok"] and fresh["session"] not in before


# ---------------------------------------------------------------------------
# 5. Chaos storm: faults x concurrency, invariants only
# ---------------------------------------------------------------------------

class TestChaosStorm:
    """Faults composed with the PR 5 concurrency harness.  Scheduling
    is the OS's choice, so these assert the containment *invariants*:
    no wedged locks (the test completes and every session answers), no
    session lost without a structured error, poisoned count drains to
    zero, and every post-heal render equals the session's last
    successful boundary response byte-for-byte."""

    SPEC = {"dispatch.drag": 0.15, "dispatch.release": 0.15,
            "dispatch.edit": 0.2, "budget.force": 0.1}

    def storm_worker(self, app, index, rounds):
        source = TEMPLATE.format(v=10 + index)
        opened = app.handle({"cmd": "open", "source": source})
        assert opened["ok"], opened
        sid = opened["session"]
        boundary_svg = opened["svg"]    # last-good refreshes at open
        for op in gesture_ops(rounds, index):
            response = app.handle(op(sid))
            if response["ok"]:
                if response.get("history") is not None \
                        and "coalesced" not in response:
                    # release/edit: a boundary command succeeded.
                    boundary_svg = response["svg"]
                continue
            code = response["error"]["code"]
            assert code in ("internal_error", "program_limit",
                            "no_drag", "drag_in_progress"), response
            if code == "internal_error":
                assert response["error"]["incident"]
                # The next touch must heal to the last boundary state
                # (render can be hit by no fault: only state-changing
                # commands are armed in this storm).
                healed = app.handle({"cmd": "render", "session": sid})
                assert healed["ok"], healed
                assert healed["svg"] == boundary_svg
        return sid

    def test_storm_heals_every_session_and_drains_poison(self):
        threads = 6
        rounds = 4 * REPEAT
        plan = FaultPlan(dict(self.SPEC), seed=SEED)
        app = ServeApp(manager=SessionManager(max_sessions=3, shards=2,
                                              faults=plan))
        sids = [None] * threads

        def worker(i):
            def run():
                sids[i] = self.storm_worker(app, i, rounds)
            return run

        run_threads([worker(i) for i in range(threads)])

        # Every session still answers; nothing is wedged or lost.
        for sid in sids:
            final = app.handle({"cmd": "render", "session": sid})
            assert final["ok"], final
        assert app.manager.poisoned_count() == 0
        health = app.manager.health()
        assert health["ok"], health
        stats = app.handle({"cmd": "stats"})["stats"]
        assert stats["incidents"] == stats["healed"]
        assert stats["faults"] == plan.counts()

    def test_same_session_storm_never_wedges_the_lock(self):
        plan = FaultPlan({"dispatch.*": 0.25}, seed=SEED)
        app = ServeApp(faults=plan)
        # The wildcard arms dispatch.open too: walk the deterministic
        # schedule until an open lands.
        for _ in range(50):
            opened = app.handle({"cmd": "open",
                                 "source": TEMPLATE.format(v=10)})
            if opened["ok"]:
                break
        assert opened["ok"], opened
        sid = opened["session"]
        threads = 5
        per_thread = 6 * REPEAT

        def worker(t):
            def run():
                for k in range(per_thread):
                    if (t + k) % 3 == 2:
                        request = {"cmd": "release", "session": sid}
                    else:
                        request = {"cmd": "drag", "session": sid,
                                   "shape": 0, "zone": "INTERIOR",
                                   "steps": [[2 + (t + k) % 9,
                                              1 + k % 7]]}
                    response = app.handle(request)
                    assert isinstance(response.get("ok"), bool)
            return run

        run_threads([worker(t) for t in range(threads)])
        # Drain: with the wildcard armed even render can fault, so
        # retry through the deterministic schedule — a wedged lock
        # would instead hang the join above or fail every attempt.
        for _ in range(50):
            final = app.handle({"cmd": "render", "session": sid})
            if final["ok"]:
                break
            assert final["error"]["code"] == "internal_error"
        assert final["ok"], final
        assert app.manager.poisoned_count() == 0


# ---------------------------------------------------------------------------
# Plumbing details the suite leans on
# ---------------------------------------------------------------------------

class TestFaultPlumbing:
    def test_injected_fault_is_not_a_little_error(self):
        from repro.lang.errors import LittleError
        assert not issubclass(InjectedFault, LittleError)

    def test_fail_point_tolerates_no_plan(self):
        fail_point(None, "dispatch.drag")        # must be a no-op

    def test_plan_from_env(self, monkeypatch):
        from repro.serve.faults import plan_from_env
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert plan_from_env() is None
        plan = plan_from_env({"REPRO_FAULTS": "persist.write:1",
                              "REPRO_FAULT_SEED": "7"})
        assert plan.seed == 7
        assert plan.rate_for("persist.write") == 1.0

    def test_incident_ids_are_unique_and_reported(self):
        plan = FaultPlan({"dispatch.render": 1.0}, seed=SEED)
        app = ServeApp(faults=plan)
        opened = app.handle({"cmd": "open",
                             "source": TEMPLATE.format(v=10)})
        sid = opened["session"]
        incidents = set()
        for _ in range(3):
            response = app.handle({"cmd": "render", "session": sid})
            # render faults poison too; the next loop pass heals first
            # (materialize) and then faults again at dispatch.
            assert response["error"]["code"] == "internal_error"
            incidents.add(response["error"]["incident"])
        assert len(incidents) == 3

"""Evaluation budgets: fuel / recursion-depth / value-size caps.

The budget layer (:class:`repro.lang.eval.EvalBudget`) turns the three
classic ways a program can take the interpreter down — runaway loops,
unbounded recursion, exponential allocation — into a typed
:class:`~repro.lang.errors.ResourceExhausted` with a one-line message,
raised cooperatively from inside evaluation so the caller's state is
still consistent.  These tests cover the caps themselves, the pipeline
and session wiring (rollback on exhaustion), and the CLI's
``program_limit`` diagnostics (the editor-integration contract).
"""

import pytest

from repro.cli import main
from repro.core.pipeline import SyncPipeline
from repro.core.run import run_source
from repro.editor.session import LiveSession
from repro.lang.errors import LittleError, ResourceExhausted
from repro.lang.eval import EvalBudget, budget_scope, evaluate
from repro.lang.program import parse_program

#: Tail-recursive spin: consumes fuel forever at constant depth/size.
SPIN = ("(defrec spin (\\n (spin (+ n 1))))\n"
        "(svg [(rect 'red' (spin 0) 0 5 5)])")

#: Non-tail recursion: depth grows with n (one Python frame per call).
DEEP = ("(defrec sum (\\n (if (< n 1) 0 (+ n (sum (- n 1))))))\n"
        "(svg [(rect 'red' (sum 100000) 0 5 5)])")

#: Tail-recursive list builder: allocates n cons cells at depth O(1),
#: so the *size* cap trips before fuel or depth can.
BIG = ("(defrec build (\\(n acc) (if (< n 1) acc "
       "(build (- n 1) [n | acc]))))\n"
       "(svg (build 1000000 []))")

GOOD = "(def y 20) (svg [(rect 'red' 10 y 30 40)])"


class TestEvalBudget:
    def test_fuel_cap_trips_with_kind_and_message(self):
        program = parse_program(SPIN)
        with budget_scope(EvalBudget(max_fuel=10_000)):
            with pytest.raises(ResourceExhausted) as info:
                evaluate(program.ast)
        assert info.value.kind == "fuel"
        assert info.value.limit == 10_000
        assert "\n" not in str(info.value)
        assert "10000 steps (fuel)" in str(info.value)

    def test_depth_cap_trips_before_python_recursion_limit(self):
        program = parse_program(DEEP)
        with budget_scope(EvalBudget(max_depth=500)):
            with pytest.raises(ResourceExhausted) as info:
                evaluate(program.ast)
        assert info.value.kind == "depth"

    def test_size_cap_trips_on_allocation(self):
        program = parse_program(BIG)
        with budget_scope(EvalBudget(max_size=50_000)):
            with pytest.raises(ResourceExhausted) as info:
                evaluate(program.ast)
        assert info.value.kind == "size"

    def test_resource_exhausted_is_a_little_error(self):
        # The serve/CLI layers rely on the subtyping: generic
        # LittleError handlers stay correct, specific handlers can
        # still distinguish program_limit.
        assert issubclass(ResourceExhausted, LittleError)

    def test_defaults_leave_corpus_scale_headroom(self):
        # The heaviest corpus program evaluates in ~5e4 steps; the
        # default caps are orders of magnitude above working programs.
        program = parse_program(GOOD)
        with budget_scope(EvalBudget()):
            evaluate(program.ast)

    def test_budget_scope_restores_previous(self):
        outer = EvalBudget(max_fuel=1_000_000)
        inner = EvalBudget(max_fuel=10)
        from repro.lang.eval import get_budget
        with budget_scope(outer):
            with budget_scope(inner):
                assert get_budget() is inner
            assert get_budget() is outer
        assert get_budget() is None

    def test_clone_does_not_share_counters(self):
        proto = EvalBudget(max_fuel=100)
        proto.fuel = 50
        clone = proto.clone()
        assert clone.max_fuel == 100 and clone.fuel == 0
        clone.fuel = 99
        assert proto.fuel == 50

    def test_no_budget_costs_nothing_and_caps_nothing(self):
        program = parse_program(GOOD)
        evaluate(program.ast)        # no scope armed: unchanged behavior


class TestPipelineBudget:
    def test_pipeline_budget_fails_eval_stage(self):
        with pytest.raises(ResourceExhausted):
            run_source(SPIN, budget=EvalBudget(max_fuel=10_000))

    def test_pipeline_without_budget_unaffected(self):
        pipeline = run_source(GOOD)
        assert len(pipeline.canvas) == 1

    def test_budget_resets_between_runs(self):
        # Each eval_stage call gets the full allowance: N successful
        # runs must not accumulate toward the cap.
        budget = EvalBudget(max_fuel=50_000)
        pipeline = SyncPipeline.from_source(GOOD, budget=budget)
        for _ in range(20):
            pipeline.run()
        assert budget.fuel <= budget.max_fuel


class TestSessionRollback:
    def test_edit_to_runaway_program_rolls_back(self):
        session = LiveSession(GOOD, budget=EvalBudget(max_fuel=50_000))
        before = session.source()
        with pytest.raises(ResourceExhausted):
            session.edit_source(SPIN)
        assert session.source() == before
        assert len(session.canvas) == 1

    def test_drag_exhaustion_keeps_session_alive(self):
        # Exhaustion mid-gesture restores the pre-step program and the
        # session still answers (the serve layer's rollback contract).
        # The program carries a comparison guard so the incremental
        # replay has a nonzero fuel charge to trip on.
        guarded = ("(def y 20)\n"
                   "(svg [(rect (if (< y 100) 'red' 'blue') 10 y 30 40)])")
        session = LiveSession(guarded, budget=EvalBudget(max_fuel=50_000))
        key = next(iter(session.triggers))
        session.start_drag(*key)
        session.drag(5.0, 5.0)
        before = session.source()
        session.pipeline.budget.max_fuel = 0      # next replay charge trips
        with pytest.raises(ResourceExhausted):
            session.drag(6.0, 6.0)
        session.pipeline.budget.max_fuel = 50_000
        assert session.source() == before
        session.release()
        assert len(session.canvas) == 1


class TestCliProgramLimit:
    """Satellite: ``repro check`` / ``repro run`` on adversarial
    programs exit nonzero with a one-line ``program_limit`` diagnostic
    instead of hanging."""

    @pytest.fixture
    def spin_file(self, tmp_path):
        path = tmp_path / "spin.little"
        path.write_text(SPIN, encoding="utf-8")
        return path

    @pytest.fixture
    def big_file(self, tmp_path):
        path = tmp_path / "big.little"
        path.write_text(BIG, encoding="utf-8")
        return path

    def test_check_infinite_recursion_one_line(self, spin_file, capsys):
        assert main(["check", str(spin_file),
                     "--eval-budget", "10000"]) == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith(
            f"repro check: {spin_file}: program_limit:")
        assert len(captured.err.strip().splitlines()) == 1

    def test_run_infinite_recursion_one_line(self, spin_file, capsys):
        assert main(["run", str(spin_file), "--eval-budget", "10000"]) == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith(
            f"repro run: {spin_file}: program_limit:")
        assert len(captured.err.strip().splitlines()) == 1

    def test_check_exponential_allocation_one_line(self, big_file,
                                                   capsys):
        assert main(["check", str(big_file),
                     "--eval-budget", "10000000"]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith(
            f"repro check: {big_file}: program_limit:")
        assert len(captured.err.strip().splitlines()) == 1

    def test_check_budget_zero_is_unlimited(self, tmp_path, capsys):
        path = tmp_path / "good.little"
        path.write_text(GOOD, encoding="utf-8")
        assert main(["check", str(path), "--eval-budget", "0"]) == 0
        assert "ok (1 shapes" in capsys.readouterr().out

    def test_check_good_program_under_budget_ok(self, tmp_path, capsys):
        path = tmp_path / "good.little"
        path.write_text(GOOD, encoding="utf-8")
        assert main(["check", str(path), "--eval-budget", "100000"]) == 0
        assert "ok (1 shapes" in capsys.readouterr().out

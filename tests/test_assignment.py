"""Tests for zone analysis, shape assignments and the fair/biased
heuristics (§2.3, §4.1, Appendix B.1)."""

import pytest

from repro.lang import parse_program
from repro.svg import Canvas
from repro.zones import analyze_canvas, assign_canvas


def prepared(source, heuristic="fair"):
    program = parse_program(source)
    canvas = Canvas.from_value(program.evaluate())
    return program, canvas, assign_canvas(canvas, heuristic)


class TestZoneAnalysis:
    def test_inactive_when_all_frozen(self):
        _, canvas, assignments = prepared(
            "(svg [(rect 'r' 10! 20! 30! 40!)])")
        for analysis in assignments.analyses:
            assert not analysis.active
        assert assignments.chosen == {}

    def test_partial_assignment_when_one_attr_frozen(self):
        _, canvas, assignments = prepared(
            "(def x 10) (svg [(rect 'r' x 20! 30! 40!)])")
        analysis = assignments.analysis(0, "LEFTEDGE")
        # x: {x}; width frozen -> uncontrolled, but the zone stays Active
        # with a single candidate over x alone (§6.3 slider balls rely on
        # this partial-assignment behaviour).
        assert analysis.active
        assert analysis.candidate_count == 1
        assignment = assignments.lookup(0, "LEFTEDGE")
        assert [loc.display() if loc else None
                for loc in assignment.theta] == ["x", None]

    def test_rect_interior_cross_product(self, sine_session):
        analysis = sine_session.assignments.analysis(0, "INTERIOR")
        # x: {x0, sep}; y: {y0, amp} -> 4 candidates (§4.1).
        assert analysis.candidate_count == 4

    def test_grouping_collapses_shared_locsets(self):
        # All six polygon coordinates share two locsets -> 4 candidates,
        # not 2^6.
        source = """
        (def [x0 y0 size] [10 10 50])
        (svg [(polygon 'f' 's' 1
          [[x0 y0] [(+ x0 size) y0] [x0 (+ y0 size)]])])
        """
        _, canvas, assignments = prepared(source)
        analysis = assignments.analysis(0, "INTERIOR")
        assert analysis.candidate_count == 4

    def test_candidates_align_with_features(self, sine_session):
        analysis = sine_session.assignments.analysis(0, "INTERIOR")
        for candidate in analysis.iter_candidates():
            assert len(candidate) == len(analysis.zone.features)


class TestFairHeuristic:
    def test_rotation_on_sine_wave(self, sine_session):
        """§4.1: γ(boxi) = θ_{1+(i mod 4)} — the assignment rotates through
        all four candidates."""
        seen = []
        for i in range(8):
            assignment = sine_session.assignments.lookup(i, "INTERIOR")
            seen.append(frozenset(loc.display()
                                  for loc in assignment.location_set))
        # First four assignments are all distinct...
        assert len(set(seen[:4])) == 4
        # ...and the rotation repeats with period 4.
        assert seen[:4] == seen[4:8]

    def test_first_box_gets_x0_y0(self, sine_session):
        assignment = sine_session.assignments.lookup(0, "INTERIOR")
        names = {loc.display() for loc in assignment.location_set}
        assert names == {"x0", "y0"}

    def test_all_active_zones_assigned(self, sine_session):
        active = [a for a in sine_session.assignments.analyses if a.active]
        assert len(active) == len(sine_session.assignments.chosen)


class TestBiasedHeuristic:
    """Appendix B.1: the variant program where x0' = x0 + a + a + b + b.
    The fair heuristic rotates through {x0, a, b, sep}; the biased one
    avoids a and b because they occur in twice as many traces."""

    SOURCE = """
    (def [x0 y0 w h sep amp] [50 120 20 90 30 60])
    (def n 12!{3-30})
    (def [a b] [0 0])
    (def xBase (+ x0 (+ a (+ a (+ b b)))))
    (def boxi (\\i
      (let xi (+ xBase (* i sep))
      (let yi (- y0 (* amp (sin (* i (/ twoPi n)))))
      (rect 'lightblue' xi yi w h)))))
    (svg (map boxi (zeroTo n)))
    """

    def test_fair_uses_a_and_b(self):
        _, _, assignments = prepared(self.SOURCE, "fair")
        used = set()
        for i in range(12):
            assignment = assignments.lookup(i, "INTERIOR")
            used.update(loc.display() for loc in assignment.location_set)
        assert {"a", "b"} <= used

    def test_biased_avoids_a_and_b(self):
        _, _, assignments = prepared(self.SOURCE, "biased")
        used = set()
        for i in range(12):
            assignment = assignments.lookup(i, "INTERIOR")
            used.update(loc.display() for loc in assignment.location_set)
        assert "a" not in used and "b" not in used
        assert {"x0", "sep"} <= used

    def test_biased_alternates_x0_and_sep(self):
        _, _, assignments = prepared(self.SOURCE, "biased")
        x_locs = []
        for i in range(4):
            assignment = assignments.lookup(i, "INTERIOR")
            x_loc = assignment.theta[0]
            x_locs.append(x_loc.display())
        assert set(x_locs) == {"x0", "sep"}

    def test_unknown_heuristic_rejected(self, sine_canvas):
        with pytest.raises(ValueError):
            assign_canvas(sine_canvas, "magic")


class TestCaptions:
    def test_caption_names_location_set(self, sine_session):
        assignment = sine_session.assignments.lookup(0, "INTERIOR")
        assert assignment.caption() == "Active: changes {x0, y0}"

"""Tests for the measurement harness (zone stats, pre-equations, perf)."""

import pytest

from repro.bench import (equation_totals, extract_pre_equations,
                         format_equation_table, format_loc_rows,
                         format_perf_table, format_zone_rows,
                         format_zone_table, loc_stats, loc_totals,
                         measure_example, measure_solve, prepare_corpus,
                         prepare_example, zone_stats, zone_totals,
                         corpus_zone_stats, corpus_loc_stats)


@pytest.fixture(scope="module")
def small_corpus():
    return prepare_corpus(["sine_wave_of_boxes", "three_boxes",
                           "thaw_freeze", "clique"])


@pytest.fixture(scope="module")
def sine_prepared(small_corpus):
    return small_corpus["sine_wave_of_boxes"]


class TestZoneStats:
    def test_sine_wave_counts(self, sine_prepared):
        row = zone_stats(sine_prepared)
        assert row.shape_count == 12
        assert row.zone_count == 108
        # Matches the paper's Wave Boxes row: 0 inactive, 36 with one
        # choice, 72 ambiguous with 2.67 candidates on average.
        assert row.inactive == 0
        assert row.unambiguous == 36
        assert row.ambiguous == 72
        assert row.ambiguous_avg == pytest.approx(2.67, abs=0.01)

    def test_thaw_freeze_has_inactive_zones(self, small_corpus):
        row = zone_stats(small_corpus["thaw_freeze"])
        assert row.inactive > 0

    def test_totals_sum_rows(self, small_corpus):
        rows = corpus_zone_stats(small_corpus)
        totals = zone_totals(rows)
        assert totals.zones == sum(r.zone_count for r in rows)
        assert totals.active == totals.zones - totals.inactive
        assert totals.unambiguous + totals.ambiguous == totals.active

    def test_percentages(self, small_corpus):
        totals = zone_totals(corpus_zone_stats(small_corpus))
        assert 0 <= totals.inactive_pct <= 100
        assert totals.unambiguous_pct + totals.ambiguous_pct == \
            pytest.approx(100 - totals.inactive_pct, abs=0.5)


class TestPreEquations:
    def test_extraction_counts(self, sine_prepared):
        total, unique = extract_pre_equations(sine_prepared)
        # One tuple per (active zone, controlled attribute).
        expected = sum(
            len(a.zone.features)
            for key, a in zip(sine_prepared.assignments.chosen,
                              sine_prepared.assignments.analyses)
            if a.active)
        assert total > len(unique) > 0

    def test_dedup_shares_traces(self, small_corpus):
        # three_boxes: many zones share identical (loc, trace) pairs.
        total, unique = extract_pre_equations(small_corpus["three_boxes"])
        assert total > len(unique)

    def test_fragment_classification_consistent(self, sine_prepared):
        _, unique = extract_pre_equations(sine_prepared)
        for equation in unique:
            if equation.in_a:
                from repro.trace import is_addition_only
                assert is_addition_only(equation.trace)

    def test_totals(self, small_corpus):
        totals = equation_totals(small_corpus)
        assert totals.unique == totals.outside + totals.inside
        assert totals.inside == totals.unsolved_d1 + totals.solved_d1
        assert totals.solved_d1 == totals.unsolved_d100 + totals.solved_d100
        assert totals.mean_trace_size > 1

    def test_solved_implies_in_fragment(self, small_corpus):
        for example in small_corpus.values():
            _, unique = extract_pre_equations(example)
            for equation in unique:
                if not equation.in_fragment:
                    assert not equation.solved[1.0]
                    assert not equation.solved[100.0]


class TestPerf:
    def test_measure_example(self, sine_prepared):
        times = measure_example(sine_prepared, runs=2)
        for op in ("parse", "eval", "prepare"):
            assert len(times[op].samples) == 2
            assert times[op].min_ms >= 0

    def test_measure_solve(self, sine_prepared):
        times = measure_solve(sine_prepared, repeats=1)
        assert times.samples
        assert times.avg_ms < 50   # solver is fast (<1ms in the paper)

    def test_summary_statistics(self, sine_prepared):
        times = measure_example(sine_prepared, runs=3)["eval"]
        assert times.min_ms <= times.median_ms <= times.max_ms
        assert times.min_ms <= times.avg_ms <= times.max_ms


class TestLocStats:
    def test_sine_wave(self, sine_prepared):
        row = loc_stats(sine_prepared)
        # x0 y0 w h sep amp unfrozen (n frozen).
        assert row.unfrozen == 6
        assert row.assigned == 6
        assert row.unassigned == 0
        assert row.output_locs > row.unfrozen   # prelude+frozen locs too

    def test_totals(self, small_corpus):
        rows = corpus_loc_stats(small_corpus)
        totals = loc_totals(rows)
        assert totals.assigned + totals.unassigned == totals.unfrozen


class TestReports:
    def test_zone_table_renders(self, small_corpus):
        text = format_zone_table(zone_totals(corpus_zone_stats(small_corpus)))
        assert "paper" in text and "Ambiguous" in text

    def test_equation_table_renders(self, small_corpus):
        text = format_equation_table(equation_totals(small_corpus))
        assert "Unique pre-equations" in text

    def test_perf_table_renders(self, small_corpus):
        from repro.bench import measure_corpus
        times = measure_corpus(
            {"sine_wave_of_boxes": small_corpus["sine_wave_of_boxes"]},
            runs=1)
        text = format_perf_table(times)
        assert "Solve" in text and "Prepare" in text

    def test_per_example_tables_render(self, small_corpus):
        rows = corpus_zone_stats(small_corpus)
        assert "sine_wave_of_boxes" in format_zone_rows(rows)
        lrows = corpus_loc_stats(small_corpus)
        assert "Totals" in format_loc_rows(lrows, loc_totals(lrows))

    def test_source_loc_counter(self, sine_prepared):
        assert sine_prepared.source_loc >= 7

"""Tests for value-trace equations, value contexts, similarity, and the
faithful/plausible update definitions of §3."""

import pytest

from repro.lang import evaluate, parse_expr, parse_program
from repro.lang.ast import Loc
from repro.trace import OpTrace
from repro.trace.context import (check_update, numeric_leaves, similar)
from repro.trace.equation import Equation


def find_loc(program, name):
    for loc in program.rho0:
        if loc.name == name:
            return loc
    raise AssertionError(f"no location named {name}")


class TestEquation:
    def test_satisfied(self):
        a = Loc(1, "a")
        eq = Equation(7.0, OpTrace("+", (a, a)))
        assert eq.satisfied({a: 3.5})
        assert not eq.satisfied({a: 4.0})

    def test_residual(self):
        a = Loc(1, "a")
        eq = Equation(10.0, OpTrace("*", (a, a)))
        assert eq.residual({a: 4.0}) == pytest.approx(6.0)

    def test_unknowns_excludes_frozen(self):
        a = Loc(1, "a")
        frozen = Loc(2, "f", frozen=True)
        eq = Equation(1.0, OpTrace("+", (a, frozen)))
        assert eq.unknowns() == frozenset({a})

    def test_str_uses_paper_notation(self):
        a = Loc(1, "x0")
        assert str(Equation(155.0, a)) == "155.0 = x0"

    def test_satisfied_false_on_domain_error(self):
        a = Loc(1, "a")
        eq = Equation(1.0, OpTrace("/", (a, Loc(2, "z"))))
        assert not eq.satisfied({a: 1.0, Loc(2): 0.0})


class TestNumericLeaves:
    def test_order_is_deterministic(self):
        value = evaluate(parse_expr("[[1 2] 3]"))
        leaves = numeric_leaves(value)
        assert [leaf.value for leaf in leaves] == [1.0, 2.0, 3.0]

    def test_non_numbers_skipped(self):
        value = evaluate(parse_expr("['a' 1 true [2]]"))
        assert [leaf.value for leaf in numeric_leaves(value)] == [1.0, 2.0]


class TestSimilarity:
    def test_same_program_similar(self, sine_program):
        v1 = sine_program.evaluate()
        v2 = sine_program.evaluate()
        assert similar(v1, v2)

    def test_value_change_still_similar(self, sine_program):
        # Changing x0's value keeps traces identical => similar (V' ~ V).
        x0 = find_loc(sine_program, "x0")
        v1 = sine_program.evaluate()
        v2 = sine_program.substitute({x0: 95.0}).evaluate()
        assert similar(v1, v2)

    def test_structure_change_not_similar(self, sine_program):
        # Changing n changes the number of boxes => not similar.
        n = find_loc(sine_program, "n")
        v1 = sine_program.evaluate()
        v2 = sine_program.substitute({n: 5.0}).evaluate()
        assert not similar(v1, v2)

    def test_different_strings_not_similar(self):
        assert not similar(evaluate(parse_expr("'a'")),
                           evaluate(parse_expr("'b'")))


class TestCheckUpdate:
    """The faithful/plausible definitions, on the §2.2 worked example."""

    def test_faithful_update(self, sine_program):
        # Drag box 2 (index 2) to x=155 by changing x0 to 95: every edited
        # value matches, so the update is faithful.
        output = sine_program.evaluate()
        leaves = numeric_leaves(output)
        edited_index = next(
            i for i, leaf in enumerate(leaves) if leaf.value == 110.0)
        x0 = find_loc(sine_program, "x0")
        report = check_update(sine_program, {x0: 95.0},
                              {edited_index: 155.0},
                              original_output=output)
        assert report.similar
        assert report.faithful and report.plausible

    def test_wrong_value_not_plausible(self, sine_program):
        output = sine_program.evaluate()
        leaves = numeric_leaves(output)
        edited_index = next(
            i for i, leaf in enumerate(leaves) if leaf.value == 110.0)
        x0 = find_loc(sine_program, "x0")
        report = check_update(sine_program, {x0: 60.0},
                              {edited_index: 155.0},
                              original_output=output)
        assert report.similar
        assert not report.plausible

    def test_control_flow_change_vacuously_faithful(self, sine_program):
        # §3: "(c) implies (d)" — when V' is not similar to V, the
        # implication holds vacuously but the update is not plausible.
        output = sine_program.evaluate()
        n = find_loc(sine_program, "n")
        report = check_update(sine_program, {n: 3.0}, {0: 155.0},
                              original_output=output)
        assert not report.similar
        assert report.faithful
        assert not report.plausible

    def test_partial_match_is_plausible_not_faithful(self):
        # The overconstrained square of §4.1: x and y share one location.
        program = parse_program(
            "(def xy 100) (svg [(rect 'red' xy xy 50 50)])")
        output = program.evaluate()
        leaves = numeric_leaves(output)
        x_index = 0  # attrs are ordered x, y, w, h
        y_index = 1
        xy = find_loc(program, "xy")
        # User drags by (dx, dy) = (10, 30); applying y's solution last
        # gives xy=130: y matches, x does not.
        report = check_update(program, {xy: 130.0},
                              {x_index: 110.0, y_index: 130.0},
                              original_output=output)
        assert report.similar
        assert report.plausible and not report.faithful

"""Tests for ad hoc synchronization (§7.2 goal (c)): accumulate several
output edits, then reconcile with ranked candidates."""

import pytest

from repro.lang import parse_program
from repro.synthesis.adhoc import AdHocSession

THREE_BOXES = (
    "(def [x0 sep] [40 110]) "
    "(svg (map (\\i (rect 'lightblue' (+ x0 (mult i sep)) 30! 60! 120!)) "
    "(zeroTo 3!)))")
# box x-positions: 40, 150, 260


@pytest.fixture
def session():
    return AdHocSession(parse_program(THREE_BOXES))


class TestEditAccumulation:
    def test_edit_by_index(self, session):
        index = session.edit_value(150.0, 180.0)
        assert session.edits == {index: 180.0}

    def test_edit_out_of_range(self, session):
        with pytest.raises(IndexError):
            session.edit(999, 1.0)

    def test_edit_value_missing(self, session):
        with pytest.raises(ValueError):
            session.edit_value(123456.0, 1.0)

    def test_reconcile_with_no_edits(self, session):
        assert session.reconcile() == []


class TestSingleEditReconcile:
    def test_candidates_for_one_edit(self, session):
        session.edit_value(150.0, 180.0)   # second box: x0 + sep
        updates = session.reconcile()
        changed = {update.changed_locs[0].display() for update in updates}
        assert changed == {"x0", "sep"}

    def test_all_candidates_faithful_for_one_edit(self, session):
        session.edit_value(150.0, 180.0)
        for update in session.reconcile():
            assert update.faithful

    def test_ranking_prefers_more_soft_preservation(self, session):
        # Changing x0 moves all three boxes (0 soft x-values preserved);
        # changing sep keeps box 0 fixed (more preserved).
        session.edit_value(150.0, 180.0)
        best = session.reconcile()[0]
        assert best.changed_locs[0].display() == "sep"


class TestMultiEditReconcile:
    def test_consistent_translation_found(self, session):
        """Moving both box 1 and box 2 by +30 is exactly 'x0 += 30' --
        reconciliation finds a faithful single-location update."""
        session.edit_value(40.0, 70.0)
        session.edit_value(150.0, 180.0)
        best = session.reconcile()[0]
        assert best.faithful
        assert [loc.display() for loc in best.changed_locs] == ["x0"]

    def test_consistent_respacing_found(self, session):
        """box1 -> 190, box2 -> 340 is 'sep = 150' exactly."""
        session.edit_value(150.0, 190.0)
        session.edit_value(260.0, 340.0)
        best = session.reconcile()[0]
        assert best.faithful
        assert [loc.display() for loc in best.changed_locs] == ["sep"]
        assert best.substitution[best.changed_locs[0]] == \
            pytest.approx(150.0)

    def test_interacting_edits_are_plausible_only(self, session):
        """box0 -> 80 and box1 -> 230 interact through x0: equations are
        solved independently against rho0 (design principle I of B.2), so
        no candidate satisfies both — every result is plausible, not
        faithful, exactly the §3 trade-off."""
        session.edit_value(40.0, 80.0)
        session.edit_value(150.0, 230.0)
        updates = session.reconcile()
        assert updates
        assert all(update.hard_satisfied >= 1 for update in updates)
        assert all(not update.faithful for update in updates)

    def test_inconsistent_edits_yield_plausible_best(self, session):
        """Contradictory edits to the same underlying structure cannot all
        be satisfied by small updates; ranking still returns the best
        plausible candidates."""
        session.edit_value(40.0, 100.0)    # implies x0 = 100
        session.edit_value(150.0, 150.0)   # implies x0 = 40 (unchanged)
        updates = session.reconcile()
        assert updates
        assert updates[0].hard_satisfied >= 1
        assert not updates[0].faithful

    def test_describe_mentions_location_and_scores(self, session):
        session.edit_value(150.0, 180.0)
        text = session.reconcile()[0].describe()
        assert "sep" in text and "edits matched" in text


class TestApply:
    def test_apply_commits_and_resets(self, session):
        session.edit_value(150.0, 180.0)
        best = session.reconcile()[0]
        new_program = session.apply(best)
        assert session.edits == {}
        assert "140" in new_program.unparse()   # sep is now 140
        # Subsequent edits work against the new output.
        session.edit_value(40.0, 50.0)
        assert session.reconcile()

"""Tests for the multi-session sync service (``repro.serve``).

Three invariants drive the suite:

1. **transparency** — every protocol response is byte-identical to driving
   a ``LiveSession`` directly with the same inputs, across eviction and
   rehydration;
2. **sharing** — sessions opened on the same source share one compiled
   program and recorded evaluation, without observable coupling;
3. **robustness** — malformed requests of any shape produce structured
   errors, never tracebacks.
"""

import json
import threading

import pytest

from repro.editor import LiveSession
from repro.examples import example_source
from repro.serve import (CompileCache, ServeApp, SessionManager,
                         UnknownSession, make_server)

THREE_BOXES = example_source("three_boxes")


def open_session(app, **fields):
    response = app.handle({"cmd": "open", **fields})
    assert response["ok"], response
    return response


def first_zone(session):
    return sorted(session.triggers)[0]


# ---------------------------------------------------------------------------
# Protocol happy path: byte-identical to the direct LiveSession
# ---------------------------------------------------------------------------

class TestProtocolTransparency:
    def test_open_matches_direct_session(self):
        app = ServeApp()
        mirror = LiveSession(THREE_BOXES)
        opened = open_session(app, source=THREE_BOXES)
        assert opened["svg"] == mirror.export_svg()
        assert opened["source"] == mirror.source()
        assert opened["shapes"] == len(mirror.canvas)
        assert opened["active_zones"] == mirror.active_zone_count()

    def test_drag_burst_coalesces_to_final_sample(self):
        app = ServeApp()
        mirror = LiveSession(THREE_BOXES)
        opened = open_session(app, source=THREE_BOXES)
        shape, zone = first_zone(mirror)
        dragged = app.handle({"cmd": "drag", "session": opened["session"],
                              "shape": shape, "zone": zone,
                              "steps": [[2, 1], [5, 2], [9, 4]]})
        assert dragged["ok"] and dragged["coalesced"] == 3
        mirror.start_drag(shape, zone)
        mirror.drag(9.0, 4.0)
        assert dragged["svg"] == mirror.export_svg()
        assert dragged["source"] == mirror.source()
        released = app.handle({"cmd": "release",
                               "session": opened["session"]})
        mirror.release()
        assert released["ok"]
        assert released["svg"] == mirror.export_svg()
        assert released["active_zones"] == mirror.active_zone_count()

    def test_gesture_split_across_requests_continues(self):
        app = ServeApp()
        mirror = LiveSession(THREE_BOXES)
        opened = open_session(app, source=THREE_BOXES)
        shape, zone = first_zone(mirror)
        mirror.start_drag(shape, zone)
        mirror.drag(12.0, 6.0)
        for steps in ([[3, 1]], [[8, 4], [12, 6]]):
            dragged = app.handle({"cmd": "drag",
                                  "session": opened["session"],
                                  "shape": shape, "zone": zone,
                                  "steps": steps})
            assert dragged["ok"]
        assert dragged["svg"] == mirror.export_svg()

    def test_set_slider_and_undo(self):
        source = example_source("n_boxes_slider")
        app = ServeApp()
        mirror = LiveSession(source)
        opened = open_session(app, source=source)
        assert opened["sliders"]
        name = opened["sliders"][0]["loc"]
        loc = next(l for l in mirror.sliders if l.display() == name)
        moved = app.handle({"cmd": "set_slider",
                            "session": opened["session"],
                            "loc": name, "value": 7})
        mirror.set_slider(loc, 7.0)
        assert moved["ok"]
        assert moved["svg"] == mirror.export_svg()
        undone = app.handle({"cmd": "undo", "session": opened["session"]})
        mirror.undo()
        assert undone["ok"]
        assert undone["svg"] == mirror.export_svg()
        assert undone["source"] == mirror.source()

    def test_hover_render_source(self):
        app = ServeApp()
        mirror = LiveSession(THREE_BOXES)
        opened = open_session(app, source=THREE_BOXES)
        shape, zone = first_zone(mirror)
        hovered = app.handle({"cmd": "hover", "session": opened["session"],
                              "shape": shape, "zone": zone})
        info = mirror.hover(shape, zone)
        assert hovered["ok"] and hovered["active"] == info.active
        assert hovered["caption"] == info.caption
        rendered = app.handle({"cmd": "render",
                               "session": opened["session"],
                               "include_hidden": True})
        assert rendered["svg"] == mirror.export_svg(include_hidden=True)
        src = app.handle({"cmd": "source", "session": opened["session"]})
        assert src["source"] == mirror.source()

    def test_responses_are_json_serializable(self):
        app = ServeApp()
        opened = open_session(app, example="n_boxes_slider")
        shape, zone = first_zone(app.manager.get(opened["session"]))
        for response in (
                opened,
                app.handle({"cmd": "drag", "session": opened["session"],
                            "shape": shape, "zone": zone,
                            "steps": [[4, 2]]}),
                app.handle({"cmd": "release",
                            "session": opened["session"]}),
                app.handle({"cmd": "stats"}),
                app.handle({"cmd": "nope"})):
            json.dumps(response)


# ---------------------------------------------------------------------------
# Shared compile cache
# ---------------------------------------------------------------------------

class TestCompileCache:
    def test_same_source_shares_one_compile(self):
        manager = SessionManager(max_sessions=8)
        sid_a, session_a, hit_a = manager.open(THREE_BOXES)
        sid_b, session_b, hit_b = manager.open(THREE_BOXES)
        assert (hit_a, hit_b) == (False, True)
        assert session_a.program is session_b.program
        assert manager.cache.stats()["misses"] == 1

    def test_parse_options_are_part_of_the_key(self):
        cache = CompileCache()
        cache.compile(THREE_BOXES)
        _, hit = cache.compile(THREE_BOXES, prelude_frozen=False)
        assert not hit
        _, hit = cache.compile(THREE_BOXES)
        assert hit

    def test_sessions_sharing_a_compile_stay_independent(self):
        manager = SessionManager(max_sessions=8)
        sid_a, session_a, _ = manager.open(THREE_BOXES)
        sid_b, session_b, _ = manager.open(THREE_BOXES)
        control = LiveSession(THREE_BOXES)
        shape, zone = first_zone(control)
        session_a.drag_zone(shape, zone, 25.0, 10.0)
        assert session_b.export_svg() == control.export_svg()
        assert session_a.export_svg() != session_b.export_svg()

    def test_lru_capacity_bounds_entries(self):
        cache = CompileCache(capacity=2)
        for name in ("three_boxes", "ferris_wheel", "n_boxes_slider"):
            cache.compile(example_source(name))
        assert len(cache) == 2
        _, hit = cache.compile(example_source("three_boxes"))
        assert not hit                      # the oldest entry was evicted

    def test_seeded_open_matches_cold_open(self):
        manager = SessionManager(max_sessions=8)
        _sid, seeded, _ = manager.open(THREE_BOXES)
        _sid, warm, _ = manager.open(THREE_BOXES)
        cold = LiveSession(THREE_BOXES)
        for session in (seeded, warm):
            assert session.export_svg(include_hidden=True) == \
                cold.export_svg(include_hidden=True)
            assert session.active_zone_count() == cold.active_zone_count()
            assert sorted(session.triggers) == sorted(cold.triggers)


# ---------------------------------------------------------------------------
# LRU eviction + rehydration
# ---------------------------------------------------------------------------

class TestEvictionRehydration:
    def test_lru_eviction_is_transparent(self):
        app = ServeApp(manager=SessionManager(max_sessions=2))
        control = LiveSession(THREE_BOXES)
        opened = open_session(app, source=THREE_BOXES)
        shape, zone = first_zone(control)
        app.handle({"cmd": "drag", "session": opened["session"],
                    "shape": shape, "zone": zone, "steps": [[7, 3]]})
        app.handle({"cmd": "release", "session": opened["session"]})
        control.drag_zone(shape, zone, 7.0, 3.0)
        # Push the session out of the live set.
        open_session(app, example="ferris_wheel")
        open_session(app, example="n_boxes_slider")
        stats = app.handle({"cmd": "stats"})["stats"]
        assert stats["evicted"] >= 1 and stats["live_sessions"] == 2
        # Any touch rehydrates; undo exercises restored history.
        undone = app.handle({"cmd": "undo", "session": opened["session"]})
        control.undo()
        assert undone["ok"]
        assert undone["svg"] == control.export_svg()
        assert undone["source"] == control.source()
        assert app.handle({"cmd": "stats"})["stats"]["rehydrated"] == 1

    def test_rehydration_mid_gesture_continues_the_drag(self):
        manager = SessionManager(max_sessions=1)
        app = ServeApp(manager=manager)
        control = LiveSession(example_source("ferris_wheel"))
        opened = open_session(app, example="ferris_wheel")
        shape, zone = first_zone(control)
        app.handle({"cmd": "drag", "session": opened["session"],
                    "shape": shape, "zone": zone, "steps": [[4, 2]]})
        control.start_drag(shape, zone)
        control.drag(4.0, 2.0)
        # Evict mid-gesture, then keep dragging the same zone.
        open_session(app, example="three_boxes")
        assert app.handle({"cmd": "stats"})["stats"]["evicted"] == 1
        dragged = app.handle({"cmd": "drag", "session": opened["session"],
                              "shape": shape, "zone": zone,
                              "steps": [[10, 5], [14, 8]]})
        control.drag(14.0, 8.0)
        assert dragged["ok"], dragged
        assert dragged["svg"] == control.export_svg()
        released = app.handle({"cmd": "release",
                               "session": opened["session"]})
        control.release()
        assert released["svg"] == control.export_svg()
        assert released["source"] == control.source()
        assert released["active_zones"] == control.active_zone_count()

    def test_snapshot_restore_roundtrip_with_history(self):
        session = LiveSession(example_source("n_boxes_slider"))
        loc = next(iter(session.sliders))
        session.set_slider(loc, session.sliders[loc].hi)
        shape, zone = first_zone(session)
        session.drag_zone(shape, zone, 9.0, 5.0)
        snapshot = json.loads(json.dumps(session.snapshot()))
        restored = LiveSession.restore(snapshot)
        assert restored.source() == session.source()
        assert restored.export_svg(include_hidden=True) == \
            session.export_svg(include_hidden=True)
        assert len(restored.history) == len(session.history)
        while session.history:
            session.undo()
            restored.undo()
            assert restored.source() == session.source()
            assert restored.export_svg() == session.export_svg()

    def test_snapshot_rejects_mismatched_source(self):
        from repro.editor.session import EditorError

        snapshot = LiveSession(THREE_BOXES).snapshot()
        snapshot["current"]["user"] = snapshot["current"]["user"][:-1]
        with pytest.raises(EditorError):
            LiveSession.restore(snapshot)

    def test_snapshot_limit_expires_oldest(self):
        manager = SessionManager(max_sessions=1, snapshot_limit=1)
        sid_a, _, _ = manager.open(THREE_BOXES)
        manager.open(example_source("n_boxes_slider"))   # evicts a
        manager.open(example_source("ferris_wheel"))     # evicts b, drops a
        assert manager.stats()["expired"] == 1
        with pytest.raises(UnknownSession):
            manager.get(sid_a)

    def test_close_forgets_live_and_snapshotted(self):
        manager = SessionManager(max_sessions=1)
        sid_a, _, _ = manager.open(THREE_BOXES)
        sid_b, _, _ = manager.open(example_source("ferris_wheel"))
        manager.close(sid_a)                 # snapshotted by now
        manager.close(sid_b)                 # live
        for sid in (sid_a, sid_b):
            with pytest.raises(UnknownSession):
                manager.get(sid)


# ---------------------------------------------------------------------------
# Malformed requests → structured errors
# ---------------------------------------------------------------------------

class TestProtocolErrors:
    @pytest.fixture
    def app(self):
        return ServeApp()

    def error_code(self, app, request):
        response = app.handle(request)
        assert response["ok"] is False
        assert set(response["error"]) == {"code", "message", "status"}
        return response["error"]["code"]

    def test_non_dict_requests(self, app):
        for request in (None, 17, "open", [1, 2], True):
            assert self.error_code(app, request) == "bad_request"

    def test_missing_and_unknown_command(self, app):
        assert self.error_code(app, {}) == "bad_request"
        assert self.error_code(app, {"cmd": "frobnicate"}) \
            == "unknown_command"
        assert self.error_code(app, {"cmd": 7}) == "bad_request"

    def test_open_argument_errors(self, app):
        assert self.error_code(app, {"cmd": "open"}) == "bad_request"
        assert self.error_code(
            app, {"cmd": "open", "source": "x", "example": "y"}) \
            == "bad_request"
        assert self.error_code(
            app, {"cmd": "open", "example": "no_such_example"}) \
            == "unknown_example"
        assert self.error_code(
            app, {"cmd": "open", "source": THREE_BOXES,
                  "heuristic": "greedy"}) == "bad_request"
        assert self.error_code(
            app, {"cmd": "open", "source": "(((("}) == "parse_error"
        assert self.error_code(
            app, {"cmd": "open", "source": "(svg [(rect 'r' x 1 2 3)])"}) \
            == "program_error"

    def test_unknown_session(self, app):
        assert self.error_code(app, {"cmd": "render", "session": "s404"}) \
            == "unknown_session"

    def test_drag_validation(self, app):
        opened = open_session(app, source=THREE_BOXES)
        sid = opened["session"]
        base = {"cmd": "drag", "session": sid, "shape": 0,
                "zone": "Interior"}
        assert self.error_code(app, {**base, "steps": []}) == "bad_request"
        assert self.error_code(app, {**base, "steps": [[1]]}) \
            == "bad_request"
        assert self.error_code(app, {**base, "steps": [[1, "a"]]}) \
            == "bad_request"
        assert self.error_code(app, {**base, "steps": "nope"}) \
            == "bad_request"
        assert self.error_code(
            app, {**base, "shape": "0", "steps": [[1, 2]]}) == "bad_request"
        assert self.error_code(
            app, {**base, "zone": "NoSuchZone", "steps": [[1, 2]]}) \
            == "editor_error"

    def test_conflicting_gesture_states(self, app):
        opened = open_session(app, source=THREE_BOXES)
        sid = opened["session"]
        assert self.error_code(app, {"cmd": "release", "session": sid}) \
            == "no_drag"
        shape, zone = first_zone(app.manager.get(sid))
        app.handle({"cmd": "drag", "session": sid, "shape": shape,
                    "zone": zone, "steps": [[2, 2]]})
        assert self.error_code(
            app, {"cmd": "drag", "session": sid, "shape": shape + 1,
                  "zone": zone, "steps": [[2, 2]]}) == "drag_in_progress"

    def test_slider_and_undo_errors(self, app):
        opened = open_session(app, source=THREE_BOXES)
        sid = opened["session"]
        assert self.error_code(
            app, {"cmd": "set_slider", "session": sid, "loc": "nope",
                  "value": 3}) == "no_slider"
        assert self.error_code(
            app, {"cmd": "set_slider", "session": sid, "loc": "nope",
                  "value": "3"}) == "bad_request"
        assert self.error_code(app, {"cmd": "undo", "session": sid}) \
            == "nothing_to_undo"

    def test_hover_out_of_range(self, app):
        opened = open_session(app, source=THREE_BOXES)
        sid = opened["session"]
        assert self.error_code(
            app, {"cmd": "hover", "session": sid, "shape": 99,
                  "zone": "Interior"}) == "bad_request"


# ---------------------------------------------------------------------------
# HTTP transport
# ---------------------------------------------------------------------------

class TestHttpTransport:
    @pytest.fixture
    def server(self):
        server = make_server("127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()

    def post(self, server, payload, raw=None):
        import http.client

        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            body = raw if raw is not None else json.dumps(payload)
            conn.request("POST", "/api", body,
                         {"Content-Type": "application/json"})
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def test_full_loop_over_http(self, server):
        control = LiveSession(THREE_BOXES)
        status, opened = self.post(server, {"cmd": "open",
                                            "source": THREE_BOXES})
        assert status == 200 and opened["ok"]
        assert opened["svg"] == control.export_svg()
        shape, zone = first_zone(control)
        status, dragged = self.post(
            server, {"cmd": "drag", "session": opened["session"],
                     "shape": shape, "zone": zone,
                     "steps": [[3, 1], [6, 2]]})
        control.start_drag(shape, zone)
        control.drag(6.0, 2.0)
        assert status == 200 and dragged["svg"] == control.export_svg()
        status, released = self.post(
            server, {"cmd": "release", "session": opened["session"]})
        control.release()
        assert status == 200 and released["source"] == control.source()

    def test_http_error_statuses(self, server):
        status, response = self.post(server, {"cmd": "render",
                                              "session": "s404"})
        assert status == 404
        assert response["error"]["code"] == "unknown_session"
        status, response = self.post(server, None, raw="{not json")
        assert status == 400 and response["error"]["code"] == "bad_json"
        status, response = self.post(server, {"cmd": "open"})
        assert status == 400 and response["error"]["code"] == "bad_request"

    def test_health_and_stats_probes(self, server):
        import http.client

        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("GET", "/healthz")
            assert json.loads(conn.getresponse().read())["ok"]
            conn.request("GET", "/stats")
            payload = json.loads(conn.getresponse().read())
            assert payload["ok"] and "live_sessions" in payload["stats"]
            conn.request("GET", "/nope")
            response = conn.getresponse()
            assert response.status == 404
            response.read()
        finally:
            conn.close()


# ---------------------------------------------------------------------------
# The edit verb: text edits through the protocol
# ---------------------------------------------------------------------------

class TestEdit:
    SOURCE = "(def x 10) (svg [(rect 'teal' x 20 30 40)])"

    def test_value_edit_matches_direct_session(self):
        app = ServeApp()
        mirror = LiveSession(self.SOURCE)
        opened = open_session(app, source=self.SOURCE)
        text = self.SOURCE.replace("20", "60")
        edited = app.handle({"cmd": "edit", "session": opened["session"],
                             "source": text})
        mirror.edit_source(text)
        assert edited["ok"]
        assert edited["edit"] == "value"
        assert edited["structural"] is False
        assert len(edited["changed"]) == 1
        assert edited["svg"] == mirror.export_svg()
        assert edited["source"] == mirror.source()
        assert edited["history"] == 1

    def test_value_edit_rekeys_without_touching_compile_cache(self):
        app = ServeApp()
        opened = open_session(app, source=self.SOURCE)
        before = app.handle({"cmd": "stats"})["stats"]
        for step in range(3):
            text = self.SOURCE.replace("10", str(50 + step))
            assert app.handle({"cmd": "edit", "session": opened["session"],
                               "source": text})["edit"] == "value"
        after = app.handle({"cmd": "stats"})["stats"]
        # Re-key, not re-seed: the shared compile cache saw no new
        # compiles and no hits — the session was edited in place.
        assert after["compile_cache"]["misses"] == \
            before["compile_cache"]["misses"]
        assert after["compile_cache"]["hits"] == \
            before["compile_cache"]["hits"]
        assert after["edits"] == before["edits"] + 3
        assert after["session_edits"][opened["session"]] == {"value": 3}

    def test_structural_edit_reported_and_counted(self):
        app = ServeApp()
        opened = open_session(app, source=self.SOURCE)
        edited = app.handle({
            "cmd": "edit", "session": opened["session"],
            "source": "(def x 10) (svg [(rect 'teal' x 20 30 40) "
                      "(circle 'red' 5 6 7)])"})
        assert edited["ok"] and edited["edit"] == "structural"
        assert edited["structural"] is True and edited["shapes"] == 2
        stats = app.handle({"cmd": "stats"})["stats"]
        assert stats["session_edits"][opened["session"]] == \
            {"structural": 1}

    def test_edit_then_drag_matches_direct_session(self):
        app = ServeApp()
        mirror = LiveSession(self.SOURCE)
        opened = open_session(app, source=self.SOURCE)
        text = self.SOURCE.replace("10", "25")
        app.handle({"cmd": "edit", "session": opened["session"],
                    "source": text})
        mirror.edit_source(text)
        shape, zone = first_zone(mirror)
        dragged = app.handle({"cmd": "drag", "session": opened["session"],
                              "shape": shape, "zone": zone,
                              "steps": [[4, 3]]})
        mirror.start_drag(shape, zone)
        mirror.drag(4.0, 3.0)
        assert dragged["svg"] == mirror.export_svg()

    def test_edit_survives_eviction_and_rehydration(self):
        app = ServeApp(manager=SessionManager(max_sessions=1))
        opened = open_session(app, source=self.SOURCE)
        text = self.SOURCE.replace("20", "90")
        app.handle({"cmd": "edit", "session": opened["session"],
                    "source": text})
        open_session(app, example="three_boxes")      # evicts the first
        rendered = app.handle({"cmd": "render",
                               "session": opened["session"]})
        mirror = LiveSession(self.SOURCE)
        mirror.edit_source(text)
        assert rendered["svg"] == mirror.export_svg()
        # ... and the rehydrated session can keep editing and undoing.
        undone = app.handle({"cmd": "undo", "session": opened["session"]})
        assert undone["svg"] == LiveSession(self.SOURCE).export_svg()

    def test_parse_error_leaves_session_intact(self):
        app = ServeApp()
        opened = open_session(app, source=self.SOURCE)
        bad = app.handle({"cmd": "edit", "session": opened["session"],
                          "source": "(svg [(rect"})
        assert not bad["ok"] and bad["error"]["code"] == "parse_error"
        rendered = app.handle({"cmd": "render",
                               "session": opened["session"]})
        assert rendered["ok"] and rendered["svg"] == opened["svg"]

    def test_edit_missing_source_field_is_bad_request(self):
        app = ServeApp()
        opened = open_session(app, source=self.SOURCE)
        response = app.handle({"cmd": "edit",
                               "session": opened["session"]})
        assert response["error"]["code"] == "bad_request"

    def test_snapshot_expiry_drops_edit_counters(self):
        app = ServeApp(manager=SessionManager(max_sessions=1,
                                              snapshot_limit=1))
        first = open_session(app, source=self.SOURCE)
        app.handle({"cmd": "edit", "session": first["session"],
                    "source": self.SOURCE.replace("10", "11")})
        open_session(app, example="three_boxes")    # evicts first
        open_session(app, example="ferris_wheel")   # expires first's snap
        stats = app.handle({"cmd": "stats"})["stats"]
        assert stats["expired"] == 1
        assert first["session"] not in stats["session_edits"]

    def test_close_drops_edit_counters(self):
        app = ServeApp()
        opened = open_session(app, source=self.SOURCE)
        app.handle({"cmd": "edit", "session": opened["session"],
                    "source": self.SOURCE.replace("10", "11")})
        app.handle({"cmd": "close", "session": opened["session"]})
        stats = app.handle({"cmd": "stats"})["stats"]
        assert opened["session"] not in stats["session_edits"]
        assert stats["edits"] == 1        # the aggregate count remains

"""Tests for bulk SVG ingestion (`repro import`).

Every document in tests/svg_corpus must convert AND round-trip verify
through the one shared run path; every document in
tests/svg_corpus/quarantine must fail with its intended one-line
classified diagnostic — never a traceback, never a partial file.
"""

from pathlib import Path

import pytest

from repro.bench import format_ingest_table
from repro.cli import main
from repro.svg.ingest import (FAILURE_CLASSES, IngestReport, ingest_directory,
                              ingest_file, ingest_text)

CORPUS = Path(__file__).parent / "svg_corpus"
QUARANTINE = CORPUS / "quarantine"

GOOD_FILES = sorted(CORPUS.glob("*.svg"))
QUARANTINE_FILES = sorted(QUARANTINE.glob("*.svg"))

EXPECTED_QUARANTINE_CLASSES = {
    "apostrophe_string.svg": "string",
    "bad_arc_flag.svg": "path",
    "bad_viewbox.svg": "root",
    "broken_xml.svg": "xml",
    "empty_document.svg": "no-shapes",
    "infinite_coordinate.svg": "number",
    "nan_radius.svg": "number",
    "not_svg.svg": "not-svg",
    "odd_points.svg": "points",
    "skew_transform.svg": "transform",
    "truncated_path.svg": "path",
}


class TestCorpus:
    def test_corpus_is_large_enough(self):
        assert len(GOOD_FILES) >= 15

    @pytest.mark.parametrize(
        "path", GOOD_FILES, ids=[p.name for p in GOOD_FILES])
    def test_every_corpus_document_verifies(self, path):
        result = ingest_file(path)
        assert result.ok, result.diagnostic()
        assert result.shapes >= 1
        assert result.zones >= 1
        assert result.source is not None

    @pytest.mark.parametrize(
        "path", QUARANTINE_FILES, ids=[p.name for p in QUARANTINE_FILES])
    def test_every_quarantine_document_is_classified(self, path):
        result = ingest_file(path)
        assert not result.ok
        assert result.failure == EXPECTED_QUARANTINE_CLASSES[path.name]
        assert result.failure in FAILURE_CLASSES
        assert result.source is None
        diagnostic = result.diagnostic()
        assert diagnostic.startswith(f"{path.name}: {result.failure}: ")
        assert "\n" not in diagnostic
        assert "Traceback" not in diagnostic

    def test_quarantine_covers_many_failure_classes(self):
        classes = {EXPECTED_QUARANTINE_CLASSES[p.name]
                   for p in QUARANTINE_FILES}
        assert len(classes) >= 8


class TestIngestApi:
    def test_ingest_directory_orders_and_counts(self):
        report = ingest_directory(CORPUS)
        assert len(report.results) == len(GOOD_FILES)
        assert [r.name for r in report.results] == \
            [p.name for p in GOOD_FILES]
        assert len(report.ok) == len(GOOD_FILES)
        assert not report.failed

    def test_quarantine_counters(self):
        report = ingest_directory(QUARANTINE)
        counters = report.counters()
        assert counters["number"] == 2
        assert counters["path"] == 2
        assert sum(counters.values()) == len(QUARANTINE_FILES)

    def test_ingest_text_ok(self):
        result = ingest_text(
            '<svg><rect x="1" y="2" width="3" height="4"/></svg>',
            name="doc.svg")
        assert result.ok
        assert result.diagnostic() == \
            "doc.svg: ok (1 shapes, 9 zones, 4 constants)"

    def test_internal_errors_never_escape(self):
        # Whatever the input, ingest_text returns a classified result.
        for text in ["", "<", "<svg>", "<svg><rect width='x'/></svg>"]:
            result = ingest_text(text, name="t.svg")
            assert not result.ok
            assert result.failure in FAILURE_CLASSES

    def test_report_table_lists_every_document(self):
        report = ingest_directory(QUARANTINE)
        table = format_ingest_table(report)
        for path in QUARANTINE_FILES:
            assert path.name in table
        assert "quarantined[number]: 2" in table


class TestImportCli:
    def test_single_file_import_writes_output(self, tmp_path, capsys):
        out = tmp_path / "logo.little"
        code = main(["import", str(GOOD_FILES[0]), "-o", str(out)])
        assert code == 0
        assert out.exists()
        assert "ok" not in capsys.readouterr().err

    def test_single_file_failure_is_one_line_and_writes_nothing(
            self, tmp_path, capsys):
        out = tmp_path / "bad.little"
        code = main(["import", str(QUARANTINE / "nan_radius.svg"),
                     "-o", str(out)])
        assert code == 1
        assert not out.exists()
        err = capsys.readouterr().err.strip()
        assert err.count("\n") == 0
        assert "number:" in err

    def test_bulk_import_summary(self, capsys):
        code = main(["import", "--bulk", str(CORPUS)])
        assert code == 0
        output = capsys.readouterr().out
        assert f"{len(GOOD_FILES)} ok, 0 quarantined" in output

    def test_bulk_import_strict_fails_on_quarantine(self, tmp_path, capsys):
        mixed = tmp_path / "mixed"
        mixed.mkdir()
        (mixed / "good.svg").write_text(
            '<svg><rect x="1" y="2" width="3" height="4"/></svg>',
            encoding="utf-8")
        (mixed / "bad.svg").write_text(
            '<svg><circle cx="1" cy="2" r="NaN"/></svg>', encoding="utf-8")
        assert main(["import", "--bulk", str(mixed)]) == 0
        assert main(["import", "--bulk", str(mixed), "--strict"]) == 1

    def test_bulk_import_out_dir_writes_only_verified(self, tmp_path):
        out_dir = tmp_path / "programs"
        code = main(["import", "--bulk", str(QUARANTINE),
                     "--out-dir", str(out_dir)])
        assert code == 1  # zero documents verified
        assert not list(out_dir.glob("*.little"))

    def test_bulk_import_missing_directory(self, capsys):
        assert main(["import", "--bulk", "/nonexistent-dir"]) == 1
        assert "not a directory" in capsys.readouterr().err

"""Corpus-wide pipeline invariants: for every example, the zone →
analysis → assignment → trigger chain is internally consistent."""

import pytest

from repro.bench.corpus import prepare_example
from repro.examples import example_names
from repro.trace.trace import locs
from repro.zones import compute_triggers, zones_for_canvas

ALL_NAMES = example_names()


@pytest.fixture(scope="module")
def prepared_cache():
    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = prepare_example(name)
        return cache[name]

    return get


@pytest.mark.parametrize("name", ALL_NAMES)
def test_analyses_cover_every_zone(name, prepared_cache):
    example = prepared_cache(name)
    zone_keys = {(zone.shape_index, zone.name)
                 for zone in zones_for_canvas(example.canvas)}
    analysis_keys = {(a.zone.shape_index, a.zone.name)
                     for a in example.assignments.analyses}
    assert zone_keys == analysis_keys


@pytest.mark.parametrize("name", ALL_NAMES)
def test_chosen_assignments_respect_locsets(name, prepared_cache):
    """Each chosen location must be a candidate for its feature, and must
    be unfrozen."""
    example = prepared_cache(name)
    for assignment in example.assignments.chosen.values():
        analysis = example.assignments.analysis(
            assignment.zone.shape_index, assignment.zone.name)
        for loc, locset in zip(assignment.theta, analysis.locsets):
            if loc is None:
                assert locset == ()
            else:
                assert loc in locset
                assert not loc.frozen


@pytest.mark.parametrize("name", ALL_NAMES)
def test_triggers_only_bind_assigned_locations(name, prepared_cache):
    """Firing any trigger may only change locations the hover caption
    advertised (the yellow-highlight contract of §5)."""
    example = prepared_cache(name)
    triggers = compute_triggers(example.canvas, example.assignments,
                                example.program.rho0)
    for key, trigger in triggers.items():
        assignment = example.assignments.chosen[key]
        result = trigger(3.0, 7.0)
        assert set(result.bindings) <= set(assignment.location_set)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_locsets_derive_from_attribute_traces(name, prepared_cache):
    """Every per-feature locset equals Locs of the attribute's trace."""
    example = prepared_cache(name)
    for analysis in example.assignments.analyses:
        shape = example.canvas[analysis.zone.shape_index]
        for feature, locset in zip(analysis.zone.features,
                                   analysis.locsets):
            number = shape.get_num(feature.ref)
            assert frozenset(locset) == locs(number.trace)

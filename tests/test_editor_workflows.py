"""End-to-end editor workflows combining drags, sliders, undo, drawing
and re-preparation — the §6 usage patterns as integration tests."""

import pytest

from repro.editor import LiveSession, add_shape
from repro.examples import example_source
from repro.lang import parse_program


class TestMultiStepEditing:
    def test_drag_then_slider_then_drag(self, sine_session):
        session = sine_session
        session.drag_zone(0, "INTERIOR", 10.0, 0.0)       # x0 -> 60
        loc = next(iter(session.sliders))
        session.set_slider(loc, 6.0)                       # n -> 6
        assert len(session.canvas) == 6
        session.drag_zone(0, "INTERIOR", -10.0, 0.0)      # x0 -> 50
        assert "(def [x0 y0 w h sep amp] [50 120 20 90 30 60])" in \
            session.source()

    def test_undo_stack_unwinds_in_order(self, sine_session):
        session = sine_session
        states = [session.source()]
        session.drag_zone(0, "INTERIOR", 10.0, 0.0)
        states.append(session.source())
        session.drag_zone(0, "INTERIOR", 5.0, 0.0)
        for expected in reversed(states):
            session.undo()
            assert session.source() == expected

    def test_consecutive_drags_compose(self, three_boxes_session):
        session = three_boxes_session
        session.drag_zone(0, "INTERIOR", 10.0, 0.0)
        session.drag_zone(0, "INTERIOR", 10.0, 0.0)
        assert session.canvas[0].simple_num("x").value == 60.0

    def test_resize_then_move_keeps_relationships(self,
                                                  three_boxes_session):
        session = three_boxes_session
        session.drag_zone(0, "RIGHTEDGE", 15.0, 0.0)     # w: 60 -> 75
        widths = {shape.simple_num("width").value
                  for shape in session.canvas}
        assert widths == {75.0}
        session.drag_zone(0, "INTERIOR", 5.0, 0.0)
        widths_after = {shape.simple_num("width").value
                        for shape in session.canvas}
        assert widths_after == {75.0}


class TestDrawingWorkflow:
    def test_draw_then_live_manipulate(self):
        program = parse_program(
            "(def [x0 sep] [40 110]) "
            "(svg (map (\\i (rect 'lightblue' (+ x0 (mult i sep)) "
            "30! 60! 120!)) (zeroTo 3!)))")
        program = add_shape(program, "rect", fill="plum",
                            x=40, y=200, width=60, height=40)
        session = LiveSession(program=program)
        assert len(session.canvas) == 4
        new_rect = session.canvas[3]
        session.drag_zone(new_rect.index, "BOTRIGHTCORNER", 20.0, 10.0)
        resized = session.canvas[3]
        assert resized.simple_num("width").value == 80.0
        assert resized.simple_num("height").value == 50.0

    def test_drawn_shape_participates_in_stats(self):
        from repro.zones import assign_canvas
        program = parse_program("(svg [(rect 'r' 1! 2! 3! 4!)])")
        program = add_shape(program, "circle", cx=10, cy=10, r=5)
        session = LiveSession(program=program)
        # The frozen rect contributes nothing; the circle's 3 zones with
        # fresh unfrozen literals are all active.
        assert session.active_zone_count() == 3


class TestFreezeWorkflow:
    """§6.1 'Dealing with Ambiguities': start unfrozen, then freeze."""

    def test_freezing_redirects_assignments(self):
        before = LiveSession(
            "(def [x0 y0 w h] [10 20 30 40]) "
            "(svg [(rect 'r' x0 y0 w h)])")
        names_before = {
            loc.display()
            for a in before.assignments.chosen.values()
            for loc in a.location_set}
        assert names_before == {"x0", "y0", "w", "h"}

        after = LiveSession(
            "(def [x0 y0 w h] [10! 20! 30 40]) "
            "(svg [(rect 'r' x0 y0 w h)])")
        names_after = {
            loc.display()
            for a in after.assignments.chosen.values()
            for loc in a.location_set}
        assert names_after == {"w", "h"}

    def test_interior_inactive_after_freezing_position(self):
        session = LiveSession(
            "(def [x0 y0 w h] [10! 20! 30 40]) "
            "(svg [(rect 'r' x0 y0 w h)])")
        assert not session.hover(0, "INTERIOR").active


class TestSliderEdgeCases:
    def test_slider_at_bounds(self, sine_session):
        loc = next(iter(sine_session.sliders))
        sine_session.set_slider(loc, 3.0)
        assert len(sine_session.canvas) == 3
        sine_session.set_slider(loc, 30.0)
        assert len(sine_session.canvas) == 30

    def test_slider_state_tracks_program(self, sine_session):
        loc = next(iter(sine_session.sliders))
        sine_session.set_slider(loc, 7.0)
        assert sine_session.sliders[loc].value == 7.0
        assert sine_session.sliders[loc].fraction == \
            pytest.approx((7 - 3) / 27)

    def test_user_defined_slider_clamps_during_drag(self):
        """Dragging a little slider's ball past its end clamps the target
        value (Figure 7's clamp) while the ball solution tracks the
        mouse."""
        session = LiveSession(
            "(def [n shapes] (numSlider 100! 300! 50! 0! 10! 'n = ' 4)) "
            "(svg (append shapes [(circle 'red' 200 200 (+ 20! n))]))")
        balls = [shape for shape in session.canvas.shapes_of_kind("circle")
                 if shape.hidden
                 and shape.simple_num("r").value == 10.0]
        result = session.drag_zone(balls[-1].index, "INTERIOR", 500.0, 0.0)
        circle = session.canvas.visible_shapes()[0]
        # target value clamped to the max of 10 -> radius 30.
        assert circle.simple_num("r").value == 30.0

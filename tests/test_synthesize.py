"""Tests for SynthesizePlausible (Appendix B.2)."""

import pytest

from repro.lang.ast import Loc
from repro.synthesis import synthesize_plausible
from repro.trace import OpTrace
from repro.trace.equation import Equation


@pytest.fixture
def setup():
    a, b, c = Loc(1, "a"), Loc(2, "b"), Loc(3, "c")
    rho0 = {a: 2.0, b: 10.0, c: 4.0}
    return a, b, c, rho0


class TestSingleEquation:
    def test_enumerates_one_candidate_per_location(self, setup):
        a, b, _, rho0 = setup
        eq = Equation(30.0, OpTrace("*", (a, b)))
        candidates = synthesize_plausible(rho0, [eq])
        assert {c.choice[0] for c in candidates} == {a, b}

    def test_solutions_satisfy_equation(self, setup):
        a, b, _, rho0 = setup
        eq = Equation(30.0, OpTrace("*", (a, b)))
        for candidate in synthesize_plausible(rho0, [eq]):
            assert eq.satisfied(candidate.substitution)

    def test_unsolvable_choice_dropped(self, setup):
        a, b, c, rho0 = setup
        rho0 = {**rho0, c: 0.0}
        # a * c with c = 0: solving for a fails, solving for c succeeds.
        eq = Equation(8.0, OpTrace("*", (a, c)))
        candidates = synthesize_plausible(rho0, [eq])
        assert {cand.choice[0] for cand in candidates} == {c}

    def test_frozen_locations_not_candidates(self, setup):
        a, _, _, rho0 = setup
        frozen = Loc(9, "f", frozen=True)
        rho0 = {**rho0, frozen: 1.0}
        eq = Equation(5.0, OpTrace("+", (a, frozen)))
        candidates = synthesize_plausible(rho0, [eq])
        assert {c.choice[0] for c in candidates} == {a}

    def test_no_unknowns_returns_empty(self, setup):
        _, _, _, rho0 = setup
        frozen = Loc(9, "f", frozen=True)
        rho0 = {**rho0, frozen: 1.0}
        eq = Equation(5.0, frozen)
        assert synthesize_plausible(rho0, [eq]) == []


class TestMultipleEquations:
    def test_cross_product(self, setup):
        a, b, c, rho0 = setup
        eq1 = Equation(15.0, OpTrace("+", (a, b)))
        eq2 = Equation(8.0, OpTrace("*", (c, Loc(1, "a"))))
        candidates = synthesize_plausible(rho0, [eq1, eq2])
        assert len(candidates) == 4   # {a,b} x {c,a}

    def test_later_bindings_shadow(self, setup):
        a, b, _, rho0 = setup
        # Both equations solve for a; the second equation's binding wins.
        eq1 = Equation(5.0, a)
        eq2 = Equation(7.0, a)
        candidates = synthesize_plausible(rho0, [eq1, eq2])
        assert len(candidates) == 1
        assert candidates[0].substitution[a] == 7.0
        # Plausible: satisfies eq2 but not eq1.
        assert eq2.satisfied(candidates[0].substitution)
        assert not eq1.satisfied(candidates[0].substitution)

    def test_max_candidates_cap(self, setup):
        a, b, c, rho0 = setup
        eq = Equation(16.0, OpTrace("+", (a, OpTrace("+", (b, c)))))
        candidates = synthesize_plausible(rho0, [eq, eq, eq],
                                          max_candidates=5)
        assert len(candidates) <= 5

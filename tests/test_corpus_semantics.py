"""Per-example semantic spot checks: each corpus program produces the
geometry its paper description promises."""

import math

import pytest

from repro.editor import LiveSession
from repro.examples import example_source, load_example
from repro.svg import Canvas, canvas_bbox


def canvas_of(name):
    return Canvas.from_value(load_example(name).evaluate())


class TestWaveFamilies:
    def test_sine_wave_y_oscillates(self):
        canvas = canvas_of("sine_wave_of_boxes")
        ys = [shape.simple_num("y").value for shape in canvas]
        assert max(ys) > 120 > min(ys)   # oscillates about y0

    def test_sine_wave_equal_spacing(self):
        canvas = canvas_of("sine_wave_of_boxes")
        xs = [shape.simple_num("x").value for shape in canvas]
        gaps = {round(b - a, 9) for a, b in zip(xs, xs[1:])}
        assert gaps == {30.0}

    def test_wave_grid_row_count(self):
        canvas = canvas_of("wave_boxes_grid")
        assert len(canvas) == 5 * 8

    def test_three_boxes_aligned(self):
        canvas = canvas_of("three_boxes")
        assert len({shape.simple_num("y").value for shape in canvas}) == 1


class TestLogos:
    def test_sns_logo_square_plus_three_polygons(self):
        canvas = canvas_of("sketch_n_sketch_logo")
        kinds = [shape.kind for shape in canvas]
        assert kinds.count("polygon") == 3 and kinds.count("rect") == 1

    def test_logo_sizes_three_instances(self):
        canvas = canvas_of("logo_sizes")
        assert len(canvas.shapes_of_kind("polygon")) == 9

    def test_elm_logo_seven_pieces(self):
        canvas = canvas_of("elm_logo")
        assert len(canvas) == 7

    def test_botanic_leaf_is_mirrored(self):
        """Both halves of the leaf derive from the shared width w: the
        path's x extremes are equidistant from the axis cx = 200."""
        canvas = canvas_of("botanic_garden_logo")
        leaf = canvas.shapes_of_kind("path")[0]
        xs = [n.value for n, axis in zip(leaf.path_numbers(),
                                         leaf.path_coordinate_axes())
              if axis == 0]
        assert max(xs) - 200 == pytest.approx(200 - min(xs))


class TestFlags:
    def test_chicago_flag_structure(self):
        canvas = canvas_of("chicago_flag")
        assert len(canvas.shapes_of_kind("polygon")) == 4   # stars
        assert len(canvas.shapes_of_kind("rect")) == 3      # box + stripes

    def test_chicago_stars_evenly_spaced(self):
        canvas = canvas_of("chicago_flag")
        stars = canvas.shapes_of_kind("polygon")
        centers = []
        for star in stars:
            xs = [p[0].value for p in star.points()]
            centers.append((max(xs) + min(xs)) / 2)
        gaps = [round(b - a, 6) for a, b in zip(centers, centers[1:])]
        assert len(set(gaps)) == 1

    def test_us13_flag_counts(self):
        canvas = canvas_of("us13_flag")
        assert len(canvas.shapes_of_kind("rect")) == 14     # stripes+canton
        assert len(canvas.shapes_of_kind("polygon")) == 13  # stars

    def test_us50_flag_star_count(self):
        canvas = canvas_of("us50_flag")
        assert len(canvas.shapes_of_kind("polygon")) == 20 + 12


class TestRecursiveDesigns:
    def test_fractal_tree_segment_count(self):
        # depth 5 binary tree: 2^6 - 1 segments.
        canvas = canvas_of("fractal_tree")
        assert len(canvas.shapes_of_kind("line")) == 63

    def test_hilbert_point_count(self):
        # Order-3 Hilbert curve: 4^3 = 64 points.
        canvas = canvas_of("hilbert_curve")
        assert len(canvas[0].points()) == 64

    def test_hilbert_slider_rescales(self):
        session = LiveSession(example_source("hilbert_curve"))
        loc = next(iter(session.sliders))
        session.set_slider(loc, 4)
        assert len(session.canvas[0].points()) == 256

    def test_clique_edge_count(self):
        canvas = canvas_of("clique")
        assert len(canvas.shapes_of_kind("line")) == 6 * 5 // 2
        assert len(canvas.shapes_of_kind("circle")) == 6


class TestWidgetExamples:
    def test_sliders_example_counts(self):
        canvas = canvas_of("sliders")
        # Four widgets x 5 (or 3 for bool) shapes, all hidden.
        assert all(shape.hidden for shape in canvas
                   if shape.index < 16)

    def test_tile_pattern_grid_size(self):
        canvas = canvas_of("tile_pattern")
        visible = canvas.visible_shapes()
        # xySlider current value (4, 3) -> 12 tiles.
        assert len(visible) == 12

    def test_interface_buttons_toggle(self):
        canvas = canvas_of("interface_buttons")
        # b1/b2 true (0.25 < 0.5): grid and frame shown; b3 false: no dots.
        assert len(canvas.shapes_of_kind("line")) >= 6
        assert not any(
            shape.kind == "circle" and not shape.hidden
            and shape.node.attr("fill").value == "indianred"
            for shape in canvas)

    def test_color_picker_swatch_rgba(self):
        session = LiveSession(example_source("color_picker"))
        assert "rgba(200,80,150,1)" in session.export_svg()


class TestColorWheel:
    def test_fill_zones_active(self):
        session = LiveSession(example_source("color_wheel"))
        fills = [key for key in session.triggers if key[1] == "FILL"]
        assert len(fills) == 8

    def test_sector_fill_drag(self):
        session = LiveSession(example_source("color_wheel"))
        before = session.export_svg()
        session.drag_zone(0, "FILL", 100.0, 0.0)
        assert session.export_svg() != before


class TestGeometry:
    def test_pie_chart_wedges_cover_circle(self):
        canvas = canvas_of("pie_chart")
        assert len(canvas.shapes_of_kind("path")) == 5

    def test_solar_system_planets_on_orbits(self):
        canvas = canvas_of("solar_system")
        circles = canvas.shapes_of_kind("circle")
        planets = circles[-4:]
        for index, planet in enumerate(planets):
            cx = planet.simple_num("cx").value
            cy = planet.simple_num("cy").value
            radius = math.hypot(cx - 300, cy - 220)
            assert radius == pytest.approx(46 * (index + 1), abs=1e-6)

    def test_stars_have_increasing_point_counts(self):
        canvas = canvas_of("stars")
        counts = [len(shape.points()) for shape in canvas]
        assert counts == [8, 10, 12, 14, 16]

    def test_matrix_transform_is_rotation(self):
        # [0.8 -0.6; 0.6 0.8] is orthogonal: lengths preserved.
        canvas = canvas_of("matrix_transformations")
        transformed = canvas.shapes_of_kind("polygon")[1]
        points = [(p[0].value, p[1].value) for p in transformed.points()]
        for x, y in points:
            assert math.hypot(x - 220, y - 160) == \
                pytest.approx(math.hypot(60, 60), rel=1e-9)

    def test_group_box_spans_design(self):
        canvas = canvas_of("chicago_flag")
        group_box = canvas[0]
        assert group_box.node.attr("fill").value == "transparent"
        box = canvas_bbox(canvas.visible_shapes())
        from repro.svg import shape_bbox
        assert shape_bbox(group_box).contains(*box.center)

"""Unit tests for the interactivity-success harness."""

import pytest

from repro.bench import interactivity_stats
from repro.bench.corpus import prepare_corpus, prepare_example


@pytest.fixture(scope="module")
def totals():
    return interactivity_stats(
        prepare_corpus(["three_boxes", "thaw_freeze", "ferris_wheel"]))


def test_zone_accounting(totals):
    assert totals.active == totals.zones - totals.inactive
    for delta in (1.0, 100.0):
        assert (totals.full[delta] + totals.partial[delta]
                + totals.none[delta]) == totals.active


def test_three_boxes_all_succeed():
    totals = interactivity_stats(
        {"three_boxes": prepare_example("three_boxes")})
    # Every attribute trace is x0 + additions or a bare literal: all 27
    # zones are active and solve at both offsets.
    assert totals.inactive == 0
    assert totals.full[1.0] == 27
    assert totals.full[100.0] == 27


def test_frozen_shapes_count_inactive():
    totals = interactivity_stats(
        {"thaw_freeze": prepare_example("thaw_freeze")})
    assert totals.inactive > 0


def test_ferris_trig_zones_degrade_at_large_offsets():
    """ferris_task_before has an *unfrozen* rotAngle inside cos/sin: d=100
    pushes those bounded traces out of range, so strictly fewer zones
    fully succeed than at d=1 — the §5.2.2 rotation-angle discussion."""
    totals = interactivity_stats(
        {"ferris_task_before": prepare_example("ferris_task_before")})
    assert totals.full[100.0] < totals.full[1.0]


def test_success_rate_bounds(totals):
    assert 0.0 <= totals.success_rate(1.0) <= 1.0
    assert 0.0 <= totals.success_rate(100.0) <= 1.0

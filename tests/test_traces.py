"""Tests for the trace datatype and operations (§2.1, §3)."""

import math

import pytest

from repro.lang.ast import Loc
from repro.lang import parse_program, to_pylist
from repro.trace import (OpTrace, all_locs, count_loc_occurrences, eval_trace,
                         format_trace, is_addition_only, locs, occurrences,
                         trace_key, trace_size)


def make_locs():
    a = Loc(1, "a")
    b = Loc(2, "b")
    frozen = Loc(3, "f", frozen=True)
    return a, b, frozen


class TestLocs:
    def test_leaf(self):
        a, _, _ = make_locs()
        assert locs(a) == frozenset({a})

    def test_frozen_excluded(self):
        _, _, frozen = make_locs()
        assert locs(frozen) == frozenset()

    def test_all_locs_includes_frozen(self):
        a, _, frozen = make_locs()
        trace = OpTrace("+", (a, frozen))
        assert all_locs(trace) == frozenset({a, frozen})

    def test_nested(self):
        a, b, _ = make_locs()
        trace = OpTrace("*", (OpTrace("+", (a, b)), a))
        assert locs(trace) == frozenset({a, b})

    def test_loc_equality_by_ident(self):
        assert Loc(5) == Loc(5, "named")
        assert hash(Loc(5)) == hash(Loc(5, "named"))


class TestOccurrences:
    def test_counts_repeats(self):
        a, b, _ = make_locs()
        trace = OpTrace("+", (a, OpTrace("+", (a, b))))
        assert occurrences(trace, a) == 2
        assert occurrences(trace, b) == 1

    def test_absent(self):
        a, b, _ = make_locs()
        assert occurrences(a, b) == 0

    def test_count_loc_occurrences_across_traces(self):
        a, b, _ = make_locs()
        counts = count_loc_occurrences([a, OpTrace("+", (a, b))])
        assert counts[a] == 2 and counts[b] == 1


class TestTraceSize:
    def test_leaf_size(self):
        a, _, _ = make_locs()
        assert trace_size(a) == 1

    def test_compound(self):
        a, b, _ = make_locs()
        assert trace_size(OpTrace("+", (a, OpTrace("*", (a, b))))) == 5


class TestTraceKey:
    def test_equal_structures_equal_keys(self):
        a, b, _ = make_locs()
        t1 = OpTrace("+", (a, b))
        t2 = OpTrace("+", (Loc(1), Loc(2)))
        assert trace_key(t1) == trace_key(t2)

    def test_different_ops_different_keys(self):
        a, b, _ = make_locs()
        assert trace_key(OpTrace("+", (a, b))) != \
            trace_key(OpTrace("*", (a, b)))

    def test_key_is_hashable(self):
        a, b, _ = make_locs()
        {trace_key(OpTrace("+", (a, b)))}


class TestIsAdditionOnly:
    def test_pure_addition(self):
        a, b, _ = make_locs()
        assert is_addition_only(OpTrace("+", (a, OpTrace("+", (a, b)))))

    def test_leaf(self):
        a, _, _ = make_locs()
        assert is_addition_only(a)

    def test_multiplication_rejected(self):
        a, b, _ = make_locs()
        assert not is_addition_only(OpTrace("*", (a, b)))

    def test_nested_non_plus_rejected(self):
        a, b, _ = make_locs()
        assert not is_addition_only(OpTrace("+", (a, OpTrace("sin", (b,)))))


class TestEvalTrace:
    def test_leaf(self):
        a, _, _ = make_locs()
        assert eval_trace(a, {a: 5.0}) == 5.0

    def test_compound(self):
        a, b, _ = make_locs()
        trace = OpTrace("+", (a, OpTrace("*", (a, b))))
        assert eval_trace(trace, {a: 2.0, b: 10.0}) == 22.0

    def test_trig(self):
        a, _, _ = make_locs()
        assert eval_trace(OpTrace("cos", (a,)), {a: 0.0}) == 1.0

    def test_missing_location_raises(self):
        a, b, _ = make_locs()
        with pytest.raises(KeyError):
            eval_trace(OpTrace("+", (a, b)), {a: 1.0})


class TestFormatTrace:
    def test_matches_paper_notation(self):
        a = Loc(1, "x0")
        b = Loc(2, "sep")
        i = Loc(3, "l0")
        trace = OpTrace("+", (a, OpTrace("*", (i, b))))
        assert format_trace(trace) == "(+ x0 (* l0 sep))"

    def test_nullary(self):
        assert format_trace(OpTrace("pi", ())) == "(pi)"


class TestPaperEquations:
    """The value-trace equations of §2.1 for sineWaveOfBoxes."""

    @pytest.fixture
    def boxes(self, sine_program):
        value = sine_program.evaluate()
        svg = to_pylist(value)
        return [to_pylist(shape) for shape in to_pylist(svg[2])]

    def _x_attr(self, box):
        attrs = {to_pylist(pair)[0].value: to_pylist(pair)[1]
                 for pair in to_pylist(box[1])}
        return attrs["x"]

    def test_equation_1(self, boxes):
        x = self._x_attr(boxes[0])
        assert x.value == 50.0
        assert format_trace(x.trace).startswith("(+ x0 (* ")
        assert format_trace(x.trace).endswith("sep))")

    def test_equation_2_structure(self, boxes):
        x = self._x_attr(boxes[1])
        assert x.value == 80.0
        # (+ x0 (* (+ l1 l0) sep))
        assert x.trace.op == "+"
        inner = x.trace.args[1]
        assert inner.op == "*"
        assert inner.args[0].op == "+"

    def test_equation_3_structure(self, boxes):
        x = self._x_attr(boxes[2])
        assert x.value == 110.0
        # (+ x0 (* (+ l1 (+ l1 l0)) sep)) -- l1 occurs twice
        index_trace = x.trace.args[1].args[0]
        assert index_trace.op == "+"
        assert index_trace.args[1].op == "+"
        assert index_trace.args[0] == index_trace.args[1].args[0]

    def test_rho0_solves_all_equations(self, sine_program, boxes):
        rho0 = sine_program.rho0
        for box in boxes:
            x = self._x_attr(box)
            assert eval_trace(x.trace, rho0) == pytest.approx(x.value)

"""Unit tests for the little parser and desugaring."""

import pytest

from repro.lang import (ECase, ECons, ELambda, ELet, ENil, ENum, EOp, EStr,
                        EVar, EApp, EBool, PBool, PCons, PNil, PNum, PVar,
                        parse_expr, parse_top_level)
from repro.lang.errors import LittleSyntaxError
from repro.lang.parser import collect_rho0, parse_definition_sequence


class TestAtoms:
    def test_number(self):
        expr = parse_expr("42")
        assert isinstance(expr, ENum) and expr.value == 42.0

    def test_number_has_fresh_location(self):
        a = parse_expr("1")
        b = parse_expr("1")
        assert a.loc != b.loc

    def test_frozen_number(self):
        assert parse_expr("3!").loc.frozen

    def test_unfrozen_by_default(self):
        assert not parse_expr("3").loc.frozen

    def test_range_annotation(self):
        assert parse_expr("12{3-30}").range_ann == (3.0, 30.0)

    def test_string(self):
        expr = parse_expr("'rect'")
        assert isinstance(expr, EStr) and expr.value == "rect"

    def test_true(self):
        expr = parse_expr("true")
        assert isinstance(expr, EBool) and expr.value is True

    def test_false(self):
        expr = parse_expr("false")
        assert isinstance(expr, EBool) and expr.value is False

    def test_variable(self):
        expr = parse_expr("x0")
        assert isinstance(expr, EVar) and expr.name == "x0"


class TestLists:
    def test_empty(self):
        assert isinstance(parse_expr("[]"), ENil)

    def test_singleton(self):
        expr = parse_expr("[1]")
        assert isinstance(expr, ECons)
        assert isinstance(expr.tail, ENil)

    def test_multi_element(self):
        expr = parse_expr("[1 2 3]")
        values = []
        while isinstance(expr, ECons):
            values.append(expr.head.value)
            expr = expr.tail
        assert values == [1.0, 2.0, 3.0]

    def test_cons_tail(self):
        expr = parse_expr("[1|rest]")
        assert isinstance(expr, ECons)
        assert isinstance(expr.tail, EVar)

    def test_multi_with_tail(self):
        expr = parse_expr("[1 2|rest]")
        assert isinstance(expr.tail, ECons)
        assert isinstance(expr.tail.tail, EVar)


class TestLambda:
    def test_single_var(self):
        expr = parse_expr("(\\x x)")
        assert isinstance(expr, ELambda)
        assert expr.pattern == PVar("x")

    def test_multi_arg_sugar_curries(self):
        expr = parse_expr("(\\(x y) x)")
        assert isinstance(expr, ELambda)
        assert isinstance(expr.body, ELambda)
        assert expr.pattern == PVar("x")
        assert expr.body.pattern == PVar("y")

    def test_list_pattern_param(self):
        expr = parse_expr("(\\[a b] a)")
        assert isinstance(expr, ELambda)
        assert isinstance(expr.pattern, PCons)

    def test_unicode_lambda(self):
        expr = parse_expr("(λx x)")
        assert isinstance(expr, ELambda)

    def test_pattern_in_multi_arg_list(self):
        expr = parse_expr("(\\([i x] acc) acc)")
        assert isinstance(expr.pattern, PCons)
        assert expr.body.pattern == PVar("acc")


class TestApplicationAndOps:
    def test_application_curries(self):
        expr = parse_expr("(f a b)")
        assert isinstance(expr, EApp)
        assert isinstance(expr.fn, EApp)
        assert expr.fn.fn == EVar("f")

    def test_op_plus(self):
        expr = parse_expr("(+ 1 2)")
        assert isinstance(expr, EOp) and expr.op == "+"
        assert len(expr.args) == 2

    def test_op_pi_nullary(self):
        expr = parse_expr("(pi)")
        assert isinstance(expr, EOp) and expr.args == ()

    def test_op_unary(self):
        expr = parse_expr("(sin x)")
        assert isinstance(expr, EOp) and expr.op == "sin"

    def test_op_arity_error(self):
        with pytest.raises(LittleSyntaxError):
            parse_expr("(+ 1)")

    def test_op_arity_error_nullary(self):
        with pytest.raises(LittleSyntaxError):
            parse_expr("(pi 1)")

    def test_zero_arg_application_rejected(self):
        with pytest.raises(LittleSyntaxError):
            parse_expr("(f)")


class TestLetAndCase:
    def test_let(self):
        expr = parse_expr("(let x 1 x)")
        assert isinstance(expr, ELet) and not expr.rec

    def test_letrec(self):
        expr = parse_expr("(letrec f (\\x (f x)) f)")
        assert isinstance(expr, ELet) and expr.rec

    def test_let_list_pattern(self):
        expr = parse_expr("(let [a b] [1 2] a)")
        assert isinstance(expr.pattern, PCons)

    def test_case(self):
        expr = parse_expr("(case xs ([] 0) ([x|rest] x))")
        assert isinstance(expr, ECase)
        assert len(expr.branches) == 2
        assert expr.branches[0][0] == PNil()

    def test_case_literal_patterns(self):
        expr = parse_expr("(case n (0 'zero') (other 'other'))")
        assert expr.branches[0][0] == PNum(0.0)
        assert expr.branches[1][0] == PVar("other")

    def test_if_desugars_to_case(self):
        expr = parse_expr("(if b 1 2)")
        assert isinstance(expr, ECase) and expr.from_if
        assert expr.branches[0][0] == PBool(True)
        assert expr.branches[1][0] == PBool(False)

    def test_case_empty_rejected(self):
        with pytest.raises(LittleSyntaxError):
            parse_expr("(case x)")


class TestTopLevel:
    def test_defs_fold_into_lets(self):
        expr = parse_top_level("(def a 1) (def b 2) (+ a b)")
        assert isinstance(expr, ELet) and expr.from_def
        assert isinstance(expr.body, ELet)
        assert isinstance(expr.body.body, EOp)

    def test_defrec(self):
        expr = parse_top_level("(defrec f (\\x (f x))) (f 1)")
        assert expr.rec

    def test_missing_main_expression(self):
        with pytest.raises(LittleSyntaxError):
            parse_top_level("(def a 1)")

    def test_def_after_main_rejected(self):
        with pytest.raises(LittleSyntaxError):
            parse_top_level("1 (def a 2)")

    def test_two_main_expressions_rejected(self):
        with pytest.raises(LittleSyntaxError):
            parse_top_level("1 2")

    def test_definition_sequence(self):
        bindings = parse_definition_sequence("(def a 1) (def b 2)")
        assert len(bindings) == 2
        assert bindings[0][0] == PVar("a")


class TestCanonicalNaming:
    def test_simple_def_names_location(self):
        expr = parse_top_level("(def n 12) n")
        assert expr.bound.loc.name == "n"

    def test_parallel_binding_names_locations(self):
        expr = parse_top_level("(def [x0 y0] [50 120]) x0")
        assert expr.bound.head.loc.name == "x0"
        assert expr.bound.tail.head.loc.name == "y0"

    def test_nested_let_names_location(self):
        expr = parse_expr("(let k 7 k)")
        assert expr.bound.loc.name == "k"

    def test_non_literal_binding_unnamed(self):
        expr = parse_expr("(let k (+ 1 2) k)")
        assert isinstance(expr.bound, EOp)
        # the literals inside keep anonymous locations
        assert expr.bound.args[0].loc.name is None


class TestRho0:
    def test_collects_all_literals(self):
        expr = parse_top_level("(def [a b] [1 2]) (+ a (+ b 3))")
        rho0 = collect_rho0(expr)
        assert sorted(rho0.values()) == [1.0, 2.0, 3.0]

    def test_keyed_by_location(self):
        expr = parse_top_level("(def a 5) a")
        rho0 = collect_rho0(expr)
        assert rho0[expr.bound.loc] == 5.0


class TestAutoFreeze:
    def test_auto_freeze_freezes_plain_literals(self):
        expr = parse_expr("7", auto_freeze=True)
        assert expr.loc.frozen

    def test_thaw_overrides_auto_freeze(self):
        expr = parse_expr("7?", auto_freeze=True)
        assert not expr.loc.frozen

    def test_in_prelude_marks_locations(self):
        expr = parse_expr("7", in_prelude=True)
        assert expr.loc.in_prelude

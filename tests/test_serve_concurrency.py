"""Concurrency harness for the sharded serve layer.

The contract under test (``repro.serve``):

1. **parallel disjoint sessions** — N threads driving different sessions
   produce, per session, exactly the response stream a serial replay of
   the same script produces on a fresh ``ServeApp`` (eviction,
   rehydration, migration, and the shared compile cache are invisible);
2. **same-session ordering** — N threads racing on one session serialize
   on its lock; the per-session sequence number recovers the order the
   server applied, and replaying the applied operations in that order
   reproduces every response byte-for-byte (no torn state);
3. **single-flight compilation** — concurrent opens of identical source
   parse and evaluate exactly once;
4. **eviction never tears a live drag** — a session mid-request is
   skipped by the evictor, and eviction between requests stays
   transparent.

Stress intensity scales with the ``REPRO_STRESS_REPEAT`` environment
variable (CI sets it > 1 for a thread-sanitizer-ish soak); the default
keeps the suite fast.  Scheduling is still the OS's choice, so the tests
assert *invariants*, not particular interleavings — plus a
hypothesis-driven interleaving test that replays generated scripts.
"""

import json
import os
import re
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.editor import LiveSession
from repro.examples import example_source
from repro.serve import (ServeApp, SessionManager, make_server,
                         shard_index)

#: Multiplier for rounds/threads in the stress tests (CI soak knob).
REPEAT = max(1, int(os.environ.get("REPRO_STRESS_REPEAT", "1")))

SLIDER_EXAMPLE = "n_boxes_slider"
TEMPLATE = "(def x {v}) (svg [(rect 'teal' x 20 30 40)])"


#: Unnamed literals display as ``loc<N>`` where N is a process-global
#: parse counter — incidental naming, not session state.
LOC_TOKEN = re.compile(r"loc\d+")


def normalize(sid, response):
    """A response as comparable text: the session id (differs between a
    shared app and a fresh replay app) and the cache hit/miss field (the
    shared cache is warmed by *other* sessions) are scrubbed; everything
    else — including errors and sequence numbers — must match."""
    clean = {key: value for key, value in response.items()
             if key not in ("session", "cache")}
    return json.dumps(clean, sort_keys=True).replace(sid, "<sid>")


def canonicalize(stream):
    """Rename ``loc<N>`` tokens in numeric order so two response streams
    compare structurally: the global loc counter differs between apps,
    but idents are assigned monotonically in parse order, so their
    *relative* numeric order is what must match."""
    idents = sorted({int(match[3:]) for text in stream
                     for match in LOC_TOKEN.findall(text)})
    mapping = {f"loc{ident}": f"loc<{rank:06d}>"
               for rank, ident in enumerate(idents)}
    # Re-dump after renaming: dict keys were sorted by *raw* loc names,
    # whose lexicographic order depends on the counter's digit count.
    return [json.dumps(json.loads(
                LOC_TOKEN.sub(lambda m: mapping[m.group(0)], text)),
            sort_keys=True) for text in stream]


def run_threads(workers):
    """Start one thread per callable, join them, re-raise any failure."""
    errors = []

    def guarded(fn):
        def run():
            try:
                fn()
            except BaseException as error:   # noqa: BLE001 (re-raised)
                errors.append(error)
        return run

    threads = [threading.Thread(target=guarded(fn)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


# ---------------------------------------------------------------------------
# Script execution: the same materializer drives concurrent and serial runs
# ---------------------------------------------------------------------------

def materialize(app, sid, opened, spec, op):
    """One abstract op -> a concrete request dict.  Derivations use only
    per-session state, so identical per-session histories materialize
    identical requests in the concurrent run and the serial replay."""
    kind = op[0]
    if kind == "drag":
        _, zone_index, dx, dy, sync = op
        session = app.manager.get(sid)
        keys = sorted(session.triggers)
        shape, zone = keys[zone_index % len(keys)]
        request = {"cmd": "drag", "session": sid, "shape": shape,
                   "zone": zone, "steps": [[dx, dy], [dx * 2, dy + 1]]}
        if not sync:
            request["sync"] = False
        return request
    if kind == "release":
        return {"cmd": "release", "session": sid}
    if kind == "undo":
        return {"cmd": "undo", "session": sid}
    if kind == "render":
        return {"cmd": "render", "session": sid}
    if kind == "slider":
        sliders = opened.get("sliders") or []
        name = sliders[0]["loc"] if sliders else "nope"
        return {"cmd": "set_slider", "session": sid, "loc": name,
                "value": 1 + op[1] % 5}
    if kind == "edit":
        if spec["template"]:
            text = TEMPLATE.format(v=10 + op[1])
        else:
            text = spec["source"]        # revert-to-original value edit
        return {"cmd": "edit", "session": sid, "source": text}
    raise AssertionError(f"unknown op {op!r}")


def execute_script(app, spec, ops):
    """Open a session and run ``ops`` against ``app``; returns the
    normalized response stream (the open response included)."""
    opened = app.handle({"cmd": "open", "source": spec["source"]})
    assert opened["ok"], opened
    sid = opened["session"]
    stream = [normalize(sid, opened)]
    for op in ops:
        request = materialize(app, sid, opened, spec, op)
        stream.append(normalize(sid, app.handle(request)))
    return stream


def spec_for(index):
    if index % 2 == 0:
        return {"source": TEMPLATE.format(v=10 + index), "template": True}
    return {"source": example_source(SLIDER_EXAMPLE), "template": False}


# ---------------------------------------------------------------------------
# 1. Disjoint sessions: concurrent == serial replay, byte for byte
# ---------------------------------------------------------------------------

class TestDisjointSessions:
    def script(self, index, rounds):
        ops = []
        for r in range(rounds):
            ops.append(("drag", r + index, 2 + (r * 3 + index) % 9,
                        1 + (r * 5 + index) % 7, True))
            ops.append(("release",))
            ops.append(("slider", r + index))
            ops.append(("undo",))
        return ops

    def test_hammered_disjoint_sessions_match_serial_replay(self):
        threads = 6
        rounds = 3 * REPEAT
        # Small budgets force constant eviction/rehydration/migration
        # churn underneath the hammering threads.
        app = ServeApp(manager=SessionManager(max_sessions=3, shards=2))
        specs = [spec_for(i) for i in range(threads)]
        scripts = [self.script(i, rounds) for i in range(threads)]
        streams = [None] * threads

        def worker(i):
            def run():
                streams[i] = execute_script(app, specs[i], scripts[i])
            return run

        run_threads([worker(i) for i in range(threads)])

        stats = app.handle({"cmd": "stats"})["stats"]
        assert stats["live_sessions"] <= 3
        for i in range(threads):
            replay = execute_script(ServeApp(), specs[i], scripts[i])
            assert canonicalize(streams[i]) == canonicalize(replay), \
                f"session {i} diverged"

    def test_parallel_disjoint_opens_and_drags_match_mirrors(self):
        threads = 8
        rounds = 4 * REPEAT
        app = ServeApp(manager=SessionManager(max_sessions=threads,
                                              shards=4))

        def worker(i):
            def run():
                source = TEMPLATE.format(v=20 + i)
                mirror = LiveSession(source)
                opened = app.handle({"cmd": "open", "source": source})
                assert opened["ok"]
                sid = opened["session"]
                shape, zone = sorted(mirror.triggers)[0]
                for r in range(rounds):
                    dx, dy = float(3 + r + i), float(2 + r)
                    dragged = app.handle(
                        {"cmd": "drag", "session": sid, "shape": shape,
                         "zone": zone, "steps": [[dx, dy]]})
                    released = app.handle({"cmd": "release",
                                           "session": sid})
                    mirror.start_drag(shape, zone)
                    mirror.drag(dx, dy)
                    mirror.release()
                    assert dragged["ok"] and released["ok"]
                    assert released["svg"] == mirror.export_svg()
                    assert released["source"] == mirror.source()
            return run

        run_threads([worker(i) for i in range(threads)])


# ---------------------------------------------------------------------------
# 2. One session, many threads: per-session ordering, no torn state
# ---------------------------------------------------------------------------

class TestSameSessionRace:
    def test_racing_threads_serialize_and_replay_in_seq_order(self):
        threads = 6
        per_thread = 4 * REPEAT
        app = ServeApp(manager=SessionManager(max_sessions=4, shards=2))
        opened = app.handle({"cmd": "open",
                             "source": TEMPLATE.format(v=10)})
        sid = opened["session"]
        shape, zone = sorted(app.manager.get(sid).triggers)[0]
        recorded = []
        record_lock = threading.Lock()

        def worker(t):
            def run():
                for k in range(per_thread):
                    # Everyone fights over the same gesture: drags
                    # continue it, releases commit it mid-flight.
                    if (t + k) % 3 == 2:
                        request = {"cmd": "release", "session": sid}
                    else:
                        dx = float(2 + (t * per_thread + k) % 17)
                        dy = float(1 + (t * 3 + k) % 11)
                        request = {"cmd": "drag", "session": sid,
                                   "shape": shape, "zone": zone,
                                   "steps": [[dx, dy]]}
                    response = app.handle(request)
                    if not response["ok"]:
                        # The only legitimate rejections in this schedule.
                        assert response["error"]["code"] in (
                            "no_drag", "drag_in_progress")
                    with record_lock:
                        recorded.append((request, response))
            return run

        run_threads([worker(t) for t in range(threads)])

        applied = sorted((pair for pair in recorded if pair[1]["ok"]),
                         key=lambda pair: pair[1]["seq"])
        # The sequence numbers recover a total order with no holes and
        # no duplicates: every applied op is accounted for exactly once.
        assert [r["seq"] for _, r in applied] == \
            list(range(1, len(applied) + 1))

        # Replaying the applied ops in seq order on a fresh app must
        # reproduce every response byte-for-byte: the racing threads
        # observed *some* serial schedule, not torn state.
        replay_app = ServeApp()
        replay_opened = replay_app.handle(
            {"cmd": "open", "source": TEMPLATE.format(v=10)})
        replay_sid = replay_opened["session"]
        raced, replayed = [], []
        for request, response in applied:
            raced.append(normalize(sid, response))
            replayed.append(normalize(
                replay_sid,
                replay_app.handle({**request, "session": replay_sid})))
        assert canonicalize(raced) == canonicalize(replayed)

    def test_client_seq_fences_racing_duplicates(self):
        app = ServeApp()
        opened = app.handle({"cmd": "open",
                             "source": TEMPLATE.format(v=10)})
        sid = opened["session"]
        shape, zone = sorted(app.manager.get(sid).triggers)[0]
        threads = 5
        outcomes = [None] * threads

        def worker(t):
            def run():
                # Every thread claims seq 1: exactly one may win.
                outcomes[t] = app.handle(
                    {"cmd": "drag", "session": sid, "shape": shape,
                     "zone": zone, "steps": [[4, 2]], "seq": 1})
            return run

        run_threads([worker(t) for t in range(threads)])
        winners = [r for r in outcomes if r["ok"]]
        losers = [r for r in outcomes if not r["ok"]]
        assert len(winners) == 1 and winners[0]["seq"] == 1
        assert all(r["error"]["code"] == "stale_seq" for r in losers)
        # The duplicate drags were rejected *without* being applied.
        mirror = LiveSession(TEMPLATE.format(v=10))
        mirror.start_drag(shape, zone)
        mirror.drag(4.0, 2.0)
        rendered = app.handle({"cmd": "render", "session": sid})
        assert rendered["svg"] == mirror.export_svg()


# ---------------------------------------------------------------------------
# 3. Single-flight compile cache
# ---------------------------------------------------------------------------

class TestSingleFlightCompile:
    def test_concurrent_identical_opens_compile_exactly_once(self):
        manager = SessionManager(max_sessions=32, shards=4)
        source = example_source("ferris_wheel")
        threads = 8
        barrier = threading.Barrier(threads)
        sessions = [None] * threads

        def worker(i):
            def run():
                barrier.wait()
                _sid, session, _hit = manager.open(source)
                sessions[i] = session
            return run

        run_threads([worker(i) for i in range(threads)])
        stats = manager.cache.stats()
        assert stats["misses"] == 1, stats
        assert stats["hits"] == threads - 1
        # Coalesced opens blocked on the leader's compile; late opens
        # would hit the stored entry instead — either way, one parse.
        assert stats["coalesced"] <= threads - 1
        programs = {id(session.program) for session in sessions}
        assert len(programs) == 1
        cold = LiveSession(source)
        for session in sessions:
            assert session.export_svg() == cold.export_svg()

    def test_leader_failure_propagates_to_waiters(self):
        from repro.lang.errors import LittleError

        manager = SessionManager(max_sessions=8)
        bad = "(svg [(rect 'r' nope 1 2 3)])"
        threads = 4
        barrier = threading.Barrier(threads)
        failures = [None] * threads

        def worker(i):
            def run():
                barrier.wait()
                try:
                    manager.open(bad)
                except LittleError as error:
                    failures[i] = error
            return run

        run_threads([worker(i) for i in range(threads)])
        assert all(failure is not None for failure in failures)
        # Failures are not cached: a later open re-attempts the compile.
        assert manager.cache.stats()["misses"] == 0


# ---------------------------------------------------------------------------
# 4. Eviction racing a live drag
# ---------------------------------------------------------------------------

class TestEvictionRace:
    def test_eviction_pressure_never_tears_a_dragging_session(self):
        app = ServeApp(manager=SessionManager(max_sessions=2, shards=1,
                                              snapshot_limit=64))
        rounds = 8 * REPEAT
        source = TEMPLATE.format(v=30)
        stop = threading.Event()

        def dragger():
            mirror = LiveSession(source)
            opened = app.handle({"cmd": "open", "source": source})
            assert opened["ok"]
            sid = opened["session"]
            shape, zone = sorted(mirror.triggers)[0]
            try:
                for r in range(rounds):
                    dx, dy = float(2 + r % 13), float(1 + r % 9)
                    dragged = app.handle(
                        {"cmd": "drag", "session": sid, "shape": shape,
                         "zone": zone, "steps": [[dx, dy]]})
                    mirror.start_drag(shape, zone)
                    mirror.drag(dx, dy)
                    assert dragged["ok"], dragged
                    assert dragged["svg"] == mirror.export_svg()
                    released = app.handle({"cmd": "release",
                                           "session": sid})
                    mirror.release()
                    assert released["ok"], released
                    assert released["svg"] == mirror.export_svg()
                    assert released["source"] == mirror.source()
            finally:
                stop.set()

        def churner():
            i = 0
            while not stop.is_set():
                response = app.handle(
                    {"cmd": "open",
                     "source": TEMPLATE.format(v=100 + i)})
                assert response["ok"], response
                i += 1

        run_threads([dragger, churner])
        stats = app.handle({"cmd": "stats"})["stats"]
        assert stats["live_sessions"] <= 2


# ---------------------------------------------------------------------------
# Sequence numbers, async drags, expiry, migration (single-threaded
# regressions for the protocol-level machinery the stress tests lean on)
# ---------------------------------------------------------------------------

class TestSequenceNumbers:
    def test_duplicate_and_gap_detected_not_applied(self):
        app = ServeApp()
        opened = app.handle({"cmd": "open",
                             "source": TEMPLATE.format(v=10)})
        sid = opened["session"]
        shape, zone = sorted(app.manager.get(sid).triggers)[0]
        first = app.handle({"cmd": "drag", "session": sid, "shape": shape,
                            "zone": zone, "steps": [[3, 2]], "seq": 1})
        assert first["ok"] and first["seq"] == 1
        before = app.handle({"cmd": "render", "session": sid})["svg"]
        duplicate = app.handle({"cmd": "drag", "session": sid,
                                "shape": shape, "zone": zone,
                                "steps": [[9, 9]], "seq": 1})
        assert duplicate["error"]["code"] == "stale_seq"
        assert duplicate["error"]["status"] == 409
        gap = app.handle({"cmd": "release", "session": sid, "seq": 7})
        assert gap["error"]["code"] == "seq_gap"
        # Neither rejected request moved the session.
        assert app.handle({"cmd": "render", "session": sid})["svg"] \
            == before
        accepted = app.handle({"cmd": "release", "session": sid,
                               "seq": 2})
        assert accepted["ok"] and accepted["seq"] == 2

    def test_failed_commands_do_not_consume_seq(self):
        app = ServeApp()
        opened = app.handle({"cmd": "open",
                             "source": TEMPLATE.format(v=10)})
        sid = opened["session"]
        rejected = app.handle({"cmd": "release", "session": sid,
                               "seq": 1})
        assert rejected["error"]["code"] == "no_drag"
        shape, zone = sorted(app.manager.get(sid).triggers)[0]
        retried = app.handle({"cmd": "drag", "session": sid,
                              "shape": shape, "zone": zone,
                              "steps": [[2, 2]], "seq": 1})
        assert retried["ok"] and retried["seq"] == 1


class TestAsyncDrag:
    def test_queued_bursts_flush_as_one_rerun(self):
        app = ServeApp()
        source = TEMPLATE.format(v=10)
        opened = app.handle({"cmd": "open", "source": source})
        sid = opened["session"]
        mirror = LiveSession(source)
        shape, zone = sorted(mirror.triggers)[0]
        for steps in ([[2, 1]], [[5, 2], [7, 3]], [[9, 4]]):
            ack = app.handle({"cmd": "drag", "session": sid,
                              "shape": shape, "zone": zone,
                              "steps": steps, "sync": False})
            assert ack["ok"] and ack["queued"] == len(steps)
            assert "svg" not in ack          # acknowledged, not applied
        assert ack["pending"] == 4
        # The flush applies all queued samples as one re-run at the
        # final cumulative offset — byte-identical to eager stepping.
        mirror.start_drag(shape, zone)
        mirror.drag(9.0, 4.0)
        rendered = app.handle({"cmd": "render", "session": sid})
        assert rendered["svg"] == mirror.export_svg()
        released = app.handle({"cmd": "release", "session": sid})
        mirror.release()
        assert released["svg"] == mirror.export_svg()
        assert released["source"] == mirror.source()
        assert released["history"] == 1

    def test_invalid_gesture_rejected_at_queue_time(self):
        app = ServeApp()
        source = TEMPLATE.format(v=10)
        opened = app.handle({"cmd": "open", "source": source})
        sid = opened["session"]
        bad = app.handle({"cmd": "drag", "session": sid, "shape": 99,
                          "zone": "interior", "steps": [[1, 1]],
                          "sync": False})
        # Rejected immediately — not acknowledged and exploded later.
        assert bad["error"]["code"] == "editor_error"
        assert app.manager.pending_drag(sid) is None
        rendered = app.handle({"cmd": "render", "session": sid})
        assert rendered["ok"] and rendered["svg"] == opened["svg"]

    def test_eviction_survives_a_poisoned_queued_gesture(self):
        # queue_drag is below the protocol's validation, so a bad
        # gesture can only reach the evictor's flush through direct
        # manager use — it must never destroy the session or fail the
        # bystander open that triggered shedding.
        manager = SessionManager(max_sessions=1)
        source = TEMPLATE.format(v=10)
        sid, session, _hit = manager.open(source)
        with manager.locked(sid):
            manager.queue_drag(sid, 99, "interior", [[1, 1]])
        sid_b, _session_b, _ = manager.open(TEMPLATE.format(v=11))
        stats = manager.stats()
        assert stats["live_sessions"] == 2      # shed deferred, not torn
        assert stats["evicted"] == 0
        # The poisoned gesture was dropped; both sessions still work.
        assert manager.pending_drag(sid) is None
        cold = LiveSession(source)
        assert manager.get(sid).export_svg() == cold.export_svg()
        assert manager.get(sid_b) is not None
        # The next request completes the deferred shed.
        assert manager.stats()["live_sessions"] <= 2

    def test_queued_bursts_survive_eviction(self):
        app = ServeApp(manager=SessionManager(max_sessions=1))
        source = TEMPLATE.format(v=10)
        opened = app.handle({"cmd": "open", "source": source})
        sid = opened["session"]
        mirror = LiveSession(source)
        shape, zone = sorted(mirror.triggers)[0]
        ack = app.handle({"cmd": "drag", "session": sid, "shape": shape,
                          "zone": zone, "steps": [[6, 3]], "sync": False})
        assert ack["ok"]
        app.handle({"cmd": "open", "example": "three_boxes"})  # evicts
        mirror.start_drag(shape, zone)
        mirror.drag(6.0, 3.0)
        mirror.release()
        released = app.handle({"cmd": "release", "session": sid})
        assert released["ok"], released
        assert released["svg"] == mirror.export_svg()
        assert released["source"] == mirror.source()


class TestExpiredSessions:
    def test_expired_session_is_distinct_from_never_opened(self):
        app = ServeApp(manager=SessionManager(max_sessions=1,
                                              snapshot_limit=1))
        first = app.handle({"cmd": "open", "example": "three_boxes"})
        app.handle({"cmd": "open", "example": "ferris_wheel"})
        app.handle({"cmd": "open", "example": SLIDER_EXAMPLE})
        expired = app.handle({"cmd": "render",
                              "session": first["session"]})
        assert expired["error"]["code"] == "session_expired"
        assert expired["error"]["status"] == 410
        unknown = app.handle({"cmd": "render", "session": "s404"})
        assert unknown["error"]["code"] == "unknown_session"
        assert unknown["error"]["status"] == 404
        stats = app.handle({"cmd": "stats"})["stats"]
        assert stats["expired"] == 1

    def test_closed_session_stays_unknown_not_expired(self):
        app = ServeApp()
        opened = app.handle({"cmd": "open", "example": "three_boxes"})
        app.handle({"cmd": "close", "session": opened["session"]})
        response = app.handle({"cmd": "render",
                               "session": opened["session"]})
        assert response["error"]["code"] == "unknown_session"

    def test_expiry_racing_close_does_not_resurrect_the_id(self):
        # Deterministic replay of the race: the shard's snapshot store
        # pops an id for expiry, the client closes it before the
        # coordinator records the tombstone.  The close must win — no
        # tombstone, no expired count, still a plain 404.
        manager = SessionManager(max_sessions=8)
        sid, _session, _hit = manager.open(TEMPLATE.format(v=10))
        manager.close(sid)
        manager._expire([sid])
        import pytest as _pytest
        from repro.serve import SessionExpired, UnknownSession
        with _pytest.raises(UnknownSession) as caught:
            manager.get(sid)
        assert not isinstance(caught.value, SessionExpired)
        assert manager.stats()["expired"] == 0


class TestMigration:
    def test_hot_shard_migrates_to_cold_instead_of_evicting(self):
        # crc32 placement is deterministic: s1, s2, s3 all hash to shard
        # 0 of 2, so the third open overflows shard 0's budget of 2 and
        # must migrate its LRU session to shard 1 instead of snapshotting.
        assert [shard_index(f"s{i}", 2) for i in (1, 2, 3)] == [0, 0, 0]
        manager = SessionManager(max_sessions=4, shards=2)
        source = TEMPLATE.format(v=10)
        sids = [manager.open(source)[0] for _ in range(3)]
        stats = manager.stats()
        assert stats["migrations"] == 1
        assert stats["evicted"] == 0
        assert stats["live_sessions"] == 3
        assert [shard["live"] for shard in stats["per_shard"]] == [2, 1]
        # Migrated sessions stay addressable and correct.
        cold = LiveSession(source)
        for sid in sids:
            assert manager.get(sid).export_svg() == cold.export_svg()

    def test_session_ids_lists_live_before_snapshotted(self):
        manager = SessionManager(max_sessions=2, shards=2)
        source = TEMPLATE.format(v=10)
        sids = [manager.open(source)[0] for _ in range(3)]
        ids = manager.session_ids()
        assert sorted(ids) == sorted(sids)
        stats = manager.stats()
        live_count = stats["live_sessions"]
        # s2 was snapshot-evicted (all shards full); it must come last.
        assert set(ids[:live_count]) == {sids[0], sids[2]}
        assert ids[live_count:] == [sids[1]]

    def test_small_snapshot_limit_split_across_shards_still_stores(self):
        # snapshot_limit=2 over 4 shards would round two budgets to 0;
        # the floor of 1 keeps a fresh eviction addressable instead of
        # expiring it on the spot.
        manager = SessionManager(max_sessions=4, shards=4,
                                 snapshot_limit=2)
        assert all(shard.snapshot_budget >= 1
                   for shard in manager.shards)

    def test_queued_drag_storage_is_constant_size(self):
        app = ServeApp()
        source = TEMPLATE.format(v=10)
        opened = app.handle({"cmd": "open", "source": source})
        sid = opened["session"]
        mirror = LiveSession(source)
        shape, zone = sorted(mirror.triggers)[0]
        for burst in range(50):
            ack = app.handle({"cmd": "drag", "session": sid,
                              "shape": shape, "zone": zone,
                              "steps": [[burst + 1, burst]] * 4,
                              "sync": False})
            assert ack["ok"] and ack["pending"] == 4 * (burst + 1)
        # Only the count and the final cumulative sample are retained.
        pending = app.manager.pending_drag(sid)
        assert pending == (shape, zone, 200, [50, 49])
        mirror.start_drag(shape, zone)
        mirror.drag(50.0, 49.0)
        rendered = app.handle({"cmd": "render", "session": sid})
        assert rendered["svg"] == mirror.export_svg()

    def test_all_shards_full_falls_back_to_snapshot_eviction(self):
        manager = SessionManager(max_sessions=2, shards=2)
        source = TEMPLATE.format(v=10)
        sids = [manager.open(source)[0] for _ in range(3)]
        stats = manager.stats()
        assert stats["live_sessions"] == 2
        assert stats["evicted"] == 1
        # s1 was migrated live; s2 is the snapshotted one — and it
        # transparently rehydrates.
        cold = LiveSession(source)
        assert manager.get(sids[1]).export_svg() == cold.export_svg()
        assert manager.stats()["rehydrated"] == 1


# ---------------------------------------------------------------------------
# HTTP transport: concurrent dispatch end to end
# ---------------------------------------------------------------------------

class TestConcurrentHttp:
    def test_parallel_clients_over_http(self):
        import http.client

        app = ServeApp(manager=SessionManager(max_sessions=16, shards=4))
        server = make_server("127.0.0.1", 0, app, workers=8)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        clients = 6
        rounds = 2 * REPEAT
        try:
            def worker(i):
                def run():
                    source = TEMPLATE.format(v=40 + i)
                    mirror = LiveSession(source)
                    conn = http.client.HTTPConnection(host, port,
                                                      timeout=30)
                    try:
                        def post(payload):
                            conn.request(
                                "POST", "/api", json.dumps(payload),
                                {"Content-Type": "application/json"})
                            response = conn.getresponse()
                            assert response.status == 200
                            return json.loads(response.read())

                        opened = post({"cmd": "open", "source": source})
                        sid = opened["session"]
                        assert opened["svg"] == mirror.export_svg()
                        shape, zone = sorted(mirror.triggers)[0]
                        for r in range(rounds):
                            dx, dy = float(3 + r + i), float(2 + r)
                            post({"cmd": "drag", "session": sid,
                                  "shape": shape, "zone": zone,
                                  "steps": [[dx, dy]]})
                            released = post({"cmd": "release",
                                             "session": sid})
                            mirror.start_drag(shape, zone)
                            mirror.drag(dx, dy)
                            mirror.release()
                            assert released["svg"] == mirror.export_svg()
                    finally:
                        conn.close()
                return run

            run_threads([worker(i) for i in range(clients)])
        finally:
            server.shutdown()
            server.server_close()


# ---------------------------------------------------------------------------
# Property-based interleavings: hypothesis scripts across threads
# ---------------------------------------------------------------------------

OP = st.one_of(
    st.tuples(st.just("drag"), st.integers(0, 3), st.integers(1, 12),
              st.integers(1, 9), st.booleans()),
    st.tuples(st.just("release")),
    st.tuples(st.just("undo")),
    st.tuples(st.just("render")),
    st.tuples(st.just("slider"), st.integers(0, 7)),
    st.tuples(st.just("edit"), st.integers(0, 3)),
)


class TestPropertyInterleavings:
    @settings(max_examples=10 * REPEAT, deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])
    @given(scripts=st.lists(st.lists(OP, min_size=1, max_size=6),
                            min_size=2, max_size=3))
    def test_interleaved_scripts_match_serial_replay(self, scripts):
        """Every per-session response stream under a concurrent schedule
        equals the same script replayed serially on a fresh ``ServeApp``
        — the byte-identity contract of ``tests/test_serve.py``, extended
        to concurrent schedules (with eviction churn underneath)."""
        app = ServeApp(manager=SessionManager(max_sessions=2, shards=2))
        specs = [spec_for(i) for i in range(len(scripts))]
        streams = [None] * len(scripts)

        def worker(i):
            def run():
                streams[i] = execute_script(app, specs[i], scripts[i])
            return run

        run_threads([worker(i) for i in range(len(scripts))])
        for i, script in enumerate(scripts):
            replay = execute_script(ServeApp(), specs[i], script)
            assert canonicalize(streams[i]) == canonicalize(replay), (
                f"script {i} diverged under the concurrent schedule:\n"
                f"{script!r}")

"""Shared fixtures for the test suite."""

import pytest

from repro.editor import LiveSession
from repro.lang import parse_program
from repro.lang.compile import force_compiled
from repro.svg import Canvas


@pytest.fixture(params=[False, True], ids=["interp", "compiled"])
def compiled_mode(request):
    """Run the decorated test twice: once with the drag hot path pinned
    to the interpreted replay, once to the compiled artifact
    (:mod:`repro.lang.compile`).  Pins via the thread-local override, so
    it composes with — and wins over — the ``REPRO_COMPILED`` env knob
    the serve suites sweep in CI."""
    with force_compiled(request.param):
        yield request.param

SINE_WAVE_SOURCE = """
(def [x0 y0 w h sep amp] [50 120 20 90 30 60])
(def n 12!{3-30})
(def boxi (\\i
  (let xi (+ x0 (* i sep))
  (let yi (- y0 (* amp (sin (* i (/ twoPi n)))))
  (rect 'lightblue' xi yi w h)))))
(svg (map boxi (zeroTo n)))
"""

THREE_BOXES_SOURCE = """
(def [x0 y0 w h sep] [40 28 60 130 110])
(def boxi (\\i
  (let xi (+ x0 (mult i sep))
    (rect 'lightblue' xi y0 w h))))
(svg (map boxi (zeroTo 3!)))
"""


@pytest.fixture
def sine_source():
    return SINE_WAVE_SOURCE


@pytest.fixture
def sine_program():
    return parse_program(SINE_WAVE_SOURCE)


@pytest.fixture
def sine_canvas(sine_program):
    return Canvas.from_value(sine_program.evaluate())


@pytest.fixture
def sine_session():
    return LiveSession(SINE_WAVE_SOURCE)


@pytest.fixture
def three_boxes_session():
    return LiveSession(THREE_BOXES_SOURCE)


def attr_value(canvas, shape_index, key):
    """Numeric value of attribute `key` on shape `shape_index`."""
    return canvas[shape_index].simple_num(key).value

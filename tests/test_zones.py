"""Tests for the zone tables of Figure 5."""

import pytest

from repro.lang import parse_program
from repro.svg import Canvas
from repro.zones import (X_AXIS, Y_AXIS, zones_for_canvas, zones_for_shape)


def canvas_of(source):
    return Canvas.from_value(parse_program(source).evaluate())


def zone_map(shape):
    return {zone.name: zone for zone in zones_for_shape(shape)}


def offsets(zone):
    """{attr name: (axis, sign)} for a zone."""
    return {feature.ref.name: (feature.axis, feature.sign)
            for feature in zone.features}


class TestRectZones:
    @pytest.fixture
    def rect_zones(self):
        canvas = canvas_of("(svg [(rect 'r' 10 20 30 40)])")
        return zone_map(canvas[0])

    def test_nine_zones(self, rect_zones):
        assert len(rect_zones) == 9

    def test_interior(self, rect_zones):
        assert offsets(rect_zones["INTERIOR"]) == {
            "x": (X_AXIS, 1), "y": (Y_AXIS, 1)}

    def test_right_edge(self, rect_zones):
        assert offsets(rect_zones["RIGHTEDGE"]) == {"width": (X_AXIS, 1)}

    def test_bot_right_corner(self, rect_zones):
        assert offsets(rect_zones["BOTRIGHTCORNER"]) == {
            "width": (X_AXIS, 1), "height": (Y_AXIS, 1)}

    def test_bot_left_corner_contravariant_width(self, rect_zones):
        # §4.2: width varies contravariantly with dx, x covariantly.
        assert offsets(rect_zones["BOTLEFTCORNER"]) == {
            "x": (X_AXIS, 1), "width": (X_AXIS, -1),
            "height": (Y_AXIS, 1)}

    def test_left_edge(self, rect_zones):
        assert offsets(rect_zones["LEFTEDGE"]) == {
            "x": (X_AXIS, 1), "width": (X_AXIS, -1)}

    def test_top_left_corner_four_attrs(self, rect_zones):
        assert offsets(rect_zones["TOPLEFTCORNER"]) == {
            "x": (X_AXIS, 1), "y": (Y_AXIS, 1),
            "width": (X_AXIS, -1), "height": (Y_AXIS, -1)}

    def test_top_edge(self, rect_zones):
        assert offsets(rect_zones["TOPEDGE"]) == {
            "y": (Y_AXIS, 1), "height": (Y_AXIS, -1)}

    def test_top_right_corner(self, rect_zones):
        assert offsets(rect_zones["TOPRIGHTCORNER"]) == {
            "y": (Y_AXIS, 1), "width": (X_AXIS, 1),
            "height": (Y_AXIS, -1)}

    def test_bot_edge(self, rect_zones):
        assert offsets(rect_zones["BOTEDGE"]) == {"height": (Y_AXIS, 1)}


class TestLineZones:
    @pytest.fixture
    def line_zones(self):
        canvas = canvas_of("(svg [(line 's' 1 0 0 10 10)])")
        return zone_map(canvas[0])

    def test_three_zones(self, line_zones):
        assert set(line_zones) == {"POINT1", "POINT2", "EDGE"}

    def test_point1(self, line_zones):
        assert offsets(line_zones["POINT1"]) == {
            "x1": (X_AXIS, 1), "y1": (Y_AXIS, 1)}

    def test_edge_moves_both_points(self, line_zones):
        assert offsets(line_zones["EDGE"]) == {
            "x1": (X_AXIS, 1), "y1": (Y_AXIS, 1),
            "x2": (X_AXIS, 1), "y2": (Y_AXIS, 1)}


class TestCircleEllipseZones:
    def test_circle(self):
        canvas = canvas_of("(svg [(circle 'c' 0 0 10)])")
        zones = zone_map(canvas[0])
        assert offsets(zones["INTERIOR"]) == {
            "cx": (X_AXIS, 1), "cy": (Y_AXIS, 1)}
        assert offsets(zones["RIGHTEDGE"]) == {"r": (X_AXIS, 1)}
        assert offsets(zones["BOTEDGE"]) == {"r": (Y_AXIS, 1)}

    def test_ellipse(self):
        canvas = canvas_of("(svg [(ellipse 'c' 0 0 10 20)])")
        zones = zone_map(canvas[0])
        assert offsets(zones["RIGHTEDGE"]) == {"rx": (X_AXIS, 1)}
        assert offsets(zones["BOTEDGE"]) == {"ry": (Y_AXIS, 1)}


class TestPolygonZones:
    @pytest.fixture
    def tri_zones(self):
        canvas = canvas_of(
            "(svg [(polygon 'f' 's' 1 [[0 0] [10 0] [5 8]])])")
        return zone_map(canvas[0])

    def test_zone_inventory(self, tri_zones):
        # n POINTs + n EDGEs (closed) + INTERIOR
        assert set(tri_zones) == {
            "POINT0", "POINT1", "POINT2",
            "EDGE0", "EDGE1", "EDGE2", "INTERIOR"}

    def test_point_zone(self, tri_zones):
        assert offsets(tri_zones["POINT1"]) == {
            "points[1].x": (X_AXIS, 1), "points[1].y": (Y_AXIS, 1)}

    def test_edge_wraps(self, tri_zones):
        # EDGE2 connects point 2 back to point 0.
        names = set(offsets(tri_zones["EDGE2"]))
        assert names == {"points[2].x", "points[2].y",
                         "points[0].x", "points[0].y"}

    def test_interior_controls_all(self, tri_zones):
        assert len(tri_zones["INTERIOR"].features) == 6

    def test_polyline_has_no_closing_edge(self):
        canvas = canvas_of(
            "(svg [(polyline 'f' 's' 1 [[0 0] [10 0] [5 8]])])")
        zones = zone_map(canvas[0])
        assert "EDGE1" in zones and "EDGE2" not in zones


class TestPathZones:
    def test_point_zones_from_pairs(self):
        canvas = canvas_of(
            "(svg [(path 'f' 's' 1 ['M' 0 0 'L' 10 10])])")
        zones = zone_map(canvas[0])
        assert "POINT0" in zones and "POINT1" in zones
        assert offsets(zones["POINT0"]) == {
            "d[0]": (X_AXIS, 1), "d[1]": (Y_AXIS, 1)}

    def test_curve_control_points_exposed(self):
        canvas = canvas_of(
            "(svg [(path 'f' 's' 1 ['M' 0 0 'C' 1 1 2 2 3 3])])")
        zones = zone_map(canvas[0])
        point_zones = [name for name in zones if name.startswith("POINT")]
        assert len(point_zones) == 4   # M endpoint + 2 controls + C endpoint

    def test_interior_covers_all_numbers(self):
        canvas = canvas_of(
            "(svg [(path 'f' 's' 1 ['M' 0 0 'L' 10 10 'L' 20 0])])")
        zones = zone_map(canvas[0])
        assert len(zones["INTERIOR"].features) == 6


class TestTextAndUnknown:
    def test_text_interior(self):
        canvas = canvas_of("(svg [(text 5 6 'hello')])")
        zones = zone_map(canvas[0])
        assert offsets(zones["INTERIOR"]) == {
            "x": (X_AXIS, 1), "y": (Y_AXIS, 1)}

    def test_unknown_kind_has_no_zones(self):
        canvas = canvas_of("(svg [['marker' [] []]])")
        assert zones_for_shape(canvas[0]) == []


class TestCanvasZones:
    def test_sine_wave_zone_count(self, sine_canvas):
        # 12 rects x 9 zones.
        assert len(zones_for_canvas(sine_canvas)) == 108

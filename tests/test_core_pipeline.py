"""Unit tests for the core staged pipeline: ChangeSet recording, the
loc-dependency index, per-stage caching and the escalation discipline."""

import pytest

from repro.core import EMPTY_CHANGE, FULL_CHANGE, ChangeSet, SyncPipeline
from repro.core.run import run_source
from repro.editor import LiveSession
from repro.examples import example_source
from repro.lang.program import parse_program

SINE = example_source("sine_wave_of_boxes")

THREE_BOXES = example_source("three_boxes")


class TestChangeSet:
    def test_full_and_empty(self):
        assert FULL_CHANGE.structural and bool(FULL_CHANGE)
        assert not EMPTY_CHANGE.structural and not bool(EMPTY_CHANGE)

    def test_union_escalates(self):
        program = parse_program(SINE)
        loc = next(iter(program.user_locs()))
        change = ChangeSet.of([loc])
        assert change.union(FULL_CHANGE) is FULL_CHANGE
        assert FULL_CHANGE.union(change) is FULL_CHANGE
        assert change.union(EMPTY_CHANGE) is change
        assert EMPTY_CHANGE.union(change) is change

    def test_affects(self):
        program = parse_program(SINE)
        loc = next(iter(program.user_locs()))
        change = ChangeSet.of([loc])
        assert change.affects(frozenset({loc.ident}))
        assert not change.affects(frozenset({-1}))
        assert FULL_CHANGE.affects(frozenset())


class TestProgramChangeRecording:
    def test_fresh_program_is_full(self):
        assert parse_program(SINE).last_change.structural

    def test_substitute_records_changed_locs(self):
        program = parse_program(SINE)
        loc = next(loc for loc in program.user_locs()
                   if loc.display() == "x0")
        changed = program.substitute({loc: program.rho0[loc] + 5.0})
        assert changed.last_change.locs == frozenset({loc})
        assert not changed.last_change.structural

    def test_substitute_drops_noop_entries(self):
        program = parse_program(SINE)
        loc = next(iter(program.user_locs()))
        unchanged = program.substitute({loc: program.rho0[loc]})
        assert unchanged.last_change.locs == frozenset()


class TestCanvasDependencyIndex:
    def test_shapes_affected_by_shared_loc(self):
        pipeline = run_source(SINE)
        program = pipeline.program
        x0 = next(loc for loc in program.user_locs()
                  if loc.display() == "x0")
        affected = pipeline.canvas.shapes_affected(ChangeSet.of([x0]))
        # x0 positions every box.
        assert len(affected) == len(pipeline.canvas)

    def test_structural_change_affects_everything(self):
        pipeline = run_source(SINE)
        affected = pipeline.canvas.shapes_affected(FULL_CHANGE)
        assert affected == frozenset(range(len(pipeline.canvas)))

    def test_rebuilt_canvas_transplants_index(self):
        session = LiveSession(SINE)
        index = session.canvas.loc_shape_index()
        session.start_drag(0, "INTERIOR")
        session.drag(3.0, 4.0)
        assert session.canvas.loc_shape_index() is index
        session.release()

    def test_path_numbers_cached_per_shape(self):
        pipeline = run_source(example_source("color_wheel"))
        shape = next(s for s in pipeline.canvas if s.kind == "path")
        assert shape.path_numbers() is shape.path_numbers()


class TestStagedPipeline:
    def test_incremental_release_reuses_assignments(self):
        session = LiveSession(THREE_BOXES)
        assignments = session.assignments
        session.start_drag(0, "INTERIOR")
        session.drag(7.0, 3.0)
        session.release()
        # Value-only gesture: the assignment object survives wholesale.
        assert session.assignments is assignments

    def test_unaffected_shapes_share_trigger_features(self):
        session = LiveSession(example_source("ferris_wheel"))
        before = dict(session.triggers)
        # Pick a zone whose substitution leaves some shape untouched
        # (triggers are pure, so probing them commits nothing).
        base_rho = session.program.rho0
        chosen_key = None
        for key, trigger in sorted(before.items()):
            bindings = trigger(5.0, 3.0).bindings
            changed = [loc for loc, value in bindings.items()
                       if base_rho[loc] != value]
            affected = session.canvas.shapes_affected(ChangeSet.of(changed))
            if changed and len(affected) < len(session.canvas):
                chosen_key = key
                break
        assert chosen_key is not None, \
            "expected a zone with an unaffected shape"
        session.start_drag(*chosen_key)
        result = session.drag(5.0, 3.0)
        session.release()
        affected = session.canvas.shapes_affected(ChangeSet.of(
            [loc for loc, value in result.bindings.items()
             if base_rho[loc] != value]))
        shared = [key for key in before if key[0] not in affected]
        assert shared, "expected some shape untouched by the radius drag"
        for key in shared:
            # Rebound, not rebuilt: the pre-read features are shared …
            assert session.triggers[key]._features is before[key]._features
        for key in before:
            if key[0] in affected:
                assert session.triggers[key]._features \
                    is not before[key]._features
        # … and every trigger's ρ is the committed program's substitution.
        for trigger in session.triggers.values():
            assert trigger.rho is session.program.rho0

    def test_guard_flip_escalates_to_full_run(self):
        # Moving sine's n slider changes the box count: the recorded
        # guards flip, the Run stage falls back to a full evaluation, and
        # Prepare must rebuild for the structurally new canvas.
        session = LiveSession(SINE)
        canvas_before = session.canvas
        zones_before = session.active_zone_count()
        (loc, slider), = session.sliders.items()
        session.set_slider(loc, slider.value - 2)
        assert len(session.canvas) != len(canvas_before)
        assert session.active_zone_count() != zones_before

    def test_run_stage_short_circuits_empty_change(self):
        session = LiveSession(THREE_BOXES)
        canvas = session.canvas
        session.start_drag(0, "INTERIOR")
        session.drag(0.0, 0.0)                  # no-op bindings
        assert session.canvas is canvas
        session.release()

    def test_stage_order_enforced(self):
        pipeline = SyncPipeline(parse_program(SINE))
        with pytest.raises(RuntimeError):
            pipeline.assign_stage()
        with pytest.raises(RuntimeError):
            pipeline.canvas_stage()
        with pytest.raises(RuntimeError):
            pipeline.render()

    def test_one_shot_run_path_renders(self):
        pipeline = run_source(SINE)
        assert pipeline.render().startswith("<svg")
        assert pipeline.assignments is None     # prepare not requested
        prepared = run_source(SINE, prepare=True)
        assert prepared.assignments is not None
        assert prepared.triggers


class TestSetSliderNoOp:
    def test_noop_slider_move_skips_history_and_rerun(self):
        session = LiveSession(SINE)
        (loc, slider), = session.sliders.items()
        canvas = session.canvas
        program = session.program
        session.set_slider(loc, slider.value)
        assert session.history == []
        assert session.canvas is canvas
        assert session.program is program

    def test_clamped_to_current_value_is_noop(self):
        session = LiveSession(SINE)
        (loc, slider), = session.sliders.items()
        session.set_slider(loc, slider.hi)      # real move to the cap
        history_len = len(session.history)
        session.set_slider(loc, slider.hi + 50.0)   # clamps back to hi
        assert len(session.history) == history_len

    def test_real_move_still_reruns(self):
        session = LiveSession(SINE)
        (loc, slider), = session.sliders.items()
        session.set_slider(loc, slider.value + 1)
        assert len(session.history) == 1
        assert session.sliders[loc].value == slider.value + 1

"""Tests for the incremental live-sync fast paths: indexed substitution,
cached prelude evaluation, and guarded trace-driven re-evaluation.

The contract throughout: the fast paths must be *observationally
identical* to the from-scratch ("naive") pipeline — same values, same
traces, same rendered SVG.
"""

import pytest

from repro.editor import LiveSession
from repro.examples import example_names, example_source, load_example
from repro.lang import parse_program, value_equal
from repro.lang.ast import iter_numbers
from repro.lang.incremental import record_evaluation, reevaluate
from repro.lang.parser import collect_rho0
from repro.lang.prelude import prelude_env
from repro.svg import Canvas, render_canvas
from repro.trace.trace import trace_key

#: A representative slice of the corpus for the expensive cross-checks.
SAMPLED = ["sine_wave_of_boxes", "three_boxes", "ferris_wheel",
           "chicago_flag", "color_wheel", "tessellation", "fractal_tree",
           "hilbert_curve", "tile_pattern", "us13_flag"]


def perturbation(program, delta=7.0):
    """A drag-like substitution: bump the first unfrozen user literal."""
    for loc in program.user_locs():
        if not loc.frozen:
            return {loc: program.rho0[loc] + delta}
    return {}


def traces_of(value):
    canvas = Canvas.from_value(value)
    return [trace_key(trace) for trace in canvas.all_numeric_traces()]


class TestIndexedSubstitution:
    def test_rho0_consistent_with_from_scratch_walk(self):
        for name in SAMPLED:
            program = load_example(name)
            rho = perturbation(program)
            if not rho:
                continue
            updated = program.substitute(rho)
            assert updated.rho0 == collect_rho0(updated.ast), name

    def test_chained_substitutions_keep_rho0_consistent(self, sine_program):
        program = sine_program
        for step in range(4):
            rho = perturbation(program, delta=float(step + 1))
            program = program.substitute(rho)
        assert program.rho0 == collect_rho0(program.ast)

    def test_index_tracks_substituted_literals(self, sine_program):
        rho = perturbation(sine_program)
        updated = sine_program.substitute(rho)
        index = updated._index()
        assert set(index) == {num.loc
                              for num in iter_numbers(updated.user_ast)}
        for loc, value in rho.items():
            assert index[loc].value == value

    def test_unknown_locations_are_dropped(self, sine_program):
        from repro.lang.ast import Loc
        ghost = Loc(987654321)
        updated = sine_program.substitute({ghost: 1.0})
        assert ghost not in updated.rho0
        assert updated.rho0 == collect_rho0(updated.ast)

    def test_prelude_sharing_preserved(self, sine_program):
        rho = perturbation(sine_program)
        updated = sine_program.substitute(rho)
        # The outer Prelude binding (and hence the whole spine's bound
        # expressions) are the shared cached objects.
        assert updated.ast.bound is sine_program.ast.bound
        prelude_locs = {loc for loc in updated.rho0 if loc.in_prelude}
        assert prelude_locs == {loc for loc in sine_program.rho0
                                if loc.in_prelude}

    def test_fast_path_output_identical_to_naive(self):
        for name in SAMPLED:
            program = load_example(name)
            rho = perturbation(program)
            if not rho:
                continue
            updated = program.substitute(rho)
            fast = updated.evaluate()
            naive = updated.evaluate(naive=True)
            assert value_equal(fast, naive), name
            assert traces_of(fast) == traces_of(naive), name
            assert render_canvas(Canvas.from_value(fast).root,
                                 include_hidden=True) == \
                render_canvas(Canvas.from_value(naive).root,
                              include_hidden=True), name


class TestCachedPreludeEvaluation:
    def test_prelude_env_cached_per_mode(self):
        assert prelude_env(True) is prelude_env(True)
        assert prelude_env(False) is prelude_env(False)
        assert prelude_env(True) is not prelude_env(False)

    def test_evaluate_matches_naive_spine_evaluation(self):
        program = parse_program("(sum (map (\\x (* x x)) (zeroTo 5!)))")
        assert program.evaluate().value == program.evaluate(naive=True).value

    def test_prelude_substitution_falls_back(self):
        # Substituting a Prelude literal must leave the shared caches
        # untouched and still evaluate correctly via the full spine.
        program = parse_program("(sum (zeroTo 4!))", prelude_frozen=False)
        prelude_loc = next(loc for loc in program.rho0 if loc.in_prelude
                           and program.rho0[loc] == 1.0)
        updated = program.substitute({prelude_loc: 2.0})
        assert updated._prelude_modified
        # The shared cache still evaluates the pristine Prelude.
        pristine = parse_program("(sum (zeroTo 4!))", prelude_frozen=False)
        assert pristine.evaluate().value == 6.0


class TestGuardedReevaluation:
    def test_reevaluate_identical_to_full_eval(self):
        for name in SAMPLED:
            program = load_example(name)
            _, cache = record_evaluation(program)
            rho = perturbation(program)
            if not rho:
                continue
            updated = program.substitute(rho)
            incremental = reevaluate(cache, updated.rho0)
            if incremental is None:       # structure changed: fallback path
                continue
            full = updated.evaluate(naive=True)
            assert value_equal(incremental, full), name
            assert traces_of(incremental) == traces_of(full), name
            assert render_canvas(Canvas.from_value(incremental).root,
                                 include_hidden=True) == \
                render_canvas(Canvas.from_value(full).root,
                              include_hidden=True), name

    def test_structure_change_detected(self, sine_program):
        _, cache = record_evaluation(sine_program)
        n = next(loc for loc in sine_program.rho0
                 if loc.display() == "n")
        updated = sine_program.substitute({n: 5.0})
        # Changing the box count flips range's comparisons: guard trips.
        assert reevaluate(cache, updated.rho0) is None

    def test_missing_location_detected(self, sine_program):
        _, cache = record_evaluation(sine_program)
        rho = {loc: value for loc, value in sine_program.rho0.items()
               if loc.display() != "x0"}
        assert reevaluate(cache, rho) is None

    def test_session_drag_matches_from_scratch_session(self):
        """End to end: a live-synced drag equals re-parsing the updated
        source and evaluating from scratch."""
        for name in ("sine_wave_of_boxes", "three_boxes", "ferris_wheel"):
            session = LiveSession(example_source(name))
            key = next(iter(session.triggers))
            session.start_drag(*key)
            session.drag(9.0, 4.0)
            session.drag(17.0, -6.0)
            live_svg = session.export_svg(include_hidden=True)
            fresh = LiveSession(session.source())
            assert fresh.export_svg(include_hidden=True) == live_svg, name
            session.release()

    def test_guard_flip_falls_back_to_full_eval(self):
        """Dragging a slider ball past its end crosses the clamp: the
        incremental path must bail out and the full path take over."""
        session = LiveSession(
            "(def [n shapes] (numSlider 100! 300! 50! 0! 10! 'n = ' 4)) "
            "(svg (append shapes [(circle 'red' 200 200 (+ 20! n))]))")
        balls = [shape for shape in session.canvas.shapes_of_kind("circle")
                 if shape.hidden and shape.simple_num("r").value == 10.0]
        session.drag_zone(balls[-1].index, "INTERIOR", 500.0, 0.0)
        circle = session.canvas.visible_shapes()[0]
        assert circle.simple_num("r").value == 30.0
        fresh = LiveSession(session.source())
        assert fresh.export_svg(include_hidden=True) == \
            session.export_svg(include_hidden=True)

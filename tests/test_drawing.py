"""Tests for the Draw extension: adding shapes to a running program."""

import pytest

from repro.editor import LiveSession
from repro.editor.drawing import add_shape, shape_literal_source
from repro.lang import parse_program
from repro.svg import Canvas


@pytest.fixture
def boxes_program():
    return parse_program(
        "(def [x0 sep] [40 110]) "
        "(svg (map (\\i (rect 'lightblue' (+ x0 (mult i sep)) 30 60 120)) "
        "(zeroTo 3!)))")


class TestShapeLiteral:
    def test_rect_source(self):
        source = shape_literal_source("rect", x=1, y=2, width=3, height=4)
        assert source.startswith("['rect'")
        assert "['fill' 'gray']" in source

    def test_line_uses_stroke(self):
        source = shape_literal_source("line", fill="red", x1=0, y1=0,
                                      x2=10, y2=10)
        assert "['stroke' 'red']" in source

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            shape_literal_source("blob", x=1)

    def test_missing_attrs_rejected(self):
        with pytest.raises(ValueError) as excinfo:
            shape_literal_source("circle", cx=1, cy=2)
        assert "r" in str(excinfo.value)


class TestAddShape:
    def test_shape_appended(self, boxes_program):
        new_program = add_shape(boxes_program, "circle", fill="salmon",
                                cx=300, cy=90, r=25)
        canvas = Canvas.from_value(new_program.evaluate())
        assert [shape.kind for shape in canvas] == \
            ["rect", "rect", "rect", "circle"]

    def test_original_program_untouched(self, boxes_program):
        add_shape(boxes_program, "circle", cx=1, cy=2, r=3)
        canvas = Canvas.from_value(boxes_program.evaluate())
        assert len(canvas) == 3

    def test_added_shape_geometry(self, boxes_program):
        new_program = add_shape(boxes_program, "circle", cx=300, cy=90,
                                r=25)
        canvas = Canvas.from_value(new_program.evaluate())
        circle = canvas.shapes_of_kind("circle")[0]
        assert circle.simple_num("cx").value == 300.0

    def test_added_shape_is_manipulable(self, boxes_program):
        """The new literals get fresh locations: the shape drags like any
        hand-written one."""
        new_program = add_shape(boxes_program, "circle", cx=300, cy=90,
                                r=25)
        session = LiveSession(program=new_program)
        circle = session.canvas.shapes_of_kind("circle")[0]
        result = session.drag_zone(circle.index, "INTERIOR", 10.0, -5.0)
        assert result.all_solved
        moved = session.canvas.shapes_of_kind("circle")[0]
        assert moved.simple_num("cx").value == 310.0
        assert moved.simple_num("cy").value == 85.0

    def test_existing_shapes_still_linked(self, boxes_program):
        new_program = add_shape(boxes_program, "circle", cx=300, cy=90,
                                r=25)
        session = LiveSession(program=new_program)
        session.drag_zone(0, "INTERIOR", 20.0, 0.0)
        xs = [shape.simple_num("x").value
              for shape in session.canvas.shapes_of_kind("rect")]
        assert xs == [60.0, 170.0, 280.0]

    def test_add_multiple_shapes(self, boxes_program):
        program = add_shape(boxes_program, "rect", x=1, y=2, width=3,
                            height=4)
        program = add_shape(program, "line", x1=0, y1=0, x2=9, y2=9)
        canvas = Canvas.from_value(program.evaluate())
        assert len(canvas) == 5

    def test_unparses_to_valid_source(self, boxes_program):
        new_program = add_shape(boxes_program, "circle", cx=5, cy=6, r=7)
        reparsed = parse_program(new_program.unparse())
        canvas = Canvas.from_value(reparsed.evaluate())
        assert len(canvas) == 4

"""Tests for mouse triggers (§4.1 and Appendix B.1): dragging zones solves
one univariate equation per controlled attribute."""

import pytest

from repro.lang import parse_program
from repro.svg import Canvas
from repro.zones import assign_canvas, compute_triggers


def session_parts(source, heuristic="fair"):
    program = parse_program(source)
    canvas = Canvas.from_value(program.evaluate())
    assignments = assign_canvas(canvas, heuristic)
    triggers = compute_triggers(canvas, assignments, program.rho0)
    return program, canvas, triggers


def names(bindings):
    return {loc.display(): value for loc, value in bindings.items()}


ONE_RECT = "(def [x y w h] [10 20 100 50]) (svg [(rect 'r' x y w h)])"


class TestRectTriggers:
    def test_interior_covariant(self):
        _, _, triggers = session_parts(ONE_RECT)
        result = triggers[(0, "INTERIOR")](5.0, -3.0)
        assert names(result.bindings) == {"x": 15.0, "y": 17.0}

    def test_right_edge_controls_width(self):
        _, _, triggers = session_parts(ONE_RECT)
        result = triggers[(0, "RIGHTEDGE")](7.0, 99.0)
        assert names(result.bindings) == {"w": 107.0}

    def test_botleft_contravariant_width(self):
        # §4.2: width varies contravariantly with dx.
        _, _, triggers = session_parts(ONE_RECT)
        result = triggers[(0, "BOTLEFTCORNER")](10.0, 4.0)
        assert names(result.bindings) == {"x": 20.0, "w": 90.0, "h": 54.0}

    def test_topleft_all_four(self):
        _, _, triggers = session_parts(ONE_RECT)
        result = triggers[(0, "TOPLEFTCORNER")](2.0, 3.0)
        assert names(result.bindings) == {
            "x": 12.0, "y": 23.0, "w": 98.0, "h": 47.0}

    def test_trigger_offsets_cumulative(self):
        _, _, triggers = session_parts(ONE_RECT)
        trigger = triggers[(0, "INTERIOR")]
        assert names(trigger(1.0, 0.0).bindings)["x"] == 11.0
        # Offsets are from the drag start, not incremental.
        assert names(trigger(5.0, 0.0).bindings)["x"] == 15.0


class TestCircleTriggers:
    def test_radius_via_right_edge(self):
        _, _, triggers = session_parts(
            "(def r 30) (svg [(circle 'c' 50! 50! r)])")
        result = triggers[(0, "RIGHTEDGE")](12.0, 0.0)
        assert names(result.bindings) == {"r": 42.0}

    def test_radius_via_bottom_edge_uses_dy(self):
        _, _, triggers = session_parts(
            "(def r 30) (svg [(circle 'c' 50! 50! r)])")
        result = triggers[(0, "BOTEDGE")](99.0, 5.0)
        assert names(result.bindings) == {"r": 35.0}


class TestLineTriggers:
    def test_edge_translates_both_points(self):
        source = ("(def [x1 y1 x2 y2] [0 0 10 10]) "
                  "(svg [(line 's' 1! x1 y1 x2 y2)])")
        _, _, triggers = session_parts(source)
        result = triggers[(0, "EDGE")](3.0, 4.0)
        assert names(result.bindings) == {
            "x1": 3.0, "y1": 4.0, "x2": 13.0, "y2": 14.0}


class TestPolygonTriggers:
    def test_point_zone_moves_one_vertex(self):
        source = ("(def [ax ay bx by cx cy] [0 0 10 0 5 8]) "
                  "(svg [(polygon 'f' 's' 1! [[ax ay] [bx by] [cx cy]])])")
        _, _, triggers = session_parts(source)
        result = triggers[(0, "POINT1")](2.0, 3.0)
        assert names(result.bindings) == {"bx": 12.0, "by": 3.0}


class TestSharedLocations:
    def test_shared_parameter_updates_all_boxes(self, three_boxes_session):
        # Dragging box 1's INTERIOR changes whatever location the heuristic
        # assigned; applying it moves related boxes too.
        session = three_boxes_session
        x_before = [session.canvas[i].simple_num("x").value
                    for i in range(3)]
        session.drag_zone(1, "INTERIOR", 10.0, 0.0)
        x_after = [session.canvas[i].simple_num("x").value
                   for i in range(3)]
        assert x_after != x_before
        # Box 1 landed where the user dragged it (plausible update).
        assert x_after[1] == x_before[1] + 10.0

    def test_overconstrained_square_applies_last_binding(self):
        # §4.1 Recap: x and y share location xy; the solutions differ and
        # the implementation applies them in order, satisfying at least one
        # constraint (plausible, not faithful).
        source = "(def xy 100) (svg [(rect 'red' xy xy 50! 50!)])"
        _, _, triggers = session_parts(source)
        result = triggers[(0, "INTERIOR")](10.0, 30.0)
        assert names(result.bindings) == {"xy": 130.0}
        assert result.all_solved

    def test_solver_failure_reported_not_fatal(self):
        # x = x0 + 0*sep: solving for sep fails (Appendix B.2); force the
        # sep assignment by freezing x0.
        source = ("(def [x0 sep w] [50! 30 20]) "
                  "(svg [(rect 'r' (+ x0 (* 0! sep)) 10! w 20!)])")
        _, _, triggers = session_parts(source)
        result = triggers[(0, "LEFTEDGE")](5.0, 0.0)
        failed = [outcome for outcome in result.outcomes
                  if not outcome.solved]
        assert failed, "expected the x-attribute solve to fail"
        assert not result.all_solved

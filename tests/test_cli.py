"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main

LITTLE_SOURCE = """
(def [x y] [10 20])
(svg [(rect 'lightblue' x y 30 40)])
"""

SVG_SOURCE = (
    '<svg xmlns="http://www.w3.org/2000/svg">'
    '<rect x="1" y="2" width="3" height="4" fill="red"/></svg>')


@pytest.fixture
def little_file(tmp_path):
    path = tmp_path / "boxes.little"
    path.write_text(LITTLE_SOURCE, encoding="utf-8")
    return path


class TestRun:
    def test_run_prints_svg(self, little_file, capsys):
        assert main(["run", str(little_file)]) == 0
        out = capsys.readouterr().out
        assert "<rect" in out and 'x="10"' in out

    def test_run_writes_file(self, little_file, tmp_path, capsys):
        out_file = tmp_path / "out.svg"
        assert main(["run", str(little_file), "-o", str(out_file)]) == 0
        assert out_file.read_text().startswith("<svg")
        assert "1 shapes" in capsys.readouterr().out

    def test_run_include_hidden(self, tmp_path, capsys):
        path = tmp_path / "ghost.little"
        path.write_text("(svg [(ghost (rect 'r' 1 2 3 4))])",
                        encoding="utf-8")
        main(["run", str(path)])
        assert "<rect" not in capsys.readouterr().out
        main(["run", str(path), "--include-hidden"])
        assert "<rect" in capsys.readouterr().out

    def test_run_missing_file_exits_nonzero(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "absent.little")]) == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("repro run: cannot read")
        assert len(captured.err.strip().splitlines()) == 1

    def test_run_non_utf8_file_one_line(self, tmp_path, capsys):
        path = tmp_path / "binary.little"
        path.write_bytes(b"\xff\xfe\x00")
        assert main(["run", str(path)]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("repro run: cannot read")
        assert len(captured.err.strip().splitlines()) == 1

    def test_run_unparsable_file_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "broken.little"
        path.write_text("(svg [(rect", encoding="utf-8")
        assert main(["run", str(path)]) == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith(f"repro run: {path}:")
        assert len(captured.err.strip().splitlines()) == 1

    def test_run_runtime_error_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "unbound.little"
        path.write_text("(svg [(rect 'red' nope 1 2 3)])", encoding="utf-8")
        assert main(["run", str(path)]) == 1
        assert "repro run:" in capsys.readouterr().err


class TestCheck:
    def test_check_ok_prints_one_line(self, little_file, capsys):
        assert main(["check", str(little_file)]) == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert captured.out.strip() == \
            f"{little_file}: ok (1 shapes, 4 constants)"

    def test_check_missing_file(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "absent.little")]) == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("repro check: cannot read")
        assert len(captured.err.strip().splitlines()) == 1

    def test_check_non_utf8_file_one_line(self, tmp_path, capsys):
        path = tmp_path / "binary.little"
        path.write_bytes(b"\xff\xfe\x00")
        assert main(["check", str(path)]) == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("repro check: cannot read")
        assert "not valid UTF-8" in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_check_parse_error_one_line_diagnostic(self, tmp_path, capsys):
        path = tmp_path / "broken.little"
        path.write_text("(svg [(rect", encoding="utf-8")
        assert main(["check", str(path)]) == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith(f"repro check: {path}:")
        assert len(captured.err.strip().splitlines()) == 1

    def test_check_runtime_error_one_line_diagnostic(self, tmp_path,
                                                     capsys):
        path = tmp_path / "unbound.little"
        path.write_text("(svg [(rect 'red' nope 1 2 3)])", encoding="utf-8")
        assert main(["check", str(path)]) == 1
        captured = capsys.readouterr()
        assert "repro check:" in captured.err
        assert len(captured.err.strip().splitlines()) == 1


class TestServe:
    def test_serve_wires_options_through(self, monkeypatch):
        calls = {}

        def fake_run_server(host, port, *, max_sessions, shards, workers,
                            verbose, state_dir, eval_budget, faults):
            calls.update(host=host, port=port, max_sessions=max_sessions,
                         shards=shards, workers=workers, verbose=verbose,
                         state_dir=state_dir, eval_budget=eval_budget,
                         faults=faults)
            return 0

        import repro.serve.http as serve_http
        monkeypatch.setattr(serve_http, "run_server", fake_run_server)
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert main(["serve", "--port", "0", "--max-sessions", "5",
                     "--shards", "2", "--workers", "8"]) == 0
        assert calls == {"host": "127.0.0.1", "port": 0,
                         "max_sessions": 5, "shards": 2, "workers": 8,
                         "verbose": False, "state_dir": None,
                         "eval_budget": None, "faults": None}

    def test_serve_wires_fault_options_through(self, monkeypatch,
                                               tmp_path):
        calls = {}

        def fake_run_server(host, port, **kwargs):
            calls.update(kwargs)
            return 0

        import repro.serve.http as serve_http
        monkeypatch.setattr(serve_http, "run_server", fake_run_server)
        monkeypatch.setenv("REPRO_FAULTS", "dispatch.*:0.5")
        monkeypatch.setenv("REPRO_FAULT_SEED", "3")
        state = str(tmp_path / "state")
        assert main(["serve", "--port", "0", "--eval-budget", "123456",
                     "--state-dir", state]) == 0
        assert calls["state_dir"] == state
        assert calls["eval_budget"].max_fuel == 123456
        assert calls["faults"].seed == 3
        assert calls["faults"].rate_for("dispatch.drag") == 0.5


class TestExamples:
    def test_list(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "sine_wave_of_boxes" in out
        assert "ferris_wheel" in out

    def test_render(self, tmp_path, capsys):
        assert main(["examples", "--render", str(tmp_path / "g")]) == 0
        rendered = list((tmp_path / "g").glob("*.svg"))
        assert len(rendered) >= 50


class TestImportSvg:
    def test_import_prints_little(self, tmp_path, capsys):
        path = tmp_path / "in.svg"
        path.write_text(SVG_SOURCE, encoding="utf-8")
        assert main(["import-svg", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.lstrip().startswith(";")
        assert "['rect'" in out

    def test_import_roundtrips_through_run(self, tmp_path, capsys):
        svg_path = tmp_path / "in.svg"
        svg_path.write_text(SVG_SOURCE, encoding="utf-8")
        little_path = tmp_path / "out.little"
        main(["import-svg", str(svg_path), "-o", str(little_path)])
        capsys.readouterr()
        main(["run", str(little_path)])
        assert 'width="3"' in capsys.readouterr().out


class TestStudy:
    def test_study_prints_figure9(self, capsys):
        assert main(["study", "--resamples", "500"]) == 0
        out = capsys.readouterr().out
        assert "Ferris" in out and "paper" in out


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

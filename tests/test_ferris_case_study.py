"""The §6.2 ferris wheel case study as executable assertions."""

import pytest

from repro.editor import LiveSession
from repro.examples import example_source


@pytest.fixture
def ferris():
    return LiveSession(example_source("ferris_wheel"))


def loc_names(assignment):
    return {loc.display() for loc in assignment.location_set}


class TestFerrisAssignments:
    def test_rim_interior_controls_center(self, ferris):
        """(rim, INTERIOR) -> ['cx' -> cx, 'cy' -> cy]: 'the only choices
        that could have been made' (§6.2)."""
        rim = ferris.canvas.shapes_of_kind("circle")[0]
        assignment = ferris.assignments.lookup(rim.index, "INTERIOR")
        assert loc_names(assignment) == {"cx", "cy"}
        analysis = ferris.assignments.analysis(rim.index, "INTERIOR")
        assert analysis.candidate_count == 1   # unambiguous

    def test_rim_edge_controls_spoke_len(self, ferris):
        rim = ferris.canvas.shapes_of_kind("circle")[0]
        assignment = ferris.assignments.lookup(rim.index, "RIGHTEDGE")
        assert loc_names(assignment) == {"spokeLen"}

    def test_car_rightedge_controls_wcar(self, ferris):
        """(cars_i, RIGHTEDGE) -> ['width' -> wCar] for every car."""
        cars = ferris.canvas.shapes_of_kind("rect")
        assert len(cars) == 5
        for car in cars:
            assignment = ferris.assignments.lookup(car.index, "RIGHTEDGE")
            assert loc_names(assignment) == {"wCar"}

    def test_num_spokes_and_rot_angle_frozen(self, ferris):
        """Phase 2 outcome: numSpokes and rotAngle are frozen + sliders,
        so no zone assignment can change them."""
        for assignment in ferris.assignments.chosen.values():
            names = loc_names(assignment)
            assert "numSpokes" not in names
            assert "rotAngle" not in names

    def test_sliders_for_frozen_params(self, ferris):
        captions = [slider.caption() for slider in ferris.sliders.values()]
        assert any("numSpokes" in caption for caption in captions)
        assert any("rotAngle" in caption for caption in captions)


class TestFerrisManipulation:
    def test_drag_rim_moves_everything(self, ferris):
        rim = ferris.canvas.shapes_of_kind("circle")[0]
        car_x_before = ferris.canvas.shapes_of_kind(
            "rect")[0].simple_num("x").value
        ferris.drag_zone(rim.index, "INTERIOR", 30.0, -20.0)
        car_x_after = ferris.canvas.shapes_of_kind(
            "rect")[0].simple_num("x").value
        assert car_x_after == pytest.approx(car_x_before + 30.0)

    def test_drag_car_edge_resizes_all_cars(self, ferris):
        cars = ferris.canvas.shapes_of_kind("rect")
        widths_before = [car.simple_num("width").value for car in cars]
        ferris.drag_zone(cars[0].index, "RIGHTEDGE", 10.0, 0.0)
        widths_after = [car.simple_num("width").value
                        for car in ferris.canvas.shapes_of_kind("rect")]
        assert all(after == before + 10.0
                   for before, after in zip(widths_before, widths_after))

    def test_num_spokes_slider_changes_car_count(self, ferris):
        num_spokes_loc = next(
            loc for loc in ferris.sliders
            if loc.display() == "numSpokes")
        ferris.set_slider(num_spokes_loc, 8.0)
        assert len(ferris.canvas.shapes_of_kind("rect")) == 8

    def test_rot_angle_slider_rotates_cars(self, ferris):
        rot_loc = next(loc for loc in ferris.sliders
                       if loc.display() == "rotAngle")
        x_before = ferris.canvas.shapes_of_kind(
            "rect")[0].simple_num("x").value
        ferris.set_slider(rot_loc, 0.7)
        x_after = ferris.canvas.shapes_of_kind(
            "rect")[0].simple_num("x").value
        assert x_after != x_before
        # Shape count is preserved under rotation.
        assert len(ferris.canvas.shapes_of_kind("rect")) == 5

    def test_undo_restores_case_study_state(self, ferris):
        source = ferris.source()
        rim = ferris.canvas.shapes_of_kind("circle")[0]
        ferris.drag_zone(rim.index, "INTERIOR", 30.0, -20.0)
        ferris.undo()
        assert ferris.source() == source

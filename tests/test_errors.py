"""Error-path coverage: positions in syntax errors, informative runtime
and SVG errors, solver failure messages."""

import pytest

from repro.lang import parse_expr, parse_program
from repro.lang.errors import (LittleRuntimeError, LittleSyntaxError,
                               MatchFailure, SolverFailure, SvgError)
from repro.svg import Canvas


class TestSyntaxErrorReporting:
    def test_position_in_message(self):
        with pytest.raises(LittleSyntaxError) as excinfo:
            parse_expr("(let x 1\n  (+ x @))")
        assert "line 2" in str(excinfo.value)

    def test_unbalanced_paren(self):
        with pytest.raises(LittleSyntaxError):
            parse_expr("(+ 1 2")

    def test_trailing_tokens(self):
        with pytest.raises(LittleSyntaxError):
            parse_expr("1 2")

    def test_keyword_as_pattern_rejected(self):
        with pytest.raises(LittleSyntaxError) as excinfo:
            parse_expr("(let let 1 2)")
        assert "pattern" in str(excinfo.value)

    def test_op_as_pattern_rejected(self):
        with pytest.raises(LittleSyntaxError):
            parse_expr("(\\+ 1)")

    def test_def_in_expression_position(self):
        with pytest.raises(LittleSyntaxError) as excinfo:
            parse_expr("(let a (def b 1) a)")
        assert "def" in str(excinfo.value)


class TestRuntimeErrorReporting:
    def test_unbound_variable_named(self):
        program = parse_program("(svg [missingShape])")
        with pytest.raises(LittleRuntimeError) as excinfo:
            program.evaluate()
        assert "missingShape" in str(excinfo.value)

    def test_match_failure_is_runtime_error(self):
        assert issubclass(MatchFailure, LittleRuntimeError)

    def test_operator_type_error_mentions_types(self):
        program = parse_program("(+ 'a' true)")
        with pytest.raises(LittleRuntimeError) as excinfo:
            program.evaluate()
        message = str(excinfo.value)
        assert "VStr" in message and "VBool" in message


class TestSvgErrorReporting:
    def test_wrong_root_kind(self):
        program = parse_program("(rect 'r' 1 2 3 4)")
        with pytest.raises(SvgError) as excinfo:
            Canvas.from_value(program.evaluate())
        assert "'svg'" in str(excinfo.value)

    def test_error_includes_path_to_bad_node(self):
        program = parse_program("(svg [['rect' [] []] ['circle' 'bad' []]])")
        with pytest.raises(SvgError) as excinfo:
            Canvas.from_value(program.evaluate())
        assert "circle" in str(excinfo.value)

    def test_non_list_output(self):
        program = parse_program("42")
        with pytest.raises(SvgError):
            Canvas.from_value(program.evaluate())


class TestSolverFailureMessages:
    def test_missing_location_message(self):
        from repro.lang.ast import Loc
        from repro.synthesis import solve_addition_only
        from repro.trace import OpTrace
        a, b = Loc(1, "a"), Loc(2, "b")
        with pytest.raises(SolverFailure) as excinfo:
            solve_addition_only({a: 1.0, b: 2.0}, Loc(3, "c"), 5.0,
                                OpTrace("+", (a, b)))
        assert "c" in str(excinfo.value)

    def test_bounded_function_message(self):
        from repro.lang.ast import Loc
        from repro.synthesis import solve_single_occurrence
        from repro.trace import OpTrace
        a = Loc(1, "a")
        with pytest.raises(SolverFailure) as excinfo:
            solve_single_occurrence({a: 0.0}, a, 5.0, OpTrace("cos", (a,)))
        assert "[-1, 1]" in str(excinfo.value)

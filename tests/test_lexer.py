"""Unit tests for the little tokenizer."""

import pytest

from repro.lang.errors import LittleSyntaxError
from repro.lang.lexer import NumberToken, Token, tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def values(source):
    return [token.value for token in tokenize(source)]


class TestPunctuation:
    def test_parens(self):
        assert kinds("()") == ["LPAREN", "RPAREN"]

    def test_brackets(self):
        assert kinds("[]") == ["LBRACK", "RBRACK"]

    def test_bar(self):
        assert kinds("[x|xs]") == ["LBRACK", "SYM", "BAR", "SYM", "RBRACK"]

    def test_nested(self):
        assert kinds("(f [1 2])") == [
            "LPAREN", "SYM", "LBRACK", "NUM", "NUM", "RBRACK", "RPAREN"]


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0].value
        assert token == NumberToken(42.0, "", None)

    def test_float(self):
        assert tokenize("3.14")[0].value.value == pytest.approx(3.14)

    def test_negative(self):
        assert tokenize("-7")[0].value.value == -7.0

    def test_negative_float(self):
        assert tokenize("-0.5")[0].value.value == -0.5

    def test_leading_dot(self):
        assert tokenize(".5")[0].value.value == 0.5

    def test_frozen_annotation(self):
        token = tokenize("3.14!")[0].value
        assert token.ann == "!"

    def test_thawed_annotation(self):
        token = tokenize("10?")[0].value
        assert token.ann == "?"

    def test_range_annotation(self):
        token = tokenize("12{3-30}")[0].value
        assert token.range_ann == (3.0, 30.0)

    def test_frozen_range_annotation(self):
        token = tokenize("12!{3-30}")[0].value
        assert token.ann == "!"
        assert token.range_ann == (3.0, 30.0)

    def test_negative_range_bounds(self):
        token = tokenize("0!{-3.14-3.14}")[0].value
        assert token.range_ann == (-3.14, 3.14)

    def test_range_with_float_bounds(self):
        token = tokenize("1{0.5-2.5}")[0].value
        assert token.range_ann == (0.5, 2.5)

    def test_malformed_range_raises(self):
        with pytest.raises(LittleSyntaxError):
            tokenize("12{3-}")

    def test_minus_followed_by_space_is_symbol(self):
        assert kinds("(- 3 1)") == ["LPAREN", "SYM", "NUM", "NUM", "RPAREN"]

    def test_minus_attached_to_digits_is_number(self):
        tokens = tokenize("-12")
        assert len(tokens) == 1 and tokens[0].kind == "NUM"


class TestStrings:
    def test_simple(self):
        assert values("'hello'") == ["hello"]

    def test_empty(self):
        assert values("''") == [""]

    def test_with_spaces(self):
        assert values("'a b c'") == ["a b c"]

    def test_unterminated_raises(self):
        with pytest.raises(LittleSyntaxError):
            tokenize("'abc")


class TestSymbols:
    def test_identifier(self):
        assert values("foo") == ["foo"]

    def test_identifier_with_digits(self):
        assert values("x0") == ["x0"]

    def test_identifier_with_prime(self):
        assert values("x0'") == ["x0'"]

    def test_operators(self):
        assert values("+ - * / < > <= >= =") == [
            "+", "-", "*", "/", "<", ">", "<=", ">=", "="]

    def test_lambda_backslash(self):
        assert values("\\x") == ["lambda", "x"]

    def test_lambda_unicode(self):
        assert values("λx") == ["lambda", "x"]


class TestCommentsAndWhitespace:
    def test_comment_to_eol(self):
        assert values("; comment\n42") == [NumberToken(42.0, "", None)]

    def test_comment_at_eof(self):
        assert tokenize("; only a comment") == []

    def test_line_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].col == 3

    def test_unexpected_character(self):
        with pytest.raises(LittleSyntaxError):
            tokenize("@")

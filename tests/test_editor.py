"""Integration tests for the headless live-synchronization editor (§4–§5)."""

import pytest

from repro.editor import EditorError, LiveSession


class TestSessionLifecycle:
    def test_requires_exactly_one_input(self):
        with pytest.raises(EditorError):
            LiveSession()

    def test_run_builds_canvas(self, sine_session):
        assert len(sine_session.canvas) == 12

    def test_prepare_builds_triggers_for_active_zones(self, sine_session):
        assert sine_session.active_zone_count() == \
            len(sine_session.triggers)

    def test_zone_names(self, sine_session):
        assert "INTERIOR" in sine_session.zone_names(0)
        assert len(sine_session.zone_names(0)) == 9


class TestHover:
    def test_active_caption(self, sine_session):
        info = sine_session.hover(0, "INTERIOR")
        assert info.active
        assert info.caption == "Active: changes {x0, y0}"

    def test_unselected_locations_reported(self, sine_session):
        # Gray highlight: contributed but not selected (§5).
        info = sine_session.hover(0, "INTERIOR")
        names = {loc.display() for loc in info.unselected}
        assert names == {"sep", "amp"}

    def test_inactive_caption(self):
        session = LiveSession("(svg [(rect 'r' 1! 2! 3! 4!)])")
        info = session.hover(0, "INTERIOR")
        assert not info.active and info.caption == "Inactive"


class TestDragging:
    def test_paper_drag_box0(self, sine_session):
        """Dragging box 0 right updates x0 (§2.3)."""
        result = sine_session.drag_zone(0, "INTERIOR", 45.0, 0.0)
        bindings = {loc.display(): value
                    for loc, value in result.bindings.items()}
        assert bindings == {"x0": 95.0, "y0": 120.0}
        assert "95" in sine_session.source().splitlines()[0]

    def test_drag_updates_all_related_shapes(self, sine_session):
        xs_before = [sine_session.canvas[i].simple_num("x").value
                     for i in range(12)]
        sine_session.drag_zone(0, "INTERIOR", 45.0, 0.0)
        xs_after = [sine_session.canvas[i].simple_num("x").value
                    for i in range(12)]
        assert all(after == before + 45.0
                   for before, after in zip(xs_before, xs_after))

    def test_drag_third_box_changes_sep(self, sine_session):
        """Box 2 is assigned θ3 = ['x' -> sep, 'y' -> y0] by the fair
        rotation (§4.1); dragging it solves 140 = x0 + 2*sep -> sep=45."""
        result = sine_session.drag_zone(2, "INTERIOR", 30.0, 0.0)
        bindings = {loc.display(): value
                    for loc, value in result.bindings.items()}
        assert bindings["sep"] == 45.0

    def test_inactive_zone_drag_rejected(self):
        session = LiveSession("(svg [(rect 'r' 1! 2! 3! 4!)])")
        with pytest.raises(EditorError):
            session.start_drag(0, "INTERIOR")

    def test_drag_without_start_rejected(self, sine_session):
        with pytest.raises(EditorError):
            sine_session.drag(1.0, 1.0)

    def test_release_without_start_rejected(self, sine_session):
        with pytest.raises(EditorError):
            sine_session.release()

    def test_intermediate_drags_live_update(self, sine_session):
        sine_session.start_drag(0, "INTERIOR")
        sine_session.drag(10.0, 0.0)
        assert sine_session.canvas[0].simple_num("x").value == 60.0
        sine_session.drag(20.0, 0.0)   # cumulative from drag start
        assert sine_session.canvas[0].simple_num("x").value == 70.0
        sine_session.release()

    def test_release_reprepares(self, sine_session):
        sine_session.start_drag(0, "INTERIOR")
        sine_session.drag(10.0, 0.0)
        sine_session.release()
        # New triggers exist and reflect the updated program.
        result = sine_session.drag_zone(0, "INTERIOR", 5.0, 0.0)
        bindings = {loc.display(): value
                    for loc, value in result.bindings.items()}
        assert bindings["x0"] == 65.0

    def test_freeze_highlight_after_drag(self, sine_session):
        sine_session.start_drag(0, "INTERIOR")
        sine_session.drag(10.0, 0.0)
        highlight = sine_session.freeze_highlight()
        assert len(highlight["green"]) == 2
        assert highlight["red"] == ()
        sine_session.release()


class TestUndo:
    def test_undo_restores_program(self, sine_session):
        original = sine_session.source()
        sine_session.drag_zone(0, "INTERIOR", 45.0, 0.0)
        assert sine_session.source() != original
        sine_session.undo()
        assert sine_session.source() == original

    def test_undo_empty_history_rejected(self, sine_session):
        with pytest.raises(EditorError):
            sine_session.undo()

    def test_nothing_recorded_for_noop_drag(self, sine_session):
        sine_session.start_drag(0, "INTERIOR")
        sine_session.release()
        assert sine_session.history == []


class TestSliders:
    def test_slider_collected_from_range_annotation(self, sine_session):
        assert len(sine_session.sliders) == 1
        slider = next(iter(sine_session.sliders.values()))
        assert (slider.lo, slider.hi, slider.value) == (3.0, 30.0, 12.0)

    def test_set_slider_changes_shape_count(self, sine_session):
        loc = next(iter(sine_session.sliders))
        sine_session.set_slider(loc, 5.0)
        assert len(sine_session.canvas) == 5

    def test_set_slider_clamps(self, sine_session):
        loc = next(iter(sine_session.sliders))
        sine_session.set_slider(loc, 100.0)
        assert len(sine_session.canvas) == 30

    def test_slider_undo(self, sine_session):
        loc = next(iter(sine_session.sliders))
        sine_session.set_slider(loc, 5.0)
        sine_session.undo()
        assert len(sine_session.canvas) == 12

    def test_unknown_slider_rejected(self, sine_session):
        from repro.lang.ast import Loc
        with pytest.raises(EditorError):
            sine_session.set_slider(Loc(999999), 1.0)

    def test_frozen_slider_value_not_draggable(self, sine_session):
        # n is frozen: no zone assignment may change it.
        n_loc = next(iter(sine_session.sliders))
        for assignment in sine_session.assignments.chosen.values():
            assert n_loc not in assignment.location_set


class TestExportAndSource:
    def test_export_svg(self, sine_session):
        svg = sine_session.export_svg()
        assert svg.count("<rect") == 12

    def test_export_excludes_hidden(self):
        session = LiveSession(
            "(svg [(ghost (rect 'r' 1 2 3 4)) (circle 'c' 5 6 7)])")
        svg = session.export_svg()
        assert "<rect" not in svg and "<circle" in svg

    def test_source_roundtrips(self, sine_session):
        from repro.lang import parse_program
        reparsed = parse_program(sine_session.source())
        assert len(reparsed.rho0) == len(sine_session.program.rho0)


class TestHeuristicModes:
    def test_biased_session(self, sine_source):
        session = LiveSession(sine_source, heuristic="biased")
        assert session.active_zone_count() > 0

    def test_auto_freeze_mode(self):
        # auto_freeze freezes all literals: every zone is inactive.
        session = LiveSession("(svg [(rect 'r' 1 2 3 4)])",
                              auto_freeze=True)
        assert session.active_zone_count() == 0

    def test_thaw_in_auto_freeze_mode(self):
        # Only w is thawed: every Active zone controls w and nothing else.
        session = LiveSession("(def w 30?) (svg [(rect 'r' 1 2 w 4)])",
                              auto_freeze=True)
        used = set()
        for assignment in session.assignments.chosen.values():
            used.update(loc.display() for loc in assignment.location_set)
        assert used == {"w"}
        assert (0, "RIGHTEDGE") in session.triggers
        # Zones not involving width stay Inactive.
        assert (0, "BOTEDGE") not in session.triggers

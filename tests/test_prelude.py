"""Tests for the little Prelude (list combinators, numeric helpers, SVG
constructors, widgets)."""

import math

import pytest

from repro.lang import (VBool, VNum, VStr, parse_program, to_pylist,
                        value_equal)
from repro.trace import is_addition_only, locs


def run(expr_source):
    """Evaluate an expression with the Prelude in scope."""
    program = parse_program(expr_source)
    return program.evaluate()


def nums(value):
    return [item.value for item in to_pylist(value)]


class TestListFunctions:
    def test_range(self):
        assert nums(run("(range 2 5)")) == [2, 3, 4, 5]

    def test_range_empty(self):
        assert nums(run("(range 5 2)")) == []

    def test_zero_to(self):
        assert nums(run("(zeroTo 4)")) == [0, 1, 2, 3]

    def test_list0n_inclusive(self):
        assert nums(run("(list0N 3)")) == [0, 1, 2, 3]

    def test_map(self):
        assert nums(run("(map (\\x (* x x)) [1 2 3])")) == [1, 4, 9]

    def test_mapi_passes_index(self):
        assert nums(run("(mapi (\\[i x] (+ i x)) [10 20 30])")) == \
            [10, 21, 32]

    def test_foldl(self):
        assert run("(foldl (\\(x acc) (+ acc x)) 0 [1 2 3 4])").value == 10

    def test_foldl_order(self):
        # foldl builds strings left-to-right through the accumulator
        assert run("(foldl (\\(x acc) (+ acc x)) '' ['a' 'b' 'c'])") == \
            VStr("abc")

    def test_foldr_order(self):
        assert run("(foldr (\\(x acc) (+ x acc)) '' ['a' 'b' 'c'])") == \
            VStr("abc")

    def test_append(self):
        assert nums(run("(append [1 2] [3 4])")) == [1, 2, 3, 4]

    def test_concat(self):
        assert nums(run("(concat [[1] [] [2 3]])")) == [1, 2, 3]

    def test_concat_map(self):
        assert nums(run("(concatMap (\\x [x x]) [1 2])")) == [1, 1, 2, 2]

    def test_zip(self):
        pairs = to_pylist(run("(zip [1 2 3] ['a' 'b'])"))
        assert len(pairs) == 2
        first = to_pylist(pairs[0])
        assert first[0].value == 1 and first[1] == VStr("a")

    def test_filter(self):
        assert nums(run("(filter (\\x (< x 3)) [1 5 2 8])")) == [1, 2]

    def test_reverse(self):
        assert nums(run("(reverse [1 2 3])")) == [3, 2, 1]

    def test_len(self):
        assert run("(len [1 2 3 4 5])").value == 5

    def test_sum(self):
        assert run("(sum [1 2 3])").value == 6

    def test_nth(self):
        assert run("(nth [10 20 30] 1)").value == 20

    def test_take_drop(self):
        assert nums(run("(take 2 [1 2 3 4])")) == [1, 2]
        assert nums(run("(drop 2 [1 2 3 4])")) == [3, 4]

    def test_repeat(self):
        assert nums(run("(repeat 3 7)")) == [7, 7, 7]

    def test_cart_prod(self):
        pairs = to_pylist(run("(cartProd [0 1] [0 1 2])"))
        assert len(pairs) == 6

    def test_intermingle(self):
        assert nums(run("(intermingle [1 3] [2 4])")) == [1, 2, 3, 4]


class TestNumericHelpers:
    def test_two_pi(self):
        assert run("twoPi").value == pytest.approx(2 * math.pi)

    def test_clamp(self):
        assert run("(clamp 0 10 15)").value == 10
        assert run("(clamp 0 10 -5)").value == 0
        assert run("(clamp 0 10 5)").value == 5

    def test_between(self):
        assert run("(between 0 10 5)") == VBool(True)
        assert run("(between 0 10 15)") == VBool(False)

    def test_min_max(self):
        assert run("(min 3 7)").value == 3
        assert run("(max 3 7)").value == 7

    def test_deg_rad_roundtrip(self):
        assert run("(radToDeg (degToRad 90))").value == pytest.approx(90)

    def test_and_or_xor(self):
        assert run("(and true false)") == VBool(False)
        assert run("(or true false)") == VBool(True)
        assert run("(xor true true)") == VBool(False)

    def test_mult_value(self):
        assert run("(mult 3 7)").value == 21

    def test_mult_trace_is_addition_only(self):
        # Appendix C: (mult 2 sep) has the addition-only trace
        # (+ sep (+ sep 0)).
        program = parse_program("(def sep 30) (mult 2 sep)")
        value = program.evaluate()
        assert value.value == 60
        assert is_addition_only(value.trace)
        assert sorted(loc.display() for loc in locs(value.trace)) == ["sep"]

    def test_div(self):
        assert run("(div 17 5)").value == 3


class TestShapeConstructors:
    def _attrs(self, value):
        kind, attrs, children = to_pylist(value)
        return {to_pylist(pair)[0].value: to_pylist(pair)[1]
                for pair in to_pylist(attrs)}

    def test_rect(self):
        attrs = self._attrs(run("(rect 'red' 10 20 30 40)"))
        assert attrs["x"].value == 10
        assert attrs["width"].value == 30
        assert attrs["fill"] == VStr("red")

    def test_circle(self):
        attrs = self._attrs(run("(circle 'blue' 5 6 7)"))
        assert attrs["cx"].value == 5 and attrs["r"].value == 7

    def test_ring_has_stroke(self):
        attrs = self._attrs(run("(ring 'gray' 4 0 0 10)"))
        assert attrs["stroke"] == VStr("gray")
        assert attrs["fill"] == VStr("none")

    def test_ellipse(self):
        attrs = self._attrs(run("(ellipse 'g' 1 2 3 4)"))
        assert attrs["rx"].value == 3 and attrs["ry"].value == 4

    def test_line(self):
        attrs = self._attrs(run("(line 'black' 2 1 2 3 4)"))
        assert attrs["x1"].value == 1 and attrs["y2"].value == 4

    def test_square_center(self):
        attrs = self._attrs(run("(squareCenter 'red' 100 100 40)"))
        assert attrs["x"].value == 80 and attrs["width"].value == 40

    def test_polygon_points(self):
        attrs = self._attrs(run("(polygon 'a' 'b' 1 [[0 0] [1 0] [0 1]])"))
        points = to_pylist(attrs["points"])
        assert len(points) == 3

    def test_text_attr(self):
        attrs = self._attrs(run("(text 5 6 'hello')"))
        assert attrs["TEXT"] == VStr("hello")

    def test_svg_wrapper(self):
        kind, attrs, children = to_pylist(run("(svg [(circle 'r' 1 2 3)])"))
        assert kind == VStr("svg")
        assert len(to_pylist(children)) == 1

    def test_add_attr_appends(self):
        attrs = self._attrs(run("(addAttr (rect 'r' 1 2 3 4) ['rx' 5])"))
        assert attrs["rx"].value == 5

    def test_ghost_marks_hidden(self):
        attrs = self._attrs(run("(ghost (rect 'r' 1 2 3 4))"))
        assert "HIDDEN" in attrs

    def test_ghosts_maps(self):
        shapes = to_pylist(run("(ghosts [(rect 'r' 1 2 3 4)])"))
        assert len(shapes) == 1

    def test_nstar_point_count(self):
        attrs = self._attrs(run("(nStar 'f' 's' 1 5 40 20 0 100 100)"))
        assert len(to_pylist(attrs["points"])) == 10

    def test_n_points_on_circle_count_and_radius(self):
        points = to_pylist(run("(nPointsOnCircle 6 0 0 0 10)"))
        assert len(points) == 6
        for point in points:
            x, y = (coord.value for coord in to_pylist(point))
            assert math.hypot(x, y) == pytest.approx(10)

    def test_n_points_on_circle_first_point_top(self):
        # Point 0 sits at angle pi/2 (top of circle, y negated): (0, -r).
        points = to_pylist(run("(nPointsOnCircle 4 0 0 0 10)"))
        x, y = (coord.value for coord in to_pylist(points[0]))
        assert x == pytest.approx(0, abs=1e-9)
        assert y == pytest.approx(-10)


class TestWidgets:
    def test_num_slider_returns_value_and_shapes(self):
        pair = to_pylist(run("(numSlider 0 100 20 0 10 'n = ' 3.5)"))
        assert pair[0].value == pytest.approx(3.5)
        assert len(to_pylist(pair[1])) == 5

    def test_int_slider_rounds(self):
        pair = to_pylist(run("(intSlider 0 100 20 0 10 'i = ' 3.5)"))
        assert pair[0].value == 4

    def test_slider_clamps(self):
        pair = to_pylist(run("(numSlider 0 100 20 0 10 'n = ' 25)"))
        assert pair[0].value == 10

    def test_slider_shapes_are_ghosts(self):
        pair = to_pylist(run("(numSlider 0 100 20 0 10 'n = ' 5)"))
        for shape in to_pylist(pair[1]):
            kind, attrs, children = to_pylist(shape)
            keys = [to_pylist(p)[0].value for p in to_pylist(attrs)]
            assert "HIDDEN" in keys

    def test_bool_slider_true_below_half(self):
        pair = to_pylist(run("(boolSlider 0 100 20 'b = ' 0.25)"))
        assert pair[0] == VBool(True)

    def test_bool_slider_false_above_half(self):
        pair = to_pylist(run("(boolSlider 0 100 20 'b = ' 0.75)"))
        assert pair[0] == VBool(False)

    def test_enum_slider_picks_item(self):
        pair = to_pylist(run(
            "(enumSlider 0 100 20 ['a' 'b' 'c'] 's = ' 1.2)"))
        assert pair[0] == VStr("b")

    def test_xy_slider_returns_pair(self):
        pair = to_pylist(run(
            "(xySlider 0 100 0 100 0 10 0 10 3 7)"))
        xy = to_pylist(pair[0])
        assert xy[0].value == 3 and xy[1].value == 7

    def test_button(self):
        pair = to_pylist(run("(button 50 50 'go' 0.25)"))
        assert pair[0] == VBool(True)


class TestPreludeFreezing:
    def test_all_prelude_literals_frozen(self):
        program = parse_program("(+ 1 2)")
        prelude_locs = [loc for loc in program.rho0 if loc.in_prelude]
        assert prelude_locs, "prelude literals should be present"
        assert all(loc.frozen for loc in prelude_locs)

    def test_unfrozen_prelude_mode(self):
        program = parse_program("(+ 1 2)", prelude_frozen=False)
        prelude_locs = [loc for loc in program.rho0 if loc.in_prelude]
        assert any(not loc.frozen for loc in prelude_locs)

"""Round-trip tests for the pretty-printer."""

import pytest

from repro.lang import (evaluate, parse_expr, parse_top_level, unparse,
                        value_equal)
from repro.lang.unparser import unparse_pattern
from repro.lang.parser import Parser
from repro.lang.lexer import tokenize


def roundtrip(source):
    """unparse(parse(source)) must re-parse to an equivalent program."""
    expr = parse_expr(source)
    printed = unparse(expr)
    reparsed = parse_expr(printed)
    return expr, printed, reparsed


ROUNDTRIP_SOURCES = [
    "42",
    "3.5",
    "-7",
    "3.14!",
    "5?",
    "12!{3-30}",
    "0{-3.14-3.14}",
    "'hello world'",
    "true",
    "false",
    "[]",
    "[1 2 3]",
    "[1|rest]",
    "[1 2|rest]",
    "x0",
    "(\\x x)",
    "(\\(a b) (+ a b))",
    "(\\[i x] x)",
    "(f a b)",
    "(+ 1 2)",
    "(pi)",
    "(sin (* 2 (pi)))",
    "(let x 1 x)",
    "(letrec f (\\x (f x)) f)",
    "(let [a b] [1 2] (+ a b))",
    "(case xs ([] 0) ([x|rest] x))",
    "(if (< a b) a b)",
]


@pytest.mark.parametrize("source", ROUNDTRIP_SOURCES)
def test_roundtrip_evaluable_structure(source):
    expr, printed, reparsed = roundtrip(source)
    # Same printed form again => stable fixpoint after one round.
    assert unparse(reparsed) == printed


@pytest.mark.parametrize("source", [
    "(let x 5 (+ x 1))",
    "(if (< 1 2) 10 20)",
    "((\\(a b) (* a b)) 6 7)",
    "(case [1 2] ([] 0) ([x|rest] x))",
])
def test_roundtrip_preserves_meaning(source):
    expr = parse_expr(source)
    reparsed = parse_expr(unparse(expr))
    assert value_equal(evaluate(expr), evaluate(reparsed))


def test_defs_unparse_as_defs():
    expr = parse_top_level("(def a 1)\n(def b 2)\n(+ a b)")
    printed = unparse(expr)
    assert printed.startswith("(def a 1)")
    assert "(def b 2)" in printed


def test_defrec_unparses_as_defrec():
    expr = parse_top_level("(defrec f (\\x (f x))) (f 1)")
    assert unparse(expr).startswith("(defrec f")


def test_annotations_survive_roundtrip():
    expr = parse_top_level("(def n 12!{3-30}) n")
    printed = unparse(expr)
    assert "12!{3-30}" in printed


def test_number_formatting_integral():
    assert unparse(parse_expr("42")) == "42"


def test_number_formatting_fractional():
    assert unparse(parse_expr("2.5")) == "2.5"


def test_pattern_printing():
    parser = Parser(tokenize("[a [b c]|rest]"))
    pattern = parser.parse_pattern()
    assert unparse_pattern(pattern) == "[a [b c]|rest]"


def test_multiline_lets_indent():
    printed = unparse(parse_expr("(let x 1 (let y 2 (+ x y)))"))
    assert printed.count("\n") >= 1
    assert parse_expr(printed.replace("\n", " ")) is not None

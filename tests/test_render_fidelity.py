"""Render fidelity: every corpus export is well-formed XML whose element
population matches the canvas."""

import xml.etree.ElementTree as ElementTree

import pytest

from repro.examples import example_names, load_example
from repro.svg import Canvas, render_canvas

ALL_NAMES = example_names()


def exported_tree(name, include_hidden=False):
    program = load_example(name)
    canvas = Canvas.from_value(program.evaluate())
    text = render_canvas(canvas.root, include_hidden=include_hidden)
    return canvas, ElementTree.fromstring(text)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_export_is_well_formed_xml(name):
    canvas, root = exported_tree(name, include_hidden=True)
    assert root.tag.endswith("svg")
    element_count = sum(1 for _ in root.iter()) - 1   # minus root
    assert element_count == len(canvas)


@pytest.mark.parametrize("name", ["sliders", "tile_pattern",
                                  "rounded_rect", "color_picker"])
def test_hidden_shapes_stripped_from_export(name):
    canvas, root = exported_tree(name, include_hidden=False)
    element_count = sum(1 for _ in root.iter()) - 1
    assert element_count == len(canvas.visible_shapes())


def test_numeric_attributes_have_no_units():
    _, root = exported_tree("three_boxes")
    rect = next(el for el in root.iter() if el.tag.endswith("rect"))
    assert rect.get("x").replace(".", "").lstrip("-").isdigit()


def test_points_attribute_format():
    _, root = exported_tree("triangles")
    polygon = next(el for el in root.iter()
                   if el.tag.endswith("polygon"))
    for pair in polygon.get("points").split(" "):
        x, y = pair.split(",")
        float(x), float(y)


def test_path_attribute_format():
    _, root = exported_tree("botanic_garden_logo")
    path = next(el for el in root.iter() if el.tag.endswith("path"))
    assert path.get("d").startswith("M ")


def test_text_content_survives():
    _, root = exported_tree("misc_shapes")
    text = next(el for el in root.iter() if el.tag.endswith("text"))
    assert "misc shapes" in (text.text or "")


def test_color_numbers_become_css():
    _, root = exported_tree("color_wheel")
    paths = [el for el in root.iter() if el.tag.endswith("path")]
    assert all(el.get("fill").startswith(("hsl(", "rgb("))
               for el in paths)


def test_transforms_rendered():
    _, root = exported_tree("sample_rotations")
    rects = [el for el in root.iter() if el.tag.endswith("rect")]
    assert all(rect.get("transform", "").startswith("rotate(")
               for rect in rects)

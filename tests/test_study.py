"""Tests for the user-study reproduction (Appendix E/F, Figure 9)."""

import pytest

from repro.study import (DEFAULT_SEED, MeanEstimate, N_PARTICIPANTS,
                         PAPER_RESULTS, TASKS, analyze_all,
                         analyze_comparison, bootstrap_t_mean,
                         expand_counts, experienced_fraction, format_figure9,
                         format_histogram, hypothesis1_table,
                         hypothesis2_holds, hypothesis2_table,
                         plans_to_try_fraction)
from repro.study.data import A_VS_B, COMPARISONS, C_VS_A, C_VS_B


class TestData:
    def test_every_question_has_25_responses(self):
        for table in (A_VS_B, C_VS_A, C_VS_B):
            for task, counts in table.items():
                assert sum(counts) == N_PARTICIPANTS, task

    def test_expand_counts(self):
        assert expand_counts([1, 0, 2, 0, 1]) == [-2, 0, 0, 2]

    def test_expand_counts_validates_length(self):
        with pytest.raises(ValueError):
            expand_counts([1, 2, 3])


class TestMeansMatchPaperExactly:
    @pytest.mark.parametrize("comparison", list(COMPARISONS))
    @pytest.mark.parametrize("task", TASKS)
    def test_mean(self, comparison, task):
        result = analyze_comparison(comparison, task, resamples=100)
        assert result.estimate.mean == pytest.approx(result.paper_mean,
                                                     abs=1e-9)


class TestConfidenceIntervals:
    def test_cis_close_to_paper(self):
        """Bootstrap-t CIs depend on resampling, but with 10k resamples
        they land within a small tolerance of the published intervals."""
        for result in analyze_all():
            low, high = result.paper_interval
            assert result.estimate.low == pytest.approx(low, abs=0.12)
            assert result.estimate.high == pytest.approx(high, abs=0.12)

    def test_interval_contains_mean(self):
        for result in analyze_all(resamples=1000):
            assert result.estimate.low <= result.estimate.mean \
                <= result.estimate.high

    def test_deterministic_given_seed(self):
        first = bootstrap_t_mean([1, 2, 3, 4, 5], seed=7)
        second = bootstrap_t_mean([1, 2, 3, 4, 5], seed=7)
        assert first == second

    def test_degenerate_data(self):
        estimate = bootstrap_t_mean([3.0, 3.0, 3.0])
        assert estimate == MeanEstimate(3.0, 3.0, 3.0)

    def test_requires_two_observations(self):
        with pytest.raises(ValueError):
            bootstrap_t_mean([1.0])


class TestHypotheses:
    def test_h1_heuristics_sometimes_preferred(self):
        """Keyboard shows positive preference for heuristics (B); Ferris
        does not — heuristics are *sometimes* preferable (§E.2)."""
        table = {r.task: r.estimate.mean
                 for r in hypothesis1_table(resamples=100)}
        assert table["keyboard"] > 0
        assert table["ferris"] < 0
        assert abs(table["tessellation"]) < 0.5

    def test_h2_direct_manipulation_preferred(self):
        assert hypothesis2_holds(resamples=100)

    def test_h2_means(self):
        tables = hypothesis2_table(resamples=100)
        assert [round(r.estimate.mean, 2)
                for r in tables["c_vs_a"]] == [1.12, 0.92, 0.76]
        assert [round(r.estimate.mean, 2)
                for r in tables["c_vs_b"]] == [0.80, 1.24, 1.00]

    def test_background_64_percent_experienced(self):
        assert experienced_fraction() == pytest.approx(0.64)

    def test_plans_to_try(self):
        assert plans_to_try_fraction() == pytest.approx(0.60)


class TestRendering:
    def test_histogram_bars(self):
        text = format_histogram([3, 14, 2, 5, 1])
        assert "##############" in text   # the 14-bar
        assert "(3)" in text and "(1)" in text

    def test_figure9_contains_all_tasks(self):
        text = format_figure9(resamples=200)
        for task in ("Ferris", "Keyboard", "Tessellation"):
            assert task in text
        assert "64%" in text

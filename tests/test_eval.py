"""Unit tests for the evaluator and trace instrumentation (E-OP-NUM)."""

import math

import pytest

from repro.lang import (VBool, VClosure, VCons, VNil, VNum, VStr, evaluate,
                        parse_expr, parse_top_level, to_pylist)
from repro.lang.errors import LittleRuntimeError, MatchFailure
from repro.trace import OpTrace, format_trace, locs


def run(source):
    return evaluate(parse_expr(source))


def run_top(source):
    return evaluate(parse_top_level(source))


class TestBaseValues:
    def test_number(self):
        value = run("42")
        assert isinstance(value, VNum) and value.value == 42.0

    def test_number_trace_is_its_location(self):
        value = run("42")
        assert value.trace.ident > 0   # a Loc

    def test_string(self):
        assert run("'hi'") == VStr("hi")

    def test_bool(self):
        assert run("true") == VBool(True)

    def test_nil(self):
        assert run("[]") == VNil()

    def test_list(self):
        value = run("[1 2]")
        items = to_pylist(value)
        assert [item.value for item in items] == [1.0, 2.0]

    def test_lambda_is_closure(self):
        assert isinstance(run("(\\x x)"), VClosure)


class TestArithmetic:
    @pytest.mark.parametrize("source,expected", [
        ("(+ 1 2)", 3.0),
        ("(- 10 4)", 6.0),
        ("(* 3 4)", 12.0),
        ("(/ 10 4)", 2.5),
        ("(mod 7 3)", 1.0),
        ("(pow 2 10)", 1024.0),
        ("(floor 3.7)", 3.0),
        ("(ceiling 3.2)", 4.0),
        ("(round 3.5)", 4.0),
        ("(round 3.4)", 3.0),
        ("(abs -5)", 5.0),
        ("(neg 5)", -5.0),
        ("(sqrt 16)", 4.0),
    ])
    def test_numeric_ops(self, source, expected):
        assert run(source).value == expected

    def test_pi(self):
        assert run("(pi)").value == pytest.approx(math.pi)

    def test_trig(self):
        assert run("(sin 0)").value == pytest.approx(0.0)
        assert run("(cos 0)").value == pytest.approx(1.0)
        assert run("(arccos 1)").value == pytest.approx(0.0)
        assert run("(arcsin 1)").value == pytest.approx(math.pi / 2)

    def test_division_by_zero_raises(self):
        with pytest.raises(LittleRuntimeError):
            run("(/ 1 0)")

    def test_arccos_domain_error(self):
        with pytest.raises(LittleRuntimeError):
            run("(arccos 2)")

    def test_sqrt_negative_raises(self):
        with pytest.raises(LittleRuntimeError):
            run("(sqrt -1)")


class TestComparisonsAndBooleans:
    @pytest.mark.parametrize("source,expected", [
        ("(< 1 2)", True),
        ("(< 2 1)", False),
        ("(> 2 1)", True),
        ("(<= 2 2)", True),
        ("(>= 1 2)", False),
        ("(= 3 3)", True),
        ("(= 3 4)", False),
        ("(not true)", False),
        ("(not false)", True),
        ("(= 'a' 'a')", True),
        ("(= 'a' 'b')", False),
        ("(= true true)", True),
    ])
    def test_comparison(self, source, expected):
        assert run(source) == VBool(expected)

    def test_comparisons_are_traceless(self):
        assert not hasattr(run("(< 1 2)"), "trace")


class TestStrings:
    def test_concat(self):
        assert run("(+ 'a' 'b')") == VStr("ab")

    def test_to_string_integral(self):
        assert run("(toString 42)") == VStr("42")

    def test_to_string_float(self):
        assert run("(toString 2.5)") == VStr("2.5")

    def test_to_string_bool(self):
        assert run("(toString true)") == VStr("true")

    def test_type_error_reported(self):
        with pytest.raises(LittleRuntimeError):
            run("(+ 'a' 1)")


class TestBindingForms:
    def test_let(self):
        assert run("(let x 5 (+ x x))").value == 10.0

    def test_let_shadowing(self):
        assert run("(let x 1 (let x 2 x))").value == 2.0

    def test_let_list_pattern(self):
        assert run("(let [a b] [3 4] (+ a b))").value == 7.0

    def test_let_nested_pattern(self):
        assert run("(let [[a b] c] [[1 2] 3] (+ a (+ b c)))").value == 6.0

    def test_let_pattern_mismatch_raises(self):
        with pytest.raises(MatchFailure):
            run("(let [a b] [1] a)")

    def test_letrec_recursion(self):
        source = ("(letrec fact (\\n (if (< n 1) 1 (* n (fact (- n 1)))))"
                  " (fact 5))")
        assert run(source).value == 120.0

    def test_lambda_application(self):
        assert run("((\\x (* x x)) 6)").value == 36.0

    def test_multi_arg_application(self):
        assert run("((\\(a b) (- a b)) 10 3)").value == 7.0

    def test_closure_captures_environment(self):
        assert run("(let a 10 ((\\x (+ x a)) 5))").value == 15.0

    def test_apply_non_function_raises(self):
        with pytest.raises(LittleRuntimeError):
            run("(1 2)")

    def test_unbound_variable_raises(self):
        with pytest.raises(LittleRuntimeError):
            run("nope")


class TestCase:
    def test_first_matching_branch(self):
        assert run("(case 2 (1 'one') (2 'two') (n 'other'))") == VStr("two")

    def test_catch_all(self):
        assert run("(case 9 (1 'one') (n 'other'))") == VStr("other")

    def test_list_destructuring(self):
        assert run("(case [1 2] ([] 0) ([x|rest] x))").value == 1.0

    def test_no_match_raises(self):
        with pytest.raises(MatchFailure):
            run("(case 3 (1 'one') (2 'two'))")

    def test_if_sugar(self):
        assert run("(if (< 1 2) 'yes' 'no')") == VStr("yes")


class TestTraceConstruction:
    def test_op_builds_expression_trace(self):
        value = run("(+ 1 2)")
        assert isinstance(value.trace, OpTrace)
        assert value.trace.op == "+"
        assert len(value.trace.args) == 2

    def test_nested_trace_structure(self):
        value = run_top("(def [a b] [2 3]) (* (+ a 1) b)")
        assert value.trace.op == "*"
        inner = value.trace.args[0]
        assert inner.op == "+"
        assert inner.args[0].display() == "a"
        assert value.trace.args[1].display() == "b"

    def test_trace_locations_named_canonically(self):
        value = run_top("(def [x0 sep] [50 30]) (+ x0 sep)")
        names = sorted(loc.display() for loc in locs(value.trace))
        assert names == ["sep", "x0"]

    def test_frozen_locations_excluded_from_locs(self):
        value = run_top("(def a 5) (+ a 3!)")
        assert sorted(loc.display() for loc in locs(value.trace)) == ["a"]

    def test_control_flow_not_recorded(self):
        # The branch condition leaves no mark on the result trace
        # (dataflow-only traces, §2.1).
        value = run_top("(def a 5) (if (< a 10) (+ a 1!) (+ a 2!))")
        assert value.trace.op == "+"
        assert len(locs(value.trace)) == 1

    def test_pi_trace(self):
        value = run("(pi)")
        assert value.trace == OpTrace("pi", ())


class TestTailCalls:
    def test_deep_tail_recursion_via_let(self):
        # A long right-nested chain of lets should not exhaust the stack.
        source = "(letrec loop (\\n (if (< n 1) 0 (loop (- n 1)))) (loop 2000))"
        assert run(source).value == 0.0

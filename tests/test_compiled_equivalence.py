"""Differential equivalence: the compiled drag path is indistinguishable
from the interpreted one — corpus-wide, at every step.

The trace compiler (:mod:`repro.lang.compile`) is an *optimization* of
the guarded replay, never a second semantics.  These tests run two
sessions of the same parsed program in lockstep — one pinned to the
interpreter, one to the compiled artifact — through randomized gestures,
slider moves, value edits and undo, asserting byte-identical SVG, trace
keys, trigger/zone structure, hover data and source text after **every**
step; plus targeted cases for each escalation rule (guard flip, compile
failure, structural invalidation, injected specialization faults) and
for the artifact's snapshot/seed lifecycle.

Sharing one parsed :class:`~repro.lang.program.Program` between the two
sessions is what makes the signatures comparable (location idents are
assigned at parse time) — and is safe: programs are immutable under
substitution, and each session records its own :class:`EvalCache`.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.lang.compile as compile_module
from repro.editor import LiveSession
from repro.examples import example_names, example_source
from repro.lang import parse_program
from repro.lang.compile import (CompileUnsupported, compiled_enabled,
                                ensure_compiled, force_compiled, specialize)
from repro.lang.errors import LittleError, ResourceExhausted
from repro.lang.eval import EvalBudget
from repro.lang.incremental import record_evaluation
from repro.serve.faults import FaultPlan, InjectedFault, fail_point
from repro.trace.trace import trace_key

#: Gesture shape mirroring tests/test_incremental_prepare.py.
MAX_STEPS = 4


def make_pair(source):
    """Two sessions of one parsed program: interpreter vs compiled."""
    base = parse_program(source)
    interp = LiveSession(program=base, compiled=False)
    compiled = LiveSession(program=base, compiled=True)
    return interp, compiled


def signature(session):
    """Everything the user can observe, as comparable values."""
    canvas = session.canvas
    hover = tuple(
        (key,) + tuple(getattr(session.hover(*key), field)
                       for field in ("active", "caption", "selected",
                                     "unselected"))
        for key in sorted(session.assignments.chosen))
    return (
        session.export_svg(include_hidden=True),
        tuple(trace_key(trace) for trace in canvas.all_numeric_traces()),
        tuple(sorted(session.triggers)),
        tuple(sorted((loc.ident, slider.lo, slider.hi, slider.value)
                     for loc, slider in session.sliders.items())),
        hover,
        session.source(),
    )


def assert_lockstep(interp, compiled):
    assert signature(interp) == signature(compiled)


def apply_both(interp, compiled, action):
    """Run one action on both sessions; they must fail identically or
    succeed identically (state compared via :func:`signature`)."""
    outcomes = []
    for session in (interp, compiled):
        try:
            action(session)
            outcomes.append(("ok",))
        except LittleError as error:
            outcomes.append(("err", type(error).__name__, str(error)))
    assert outcomes[0] == outcomes[1]
    assert_lockstep(interp, compiled)


def drive(source, rng, gestures=2):
    """One seeded lockstep scenario: gestures (checked per step), a
    slider move, a value edit, and an undo."""
    interp, compiled = make_pair(source)
    assert_lockstep(interp, compiled)
    for _ in range(gestures):
        keys = sorted(interp.triggers)
        if not keys:
            break
        key = keys[rng.randrange(len(keys))]
        apply_both(interp, compiled, lambda s: s.start_drag(*key))
        for _ in range(rng.randint(2, MAX_STEPS)):
            dx = rng.uniform(-60.0, 60.0)
            dy = rng.uniform(-60.0, 60.0)
            apply_both(interp, compiled, lambda s: s.drag(dx, dy))
        apply_both(interp, compiled, lambda s: s.release())
    sliders = sorted(interp.sliders, key=lambda loc: loc.ident)
    if sliders:
        loc = sliders[rng.randrange(len(sliders))]
        slider = interp.sliders[loc]
        value = rng.uniform(slider.lo, slider.hi)
        apply_both(interp, compiled, lambda s: s.set_slider(loc, value))
    # A value-only source edit: bump one unfrozen literal in the text.
    unfrozen = [loc for loc in interp.program.user_locs() if not loc.frozen]
    if unfrozen:
        loc = unfrozen[rng.randrange(len(unfrozen))]
        moved = interp.program.substitute(
            {loc: interp.program.rho0[loc] + rng.uniform(1.0, 9.0)})
        text = moved.unparse()
        apply_both(interp, compiled, lambda s: s.edit_source(text))
    if interp.history:
        assert len(interp.history) == len(compiled.history)
        apply_both(interp, compiled, lambda s: s.undo())
    return interp, compiled


# ---------------------------------------------------------------------------
# The headline harness: every corpus example, in lockstep
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", example_names())
def test_corpus_lockstep(name):
    drive(example_source(name), random.Random(f"compiled-eq-{name}"))


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       name=st.sampled_from(["sine_wave_of_boxes", "three_boxes",
                             "ferris_wheel", "n_boxes_slider"]))
def test_property_lockstep(seed, name):
    drive(example_source(name), random.Random(seed), gestures=1)


# ---------------------------------------------------------------------------
# Escalation rules
# ---------------------------------------------------------------------------

def test_guard_flip_falls_back_and_respecializes():
    """A change that flips a recorded guard makes the artifact answer
    None, the interpreter re-records, and the *new* recording
    re-specializes on the next incremental step."""
    session = LiveSession(example_source("sine_wave_of_boxes"),
                          compiled=True)
    key = sorted(session.triggers)[0]
    session.start_drag(*key)
    session.drag(7.0, 3.0)          # guards hold: artifact built and used
    first_cache = session.pipeline._eval_cache
    assert first_cache.compiled is not None
    session.release()
    # Moving the box-count slider flips range's comparison guards.
    (n_loc, slider), = session.sliders.items()
    session.set_slider(n_loc, slider.value - 4.0)
    second_cache = session.pipeline._eval_cache
    assert second_cache is not first_cache      # full re-record happened
    assert second_cache.compiled is None        # not yet re-specialized
    key = sorted(session.triggers)[0]
    session.start_drag(*key)
    session.drag(5.0, 5.0)          # next step specializes the new cache
    assert session.pipeline._eval_cache.compiled is not None
    session.release()
    fresh = LiveSession(session.source(), compiled=False)
    assert fresh.export_svg(include_hidden=True) == \
        session.export_svg(include_hidden=True)


def test_compile_failure_pins_interpreter(monkeypatch):
    """A failed specialization marks the recording and is never retried;
    the drag keeps working through the interpreter, byte-identically."""
    calls = []

    def exploding(cache):
        calls.append(cache)
        raise CompileUnsupported("injected")

    monkeypatch.setattr(compile_module, "specialize", exploding)
    source = example_source("three_boxes")
    interp, compiled = make_pair(source)
    key = sorted(interp.triggers)[0]
    for session in (interp, compiled):
        session.start_drag(*key)
    for step in range(3):
        for session in (interp, compiled):
            session.drag(5.0 * (step + 1), 2.0)
        assert_lockstep(interp, compiled)
    cache = compiled.pipeline._eval_cache
    assert cache.compile_failed and cache.compiled is None
    assert len(calls) == 1          # fail once, never retried
    for session in (interp, compiled):
        session.release()
    assert_lockstep(interp, compiled)


def test_specialize_fault_injection_degrades_gracefully():
    """An armed ``compile.specialize`` fault point (the serve layer's
    probe contract) aborts specialization without ever changing an
    answer."""
    plan = FaultPlan("compile.specialize:1")
    events = []

    def probe(event):
        events.append(event)
        if event == "attempt":
            fail_point(plan, "compile.specialize")

    source = example_source("sine_wave_of_boxes")
    base = parse_program(source)
    interp = LiveSession(program=base, compiled=False)
    compiled = LiveSession(program=base, compiled=True,
                           specialize_probe=probe)
    key = sorted(interp.triggers)[0]
    for session in (interp, compiled):
        session.start_drag(*key)
    for session in (interp, compiled):
        session.drag(11.0, -7.0)
    assert_lockstep(interp, compiled)
    for session in (interp, compiled):
        session.release()
    assert_lockstep(interp, compiled)
    assert plan.counts() == {"compile.specialize": 1}
    assert events == ["attempt", "failed"]
    assert compiled.pipeline._eval_cache.compile_failed


def test_structural_edit_invalidates_artifact():
    session = LiveSession(example_source("three_boxes"), compiled=True)
    key = sorted(session.triggers)[0]
    session.start_drag(*key)
    session.drag(9.0, 3.0)
    session.release()
    old_cache = session.pipeline._eval_cache
    assert old_cache.compiled is not None
    session.edit_source(session.source() +
                        "\n; structurally different program")
    # Comment-only text is IDENTITY; force a real structural edit too.
    session.edit_source(
        "(def [x0 y0 w h sep] [40 28 60 130 110])\n"
        "(def boxi (\\i (let xi (+ x0 (mult i sep))"
        " (rect 'lightblue' xi y0 w h))))\n"
        "(svg (append (map boxi (zeroTo 3!)) [(circle 'red' 300 300 20)]))")
    new_cache = session.pipeline._eval_cache
    assert new_cache is not old_cache and new_cache.compiled is None
    key = sorted(session.triggers)[0]
    session.start_drag(*key)
    session.drag(4.0, 4.0)
    session.release()
    fresh = LiveSession(session.source(), compiled=False)
    assert fresh.export_svg(include_hidden=True) == \
        session.export_svg(include_hidden=True)


def test_budget_exhaustion_parity():
    """Both replay paths charge the same coarse per-guard fuel and both
    surface ResourceExhausted — never a silent fallback."""
    source = example_source("sine_wave_of_boxes")
    base = parse_program(source)
    probe = LiveSession(program=base, compiled=False)
    key = sorted(probe.triggers)[0]
    for compiled in (False, True):
        session = LiveSession(program=base, compiled=compiled)
        session.start_drag(*key)
        # Tighten only now: the budget resets per pipeline run, so the
        # allowance applies to the drag step, not the initial record.
        session.pipeline.budget = EvalBudget(max_fuel=1)
        with pytest.raises(ResourceExhausted):
            session.drag(5.0, 5.0)


# ---------------------------------------------------------------------------
# Artifact lifecycle across snapshot / seed
# ---------------------------------------------------------------------------

def test_snapshot_carried_artifact_skips_respecializing():
    source = example_source("three_boxes")
    program = parse_program(source)
    output, cache = record_evaluation(program)
    artifact = ensure_compiled(cache)
    assert artifact is not None

    session = LiveSession(program=program, compiled=True,
                          seed=(output, cache))
    assert session.pipeline._eval_cache is cache
    snapshot = session.snapshot()

    def compile_fn(text, **parse_options):
        assert text == source
        return program, (output, cache)

    restored = LiveSession.restore(snapshot, compile_fn=compile_fn,
                                   compiled=True)
    # The shared cache — artifact included — survived the round trip:
    # rehydration under LRU pressure re-specializes nothing.
    assert restored.pipeline._eval_cache is cache
    assert cache.compiled is artifact
    key = sorted(restored.triggers)[0]
    restored.start_drag(*key)
    restored.drag(6.0, 2.0)
    restored.release()
    fresh = LiveSession(restored.source(), compiled=False)
    assert fresh.export_svg(include_hidden=True) == \
        restored.export_svg(include_hidden=True)


def test_artifact_shared_across_sessions_compiles_once(monkeypatch):
    """N sessions adopting one seed cache specialize it exactly once."""
    calls = []
    real = compile_module.specialize

    def counting(cache):
        calls.append(cache)
        return real(cache)

    monkeypatch.setattr(compile_module, "specialize", counting)
    source = example_source("three_boxes")
    program = parse_program(source)
    output, cache = record_evaluation(program)
    sessions = [LiveSession(program=program, compiled=True,
                            seed=(output, cache)) for _ in range(3)]
    for session in sessions:
        key = sorted(session.triggers)[0]
        session.start_drag(*key)
        session.drag(3.0, 1.0)
        session.release()
    assert len(calls) == 1


# ---------------------------------------------------------------------------
# The REPRO_COMPILED knob
# ---------------------------------------------------------------------------

def test_compiled_enabled_env_knob(monkeypatch):
    with force_compiled(None):
        monkeypatch.delenv("REPRO_COMPILED", raising=False)
        assert compiled_enabled()
        monkeypatch.setenv("REPRO_COMPILED", "0")
        assert not compiled_enabled()
        monkeypatch.setenv("REPRO_COMPILED", "1")
        assert compiled_enabled()


def test_force_compiled_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_COMPILED", "0")
    with force_compiled(True):
        assert compiled_enabled()
        with force_compiled(False):
            assert not compiled_enabled()
        assert compiled_enabled()
    assert not compiled_enabled()


def test_pipeline_pin_beats_knob(monkeypatch):
    """A pipeline constructed with ``compiled=False`` never consults the
    artifact even when the knob is on (and vice versa)."""
    monkeypatch.setenv("REPRO_COMPILED", "1")
    session = LiveSession(example_source("three_boxes"), compiled=False)
    key = sorted(session.triggers)[0]
    session.start_drag(*key)
    session.drag(5.0, 5.0)
    session.release()
    assert session.pipeline._eval_cache.compiled is None


def test_compiled_mode_fixture_roundtrip(compiled_mode):
    """The shared fixture drives both paths through a real drag."""
    session = LiveSession(example_source("three_boxes"))
    key = sorted(session.triggers)[0]
    session.start_drag(*key)
    session.drag(8.0, 1.0)
    session.release()
    cache = session.pipeline._eval_cache
    if compiled_mode:
        assert cache.compiled is not None
    else:
        assert cache.compiled is None
    fresh = LiveSession(session.source(), compiled=False)
    assert fresh.export_svg(include_hidden=True) == \
        session.export_svg(include_hidden=True)


def test_artifact_answers_match_interpreter_verdicts():
    """Direct unit check: replay and reevaluate agree verdict-for-verdict
    on held guards, flipped guards, and a missing location."""
    from repro.lang.incremental import reevaluate

    program = parse_program(example_source("sine_wave_of_boxes"))
    _, cache = record_evaluation(program)
    artifact = specialize(cache)
    assert artifact.statements > 0

    loc = next(l for l in program.rho0 if l.display() == "x0")
    moved = program.substitute({loc: program.rho0[loc] + 13.0})
    compiled_out = artifact.replay(moved.rho0)
    interp_out = reevaluate(cache, moved.rho0)
    assert compiled_out is not None and interp_out is not None
    from repro.svg import Canvas, render_canvas
    assert render_canvas(Canvas.from_value(compiled_out).root,
                         include_hidden=True) == \
        render_canvas(Canvas.from_value(interp_out).root,
                      include_hidden=True)

    n = next(l for l in program.rho0 if l.display() == "n")
    flipped = program.substitute({n: 5.0})
    assert artifact.replay(flipped.rho0) is None
    assert reevaluate(cache, flipped.rho0) is None

    partial = {l: value for l, value in program.rho0.items() if l is not loc}
    assert artifact.replay(partial) is None
    assert reevaluate(cache, partial) is None

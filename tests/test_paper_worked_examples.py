"""The paper's §2 worked example, end to end: traces, the four candidate
updates of Figure 1D, and their visual effects."""

import pytest

from repro.lang import parse_program, to_pylist
from repro.svg import Canvas
from repro.trace.context import check_update, numeric_leaves
from repro.trace.equation import Equation
from repro.synthesis import synthesize_plausible


@pytest.fixture(scope="module")
def unfrozen_program(request):
    source = """
    (def [x0 y0 w h sep amp] [50 120 20 90 30 60])
    (def n 12!{3-30})
    (def boxi (\\i
      (let xi (+ x0 (* i sep))
      (let yi (- y0 (* amp (sin (* i (/ twoPi n)))))
      (rect 'lightblue' xi yi w h)))))
    (svg (map boxi (zeroTo n)))
    """
    return parse_program(source, prelude_frozen=False)


@pytest.fixture(scope="module")
def third_box_x(unfrozen_program):
    canvas = Canvas.from_value(unfrozen_program.evaluate())
    return canvas[2].simple_num("x")


@pytest.fixture(scope="module")
def candidates(unfrozen_program, third_box_x):
    equation = Equation(155.0, third_box_x.trace)
    return synthesize_plausible(unfrozen_program.rho0, [equation],
                                allow_linear=True)


class TestFigure1D:
    def test_four_candidates(self, candidates):
        assert len(candidates) == 4

    def test_candidate_values(self, candidates):
        by_name = {cand.choice[0].display(): cand.values[0]
                   for cand in candidates}
        named = {name: value for name, value in by_name.items()
                 if name in ("x0", "sep")}
        assert named["x0"] == pytest.approx(95.0)      # ρ1
        assert named["sep"] == pytest.approx(52.5)     # ρ2
        prelude_values = sorted(value for name, value in by_name.items()
                                if name not in ("x0", "sep"))
        assert prelude_values == [pytest.approx(1.5),   # ρ3: l0
                                  pytest.approx(1.75)]  # ρ4: l1

    def test_rho1_translates_all_boxes(self, unfrozen_program, candidates):
        rho1 = next(c for c in candidates if c.choice[0].display() == "x0")
        new_program = unfrozen_program.substitute(
            dict(rho1.substitution.changes_from(unfrozen_program.rho0)))
        canvas = Canvas.from_value(new_program.evaluate())
        assert len(canvas) == 12
        assert canvas[0].simple_num("x").value == 95.0
        assert canvas[2].simple_num("x").value == 155.0

    def test_rho2_changes_spacing(self, unfrozen_program, candidates):
        rho2 = next(c for c in candidates if c.choice[0].display() == "sep")
        new_program = unfrozen_program.substitute(
            dict(rho2.substitution.changes_from(unfrozen_program.rho0)))
        canvas = Canvas.from_value(new_program.evaluate())
        assert canvas[0].simple_num("x").value == 50.0   # unchanged
        assert canvas[2].simple_num("x").value == 155.0

    def test_prelude_candidates_change_box_count(self, unfrozen_program,
                                                 candidates):
        """ρ3/ρ4 change the zeroTo constants, altering the number of boxes
        — exactly why the user 'is unlikely to want' them (§2.2)."""
        for candidate in candidates:
            if candidate.choice[0].display() in ("x0", "sep"):
                continue
            new_program = unfrozen_program.substitute(
                dict(candidate.substitution.changes_from(
                    unfrozen_program.rho0)))
            canvas = Canvas.from_value(new_program.evaluate())
            assert len(canvas) != 12

    def test_frozen_prelude_excludes_rho3_rho4(self, sine_program):
        canvas = Canvas.from_value(sine_program.evaluate())
        x3 = canvas[2].simple_num("x")
        equation = Equation(155.0, x3.trace)
        results = synthesize_plausible(sine_program.rho0, [equation],
                                       allow_linear=True)
        names = {cand.choice[0].display() for cand in results}
        assert names == {"x0", "sep"}


class TestFaithfulnessOfCandidates:
    def test_rho1_and_rho2_are_faithful(self, unfrozen_program, candidates):
        output = unfrozen_program.evaluate()
        leaves = numeric_leaves(output)
        edited = next(i for i, leaf in enumerate(leaves)
                      if leaf.value == 110.0)
        for name in ("x0", "sep"):
            candidate = next(c for c in candidates
                             if c.choice[0].display() == name)
            rho = dict(candidate.substitution.changes_from(
                unfrozen_program.rho0))
            report = check_update(unfrozen_program, rho, {edited: 155.0},
                                  original_output=output)
            assert report.faithful, name

    def test_rho3_rho4_not_plausible(self, unfrozen_program, candidates):
        """Changing the box count breaks similarity: not plausible (§3)."""
        output = unfrozen_program.evaluate()
        leaves = numeric_leaves(output)
        edited = next(i for i, leaf in enumerate(leaves)
                      if leaf.value == 110.0)
        for candidate in candidates:
            if candidate.choice[0].display() in ("x0", "sep"):
                continue
            rho = dict(candidate.substitution.changes_from(
                unfrozen_program.rho0))
            report = check_update(unfrozen_program, rho, {edited: 155.0},
                                  original_output=output)
            assert not report.plausible

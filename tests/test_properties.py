"""Property-based tests (hypothesis) for the core invariants:

* solver soundness: any solution returned satisfies its equation;
* SolveA equals SolveB on equations in both fragments;
* substitution/evaluation commute: re-evaluating after applying a solved
  substitution reproduces the dragged attribute value (live-sync soundness);
* unparse/parse round-trip preserves evaluation;
* trace evaluation under ρ0 reproduces the traced value.
"""

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.lang import evaluate, parse_expr, parse_program, value_equal
from repro.lang.ast import Loc
from repro.lang.errors import LittleRuntimeError, SolverFailure
from repro.editor import LiveSession
from repro.synthesis import (in_a_fragment, in_b_fragment,
                             solve_addition_only, solve_one,
                             solve_single_occurrence)
from repro.trace import OpTrace, eval_trace, locs
from repro.trace.context import numeric_leaves

# --------------------------------------------------------------------------
# Trace generators
# --------------------------------------------------------------------------

from tests.conftest import SINE_WAVE_SOURCE as SINE_SOURCE

LOCS = [Loc(1000 + i, f"v{i}") for i in range(4)]

finite_values = st.floats(min_value=-50, max_value=50,
                          allow_nan=False, allow_infinity=False)


@st.composite
def rho_strategy(draw):
    return {loc: draw(finite_values) for loc in LOCS}


def leaf():
    return st.sampled_from(LOCS)


def addition_traces():
    return st.recursive(
        leaf(),
        lambda children: st.tuples(children, children).map(
            lambda pair: OpTrace("+", pair)),
        max_leaves=6)


@st.composite
def single_occurrence_traces(draw):
    """A trace where LOCS[0] occurs exactly once, mixed with arithmetic."""
    target = LOCS[0]
    trace = target
    depth = draw(st.integers(min_value=0, max_value=4))
    for _ in range(depth):
        op = draw(st.sampled_from(["+", "-", "*", "/"]))
        other = draw(st.sampled_from(LOCS[1:]))
        side = draw(st.booleans())
        trace = OpTrace(op, (trace, other) if side else (other, trace))
    return trace


# --------------------------------------------------------------------------
# Solver properties
# --------------------------------------------------------------------------

class TestSolverProperties:
    @given(rho=rho_strategy(), trace=addition_traces(),
           target=finite_values)
    @settings(max_examples=200)
    def test_solve_a_solutions_satisfy_equation(self, rho, trace, target):
        loc = LOCS[0]
        try:
            solution = solve_addition_only(rho, loc, target, trace)
        except SolverFailure:
            return
        check = {**rho, loc: solution}
        assert eval_trace(trace, check) == pytest.approx(target, abs=1e-6)

    @given(rho=rho_strategy(), trace=single_occurrence_traces(),
           target=finite_values)
    @settings(max_examples=200)
    def test_verified_solver_never_returns_wrong_answers(self, rho, trace,
                                                         target):
        # solve_one verifies plug-back, so any returned solution must
        # satisfy the equation -- even for numerically nasty inputs.
        loc = LOCS[0]
        try:
            solution = solve_one(rho, loc, target, trace)
        except SolverFailure:
            return
        check = {**rho, loc: solution}
        value = eval_trace(trace, check)
        assert value == pytest.approx(target, rel=1e-6, abs=1e-6)

    @given(rho=rho_strategy(), trace=addition_traces(),
           target=finite_values)
    @settings(max_examples=200)
    def test_solvers_agree_on_shared_fragment(self, rho, trace, target):
        loc = LOCS[0]
        if not (in_a_fragment(trace, loc) and in_b_fragment(trace, loc)):
            return
        try:
            a_solution = solve_addition_only(rho, loc, target, trace)
            b_solution = solve_single_occurrence(rho, loc, target, trace)
        except SolverFailure:
            return
        assert a_solution == pytest.approx(b_solution, rel=1e-9, abs=1e-9)


# --------------------------------------------------------------------------
# Trace-evaluation consistency
# --------------------------------------------------------------------------

class TestTraceConsistency:
    @given(values=st.lists(finite_values, min_size=3, max_size=3))
    @settings(max_examples=100)
    def test_rho0_reproduces_output_values(self, values):
        a, b, c = values
        source = (f"(def [a b c] [{a!r} {b!r} {c!r}]) "
                  "(svg [(rect 'r' (+ a b) (* a c) (+ 10! a) 20!)])")
        try:
            program = parse_program(source)
            output = program.evaluate()
        except LittleRuntimeError:
            return
        for leaf_value in numeric_leaves(output):
            assert eval_trace(leaf_value.trace, program.rho0) == \
                pytest.approx(leaf_value.value, rel=1e-9, abs=1e-9)


# --------------------------------------------------------------------------
# Live-synchronization soundness on the sine-wave example
# --------------------------------------------------------------------------

class TestLiveSyncProperties:
    @given(dx=st.floats(min_value=-200, max_value=200, allow_nan=False),
           dy=st.floats(min_value=-100, max_value=100, allow_nan=False),
           box=st.integers(min_value=0, max_value=11))
    @settings(max_examples=25, deadline=None)
    def test_dragged_box_lands_at_target(self, dx, dy, box):
        """After live sync, the dragged attribute equals old value + delta
        whenever the trigger solved its equations (plausible updates)."""
        session = LiveSession(SINE_SOURCE)
        x_before = session.canvas[box].simple_num("x").value
        y_before = session.canvas[box].simple_num("y").value
        result = session.drag_zone(box, "INTERIOR", dx, dy)
        if not result.all_solved:
            return
        x_after = session.canvas[box].simple_num("x").value
        y_after = session.canvas[box].simple_num("y").value
        assert x_after == pytest.approx(x_before + dx, abs=1e-6)
        assert y_after == pytest.approx(y_before + dy, abs=1e-6)

    @given(dx=st.floats(min_value=-50, max_value=50, allow_nan=False))
    @settings(max_examples=15, deadline=None)
    def test_drag_then_inverse_drag_roundtrips(self, dx):
        session = LiveSession(SINE_SOURCE)
        x_before = session.canvas[0].simple_num("x").value
        session.drag_zone(0, "INTERIOR", dx, 0.0)
        session.drag_zone(0, "INTERIOR", -dx, 0.0)
        x_after = session.canvas[0].simple_num("x").value
        assert x_after == pytest.approx(x_before, abs=1e-6)


# --------------------------------------------------------------------------
# Unparse/parse round trip
# --------------------------------------------------------------------------

EXPRESSION_SOURCES = st.sampled_from([
    "(+ {a} {b})", "(- {a} {b})", "(* {a} {b})",
    "(let x {a} (+ x {b}))",
    "(if (< {a} {b}) {a} {b})",
    "[{a} {b}]",
    "((\\x (* x {b})) {a})",
])


class TestRoundTripProperties:
    @given(template=EXPRESSION_SOURCES,
           a=st.integers(min_value=-1000, max_value=1000),
           b=st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=150)
    def test_unparse_parse_preserves_value(self, template, a, b):
        from repro.lang import unparse
        source = template.format(a=a, b=b)
        expr = parse_expr(source)
        reparsed = parse_expr(unparse(expr))
        assert value_equal(evaluate(expr), evaluate(reparsed))

"""Tests for the Program container: Prelude sharing, substitution fast
paths, slider collection, unparse behaviour."""

import pytest

from repro.lang import parse_program
from repro.lang.prelude import prelude_bindings, prelude_source


class TestPreludeLoading:
    def test_source_available(self):
        assert "(def nStar" in prelude_source()

    def test_bindings_cached_and_shared(self):
        assert prelude_bindings(True) is prelude_bindings(True)

    def test_frozen_and_unfrozen_are_distinct(self):
        frozen = prelude_bindings(True)
        unfrozen = prelude_bindings(False)
        assert frozen is not unfrozen
        # Same definitions, different location freezing.
        assert len(frozen) == len(unfrozen)

    def test_programs_share_prelude_locations(self):
        p1 = parse_program("(+ 1 2)")
        p2 = parse_program("(* 3 4)")
        prelude_locs_1 = {loc for loc in p1.rho0 if loc.in_prelude}
        prelude_locs_2 = {loc for loc in p2.rho0 if loc.in_prelude}
        assert prelude_locs_1 == prelude_locs_2

    def test_user_locations_never_collide(self):
        p1 = parse_program("(+ 1 2)")
        p2 = parse_program("(+ 1 2)")
        user1 = {loc for loc in p1.rho0 if not loc.in_prelude}
        user2 = {loc for loc in p2.rho0 if not loc.in_prelude}
        assert not (user1 & user2)


class TestProgramQueries:
    def test_user_locs_excludes_prelude(self, sine_program):
        for loc in sine_program.user_locs():
            assert not loc.in_prelude

    def test_range_annotations(self, sine_program):
        annotations = sine_program.range_annotations()
        assert len(annotations) == 1
        loc, lo, hi, current = annotations[0]
        assert (lo, hi, current) == (3.0, 30.0, 12.0)
        assert loc.display() == "n"

    def test_without_prelude(self):
        program = parse_program("(+ 1 2)", with_prelude=False)
        assert program.evaluate().value == 3.0
        assert all(not loc.in_prelude for loc in program.rho0)

    def test_without_prelude_cannot_use_library(self):
        from repro.lang.errors import LittleRuntimeError
        program = parse_program("(map (\\x x) [1])", with_prelude=False)
        with pytest.raises(LittleRuntimeError):
            program.evaluate()


class TestSubstitutionPaths:
    def test_user_only_substitution_shares_prelude(self, sine_program):
        loc = next(loc for loc in sine_program.rho0
                   if loc.display() == "x0")
        updated = sine_program.substitute({loc: 95.0})
        # The Prelude spine is rebuilt from the shared cache, but the
        # bound expressions are the same objects.
        assert updated.ast.bound is sine_program.ast.bound

    def test_prelude_substitution_path(self):
        program = parse_program("(+ 1 2)", prelude_frozen=False)
        loc = next(loc for loc in program.rho0 if loc.in_prelude)
        updated = program.substitute({loc: 42.0})
        assert updated.rho0[loc] == 42.0

    def test_chained_substitutions(self, sine_program):
        x0 = next(loc for loc in sine_program.rho0
                  if loc.display() == "x0")
        sep = next(loc for loc in sine_program.rho0
                   if loc.display() == "sep")
        program = sine_program.substitute({x0: 60.0})
        program = program.substitute({sep: 40.0})
        assert program.rho0[x0] == 60.0
        assert program.rho0[sep] == 40.0

    def test_substitution_is_value_only(self, sine_program):
        """Substitutions never change program *structure* — the defining
        property of small updates (§2.2)."""
        x0 = next(loc for loc in sine_program.rho0
                  if loc.display() == "x0")
        updated = sine_program.substitute({x0: 95.0})
        original_lines = sine_program.unparse().splitlines()
        updated_lines = updated.unparse().splitlines()
        assert len(original_lines) == len(updated_lines)
        diffs = [
            (a, b) for a, b in zip(original_lines, updated_lines) if a != b]
        assert len(diffs) == 1

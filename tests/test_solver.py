"""Tests for SolveA / SolveB / the combined solver (§5.1, Appendix B.2)."""

import math

import pytest

from repro.lang.ast import Loc
from repro.lang.errors import SolverFailure
from repro.synthesis import (in_a_fragment, in_b_fragment,
                             in_solver_fragment, solve_addition_only,
                             solve_linear, solve_one,
                             solve_single_occurrence, walk_plus)
from repro.trace import OpTrace, eval_trace


@pytest.fixture
def env():
    a = Loc(1, "a")
    b = Loc(2, "b")
    c = Loc(3, "c")
    rho = {a: 2.0, b: 10.0, c: 4.0}
    return a, b, c, rho


def plus(*traces):
    result = traces[-1]
    for trace in reversed(traces[:-1]):
        result = OpTrace("+", (trace, result))
    return result


class TestWalkPlus:
    def test_single_occurrence(self, env):
        a, b, _, rho = env
        count, total = walk_plus(rho, a, plus(a, b))
        assert (count, total) == (1.0, 10.0)

    def test_multiple_occurrences(self, env):
        a, b, _, rho = env
        count, total = walk_plus(rho, a, plus(a, a, b))
        assert (count, total) == (2.0, 10.0)

    def test_absent_location(self, env):
        a, b, c, rho = env
        count, total = walk_plus(rho, c, plus(a, b))
        assert count == 0.0 and total == 12.0

    def test_non_plus_rejected(self, env):
        a, b, _, rho = env
        with pytest.raises(SolverFailure):
            walk_plus(rho, a, OpTrace("*", (a, b)))


class TestSolveA:
    def test_simple(self, env):
        a, b, _, rho = env
        # a + b = 15 with b=10 -> a = 5
        assert solve_addition_only(rho, a, 15.0, plus(a, b)) == 5.0

    def test_repeated_unknown(self, env):
        a, b, _, rho = env
        # a + a + b = 20 -> a = 5
        assert solve_addition_only(rho, a, 20.0, plus(a, a, b)) == 5.0

    def test_unknown_missing_fails(self, env):
        a, b, c, rho = env
        with pytest.raises(SolverFailure):
            solve_addition_only(rho, c, 15.0, plus(a, b))


class TestSolveB:
    def test_leaf(self, env):
        a, _, _, rho = env
        assert solve_single_occurrence(rho, a, 7.0, a) == 7.0

    @pytest.mark.parametrize("op,known_side,target,expected", [
        ("+", "right", 15.0, 5.0),     # x + 10 = 15
        ("+", "left", 15.0, 5.0),      # 10 + x = 15
        ("-", "right", 3.0, 13.0),     # x - 10 = 3
        ("-", "left", 3.0, 7.0),       # 10 - x = 3
        ("*", "right", 30.0, 3.0),     # x * 10 = 30
        ("*", "left", 30.0, 3.0),      # 10 * x = 30
        ("/", "right", 3.0, 30.0),     # x / 10 = 3
        ("/", "left", 2.0, 5.0),       # 10 / x = 2
    ])
    def test_binary_inverses(self, env, op, known_side, target, expected):
        a, b, _, rho = env
        if known_side == "right":
            trace = OpTrace(op, (a, b))
        else:
            trace = OpTrace(op, (b, a))
        assert solve_single_occurrence(rho, a, target, trace) == \
            pytest.approx(expected)

    def test_unary_cos(self, env):
        a, _, _, rho = env
        solution = solve_single_occurrence(rho, a, 0.5, OpTrace("cos", (a,)))
        assert math.cos(solution) == pytest.approx(0.5)

    def test_unary_sin(self, env):
        a, _, _, rho = env
        solution = solve_single_occurrence(rho, a, 0.5, OpTrace("sin", (a,)))
        assert math.sin(solution) == pytest.approx(0.5)

    def test_cos_out_of_range_fails(self, env):
        a, _, _, rho = env
        with pytest.raises(SolverFailure):
            solve_single_occurrence(rho, a, 2.0, OpTrace("cos", (a,)))

    def test_arccos_inverse(self, env):
        a, _, _, rho = env
        solution = solve_single_occurrence(rho, a, 1.0,
                                           OpTrace("arccos", (a,)))
        assert math.acos(solution) == pytest.approx(1.0)

    def test_sqrt_inverse(self, env):
        a, _, _, rho = env
        assert solve_single_occurrence(rho, a, 4.0,
                                       OpTrace("sqrt", (a,))) == 16.0

    def test_sqrt_negative_target_fails(self, env):
        a, _, _, rho = env
        with pytest.raises(SolverFailure):
            solve_single_occurrence(rho, a, -1.0, OpTrace("sqrt", (a,)))

    def test_neg_inverse(self, env):
        a, _, _, rho = env
        assert solve_single_occurrence(rho, a, 4.0,
                                       OpTrace("neg", (a,))) == -4.0

    def test_pow_base(self, env):
        a, b, _, rho = env
        rho = {**rho, b: 2.0}
        assert solve_single_occurrence(rho, a, 9.0,
                                       OpTrace("pow", (a, b))) == \
            pytest.approx(3.0)

    def test_pow_exponent(self, env):
        a, b, _, rho = env
        # 10 ** x = 1000
        assert solve_single_occurrence(rho, a, 1000.0,
                                       OpTrace("pow", (b, a))) == \
            pytest.approx(3.0)

    def test_floor_has_no_inverse(self, env):
        a, _, _, rho = env
        with pytest.raises(SolverFailure):
            solve_single_occurrence(rho, a, 4.0, OpTrace("floor", (a,)))

    def test_mod_has_no_inverse(self, env):
        a, b, _, rho = env
        with pytest.raises(SolverFailure):
            solve_single_occurrence(rho, a, 1.0, OpTrace("mod", (a, b)))

    def test_multi_occurrence_rejected(self, env):
        a, b, _, rho = env
        with pytest.raises(SolverFailure):
            solve_single_occurrence(rho, a, 1.0, plus(a, a, b))

    def test_division_by_zero_known_side_fails(self, env):
        a, b, _, rho = env
        rho = {**rho, b: 0.0}
        with pytest.raises(SolverFailure):
            solve_single_occurrence(rho, a, 5.0, OpTrace("*", (a, b)))

    def test_deep_nesting(self, env):
        a, b, c, rho = env
        # ((a * b) - c) / 2-ish chain: ((x*10)-4) = 26 -> x = 3
        trace = OpTrace("-", (OpTrace("*", (a, b)), c))
        assert solve_single_occurrence(rho, a, 26.0, trace) == \
            pytest.approx(3.0)


class TestCombinedSolver:
    def test_paper_example_x0(self, env):
        # 155 = x0 + ((1 + (1 + 0)) * sep): solve for x0 with sep=30.
        x0 = Loc(10, "x0")
        sep = Loc(11, "sep")
        l0 = Loc(12, "l0")
        l1 = Loc(13, "l1")
        rho = {x0: 50.0, sep: 30.0, l0: 0.0, l1: 1.0}
        index = OpTrace("+", (l1, OpTrace("+", (l1, l0))))
        trace = OpTrace("+", (x0, OpTrace("*", (index, sep))))
        assert solve_one(rho, x0, 155.0, trace) == pytest.approx(95.0)
        assert solve_one(rho, sep, 155.0, trace) == pytest.approx(52.5)
        assert solve_one(rho, l0, 155.0, trace) == pytest.approx(1.5)

    def test_paper_example_l1_needs_linear(self, env):
        # l1 occurs twice in a non-addition-only trace: the paper's solver
        # fails, but the Fig-1D linear extension finds 1.75.
        x0, sep = Loc(10, "x0"), Loc(11, "sep")
        l0, l1 = Loc(12, "l0"), Loc(13, "l1")
        rho = {x0: 50.0, sep: 30.0, l0: 0.0, l1: 1.0}
        index = OpTrace("+", (l1, OpTrace("+", (l1, l0))))
        trace = OpTrace("+", (x0, OpTrace("*", (index, sep))))
        with pytest.raises(SolverFailure):
            solve_one(rho, l1, 155.0, trace)
        assert solve_linear(rho, l1, 155.0, trace) == pytest.approx(1.75)

    def test_unsolvable_sep_when_multiplied_by_zero(self, env):
        # Appendix B.2: no solution for
        # SolveOne(rho, sep, 155 = (+ x0 (* l0 sep))) when l0 = 0.
        x0, sep, l0 = Loc(10, "x0"), Loc(11, "sep"), Loc(12, "l0")
        rho = {x0: 50.0, sep: 30.0, l0: 0.0}
        trace = OpTrace("+", (x0, OpTrace("*", (l0, sep))))
        with pytest.raises(SolverFailure):
            solve_one(rho, sep, 155.0, trace)

    def test_verification_catches_branch_mismatch(self, env):
        a, _, _, rho = env
        # sin(x) = 1 at x = pi/2; plug-back verification accepts it.
        assert solve_one(rho, a, 1.0, OpTrace("sin", (a,))) == \
            pytest.approx(math.pi / 2)

    def test_solve_one_tries_a_then_b(self, env):
        a, b, _, rho = env
        # a+a+b is in the A fragment but not B.
        assert solve_one(rho, a, 20.0, plus(a, a, b)) == 5.0
        # (a*b) is in the B fragment but not A.
        assert solve_one(rho, a, 40.0, OpTrace("*", (a, b))) == 4.0


class TestSolveLinear:
    def test_rejects_nonlinear(self, env):
        a, _, _, rho = env
        with pytest.raises(SolverFailure):
            solve_linear(rho, a, 9.0, OpTrace("*", (a, a)))

    def test_rejects_constant(self, env):
        a, b, _, rho = env
        with pytest.raises(SolverFailure):
            solve_linear(rho, a, 9.0, OpTrace("*", (b, Loc(99, "z"))))

    def test_multi_occurrence_linear(self, env):
        a, b, _, rho = env
        # a*10 + a = 33 -> a = 3
        trace = plus(OpTrace("*", (a, b)), a)
        assert solve_linear(rho, a, 33.0, trace) == pytest.approx(3.0)


class TestFragments:
    def test_a_fragment(self, env):
        a, b, _, _ = env
        assert in_a_fragment(plus(a, a, b), a)
        assert not in_a_fragment(OpTrace("*", (a, b)), a)
        assert not in_a_fragment(plus(b, b), a)

    def test_b_fragment(self, env):
        a, b, _, _ = env
        assert in_b_fragment(OpTrace("*", (a, b)), a)
        assert not in_b_fragment(plus(a, a), a)

    def test_combined_fragment(self, env):
        a, b, _, _ = env
        assert in_solver_fragment(plus(a, a), a)          # A only
        assert in_solver_fragment(OpTrace("*", (a, b)), a)  # B only
        assert not in_solver_fragment(
            OpTrace("*", (a, OpTrace("*", (a, b)))), a)   # neither


class TestSolutionsSatisfyEquations:
    @pytest.mark.parametrize("target", [-100.0, -1.0, 0.0, 2.5, 1000.0])
    def test_plug_back(self, env, target):
        a, b, c, rho = env
        trace = OpTrace("-", (OpTrace("*", (a, b)), c))
        try:
            solution = solve_one(rho, a, target, trace)
        except SolverFailure:
            return
        check = dict(rho)
        check[a] = solution
        assert eval_trace(trace, check) == pytest.approx(target)

"""Language integration tests: nontrivial little programs exercising the
evaluator, Prelude and traces together."""

import pytest

from repro.lang import (VStr, parse_program, to_pylist, evaluate,
                        parse_top_level)
from repro.trace import locs


def run(source):
    return parse_program(source).evaluate()


def nums(value):
    return [item.value for item in to_pylist(value)]


class TestAlgorithmsInLittle:
    def test_insertion_sort(self):
        source = """
        (defrec insert (\\(x xs)
          (case xs
            ([] [x])
            ([y|rest] (if (< x y) [x y|rest] [y|(insert x rest)])))))
        (def sort (\\xs (foldl insert [] xs)))
        (sort [5 3 8 1 9 2])
        """
        assert nums(run(source)) == [1, 2, 3, 5, 8, 9]

    def test_fibonacci(self):
        source = """
        (defrec fib (\\n
          (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))))
        (map fib (zeroTo 10))
        """
        assert nums(run(source)) == [0, 1, 1, 2, 3, 5, 8, 13, 21, 34]

    def test_gcd(self):
        source = """
        (defrec gcd (\\(a b)
          (if (= b 0) a (gcd b (mod a b)))))
        (gcd 1071 462)
        """
        assert run(source).value == 21

    def test_higher_order_composition(self):
        source = """
        (def compose (\\(f g) (\\x (f (g x)))))
        (def inc (\\x (+ x 1)))
        (def double (\\x (* x 2)))
        ((compose inc double) 5)
        """
        assert run(source).value == 11

    def test_string_building(self):
        source = """
        (def commaSep (\\items
          (case items
            ([] '')
            ([x|rest] (foldl (\\(s acc) (+ acc (+ ', ' s))) x rest)))))
        (commaSep ['a' 'b' 'c'])
        """
        assert run(source) == VStr("a, b, c")

    def test_mutual_recursion_via_parameter(self):
        # little has no letrec groups; mutual recursion threads the other
        # function as an argument.
        source = """
        (defrec isEven (\\n (if (= n 0) true (isOddH isEven (- n 1)))))
        (def isOddH (\\(even n) (if (= n 0) false (even (- n 1)))))
        (isEven 10)
        """
        # isOddH must be defined before isEven textually; reorder:
        source = """
        (def isOddH (\\(even n) (if (= n 0) false (even (- n 1)))))
        (defrec isEven (\\n (if (= n 0) true (isOddH isEven (- n 1)))))
        (isEven 10)
        """
        assert run(source).value is True


class TestTraceThreading:
    def test_traces_flow_through_prelude_combinators(self):
        source = """
        (def base 10)
        (sum (map (\\i (+ base i)) (zeroTo 3!)))
        """
        value = run(source)
        assert value.value == 33
        assert any(loc.display() == "base" for loc in locs(value.trace))

    def test_folded_trace_mentions_every_contribution(self):
        source = "(def [a b c] [1 2 3]) (sum [a b c])"
        value = run(source)
        names = {loc.display() for loc in locs(value.trace)}
        assert names == {"a", "b", "c"}

    def test_shadowed_variable_traces(self):
        source = "(def x 1) (let x 2 (+ x x))"
        value = run(source)
        # The inner literal's location (canonically also named x) is the
        # only one in the trace.
        assert value.value == 4
        assert len(locs(value.trace)) == 1

    def test_deep_recursion_trace_size_linear(self):
        from repro.trace import trace_size
        source = "(def step 5) (sum (repeat 20! step))"
        value = run(source)
        assert value.value == 100
        assert trace_size(value.trace) <= 2 * 20 + 3


class TestScoping:
    def test_lexical_capture_not_dynamic(self):
        source = """
        (def make (\\n (\\x (+ x n))))
        (def addTen (make 10))
        (let n 999 (addTen 5))
        """
        assert run(source).value == 15

    def test_prelude_shadowable(self):
        source = "(def map 42) map"
        assert run(source).value == 42

    def test_curried_prelude_partial_application(self):
        source = "(def addPrefix (map (\\s (+ 'x' s)))) (addPrefix ['a' 'b'])"
        assert [item.value for item in to_pylist(run(source))] == \
            ["xa", "xb"]

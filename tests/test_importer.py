"""Tests for the SVG → little importer (Appendix D future work)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.editor import LiveSession
from repro.examples import example_names, load_example
from repro.lang import parse_program
from repro.lang.errors import SvgError, SvgImportError
from repro.lang.values import to_pylist
from repro.svg import Canvas, render_canvas
from repro.svg.importer import (import_svg_file, parse_path_data,
                                parse_points, parse_style,
                                parse_transform, svg_to_little)

ELM_LOGO_SVG = """
<svg xmlns="http://www.w3.org/2000/svg" width="324" height="324">
  <polygon fill="#F0AD00" points="161,152 231,82 91,82"/>
  <rect fill="#7FD13B" x="192" y="107" width="107" height="108"/>
  <circle fill="#60B5CC" cx="50" cy="50" r="20"/>
  <line stroke="black" stroke-width="2" x1="0" y1="0" x2="10" y2="10"/>
  <path fill="none" stroke="red" d="M 10 20 C 30 40 50 60 70 80 Z"/>
</svg>
"""


class TestParsers:
    def test_parse_points(self):
        assert parse_points("1,2 3.5,4 5,6") == [[1, 2], [3.5, 4], [5, 6]]

    def test_parse_points_whitespace_separated(self):
        assert parse_points("1 2 3 4") == [[1, 2], [3, 4]]

    def test_parse_points_odd_count_rejected(self):
        with pytest.raises(SvgError):
            parse_points("1 2 3")

    def test_parse_path_data(self):
        assert parse_path_data("M 10 20 L 30 40 Z") == \
            ["M", 10.0, 20.0, "L", 30.0, 40.0, "Z"]

    def test_parse_path_data_compact(self):
        assert parse_path_data("M10,20L30,40") == \
            ["M", 10.0, 20.0, "L", 30.0, 40.0]

    def test_parse_path_data_negative_and_exponent(self):
        assert parse_path_data("M -1.5 2e2") == ["M", -1.5, 200.0]

    def test_parse_path_must_start_with_command(self):
        with pytest.raises(SvgError):
            parse_path_data("10 20 L 1 2")

    def test_parse_transform(self):
        assert parse_transform("rotate(45 10 10) scale(2)") == \
            [["rotate", 45.0, 10.0, 10.0], ["scale", 2.0]]


class TestImport:
    def test_import_produces_valid_little(self):
        source = svg_to_little(ELM_LOGO_SVG)
        program = parse_program(source)
        canvas = Canvas.from_value(program.evaluate())
        assert [shape.kind for shape in canvas] == [
            "polygon", "rect", "circle", "line", "path"]

    def test_imported_values_preserved(self):
        source = svg_to_little(ELM_LOGO_SVG)
        canvas = Canvas.from_value(parse_program(source).evaluate())
        rect = canvas.shapes_of_kind("rect")[0]
        assert rect.simple_num("x").value == 192.0
        circle = canvas.shapes_of_kind("circle")[0]
        assert circle.simple_num("r").value == 20.0

    def test_imported_points_preserved(self):
        source = svg_to_little(ELM_LOGO_SVG)
        canvas = Canvas.from_value(parse_program(source).evaluate())
        polygon = canvas.shapes_of_kind("polygon")[0]
        points = polygon.points()
        assert points[0][0].value == 161.0

    def test_imported_shapes_are_manipulable(self):
        """The Elm-logo property: every piece is draggable, with its own
        independent literal locations."""
        session = LiveSession(svg_to_little(ELM_LOGO_SVG))
        rect = session.canvas.shapes_of_kind("rect")[0]
        result = session.drag_zone(rect.index, "INTERIOR", 8.0, -2.0)
        assert result.all_solved
        assert session.canvas.shapes_of_kind(
            "rect")[0].simple_num("x").value == 200.0
        # ...but unrelated shapes are untouched (no shared structure).
        circle = session.canvas.shapes_of_kind("circle")[0]
        assert circle.simple_num("cx").value == 50.0

    def test_non_svg_root_rejected(self):
        with pytest.raises(SvgError):
            svg_to_little("<html></html>")

    def test_malformed_xml_rejected(self):
        with pytest.raises(SvgError):
            svg_to_little("<svg><rect</svg>")

    def test_unsupported_elements_skipped(self):
        source = svg_to_little(
            '<svg><defs><marker/></defs><rect x="1" y="2" width="3" '
            'height="4"/></svg>')
        canvas = Canvas.from_value(parse_program(source).evaluate())
        assert [shape.kind for shape in canvas] == ["rect"]

    def test_nested_groups_flattened(self):
        source = svg_to_little(
            '<svg><g><g><circle cx="1" cy="2" r="3"/></g></g></svg>')
        canvas = Canvas.from_value(parse_program(source).evaluate())
        assert canvas[0].kind == "circle"


class TestExportImportRoundTrip:
    @pytest.mark.parametrize("name", [
        "sketch_n_sketch_logo", "elm_logo", "rings", "triangles",
        "botanic_garden_logo",
    ])
    def test_roundtrip_preserves_shape_structure(self, name):
        program = load_example(name)
        canvas = Canvas.from_value(program.evaluate())
        exported = render_canvas(canvas.root, include_hidden=False)
        reimported = parse_program(svg_to_little(exported))
        new_canvas = Canvas.from_value(reimported.evaluate())
        visible = canvas.visible_shapes()
        assert [shape.kind for shape in new_canvas] == \
            [shape.kind for shape in visible]

    def test_roundtrip_preserves_geometry(self):
        program = load_example("three_boxes")
        canvas = Canvas.from_value(program.evaluate())
        exported = render_canvas(canvas.root)
        new_canvas = Canvas.from_value(
            parse_program(svg_to_little(exported)).evaluate())
        for original, imported in zip(canvas, new_canvas):
            assert original.simple_num("x").value == \
                imported.simple_num("x").value
            assert original.simple_num("width").value == \
                imported.simple_num("width").value


class TestImportFile(object):
    def test_import_svg_file(self, tmp_path):
        path = tmp_path / "logo.svg"
        path.write_text(ELM_LOGO_SVG, encoding="utf-8")
        source = import_svg_file(path)
        assert parse_program(source).evaluate() is not None


def import_canvas(svg_text):
    source = svg_to_little(svg_text)
    return Canvas.from_value(parse_program(source).evaluate())


class TestStringEmissionRegression:
    """Bug 1: string attributes were emitted unescaped, so a value with
    an apostrophe (``fill="url('#g')"``) produced source the little
    lexer could not parse back."""

    def test_quoted_css_url_is_normalized(self):
        canvas = import_canvas(
            '<svg><rect x="1" y="2" width="3" height="4"'
            ' fill="url(\'#g\')"/></svg>')
        assert canvas[0].node.attr("fill").value == "url(#g)"

    def test_irreparable_quote_is_quarantined(self):
        with pytest.raises(SvgImportError) as excinfo:
            svg_to_little(
                '<svg><rect x="1" y="2" width="3" height="4"'
                ' fill="it\'s-red"/></svg>')
        assert excinfo.value.reason == "string"

    def test_quote_in_text_content_is_quarantined(self):
        with pytest.raises(SvgImportError) as excinfo:
            svg_to_little("<svg><text x='1' y='2'>it's text</text></svg>")
        assert excinfo.value.reason == "string"


class TestNumberEmissionRegression:
    """Bug 2: ``_format`` crashed with OverflowError/ValueError on
    non-finite numbers and rewrote ``-0.0`` to ``0`` (losing the sign
    that drag deltas against a zero baseline rely on)."""

    def test_infinite_attribute_raises_svg_error(self):
        with pytest.raises(SvgImportError) as excinfo:
            svg_to_little('<svg><circle cx="inf" cy="1" r="2"/></svg>')
        assert excinfo.value.reason == "number"

    def test_nan_attribute_raises_svg_error(self):
        with pytest.raises(SvgImportError) as excinfo:
            svg_to_little('<svg><circle cx="1" cy="NaN" r="2"/></svg>')
        assert excinfo.value.reason == "number"

    def test_nan_in_path_raises_svg_error(self):
        with pytest.raises(SvgError):
            svg_to_little('<svg><path d="M nan 4"/></svg>')

    def test_tiny_number_emitted_without_exponent(self):
        # repr(2.8e-14) is scientific notation, which the little lexer
        # reads as a number followed by an unbound variable `e`; the
        # emitter must expand to a positional decimal.
        source = svg_to_little(
            '<svg><circle cx="2.855938629885282e-14" cy="5" r="1"/></svg>')
        canvas = Canvas.from_value(parse_program(source).evaluate())
        assert canvas[0].simple_num("cx").value == 2.855938629885282e-14

    def test_negative_zero_survives_the_round_trip(self):
        source = svg_to_little(
            '<svg><rect x="-0.0" y="1" width="3" height="4"/></svg>')
        assert "-0.0" in source
        canvas = Canvas.from_value(parse_program(source).evaluate())
        x = canvas[0].simple_num("x").value
        assert x == 0.0 and math.copysign(1.0, x) == -1.0


class TestArcFlagRegression:
    """Bug 3: SVG allows arc flags to be written without separators
    (``A5 5 0 011 10 10``); the scanner used to read ``011`` as the
    single number 11.0, silently corrupting the arc."""

    def test_concatenated_flags_split_into_digits(self):
        assert parse_path_data("M0 0 A5 5 0 011 10") == \
            ["M", 0.0, 0.0, "A", 5.0, 5.0, 0.0, 0.0, 1.0, 1.0, 10.0]

    def test_flags_glued_to_coordinate(self):
        # 0, 1 are flags; "1-3" begins the x coordinate.
        assert parse_path_data("a1 1 0 01-3 0") == \
            ["a", 1.0, 1.0, 0.0, 0.0, 1.0, -3.0, 0.0]

    def test_misaligned_arc_is_rejected_not_misread(self):
        # Read with flag-splitting this yields 8 parameters for a
        # 7-parameter command: a clean error, never a silent misparse.
        with pytest.raises(SvgImportError) as excinfo:
            parse_path_data("M0 0 A5 5 0 011 10 10")
        assert excinfo.value.reason == "path"

    def test_non_binary_flag_rejected(self):
        with pytest.raises(SvgError):
            parse_path_data("M0 0 A5 5 0 5 1 10 10")

    def test_arc_shorthand_imports_and_renders(self):
        canvas = import_canvas(
            '<svg><path d="M20 6 A14 14 0 0134 20" fill="none"'
            ' stroke="#000"/></svg>')
        assert canvas[0].kind == "path"


class TestGroupTransformRegression:
    """Bug 4: ``_import_element`` recursed into ``<g>`` but dropped its
    ``transform``, so grouped shapes imported at the wrong place."""

    def test_group_transform_reaches_children(self):
        canvas = import_canvas(
            '<svg><g transform="translate(10 20)">'
            '<rect x="1" y="2" width="3" height="4"/></g></svg>')
        transform = canvas[0].node.attr("transform")
        assert transform is not None
        first = to_pylist(transform)[0]
        assert [v.value for v in to_pylist(first)] == \
            ["translate", 10.0, 20.0]

    def test_nested_transforms_compose_in_document_order(self):
        canvas = import_canvas(
            '<svg><g transform="translate(10 20)">'
            '<g transform="scale(2)">'
            '<circle cx="1" cy="2" r="3" transform="rotate(45 1 2)"/>'
            '</g></g></svg>')
        transform = canvas[0].node.attr("transform")
        commands = [to_pylist(row)[0].value for row in to_pylist(transform)]
        assert commands == ["translate", "scale", "rotate"]

    def test_untransformed_groups_add_no_attribute(self):
        canvas = import_canvas(
            '<svg><g><rect x="1" y="2" width="3" height="4"/></g></svg>')
        assert canvas[0].node.attr("transform") is None

    def test_unsupported_transform_is_quarantined(self):
        with pytest.raises(SvgImportError) as excinfo:
            svg_to_little(
                '<svg><g transform="skewX(20)">'
                '<rect x="1" y="2" width="3" height="4"/></g></svg>')
        assert excinfo.value.reason == "transform"


class TestStyleAndText:
    def test_style_attribute_promotes_fill(self):
        canvas = import_canvas(
            '<svg><rect x="1" y="2" width="3" height="4"'
            ' style="fill: red; stroke: blue"/></svg>')
        assert canvas[0].node.attr("fill").value == "red"
        assert canvas[0].node.attr("stroke").value == "blue"

    def test_style_overrides_presentation_attribute_without_duplicates(self):
        canvas = import_canvas(
            '<svg><rect x="1" y="2" width="3" height="4" fill="green"'
            ' style="fill:red"/></svg>')
        node = canvas[0].node
        fills = [pair for pair in node.attrs if pair[0] == "fill"]
        assert len(fills) == 1
        assert node.attr("fill").value == "red"

    def test_parse_style_residual_keeps_unknown_properties(self):
        promoted, residual = parse_style("fill:red; cursor: pointer")
        assert promoted == {"fill": "red"}
        assert residual == "cursor:pointer"

    def test_tspan_text_is_flattened(self):
        canvas = import_canvas(
            '<svg><text x="1" y="2">Total: <tspan>42</tspan>'
            ' items</text></svg>')
        assert canvas[0].node.attr("TEXT").value == "Total: 42 items"

    def test_viewbox_preserved_on_root(self):
        source = svg_to_little(
            '<svg viewBox="0 0 24 24"><circle cx="12" cy="12" r="5"/></svg>')
        assert "'viewBox' '0 0 24 24'" in source
        assert parse_program(source).evaluate() is not None


# --------------------------------------------------------------------------
# Property suite: generated SVGs either import cleanly or raise SvgError
# --------------------------------------------------------------------------

finite_coord = st.floats(min_value=-500, max_value=500,
                         allow_nan=False, allow_infinity=False)
wild_coord = st.one_of(
    finite_coord,
    st.just(float("inf")),
    st.just(float("nan")),
    st.just(-0.0),
)
fill_values = st.sampled_from([
    "red", "#7FD13B", "none", "url(#grad)", "url('#grad')",
    "rgb(1,2,3)", "it's-broken",
])
transform_values = st.sampled_from([
    "", "translate(5 6)", "rotate(45 1 2)", "scale(2)",
    "matrix(1 0 0 1 3 4)", "skewX(10)",
])


def fmt(value):
    return repr(value) if value == value else "NaN"


@st.composite
def svg_documents(draw):
    parts = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        kind = draw(st.sampled_from(["rect", "circle", "line"]))
        fill = draw(fill_values)
        if kind == "rect":
            x, y = draw(wild_coord), draw(finite_coord)
            shape = (f'<rect x="{fmt(x)}" y="{fmt(y)}" width="10"'
                     f' height="10" fill="{fill}"/>')
        elif kind == "circle":
            cx, r = draw(finite_coord), draw(wild_coord)
            shape = f'<circle cx="{fmt(cx)}" cy="5" r="{fmt(r)}" fill="{fill}"/>'
        else:
            x2 = draw(wild_coord)
            shape = (f'<line x1="0" y1="0" x2="{fmt(x2)}" y2="9"'
                     f' stroke="{fill}"/>')
        transform = draw(transform_values)
        if transform:
            shape = f'<g transform="{transform}">{shape}</g>'
        parts.append(shape)
    return "<svg>" + "".join(parts) + "</svg>"


class TestImportProperties:
    @given(svg_documents())
    @settings(max_examples=40, deadline=None)
    def test_import_round_trips_or_raises_svg_error(self, document):
        """Every generated document either becomes a little program
        that parses, evaluates, and renders, or raises SvgError —
        never a bare ValueError/OverflowError and never an emitted
        program that fails to parse."""
        try:
            source = svg_to_little(document)
        except SvgError:
            return
        canvas = Canvas.from_value(parse_program(source).evaluate())
        assert len(list(canvas)) >= 1
        assert render_canvas(canvas.root)

    @given(svg_documents())
    @settings(max_examples=25, deadline=None)
    def test_import_is_byte_stable(self, document):
        try:
            first = svg_to_little(document)
        except SvgError:
            with pytest.raises(SvgError):
                svg_to_little(document)
            return
        assert svg_to_little(document) == first

    @given(st.text(alphabet="MLHVCSQTAZmlz0123456789 .,-+e", max_size=24))
    @settings(max_examples=60, deadline=None)
    def test_path_scanner_total(self, data):
        """parse_path_data is total: it returns floats/commands or
        raises SvgError, never anything else."""
        try:
            tokens = parse_path_data(data)
        except SvgError:
            return
        assert all(isinstance(t, (str, float)) for t in tokens)
        assert all(math.isfinite(t) for t in tokens
                   if isinstance(t, float))

"""Tests for the SVG → little importer (Appendix D future work)."""

import pytest

from repro.editor import LiveSession
from repro.examples import example_names, load_example
from repro.lang import parse_program
from repro.lang.errors import SvgError
from repro.svg import Canvas, render_canvas
from repro.svg.importer import (import_svg_file, parse_path_data,
                                parse_points, parse_transform,
                                svg_to_little)

ELM_LOGO_SVG = """
<svg xmlns="http://www.w3.org/2000/svg" width="324" height="324">
  <polygon fill="#F0AD00" points="161,152 231,82 91,82"/>
  <rect fill="#7FD13B" x="192" y="107" width="107" height="108"/>
  <circle fill="#60B5CC" cx="50" cy="50" r="20"/>
  <line stroke="black" stroke-width="2" x1="0" y1="0" x2="10" y2="10"/>
  <path fill="none" stroke="red" d="M 10 20 C 30 40 50 60 70 80 Z"/>
</svg>
"""


class TestParsers:
    def test_parse_points(self):
        assert parse_points("1,2 3.5,4 5,6") == [[1, 2], [3.5, 4], [5, 6]]

    def test_parse_points_whitespace_separated(self):
        assert parse_points("1 2 3 4") == [[1, 2], [3, 4]]

    def test_parse_points_odd_count_rejected(self):
        with pytest.raises(SvgError):
            parse_points("1 2 3")

    def test_parse_path_data(self):
        assert parse_path_data("M 10 20 L 30 40 Z") == \
            ["M", 10.0, 20.0, "L", 30.0, 40.0, "Z"]

    def test_parse_path_data_compact(self):
        assert parse_path_data("M10,20L30,40") == \
            ["M", 10.0, 20.0, "L", 30.0, 40.0]

    def test_parse_path_data_negative_and_exponent(self):
        assert parse_path_data("M -1.5 2e2") == ["M", -1.5, 200.0]

    def test_parse_path_must_start_with_command(self):
        with pytest.raises(SvgError):
            parse_path_data("10 20 L 1 2")

    def test_parse_transform(self):
        assert parse_transform("rotate(45 10 10) scale(2)") == \
            [["rotate", 45.0, 10.0, 10.0], ["scale", 2.0]]


class TestImport:
    def test_import_produces_valid_little(self):
        source = svg_to_little(ELM_LOGO_SVG)
        program = parse_program(source)
        canvas = Canvas.from_value(program.evaluate())
        assert [shape.kind for shape in canvas] == [
            "polygon", "rect", "circle", "line", "path"]

    def test_imported_values_preserved(self):
        source = svg_to_little(ELM_LOGO_SVG)
        canvas = Canvas.from_value(parse_program(source).evaluate())
        rect = canvas.shapes_of_kind("rect")[0]
        assert rect.simple_num("x").value == 192.0
        circle = canvas.shapes_of_kind("circle")[0]
        assert circle.simple_num("r").value == 20.0

    def test_imported_points_preserved(self):
        source = svg_to_little(ELM_LOGO_SVG)
        canvas = Canvas.from_value(parse_program(source).evaluate())
        polygon = canvas.shapes_of_kind("polygon")[0]
        points = polygon.points()
        assert points[0][0].value == 161.0

    def test_imported_shapes_are_manipulable(self):
        """The Elm-logo property: every piece is draggable, with its own
        independent literal locations."""
        session = LiveSession(svg_to_little(ELM_LOGO_SVG))
        rect = session.canvas.shapes_of_kind("rect")[0]
        result = session.drag_zone(rect.index, "INTERIOR", 8.0, -2.0)
        assert result.all_solved
        assert session.canvas.shapes_of_kind(
            "rect")[0].simple_num("x").value == 200.0
        # ...but unrelated shapes are untouched (no shared structure).
        circle = session.canvas.shapes_of_kind("circle")[0]
        assert circle.simple_num("cx").value == 50.0

    def test_non_svg_root_rejected(self):
        with pytest.raises(SvgError):
            svg_to_little("<html></html>")

    def test_malformed_xml_rejected(self):
        with pytest.raises(SvgError):
            svg_to_little("<svg><rect</svg>")

    def test_unsupported_elements_skipped(self):
        source = svg_to_little(
            '<svg><defs><marker/></defs><rect x="1" y="2" width="3" '
            'height="4"/></svg>')
        canvas = Canvas.from_value(parse_program(source).evaluate())
        assert [shape.kind for shape in canvas] == ["rect"]

    def test_nested_groups_flattened(self):
        source = svg_to_little(
            '<svg><g><g><circle cx="1" cy="2" r="3"/></g></g></svg>')
        canvas = Canvas.from_value(parse_program(source).evaluate())
        assert canvas[0].kind == "circle"


class TestExportImportRoundTrip:
    @pytest.mark.parametrize("name", [
        "sketch_n_sketch_logo", "elm_logo", "rings", "triangles",
        "botanic_garden_logo",
    ])
    def test_roundtrip_preserves_shape_structure(self, name):
        program = load_example(name)
        canvas = Canvas.from_value(program.evaluate())
        exported = render_canvas(canvas.root, include_hidden=False)
        reimported = parse_program(svg_to_little(exported))
        new_canvas = Canvas.from_value(reimported.evaluate())
        visible = canvas.visible_shapes()
        assert [shape.kind for shape in new_canvas] == \
            [shape.kind for shape in visible]

    def test_roundtrip_preserves_geometry(self):
        program = load_example("three_boxes")
        canvas = Canvas.from_value(program.evaluate())
        exported = render_canvas(canvas.root)
        new_canvas = Canvas.from_value(
            parse_program(svg_to_little(exported)).evaluate())
        for original, imported in zip(canvas, new_canvas):
            assert original.simple_num("x").value == \
                imported.simple_num("x").value
            assert original.simple_num("width").value == \
                imported.simple_num("width").value


class TestImportFile(object):
    def test_import_svg_file(self, tmp_path):
        path = tmp_path / "logo.svg"
        path.write_text(ELM_LOGO_SVG, encoding="utf-8")
        source = import_svg_file(path)
        assert parse_program(source).evaluate() is not None

"""Tests for implementation-appendix zone features: ZONES suppression,
built-in ROTATION zones, and FILL color-number zones."""

import pytest

from repro.editor import LiveSession
from repro.lang import parse_program
from repro.svg import Canvas
from repro.zones import zones_for_shape


def canvas_of(source):
    return Canvas.from_value(parse_program(source).evaluate())


class TestZonesSuppression:
    def test_zones_none_disables_shape(self):
        canvas = canvas_of(
            "(svg [(addAttr (rect 'r' 1 2 3 4) ['ZONES' 'none'])])")
        assert zones_for_shape(canvas[0]) == []

    def test_other_zones_values_keep_zones(self):
        canvas = canvas_of(
            "(svg [(addAttr (rect 'r' 1 2 3 4) ['ZONES' 'basic'])])")
        assert len(zones_for_shape(canvas[0])) == 9

    def test_suppressed_shape_not_draggable(self):
        session = LiveSession(
            "(def x 10) "
            "(svg [(addAttr (rect 'r' x 2 3 4) ['ZONES' 'none'])])")
        assert session.active_zone_count() == 0


class TestRotationZone:
    SOURCE = """
    (def angle 30)
    (svg [(rotateAround angle 200! 200! (rect 'salmon' 160 60 80 28))])
    """

    def test_rotation_zone_exists(self):
        canvas = canvas_of(self.SOURCE)
        names = [zone.name for zone in zones_for_shape(canvas[0])]
        assert "ROTATION" in names

    def test_rotation_zone_controls_angle(self):
        session = LiveSession(self.SOURCE)
        info = session.hover(0, "ROTATION")
        assert info.active
        assert "angle" in info.caption

    def test_drag_rotation_updates_angle_literal(self):
        session = LiveSession(self.SOURCE)
        result = session.drag_zone(0, "ROTATION", 15.0, 0.0)
        bindings = {loc.display(): value
                    for loc, value in result.bindings.items()}
        assert bindings == {"angle": 45.0}
        assert "(def angle 45)" in session.source()

    def test_no_transform_no_rotation_zone(self):
        canvas = canvas_of("(svg [(rect 'r' 1 2 3 4)])")
        names = [zone.name for zone in zones_for_shape(canvas[0])]
        assert "ROTATION" not in names

    def test_frozen_angle_rotation_inactive(self):
        session = LiveSession(
            "(svg [(rotateAround 30! 200! 200! "
            "(rect 'salmon' 160 60 80 28))])")
        assert session.hover(0, "ROTATION").active is False


class TestFillColorZone:
    SOURCE = "(def color 120) (svg [(rect color 10 20 30 40)])"

    def test_fill_zone_for_color_numbers(self):
        canvas = canvas_of(self.SOURCE)
        names = [zone.name for zone in zones_for_shape(canvas[0])]
        assert "FILL" in names

    def test_drag_fill_changes_color_number(self):
        session = LiveSession(self.SOURCE)
        result = session.drag_zone(0, "FILL", 60.0, 0.0)
        bindings = {loc.display(): value
                    for loc, value in result.bindings.items()}
        assert bindings == {"color": 180.0}
        assert 'hsl(180' in session.export_svg()

    def test_string_fill_has_no_fill_zone(self):
        canvas = canvas_of("(svg [(rect 'red' 10 20 30 40)])")
        names = [zone.name for zone in zones_for_shape(canvas[0])]
        assert "FILL" not in names

    def test_rgba_fill_has_no_fill_zone(self):
        canvas = canvas_of("(svg [(rect [255 0 0 1] 10 20 30 40)])")
        names = [zone.name for zone in zones_for_shape(canvas[0])]
        assert "FILL" not in names


class TestRotationRendering:
    def test_rotated_rect_renders_transform(self):
        session = LiveSession(
            "(svg [(rotateAround 45 100! 100! (rect 'r' 60 60 80 20))])")
        assert 'transform="rotate(45,100,100)"' in session.export_svg()

#!/usr/bin/env python3
"""Perf-trajectory tracker over BENCH_*.json artifacts.

Every benchmark session writes machine-readable ``BENCH_<table>.json``
files (see ``benchmarks/conftest.py``).  This script loads those
artifacts from two or more run directories -- oldest first, newest
last -- and prints a per-table, per-example trend report:

    python scripts/trajectory.py benchmarks/baselines/run-001 \\
        benchmarks/baselines/run-002 benchmarks/out

Two modes:

* **Timing mode** (default): every throughput-like metric (fields
  matching ``*_sps``, ``*_eps``, ``*_rps``, ``*throughput*``,
  ``*speedup*``, ``*_rate``) is tracked across runs.  The run FAILS
  (exit 1) when the newest value drops below ``--floor`` (default
  0.6) times the immediately preceding run -- a >40% regression.
  Timings are machine-dependent, so this mode is for trend reports on
  a fixed box, not CI.

* **Correctness mode** (``--correctness``): magnitudes are ignored;
  instead the newest run must (a) contain every table the oldest
  (baseline) run contains, (b) have rows wherever the baseline has
  rows, and (c) report every ``*identical*`` field as true.  This is
  stable across machines and is what CI runs.

``--json`` dumps the full trend structure as JSON instead of text.

The script is stdlib-only and never imports the repro package.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

METRIC_PATTERN = re.compile(
    r"(_sps$|_eps$|_rps$|throughput|speedup|_rate$|avg_rate)", re.IGNORECASE
)
IDENTITY_PATTERN = re.compile(r"identical", re.IGNORECASE)


def load_run(directory: Path) -> Dict[str, dict]:
    """Load every BENCH_*.json in *directory*, keyed by table name."""
    tables: Dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        name = data.get("name") or path.stem[len("BENCH_"):]
        tables[name] = data
    return tables


def normalize_rows(rows: object) -> List[dict]:
    """Return the dict rows of a table.

    ``rows`` is usually a list of dicts, but some tables (perf_table)
    key rows by name instead; non-dict rows are dropped.
    """
    if isinstance(rows, dict):
        rows = list(rows.values())
    if not isinstance(rows, list):
        return []
    return [row for row in rows if isinstance(row, dict)]


def row_label(row: dict, index: int) -> str:
    name = row.get("name")
    return str(name) if name is not None else f"row[{index}]"


def extract_metrics(table: dict) -> Dict[Tuple[str, str], float]:
    """Map (row label, field) -> value for every throughput-like field."""
    metrics: Dict[Tuple[str, str], float] = {}
    for index, row in enumerate(normalize_rows(table.get("rows"))):
        label = row_label(row, index)
        for field, value in row.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            if METRIC_PATTERN.search(field):
                metrics[(label, field)] = float(value)
    return metrics


def build_trends(runs: List[Dict[str, dict]], run_names: List[str]) -> dict:
    """Collect per-table, per-metric series across all runs."""
    table_names: List[str] = []
    for run in runs:
        for name in run:
            if name not in table_names:
                table_names.append(name)

    trends: dict = {"runs": run_names, "tables": {}}
    for table_name in table_names:
        per_run_metrics = [
            extract_metrics(run[table_name]) if table_name in run else {}
            for run in runs
        ]
        keys: List[Tuple[str, str]] = []
        for metrics in per_run_metrics:
            for key in metrics:
                if key not in keys:
                    keys.append(key)
        series = {}
        for key in keys:
            values: List[Optional[float]] = [m.get(key) for m in per_run_metrics]
            series["{}.{}".format(*key)] = values
        trends["tables"][table_name] = {
            "present": [table_name in run for run in runs],
            "row_counts": [
                len(normalize_rows(run[table_name].get("rows")))
                if table_name in run else 0
                for run in runs
            ],
            "metrics": series,
        }
    return trends


def timing_failures(trends: dict, floor: float) -> List[str]:
    """Metrics whose newest value fell below floor x the previous run."""
    failures: List[str] = []
    for table_name, table in sorted(trends["tables"].items()):
        for metric, values in sorted(table["metrics"].items()):
            tail = [v for v in values if v is not None]
            if len(tail) < 2:
                continue
            previous, latest = tail[-2], tail[-1]
            if previous > 0 and latest < floor * previous:
                failures.append(
                    f"{table_name}.{metric}: {latest:.1f} < "
                    f"{floor:g} x {previous:.1f}"
                )
    return failures


def correctness_failures(
    baseline: Dict[str, dict], latest: Dict[str, dict]
) -> List[str]:
    """Structural checks that hold on any machine."""
    failures: List[str] = []
    for table_name, table in sorted(baseline.items()):
        if table_name not in latest:
            failures.append(f"{table_name}: table missing from latest run")
            continue
        baseline_rows = normalize_rows(table.get("rows"))
        latest_rows = normalize_rows(latest[table_name].get("rows"))
        if baseline_rows and not latest_rows:
            failures.append(
                f"{table_name}: baseline has {len(baseline_rows)} rows, "
                "latest has none"
            )
    for table_name, table in sorted(latest.items()):
        for index, row in enumerate(normalize_rows(table.get("rows"))):
            for field, value in row.items():
                if IDENTITY_PATTERN.search(field) and value is not True:
                    failures.append(
                        f"{table_name}.{row_label(row, index)}.{field}: "
                        f"expected true, got {value!r}"
                    )
    return failures


def format_report(trends: dict, floor: float) -> str:
    lines: List[str] = []
    lines.append("Perf trajectory over runs: " + " -> ".join(trends["runs"]))
    for table_name, table in sorted(trends["tables"].items()):
        presence = ", ".join(
            f"{name}={count}" for name, count
            in zip(trends["runs"], table["row_counts"])
        )
        lines.append(f"\n{table_name}  (rows: {presence})")
        if not table["metrics"]:
            lines.append("  no throughput-like metrics tracked")
            continue
        for metric, values in sorted(table["metrics"].items()):
            rendered = " -> ".join(
                "-" if v is None else f"{v:.1f}" for v in values
            )
            tail = [v for v in values if v is not None]
            if len(tail) >= 2 and tail[-2] > 0:
                ratio = tail[-1] / tail[-2]
                marker = "  REGRESSION" if ratio < floor else ""
                rendered += f"  (x{ratio:.2f}{marker})"
            lines.append(f"  {metric}: {rendered}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Trend report over BENCH_*.json artifacts from "
        "successive benchmark runs (oldest directory first)."
    )
    parser.add_argument(
        "runs", nargs="+", metavar="RUN_DIR",
        help="directories holding BENCH_*.json, oldest first",
    )
    parser.add_argument(
        "--floor", type=float, default=0.6,
        help="fail when a metric drops below FLOOR x the previous run "
        "(timing mode, default 0.6)",
    )
    parser.add_argument(
        "--correctness", action="store_true",
        help="machine-independent checks only: table presence, row "
        "presence, and *identical* fields true in the newest run",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the trend structure as JSON",
    )
    args = parser.parse_args(argv)

    directories = [Path(run) for run in args.runs]
    missing = [str(d) for d in directories if not d.is_dir()]
    if missing:
        print(f"trajectory: no such run directory: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    runs = [load_run(d) for d in directories]
    empty = [str(d) for d, run in zip(directories, runs) if not run]
    if empty:
        print(f"trajectory: no BENCH_*.json artifacts in: {', '.join(empty)}",
              file=sys.stderr)
        return 2
    if len(runs) < 2:
        print("trajectory: need at least two run directories to compare",
              file=sys.stderr)
        return 2

    run_names = [d.name or str(d) for d in directories]
    trends = build_trends(runs, run_names)

    if args.correctness:
        failures = correctness_failures(runs[0], runs[-1])
    else:
        failures = timing_failures(trends, args.floor)

    if args.as_json:
        print(json.dumps({"trends": trends, "failures": failures}, indent=2))
    else:
        print(format_report(trends, args.floor))
        mode = "correctness" if args.correctness else "timing"
        if failures:
            print(f"\n{len(failures)} {mode} failure(s):")
            for failure in failures:
                print(f"  FAIL {failure}")
        else:
            print(f"\nno {mode} regressions "
                  f"({len(trends['tables'])} tables tracked)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Dead-link checker for the documentation (no third-party deps).

Scans markdown files for inline links/images ``[text](target)`` and
reference definitions ``[id]: target`` and verifies that every
*repository-relative* target resolves: the file exists, and an optional
``#fragment`` matches a heading of the target markdown file (GitHub
anchor slugs).  External ``http(s):``/``mailto:`` links are not fetched
— CI must stay offline-deterministic — but must at least be well-formed.

Usage::

    python scripts/check_links.py README.md docs [more files or dirs]

Exits nonzero listing every dead link.  Imported by
``tests/test_docs.py`` so the check also runs inside the test suite.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import List, Tuple

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
FENCE = re.compile(r"```.*?```", re.DOTALL)
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a heading."""
    text = re.sub(r"[`*_~]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_targets(path: pathlib.Path) -> List[str]:
    text = FENCE.sub("", path.read_text(encoding="utf-8"))
    return (INLINE_LINK.findall(text) + REFERENCE_DEF.findall(text))


def check_file(path: pathlib.Path) -> List[Tuple[str, str]]:
    """All dead links in one markdown file, as (target, reason) pairs."""
    dead = []
    for target in markdown_targets(path):
        scheme = target.split(":", 1)[0].lower() if ":" in target else ""
        if scheme in ("http", "https", "mailto"):
            if not re.match(r"^(https?://\S+\.\S+|mailto:\S+@\S+)",
                            target):
                dead.append((target, "malformed external link"))
            continue
        relative, _, fragment = target.partition("#")
        resolved = path.parent / relative if relative else path
        if not resolved.exists():
            dead.append((target, f"no such file {resolved}"))
            continue
        if fragment and resolved.suffix == ".md":
            # Strip fences first: a '# ...' line inside a code block is
            # not a rendered heading and must not mask a dead anchor.
            headings = HEADING.findall(
                FENCE.sub("", resolved.read_text(encoding="utf-8")))
            if fragment.lower() not in {github_slug(h) for h in headings}:
                dead.append((target, f"no heading #{fragment}"))
    return dead


def collect(paths) -> List[pathlib.Path]:
    files: List[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def main(argv: List[str]) -> int:
    if not argv:
        argv = ["README.md", "docs"]
    failures = 0
    files = collect(argv)
    for path in files:
        if not path.is_file():
            print(f"{path}: no such file", file=sys.stderr)
            failures += 1
            continue
        for target, reason in check_file(path):
            print(f"{path}: dead link {target!r}: {reason}",
                  file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} problem(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

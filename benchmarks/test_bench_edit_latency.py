"""Edit-latency benchmark: the edit path vs reopen-from-scratch.

The paper's workflow alternates programmatic and direct manipulation, so
a source-text edit must be as live as a drag.  This table measures the
edit→synced-canvas latency of ``LiveSession.edit_source`` — value-only
edits (the differ re-expresses the edit as a substitution and the staged
pipeline reuses its caches) and structural edits (full re-run with
re-keyed locations) — against reopening a fresh session on the new text,
with the fast path verified byte-identical to a fresh session at every
step.
"""

from repro.bench import (EDIT_EXAMPLES, format_edit_latency_table,
                         measure_edit_latency, median_edit_speedup,
                         value_edit_texts)
from repro.bench.edit_latency import DEFAULT_EDITS
from repro.editor import LiveSession
from repro.examples import example_source


def test_value_edit_texts_handles_literal_free_programs():
    assert value_edit_texts("(svg [])", 4) == []


def test_bench_value_edit(benchmark):
    """A single value-only source edit through the live session."""
    source = example_source("ferris_wheel")
    texts = value_edit_texts(source, 256)
    session = LiveSession(source)
    counter = [0]

    def one_edit():
        session.edit_source(texts[counter[0] % len(texts)])
        counter[0] += 1

    benchmark(one_edit)
    assert session.active_zone_count() > 0


def test_edit_latency_speedup(request, write_table):
    """E9 — the edit-latency table: >=3x median edit throughput over
    reopen-from-scratch for value-only edits, fast-path state locked
    byte-identical to a fresh session (SVG, zones, captions, sliders,
    source) at every step."""
    rows = measure_edit_latency()
    assert [row.name for row in rows] == list(EDIT_EXAMPLES)
    # Every example must yield its full edit sequence — a truncated one
    # would make the equivalence flags below vacuous.
    assert all(row.edits == DEFAULT_EDITS for row in rows)
    assert all(row.value_only for row in rows)
    assert all(row.outputs_identical for row in rows)
    # The wall-clock target only binds when benchmarks run in timing mode;
    # under --benchmark-disable (CI correctness sweeps on noisy shared
    # runners) the equivalence checks above are the point.
    if not request.config.getoption("benchmark_disable"):
        assert median_edit_speedup(rows) >= 3.0
    write_table("edit_latency", format_edit_latency_table(rows), rows=rows)

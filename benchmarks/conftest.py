"""Shared fixtures for the benchmark suite.

Every benchmark module regenerates one of the paper's tables or figures
(see DESIGN.md's experiment index).  Tables are printed to stdout and also
written under ``benchmarks/out/`` for EXPERIMENTS.md.
"""

import json
import pathlib

import pytest

from repro.bench import prepare_corpus, table_records

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def corpus():
    """The full example corpus, parsed / evaluated / assigned once."""
    return prepare_corpus()


@pytest.fixture(scope="session")
def write_table():
    """Write one benchmark table: the formatted ``.txt`` for humans,
    plus a machine-readable ``BENCH_<name>.json`` (the row objects via
    :func:`repro.bench.table_records`, and the rendered lines either
    way) so CI can track the perf trajectory without parsing text."""
    OUT_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str, rows=None, **meta) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        payload = {"name": name, "lines": text.splitlines()}
        if rows is not None:
            payload["rows"] = table_records(rows)
        if meta:
            payload["meta"] = table_records(meta)
        (OUT_DIR / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2, default=str) + "\n",
            encoding="utf-8")
        print("\n" + text)

    return _write

"""Shared fixtures for the benchmark suite.

Every benchmark module regenerates one of the paper's tables or figures
(see DESIGN.md's experiment index).  Tables are printed to stdout and also
written under ``benchmarks/out/`` for EXPERIMENTS.md.
"""

import pathlib

import pytest

from repro.bench import prepare_corpus

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def corpus():
    """The full example corpus, parsed / evaluated / assigned once."""
    return prepare_corpus()


@pytest.fixture(scope="session")
def write_table():
    OUT_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print("\n" + text)

    return _write

"""E8/E9 — Figure 9 and the Hypothesis 1/2 tables of Appendix E.2,
recomputed from the published Appendix F response counts."""

import pytest

from repro.study import (analyze_all, bootstrap_t_mean, expand_counts,
                         experienced_fraction, format_figure9,
                         hypothesis2_holds)
from repro.study.data import A_VS_B


def test_bench_bootstrap_t(benchmark):
    responses = expand_counts(A_VS_B["ferris"])
    estimate = benchmark(bootstrap_t_mean, responses, resamples=2000)
    assert estimate.mean == pytest.approx(-0.52)


def test_figure9(write_table):
    results = analyze_all()
    for result in results:
        # Means are recomputed exactly from the published counts.
        assert result.estimate.mean == pytest.approx(result.paper_mean)
        # Resampled intervals land close to the published ones.
        assert result.estimate.low == pytest.approx(
            result.paper_interval[0], abs=0.12)
        assert result.estimate.high == pytest.approx(
            result.paper_interval[1], abs=0.12)
    assert hypothesis2_holds(resamples=2000)
    assert experienced_fraction() == pytest.approx(0.64)
    write_table("figure9_user_study", format_figure9())

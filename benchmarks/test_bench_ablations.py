"""Ablations for the design choices DESIGN.md calls out:

* fair vs. biased heuristic on the Appendix B.1 variant program;
* frozen vs. unfrozen Prelude (candidate-set sizes, Figure 1D vs. §2.2);
* SolveA-only vs. SolveB-only vs. combined fragment coverage ("SolveB
  subsumes SolveA on virtually all equations", Appendix B.2).
"""

from repro.bench import extract_pre_equations
from repro.bench.corpus import prepare_example
from repro.examples import example_source
from repro.lang import parse_program
from repro.svg import Canvas
from repro.synthesis import synthesize_plausible
from repro.trace.equation import Equation
from repro.zones import assign_canvas


def test_bench_biased_assignment(benchmark):
    example = prepare_example("group_box_variant")
    result = benchmark(assign_canvas, example.canvas, "biased")
    assert result.chosen


def test_ablation_fair_vs_biased(write_table):
    """On the Appendix B.1 variant, fair spreads assignments over the
    auxiliary locations a/b while biased avoids them entirely."""
    example = prepare_example("group_box_variant")

    def used_locations(heuristic):
        assignments = assign_canvas(example.canvas, heuristic)
        used = set()
        for assignment in assignments.chosen.values():
            used.update(loc.display() for loc in assignment.location_set)
        return used

    fair_used = used_locations("fair")
    biased_used = used_locations("biased")
    assert {"a", "b"} <= fair_used
    assert not ({"a", "b"} & biased_used)
    lines = [
        "Ablation: fair vs. biased heuristic (Appendix B.1 variant)",
        f"fair   assigns: {', '.join(sorted(fair_used))}",
        f"biased assigns: {', '.join(sorted(biased_used))}",
        "biased avoids the auxiliary locations a and b, which occur in "
        "twice as many traces.",
    ]
    write_table("ablation_heuristics", "\n".join(lines))


def test_ablation_prelude_freezing(write_table):
    """Freezing the Prelude removes the undesirable rho3/rho4 candidates
    of Figure 1D (§2.2, 'Frozen Constants')."""
    source = example_source("sine_wave_of_boxes")
    lines = ["Ablation: Prelude freezing (Figure 1D candidate sets)"]
    counts = {}
    for frozen in (False, True):
        program = parse_program(source, prelude_frozen=frozen)
        canvas = Canvas.from_value(program.evaluate())
        equation = Equation(155.0, canvas[2].simple_num("x").trace)
        candidates = synthesize_plausible(program.rho0, [equation],
                                          allow_linear=True)
        counts[frozen] = len(candidates)
        label = "frozen" if frozen else "unfrozen"
        names = sorted(c.choice[0].display() for c in candidates)
        lines.append(f"prelude {label:9s}: {len(candidates)} candidates "
                     f"({', '.join(names)})")
    assert counts[False] == 4 and counts[True] == 2
    write_table("ablation_prelude_freezing", "\n".join(lines))


def test_ablation_solver_fragments(corpus, write_table):
    """Per-solver coverage across all unique pre-equations: SolveB covers
    (nearly) everything SolveA does."""
    a_only = b_only = both = neither = 0
    for example in corpus.values():
        _, equations = extract_pre_equations(example)
        for equation in equations:
            if equation.in_a and equation.in_b:
                both += 1
            elif equation.in_a:
                a_only += 1
            elif equation.in_b:
                b_only += 1
            else:
                neither += 1
    total = a_only + b_only + both + neither
    lines = [
        "Ablation: solver fragment coverage over unique pre-equations",
        f"total unique pre-equations : {total}",
        f"SolveA only                : {a_only}",
        f"SolveB only                : {b_only}",
        f"both fragments             : {both}",
        f"outside both               : {neither}",
    ]
    # Appendix B.2: "SolveB subsumes SolveA on virtually all equations".
    assert a_only <= 0.05 * total
    assert b_only + both >= 0.7 * total
    write_table("ablation_solver_fragments", "\n".join(lines))

"""Serve-throughput benchmarks: the sync service under concurrent load.

The ROADMAP's north star is a service for many users; two tables:

* **throughput** — sessions/sec (shared compile cache) and
  drag-events/sec (per-request burst coalescing) under an interleaved
  single-threaded load generator;
* **scaling** — drag-events/sec from a *real* thread pool of 1/4/16
  worker clients on disjoint sessions: the global-dispatch-lock baseline
  (the pre-sharding server) vs per-session locks vs per-session locks
  plus cross-request coalescing of acknowledged drag bursts vs the
  coalescing server replaying drags through trace-compiled artifacts.

Every state-bearing protocol response is verified byte-identical (SVG
and program text) to a direct ``LiveSession`` driven with the same
inputs, so the service adds no semantic layer — only scheduling.  Under
``--benchmark-disable`` the equivalence checks are the point; the
throughput numbers are noise.
"""

from repro.bench import (SERVE_CONCURRENCY, SERVE_WORKERS,
                         format_serve_scaling_table,
                         format_serve_throughput_table,
                         measure_serve_scaling, measure_serve_throughput)
from repro.serve import ServeApp


def test_bench_serve_drag_request(benchmark):
    """A single coalesced drag request + release through the protocol."""
    app = ServeApp()
    opened = app.handle({"cmd": "open", "example": "ferris_wheel"})
    assert opened["ok"]
    sid = opened["session"]
    session = app.manager.get(sid)
    shape, zone = sorted(session.triggers)[0]
    counter = [0]

    def burst():
        base = float(counter[0] % 19)
        counter[0] += 1
        steps = [[base + sample, base + 2 * sample] for sample in range(5)]
        dragged = app.handle({"cmd": "drag", "session": sid,
                              "shape": shape, "zone": zone, "steps": steps})
        released = app.handle({"cmd": "release", "session": sid})
        assert dragged["ok"] and released["ok"]

    benchmark(burst)
    assert app.manager.stats()["live_sessions"] == 1


def test_serve_throughput_table(request, write_table):
    """E9 — the serve-throughput table at 1/8/64 concurrent sessions
    plus the concurrent-scaling table at 1/4/16 worker threads, every
    state-bearing response byte-identical to the direct LiveSession
    path."""
    rows = measure_serve_throughput()
    assert [row.concurrency for row in rows] == list(SERVE_CONCURRENCY)
    assert all(row.responses_identical for row in rows)
    scaling = measure_serve_scaling()
    assert [row.workers for row in scaling] == list(SERVE_WORKERS)
    assert all(row.responses_identical for row in scaling)
    # Cross-request coalescing must clearly beat the global-lock
    # baseline at the top worker count (measured ~3x).  The wall-clock
    # ratio is asserted only when timing is the point: under
    # --benchmark-disable (correctness mode) throughput numbers are
    # noise by contract.
    if not request.config.getoption("benchmark_disable"):
        assert scaling[-1].speedup > 1.5, scaling[-1]
        # The trace-compiled replay must not tax the serve path: on the
        # scaling table's deliberately tiny programs, dispatch dominates
        # and compiled ~= coalesce (measured ~0.9-1.1x, with scheduler
        # noise swinging individual passes further).  The floor is a
        # loose no-regression guard — it catches a structural tax like
        # re-specializing per burst, not a few percent — because the
        # compiler's 2x+ win is asserted where evaluation dominates, in
        # the drag-latency table.
        for row in scaling:
            assert row.compiled_eps > 0.5 * row.coalesce_eps, row
    write_table("serve_throughput",
                format_serve_throughput_table(rows) + "\n\n"
                + format_serve_scaling_table(scaling),
                rows={"throughput": rows, "scaling": scaling})

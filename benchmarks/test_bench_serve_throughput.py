"""Serve-throughput benchmark: the sync service under concurrent load.

The ROADMAP's north star is a service for many users; this table measures
the two serving-layer mechanisms on top of the incremental pipeline:

* the shared compile cache — sessions/sec when N users open the corpus
  (the first open of each program parses + evaluates, the rest adopt the
  recorded evaluation);
* drag-burst coalescing — drag-events/sec when each request carries a
  burst of cumulative mouse samples and the protocol re-runs once.

Every protocol response is verified byte-identical (SVG and program text)
to a direct ``LiveSession`` driven with the same inputs, so the service
adds no semantic layer — only scheduling.  Under ``--benchmark-disable``
the equivalence checks are the point; the throughput numbers are noise.
"""

from repro.bench import (SERVE_CONCURRENCY, format_serve_throughput_table,
                         measure_serve_throughput)
from repro.serve import ServeApp


def test_bench_serve_drag_request(benchmark):
    """A single coalesced drag request + release through the protocol."""
    app = ServeApp()
    opened = app.handle({"cmd": "open", "example": "ferris_wheel"})
    assert opened["ok"]
    sid = opened["session"]
    session = app.manager.get(sid)
    shape, zone = sorted(session.triggers)[0]
    counter = [0]

    def burst():
        base = float(counter[0] % 19)
        counter[0] += 1
        steps = [[base + sample, base + 2 * sample] for sample in range(5)]
        dragged = app.handle({"cmd": "drag", "session": sid,
                              "shape": shape, "zone": zone, "steps": steps})
        released = app.handle({"cmd": "release", "session": sid})
        assert dragged["ok"] and released["ok"]

    benchmark(burst)
    assert app.manager.stats()["live_sessions"] == 1


def test_serve_throughput_table(write_table):
    """E9 — the serve-throughput table at 1/8/64 concurrent sessions,
    every response byte-identical to the direct LiveSession path."""
    rows = measure_serve_throughput()
    assert [row.concurrency for row in rows] == list(SERVE_CONCURRENCY)
    assert all(row.responses_identical for row in rows)
    write_table("serve_throughput", format_serve_throughput_table(rows))

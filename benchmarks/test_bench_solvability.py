"""E3/E7 — the §5.2.2 pre-equation solvability table and the Appendix G
solver-fragment table."""

import pytest

from repro.bench import (equation_totals, extract_pre_equations,
                         format_equation_table)
from repro.bench.corpus import prepare_example
from repro.lang.errors import SolverFailure
from repro.synthesis import solve_one


def test_bench_solve_pre_equations(benchmark):
    """Benchmark solving every unique pre-equation of the running example
    with d=1 (the <1ms/solve claim of §5.2.3)."""
    example = prepare_example("sine_wave_of_boxes")
    _, equations = extract_pre_equations(example)
    rho = example.program.rho0

    def solve_all():
        solved = 0
        for eq in equations:
            try:
                solve_one(rho, eq.loc, eq.value + 1.0, eq.trace)
                solved += 1
            except SolverFailure:
                pass
        return solved

    solved = benchmark(solve_all)
    assert solved > 0


def test_solvability_table(corpus, write_table):
    totals = equation_totals(corpus)
    # Qualitative §5.2.2 claims:
    # (1) the great majority of pre-equations are in the solver fragment;
    assert totals.inside / totals.unique > 0.70         # paper: 80%
    # (2) almost everything in the fragment solves at d=1;
    assert totals.solved_d1 / totals.inside > 0.90      # paper: 95%
    # (3) d=100 breaks strictly more equations than d=1 (bounded
    #     functions like cos; §5.2.2 discusses rotation angles).
    assert totals.solved_d100 <= totals.solved_d1
    # (4) nothing outside the fragment is solvable.
    write_table("solvability_table", format_equation_table(totals),
                rows=totals)

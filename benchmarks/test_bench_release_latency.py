"""Release-latency benchmark: incremental vs from-scratch Prepare.

PR 1 made the *drag* half of live synchronization incremental; this table
covers the other half of §5.2.3 — the Prepare computation performed "when
the program is run initially and after the user finishes dragging a zone".
The change-set-driven pipeline (repro.core) re-assigns and re-triggers only
what a gesture's substitutions could have touched; this benchmark drives
repeated drag-release gestures over the multi-shape examples whose Prepare
cost the paper flags as growing with zone count (Appendix G) and asserts a
>=3x median Prepare throughput with the incremental state bit-identical to
a from-scratch Prepare at every release.
"""

from repro.bench import (RELEASE_EXAMPLES, format_release_latency_table,
                         measure_release_latency, median_release_speedup,
                         naive_prepare, prepare_equal)
from repro.bench.drag_latency import _release_gesture
from repro.editor import LiveSession
from repro.examples import example_source


def test_bench_release(benchmark):
    """A single incremental release (drag gesture outside the timed body)."""
    session = LiveSession(example_source("ferris_wheel"))
    counter = [0]

    def gesture_then_release():
        _release_gesture(session, counter[0], 3)
        counter[0] += 1
        session.release()

    benchmark(gesture_then_release)
    assert session.active_zone_count() > 0


def test_release_latency_speedup(request, write_table):
    """E8 — the release-latency table: >=3x median Prepare throughput on
    multi-shape examples, with assignments, triggers, sliders and hover
    data locked identical to the from-scratch path at every release."""
    rows = measure_release_latency()
    assert [row.name for row in rows] == list(RELEASE_EXAMPLES)
    assert all(row.outputs_identical for row in rows)
    # The wall-clock target only binds when benchmarks run in timing mode;
    # under --benchmark-disable (CI correctness sweeps on noisy shared
    # runners) the equivalence checks above are the point.
    if not request.config.getoption("benchmark_disable"):
        assert median_release_speedup(rows) >= 3.0
    write_table("release_latency", format_release_latency_table(rows),
                rows=rows)


def test_incremental_release_after_guard_flip_stays_equal():
    """A gesture that flips a control-flow guard (full-eval fallback)
    must escalate the release to a full Prepare — still equal to the
    from-scratch state."""
    session = LiveSession(example_source("n_boxes_slider"))
    key = next(iter(session.triggers))
    session.start_drag(*key)
    for step in range(6):
        session.drag(40.0 * step, 25.0 * step)
    session.release()
    assert prepare_equal(session.pipeline,
                         *naive_prepare(session.pipeline))

"""Drag-latency benchmark: the live-sync hot path, fast vs. naive.

The paper's load-bearing property is that the run-solve-rerun loop is
interactive (§4.1, §5.2.3).  This benchmark drives a 60-step drag gesture
through the corpus along the incremental session path, the
pre-optimization (full rebuild + full re-evaluation) path, and the
trace-compiled replay (:mod:`repro.lang.compile`), asserting that the
fast path is at least 5x faster than naive at the median — and the
compiled path at least 2x faster again — while producing bit-identical
outputs.
"""

import time
from statistics import median

from repro.bench import (DRAG_LATENCY_EXAMPLES, format_drag_latency_table,
                         measure_drag_latency, median_compiled_speedup,
                         median_speedup)
from repro.bench.drag_latency import _gesture, _start
from repro.editor import LiveSession
from repro.examples import example_source
from repro.lang.eval import EvalBudget


def test_bench_drag_step(benchmark):
    """Single incremental drag step on the running example."""
    session = _start("sine_wave_of_boxes")
    offsets = _gesture(60)
    index = [0]

    def step():
        dx, dy = offsets[index[0] % len(offsets)]
        index[0] += 1
        session.drag(dx, dy)

    benchmark(step)
    session.release()
    assert len(session.canvas) == 12


def test_bench_drag_gesture(benchmark):
    """A full 60-step gesture (start + drags + release)."""

    def gesture():
        session = _start("three_boxes")
        for dx, dy in _gesture(60):
            session.drag(dx, dy)
        session.release()
        return session

    session = benchmark(gesture)
    assert len(session.canvas) == 3


def test_drag_latency_speedup(request, write_table):
    """E7 — the before/after table: >=5x median drag-step throughput with
    outputs locked bit-identical between the paths, and the trace
    compiler worth >=2x on top of the incremental interpreter."""
    rows = measure_drag_latency()
    assert [row.name for row in rows] == list(DRAG_LATENCY_EXAMPLES)
    assert len(rows) >= 5
    # Identical values, traces and rendered SVG at every gesture step,
    # interpreter and compiled replay alike.
    assert all(row.outputs_identical for row in rows)
    # The wall-clock targets only bind when benchmarks run in timing mode;
    # under --benchmark-disable (CI correctness sweeps on noisy shared
    # runners) the equivalence checks above are the point.
    if not request.config.getoption("benchmark_disable"):
        assert median_speedup(rows) >= 5.0
        assert median_compiled_speedup(rows) >= 2.0, \
            [(row.name, row.compiled_speedup) for row in rows]
    write_table("drag_latency", format_drag_latency_table(rows), rows=rows)


def test_drag_budget_overhead(request, write_table):
    """The evaluation-budget accounting (fuel per interpreter step,
    depth per frame, size per allocation) must not tax drag throughput
    with the default caps armed — the fault containment a server
    enables by default cannot cost the hot path.  Swept over both hot
    paths: the interpreted replay and the trace-compiled one (which
    charges the same coarse guard fuel).  The two configs are timed in
    *paired* 10-step chunks — plain then budget on the same chunk,
    back to back — so multi-second noise epochs (CPU frequency shifts,
    noisy neighbors on a shared host) tax both sides of every pair
    equally instead of landing on one separately-timed pass.  The
    floor is 10%: the true accounting cost measures ~0-2%, and a
    *structural* regression (charging per statement instead of per
    replay, re-arming per step) costs far more than 10%."""
    name = "sine_wave_of_boxes"
    offsets = _gesture(60)
    chunk = 10

    def start(budget, compiled):
        session = LiveSession(example_source(name), budget=budget,
                              compiled=compiled)
        key = next(iter(session.triggers))
        session.start_drag(*key)
        return session

    def run_paired(compiled):
        """One paired gesture: fastest-chunk steps/sec for the no-budget
        and default-budget sessions, plus the per-pair cost ratios
        (budget/plain).  Pairing is the noise shield: a preemption or
        frequency shift lands on one pair (or both halves of it), while
        a real accounting cost shifts *every* pair — so the median
        ratio estimates the true overhead."""
        plain = start(None, compiled)
        budget = start(EvalBudget(), compiled)
        cost = {id(plain): float("inf"), id(budget): float("inf")}
        ratios = []
        for pair, index in enumerate(range(0, len(offsets), chunk)):
            block = offsets[index:index + chunk]
            # Alternate which session goes first so warm-cache advantage
            # doesn't systematically favor one side of the pair.
            first, second = ((plain, budget) if pair % 2 == 0
                             else (budget, plain))
            begin = time.perf_counter()
            for dx, dy in block:
                first.drag(dx, dy)
            middle = time.perf_counter()
            for dx, dy in block:
                second.drag(dx, dy)
            end = time.perf_counter()
            pair_cost = {id(first): (middle - begin) / len(block),
                         id(second): (end - middle) / len(block)}
            cost[id(first)] = min(cost[id(first)], pair_cost[id(first)])
            cost[id(second)] = min(cost[id(second)], pair_cost[id(second)])
            ratios.append(pair_cost[id(budget)] / pair_cost[id(plain)])
        plain.release()
        budget.release()
        assert plain.export_svg() == budget.export_svg()
        # accounting never alters output (checked above)
        return 1.0 / cost[id(plain)], 1.0 / cost[id(budget)], ratios

    lines = ["Budget overhead: drag steps/sec, default caps armed",
             f"{'config':26s}{'steps/s':>10s}"]
    records = {}
    for compiled in (False, True):
        path = "compiled" if compiled else "interp"
        plain_best = budget_best = 0.0
        ratio = float("inf")
        for _ in range(5):
            plain_sps, budget_sps, pass_ratios = run_paired(compiled)
            plain_best = max(plain_best, plain_sps)
            budget_best = max(budget_best, budget_sps)
            # Median-per-pass defeats preemptions hitting single pairs;
            # min-across-passes defeats per-run memory-layout bias (each
            # pass allocates fresh sessions, so placement re-rolls).  A
            # real accounting cost inflates every pass's median.
            ratio = min(ratio, median(pass_ratios))
        overhead_pct = 100.0 * (ratio - 1.0)
        lines += [f"{path + ', no budget':26s}{plain_best:>10.1f}",
                  f"{path + ', default budget':26s}{budget_best:>10.1f}",
                  f"{path + ' overhead':26s}{overhead_pct:>9.1f}%"]
        records[path] = {"no_budget_sps": plain_best,
                         "budget_sps": budget_best,
                         "overhead_pct": overhead_pct}
        if not request.config.getoption("benchmark_disable"):
            assert ratio <= 1.10, \
                f"budget accounting costs {overhead_pct:.1f}% (>10%) " \
                f"on the {path} path at the median paired chunk"
    write_table("drag_budget_overhead", "\n".join(lines), rows=records)

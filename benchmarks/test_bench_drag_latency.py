"""Drag-latency benchmark: the live-sync hot path, fast vs. naive.

The paper's load-bearing property is that the run-solve-rerun loop is
interactive (§4.1, §5.2.3).  This benchmark drives a 60-step drag gesture
through the corpus along the incremental session path and the
pre-optimization (full rebuild + full re-evaluation) path, asserting that
the fast path is at least 5x faster at the median while producing
bit-identical outputs.
"""

from repro.bench import (DRAG_LATENCY_EXAMPLES, format_drag_latency_table,
                         measure_drag_latency, median_speedup)
from repro.bench.drag_latency import _gesture, _start
from repro.editor import LiveSession
from repro.examples import example_source


def test_bench_drag_step(benchmark):
    """Single incremental drag step on the running example."""
    session = _start("sine_wave_of_boxes")
    offsets = _gesture(60)
    index = [0]

    def step():
        dx, dy = offsets[index[0] % len(offsets)]
        index[0] += 1
        session.drag(dx, dy)

    benchmark(step)
    session.release()
    assert len(session.canvas) == 12


def test_bench_drag_gesture(benchmark):
    """A full 60-step gesture (start + drags + release)."""

    def gesture():
        session = _start("three_boxes")
        for dx, dy in _gesture(60):
            session.drag(dx, dy)
        session.release()
        return session

    session = benchmark(gesture)
    assert len(session.canvas) == 3


def test_drag_latency_speedup(request, write_table):
    """E7 — the before/after table: >=5x median drag-step throughput with
    outputs locked bit-identical between the two paths."""
    rows = measure_drag_latency()
    assert [row.name for row in rows] == list(DRAG_LATENCY_EXAMPLES)
    assert len(rows) >= 5
    # Identical values, traces and rendered SVG at every gesture step.
    assert all(row.outputs_identical for row in rows)
    # The wall-clock target only binds when benchmarks run in timing mode;
    # under --benchmark-disable (CI correctness sweeps on noisy shared
    # runners) the equivalence checks above are the point.
    if not request.config.getoption("benchmark_disable"):
        assert median_speedup(rows) >= 5.0
    write_table("drag_latency", format_drag_latency_table(rows))

"""Drag-latency benchmark: the live-sync hot path, fast vs. naive.

The paper's load-bearing property is that the run-solve-rerun loop is
interactive (§4.1, §5.2.3).  This benchmark drives a 60-step drag gesture
through the corpus along the incremental session path and the
pre-optimization (full rebuild + full re-evaluation) path, asserting that
the fast path is at least 5x faster at the median while producing
bit-identical outputs.
"""

import time

from repro.bench import (DRAG_LATENCY_EXAMPLES, format_drag_latency_table,
                         measure_drag_latency, median_speedup)
from repro.bench.drag_latency import _gesture, _start
from repro.editor import LiveSession
from repro.examples import example_source
from repro.lang.eval import EvalBudget


def test_bench_drag_step(benchmark):
    """Single incremental drag step on the running example."""
    session = _start("sine_wave_of_boxes")
    offsets = _gesture(60)
    index = [0]

    def step():
        dx, dy = offsets[index[0] % len(offsets)]
        index[0] += 1
        session.drag(dx, dy)

    benchmark(step)
    session.release()
    assert len(session.canvas) == 12


def test_bench_drag_gesture(benchmark):
    """A full 60-step gesture (start + drags + release)."""

    def gesture():
        session = _start("three_boxes")
        for dx, dy in _gesture(60):
            session.drag(dx, dy)
        session.release()
        return session

    session = benchmark(gesture)
    assert len(session.canvas) == 3


def test_drag_latency_speedup(request, write_table):
    """E7 — the before/after table: >=5x median drag-step throughput with
    outputs locked bit-identical between the two paths."""
    rows = measure_drag_latency()
    assert [row.name for row in rows] == list(DRAG_LATENCY_EXAMPLES)
    assert len(rows) >= 5
    # Identical values, traces and rendered SVG at every gesture step.
    assert all(row.outputs_identical for row in rows)
    # The wall-clock target only binds when benchmarks run in timing mode;
    # under --benchmark-disable (CI correctness sweeps on noisy shared
    # runners) the equivalence checks above are the point.
    if not request.config.getoption("benchmark_disable"):
        assert median_speedup(rows) >= 5.0
    write_table("drag_latency", format_drag_latency_table(rows), rows=rows)


def test_drag_budget_overhead(request, write_table):
    """The evaluation-budget accounting (fuel per interpreter step,
    depth per frame, size per allocation) must cost less than 5% of
    fast-path drag throughput with the default caps armed — the fault
    containment a server enables by default cannot tax the hot path."""
    name = "sine_wave_of_boxes"
    offsets = _gesture(60)

    def run(budget):
        session = LiveSession(example_source(name), budget=budget)
        key = next(iter(session.triggers))
        session.start_drag(*key)
        start = time.perf_counter()
        for dx, dy in offsets:
            session.drag(dx, dy)
        elapsed = time.perf_counter() - start
        session.release()
        return len(offsets) / elapsed, session.export_svg()

    # Interleave repeats and keep each path's best pass, shedding
    # scheduler noise that a single timed run would bake in.
    plain_best = budget_best = 0.0
    for _ in range(5):
        plain_sps, plain_svg = run(None)
        budget_sps, budget_svg = run(EvalBudget())
        assert plain_svg == budget_svg       # accounting never alters output
        plain_best = max(plain_best, plain_sps)
        budget_best = max(budget_best, budget_sps)
    overhead_pct = 100.0 * (plain_best - budget_best) / plain_best
    text = "\n".join([
        "Budget overhead: fast-path drag steps/sec, default caps armed",
        f"{'config':16s}{'steps/s':>10s}",
        f"{'no budget':16s}{plain_best:>10.1f}",
        f"{'default budget':16s}{budget_best:>10.1f}",
        f"{'overhead':16s}{overhead_pct:>9.1f}%",
    ])
    write_table("drag_budget_overhead", text,
                rows={"no_budget_sps": plain_best,
                      "budget_sps": budget_best,
                      "overhead_pct": overhead_pct})
    if not request.config.getoption("benchmark_disable"):
        assert budget_best >= 0.95 * plain_best, \
            f"budget accounting costs {overhead_pct:.1f}% (>5%)"

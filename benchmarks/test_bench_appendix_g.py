"""E5/E6 — the Appendix G per-example tables: shape/zone counts with
candidate splits, and output-location assignment statistics."""

from repro.bench import (corpus_loc_stats, corpus_zone_stats,
                         format_loc_rows, format_perf_rows,
                         format_zone_rows, loc_totals, measure_rows,
                         zone_stats)
from repro.bench.corpus import prepare_example


def test_bench_zone_stats_computation(benchmark):
    example = prepare_example("tessellation")
    row = benchmark(zone_stats, example)
    assert row.zone_count > 500


def test_appendix_g_zone_rows(corpus, write_table):
    rows = corpus_zone_stats(corpus)
    by_name = {row.name: row for row in rows}
    # Spot-check the running example against the paper's Wave Boxes row
    # (12 shapes, 108 zones, 0/36/72 with 2.67 avg candidates).
    wave = by_name["sine_wave_of_boxes"]
    assert (wave.shape_count, wave.zone_count) == (12, 108)
    assert (wave.inactive, wave.unambiguous, wave.ambiguous) == (0, 36, 72)
    assert abs(wave.ambiguous_avg - 2.67) < 0.01
    write_table("appendix_g_zones", format_zone_rows(rows), rows=rows)


def test_appendix_g_perf_rows(corpus, write_table):
    rows = measure_rows(corpus, runs=2)
    # Median per-example times stay interactive-scale across the corpus.
    assert all(row.eval_ms < 2000 for row in rows)
    write_table("appendix_g_perf", format_perf_rows(rows), rows=rows)


def test_appendix_g_loc_rows(corpus, write_table):
    rows = corpus_loc_stats(corpus)
    totals = loc_totals(rows)
    # Structural invariant of the table: assigned + unassigned = unfrozen.
    assert totals.assigned + totals.unassigned == totals.unfrozen
    # Most unfrozen locations reaching the output get assigned somewhere
    # (the paper's totals: 975 of 1440).
    assert totals.assigned / totals.unfrozen > 0.5
    write_table("appendix_g_locs", format_loc_rows(rows, totals),
                rows=rows, totals=totals)

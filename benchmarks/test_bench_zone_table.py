"""E2 — the §5.2.1 zone-statistics table (Active/Inactive/ambiguity)."""

from repro.bench import (corpus_zone_stats, format_zone_table, zone_totals)
from repro.bench.corpus import prepare_example
from repro.zones.assignment import assign_canvas


def test_bench_prepare_assignments(benchmark):
    """Benchmark the Prepare-time assignment pass on the running example."""
    example = prepare_example("sine_wave_of_boxes")
    result = benchmark(assign_canvas, example.canvas, "fair")
    assert len(result.chosen) == 108


def test_zone_table(corpus, write_table):
    rows = corpus_zone_stats(corpus)
    totals = zone_totals(rows)
    # The qualitative claims of §5.2.1 must hold on our corpus:
    # most zones Active, ambiguity frequent.
    assert totals.active / totals.zones > 0.85          # paper: 93%
    assert totals.ambiguous / totals.zones > 0.40       # paper: 59%
    assert 2.0 < totals.ambiguous_avg < 20.0            # paper: 3.83
    write_table("zone_table", format_zone_table(totals), rows=totals)

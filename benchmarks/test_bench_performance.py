"""E4 — the §5.2.3 performance table (Parse / Eval / Prepare / Solve).

Micro-benchmarks (pytest-benchmark) cover each operation on the running
example; the corpus-wide Min/Med/Avg/Max table mirrors the paper's.
"""

from repro.bench import format_perf_table, measure_corpus
from repro.bench.corpus import prepare_example
from repro.examples import example_source
from repro.lang.parser import parse_top_level
from repro.svg import Canvas
from repro.zones import assign_canvas, compute_triggers


def test_bench_parse(benchmark):
    source = example_source("sine_wave_of_boxes")
    benchmark(parse_top_level, source)


def test_bench_eval(benchmark):
    example = prepare_example("sine_wave_of_boxes")
    benchmark(example.program.evaluate)


def test_bench_prepare(benchmark):
    example = prepare_example("sine_wave_of_boxes")

    def prepare():
        canvas = Canvas.from_value(example.program.evaluate())
        assignments = assign_canvas(canvas)
        return compute_triggers(canvas, assignments, example.program.rho0)

    triggers = benchmark(prepare)
    assert triggers


def test_bench_live_drag_cycle(benchmark):
    """One full live-synchronization step: trigger -> substitute ->
    re-evaluate -> rebuild canvas (the §4.1 inner loop)."""
    from repro.editor import LiveSession
    session = LiveSession(example_source("sine_wave_of_boxes"))
    session.start_drag(0, "INTERIOR")
    counter = [0]

    def one_step():
        counter[0] += 1
        return session.drag(float(counter[0] % 50), 0.0)

    result = benchmark(one_step)
    assert result.bindings


def test_perf_table(corpus, write_table):
    times = measure_corpus(corpus, runs=3, solve_repeats=1)
    # The reproducible shape of §5.2.3: Solve is the cheapest operation
    # and Prepare the most expensive on average.
    assert times["solve"].avg_ms < times["eval"].avg_ms
    assert times["solve"].avg_ms < times["parse"].avg_ms
    assert times["prepare"].avg_ms > times["eval"].avg_ms
    write_table("perf_table", format_perf_table(times), rows=times)

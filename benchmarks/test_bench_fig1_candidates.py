"""E1 — Figure 1D: the four candidate updates for dragging the third box
of sineWaveOfBoxes to x = 155, and their distinct visual effects."""

import pytest

from repro.examples import example_source
from repro.lang import parse_program
from repro.svg import Canvas
from repro.synthesis import synthesize_plausible
from repro.trace.equation import Equation

TARGET_X = 155.0


@pytest.fixture(scope="module")
def unfrozen_program():
    return parse_program(example_source("sine_wave_of_boxes"),
                         prelude_frozen=False)


@pytest.fixture(scope="module")
def equation(unfrozen_program):
    canvas = Canvas.from_value(unfrozen_program.evaluate())
    return Equation(TARGET_X, canvas[2].simple_num("x").trace)


def test_bench_candidate_enumeration(benchmark, unfrozen_program, equation):
    candidates = benchmark(synthesize_plausible, unfrozen_program.rho0,
                           [equation], allow_linear=True)
    assert len(candidates) == 4


def test_figure1d_table(unfrozen_program, equation, write_table):
    candidates = synthesize_plausible(unfrozen_program.rho0, [equation],
                                      allow_linear=True)
    paper = {"x0": 95.0, "sep": 52.5}
    lines = ["Figure 1D: candidate updates for Equation 3' "
             f"({equation})",
             f"{'location':>10s} {'new value':>10s} "
             f"{'effect':<40s}"]
    effects = {
        "x0": "translates all boxes in unison (rho1)",
        "sep": "increases spacing between boxes (rho2)",
        1.5: "translates boxes AND changes box count (rho3)",
        1.75: "changes spacing AND box count (rho4)",
    }
    for candidate in candidates:
        loc = candidate.choice[0]
        value = candidate.values[0]
        name = loc.display() if loc.name else "prelude-l"
        effect = effects.get(loc.display(), effects.get(value, ""))
        lines.append(f"{name:>10s} {value:>10.2f} {effect:<40s}")
        if loc.display() in paper:
            assert value == pytest.approx(paper[loc.display()])
    values = sorted(candidate.values[0] for candidate in candidates)
    assert values == [1.5, 1.75, 52.5, 95.0]
    write_table("fig1d_candidates", "\n".join(lines))

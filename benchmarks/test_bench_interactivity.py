"""§5.2's end-to-end notion of a successful user action: zone Active +
solver computes an update + update applies and re-evaluates."""

from repro.bench import format_interactivity, interactivity_stats
from repro.bench.corpus import prepare_example


def test_bench_interactivity_sweep(benchmark):
    example = prepare_example("three_boxes")
    totals = benchmark(interactivity_stats,
                       {"three_boxes": example})
    assert totals.zones == 27


def test_interactivity_table(corpus, write_table):
    totals = interactivity_stats(corpus)
    # The headline claim: the vast majority of user actions succeed fully
    # at small offsets, and d=100 breaks strictly more than d=1 (§5.2.2).
    assert totals.success_rate(1.0) > 0.70
    assert totals.full[100.0] <= totals.full[1.0]
    assert totals.zones == totals.inactive + totals.active
    for delta in (1.0, 100.0):
        assert (totals.full[delta] + totals.partial[delta]
                + totals.none[delta]) == totals.active
    write_table("interactivity_table", format_interactivity(totals),
                rows=totals)

#!/usr/bin/env python3
"""The paper's running example (§1–§2): the sine wave of boxes.

Walks through the full Figure 1 story:
  (A/B) the program and its output,
  (C)   dragging the third box,
  (D)   the four candidate updates and how freezing + heuristics pick one,
plus the §2.4 slider for the box count.

Run:  python examples/sine_wave_drag.py
"""

from repro.editor import LiveSession
from repro.examples import example_source
from repro.lang import parse_program
from repro.svg import Canvas
from repro.synthesis import synthesize_plausible
from repro.trace import format_trace
from repro.trace.equation import Equation

SOURCE = example_source("sine_wave_of_boxes")


def show_candidates():
    print("=== Figure 1D: the four candidate updates ===")
    program = parse_program(SOURCE, prelude_frozen=False)
    canvas = Canvas.from_value(program.evaluate())
    x3 = canvas[2].simple_num("x")
    print(f"third box 'x' = {x3.value}, trace = {format_trace(x3.trace)}")
    equation = Equation(155.0, x3.trace)
    print(f"user drags it right: new equation  155 = "
          f"{format_trace(x3.trace)}")
    for candidate in synthesize_plausible(program.rho0, [equation],
                                          allow_linear=True):
        loc = candidate.choice[0]
        print(f"  candidate: {loc.display():8s} -> {candidate.values[0]}")
    print("freezing the Prelude leaves only x0 and sep (the paper's "
          "rho1/rho2).")


def show_heuristics():
    print("\n=== §2.3/§4.1: the fair heuristic rotates assignments ===")
    session = LiveSession(SOURCE)
    for i in range(5):
        print(f"  box {i}: {session.hover(i, 'INTERIOR').caption}")
    print("\ndrag box 0 down-right by (45, 10):")
    result = session.drag_zone(0, "INTERIOR", 45, 10)
    for loc, value in result.bindings.items():
        print(f"  {loc.display()} -> {value}")
    print("program first line is now:",
          session.source().splitlines()[0])
    return session


def show_slider(session):
    print("\n=== §2.4: the n{3-30} slider controls the box count ===")
    loc = next(iter(session.sliders))
    for count in (5, 20):
        session.set_slider(loc, count)
        print(f"  slider -> {count}: canvas now has "
              f"{len(session.canvas)} boxes")


def main():
    show_candidates()
    session = show_heuristics()
    show_slider(session)


if __name__ == "__main__":
    main()

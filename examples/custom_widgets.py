#!/usr/bin/env python3
"""User-defined widgets (§6.3, "Helper Value Design Pattern").

Sliders written *in little* are ordinary shapes; dragging a slider's ball
indirectly manipulates the source constant wired to it, because the ball's
'cx' trace mentions that constant.  This script drags the ball of a
numSlider and watches the little constant change.

Run:  python examples/custom_widgets.py
"""

from repro.editor import LiveSession

SOURCE = """
(def [n sliderShapes] (numSlider 100! 300! 50! 0! 10! 'n = ' 4))
(def design
  [ (circle 'salmon' 200 200 (+ 20! (* 10! n))) ])
(svg (append sliderShapes design))
"""


def find_ball(session):
    """The slider's draggable ball is the last hidden circle."""
    balls = [shape for shape in session.canvas.shapes_of_kind("circle")
             if shape.hidden and shape.simple_num("r").value == 10.0]
    return balls[-1]


def main():
    session = LiveSession(SOURCE)
    circle = session.canvas.visible_shapes()[0]
    print("initial design circle radius:",
          circle.simple_num("r").value)

    ball = find_ball(session)
    info = session.hover(ball.index, "INTERIOR")
    print(f"hovering the slider ball: {info.caption}")
    print("(the ball's position is computed from the source constant, so "
          "dragging it solves for that constant)")

    # Slider spans x in [100, 300] for values [0, 10]: 20 px per unit.
    result = session.drag_zone(ball.index, "INTERIOR", dx=40, dy=0)
    for loc, value in result.bindings.items():
        print(f"dragged ball +40px: {loc.display()} -> {value}")

    circle = session.canvas.visible_shapes()[0]
    print("design circle radius is now:", circle.simple_num("r").value)
    print("\nprogram after the drag:")
    print(session.source())

    print("\nexport hides the ghost widgets ('HIDDEN' attribute):")
    svg = session.export_svg()
    print(f"  exported SVG has {svg.count('<circle')} circle(s) — "
          "the widget shapes are gone")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The two prodirect-manipulation extensions beyond live sync (§7.2):

1. **Draw** — add a shape from the editor; its fresh literals are
   immediately manipulable (goal (b));
2. **Ad hoc synchronization** — make several output edits while the
   program is "detached", then reconcile them at once with ranked
   candidate updates (goal (c)).

Run:  python examples/draw_and_reconcile.py
"""

from repro.editor import LiveSession, add_shape
from repro.lang import parse_program
from repro.synthesis import AdHocSession

THREE_BOXES = """
(def [x0 sep] [40 110])
(svg (map (\\i (rect 'lightblue' (+ x0 (mult i sep)) 30! 60! 120!))
          (zeroTo 3!)))
"""


def demo_drawing():
    print("=== Draw: add a circle to a running program ===")
    program = parse_program(THREE_BOXES)
    program = add_shape(program, "circle", fill="salmon",
                        cx=300, cy=90, r=25)
    print(program.unparse())
    session = LiveSession(program=program)
    circle = session.canvas.shapes_of_kind("circle")[0]
    session.drag_zone(circle.index, "INTERIOR", 15, -10)
    moved = session.canvas.shapes_of_kind("circle")[0]
    print(f"\ndragged the new circle by (15, -10): center is now "
          f"({moved.simple_num('cx').value}, "
          f"{moved.simple_num('cy').value})")


def demo_adhoc():
    print("\n=== Ad hoc synchronization: edit now, reconcile later ===")
    session = AdHocSession(parse_program(THREE_BOXES))
    print("boxes start at x = 40, 150, 260")
    session.edit_value(150.0, 190.0)
    session.edit_value(260.0, 340.0)
    print("detached edits: box1 -> 190, box2 -> 340")
    print("\nranked reconciliations:")
    for update in session.reconcile():
        marker = "FAITHFUL " if update.faithful else "plausible"
        print(f"  [{marker}] {update.describe()}")
    best = session.reconcile()[0]
    program = session.apply(best)
    print("\napplied the best update; program is now:")
    print(program.unparse())


def main():
    demo_drawing()
    demo_adhoc()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: write a little program, render it, drag a shape, and watch
the program update (live synchronization).

Run:  python examples/quickstart.py
"""

from repro.editor import LiveSession

SOURCE = """
(def [x0 y0 w h sep] [40 28 60 130 110])
(def boxi (\\i
  (let xi (+ x0 (mult i sep))
    (rect 'lightblue' xi y0 w h))))
(svg (map boxi (zeroTo 3!)))
"""


def main():
    session = LiveSession(SOURCE)
    print("=== program ===")
    print(session.source())
    print(f"\ncanvas: {len(session.canvas)} shapes")

    print("\n=== hover captions (what a drag would change) ===")
    for i in range(3):
        info = session.hover(i, "INTERIOR")
        print(f"box {i} INTERIOR: {info.caption}")

    print("\n=== drag box 0 right by 25 pixels ===")
    result = session.drag_zone(0, "INTERIOR", dx=25, dy=0)
    for loc, value in result.bindings.items():
        print(f"  inferred update: {loc.display()} -> {value}")
    print("\n=== updated program ===")
    print(session.source())

    print("\n=== exported SVG (first 3 lines) ===")
    for line in session.export_svg().splitlines()[:3]:
        print(line)

    session.undo()
    print("\nafter undo, first line is again:",
          session.source().splitlines()[0])


if __name__ == "__main__":
    main()

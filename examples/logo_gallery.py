#!/usr/bin/env python3
"""Render the whole example corpus to SVG files (Appendix C, "Exporting
to SVG").

Run:  python examples/logo_gallery.py [output-dir]
"""

import pathlib
import sys

from repro.examples import example_info, example_names, load_example
from repro.svg import Canvas, render_canvas


def main():
    out_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1
                           else "examples/gallery")
    out_dir.mkdir(parents=True, exist_ok=True)
    for name in example_names():
        program = load_example(name)
        canvas = Canvas.from_value(program.evaluate())
        svg_text = render_canvas(canvas.root)
        path = out_dir / f"{name}.svg"
        path.write_text(svg_text + "\n", encoding="utf-8")
        info = example_info(name)
        print(f"{path}  ({len(canvas)} shapes)  - {info.title}")
    print(f"\nwrote {len(example_names())} SVG files to {out_dir}/")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The §6.2 ferris wheel case study, scripted end to end:

Phase 1: the initial program and its assignments;
Phase 2: direct manipulation (move/resize), why numSpokes/rotAngle drags
         misbehave, and the freeze + slider workflow that fixes them.

Run:  python examples/ferris_wheel.py
"""

from repro.editor import LiveSession
from repro.examples import example_source


def main():
    session = LiveSession(example_source("ferris_wheel"))
    rim = session.canvas.shapes_of_kind("circle")[0]
    cars = session.canvas.shapes_of_kind("rect")

    print("=== Phase 1: what the editor chose (hover captions) ===")
    print(f"(rim, INTERIOR)   -> {session.hover(rim.index, 'INTERIOR').caption}")
    print(f"(rim, RIGHTEDGE)  -> {session.hover(rim.index, 'RIGHTEDGE').caption}")
    print(f"(car0, RIGHTEDGE) -> {session.hover(cars[0].index, 'RIGHTEDGE').caption}")

    print("\n=== Phase 2a: adjust location and size by dragging ===")
    session.drag_zone(rim.index, "INTERIOR", 40, -40)
    print("dragged the rim INTERIOR by (40, -40); program now begins:")
    print(" ", session.source().splitlines()[0])

    session.drag_zone(cars[0].index, "RIGHTEDGE", -10, 0)
    widths = {car.simple_num("width").value
              for car in session.canvas.shapes_of_kind("rect")}
    print(f"dragged one car's RIGHTEDGE by -10: every car now has "
          f"width {widths}")

    print("\n=== Phase 2b: numSpokes and rotAngle via sliders ===")
    print("numSpokes and rotAngle are frozen with {3-15} / {-3.14-3.14} "
          "ranges, so no zone can change them — the editor shows sliders "
          "instead:")
    for slider in session.sliders.values():
        print("  slider:", slider.caption())
    spokes_loc = next(loc for loc in session.sliders
                      if loc.display() == "numSpokes")
    rot_loc = next(loc for loc in session.sliders
                   if loc.display() == "rotAngle")
    session.set_slider(spokes_loc, 7)
    print(f"numSpokes -> 7: the wheel now has "
          f"{len(session.canvas.shapes_of_kind('rect'))} cars")
    session.set_slider(rot_loc, 0.6)
    print("rotAngle -> 0.6: cars moved around the rim; car 0 is at "
          f"x = {session.canvas.shapes_of_kind('rect')[0].simple_num('x').value:.1f}")

    print("\n=== final program ===")
    print(session.source())


if __name__ == "__main__":
    main()

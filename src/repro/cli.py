"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE.little [-o OUT.svg]`` — evaluate a little program and emit SVG;
* ``check FILE.little`` — parse + run, exit nonzero with a one-line
  diagnostic (the editor-integration hook: cheap enough for on-save);
* ``serve [--port N]`` — run the multi-session sync service over HTTP;
* ``examples [--render DIR]`` — list or render the example corpus;
* ``import FILE.svg [-o OUT.little]`` / ``import --bulk DIR`` — convert
  SVG to little and round-trip verify the result through the shared run
  path (parse + run + render + draggable zones); failures quarantine
  with one-line diagnostics and per-class counters;
* ``import-svg FILE.svg [-o OUT.little]`` — raw, unverified conversion;
* ``tables [--out DIR]`` — regenerate the paper's evaluation tables;
* ``study`` — print the Figure 9 user-study analysis.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional


def _read_source(path: str, command: str) -> Optional[str]:
    """Read a little file for ``command``, or print the one-line
    diagnostic and return ``None``."""
    try:
        return pathlib.Path(path).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        reason = getattr(error, "strerror", None) or "not valid UTF-8"
        print(f"repro {command}: cannot read {path}: {reason}",
              file=sys.stderr)
        return None


def _eval_budget(steps: Optional[int]):
    """An :class:`~repro.lang.eval.EvalBudget` capping fuel at ``steps``
    (with the default depth/size caps riding along), or ``None`` when
    the flag is absent or 0 (unlimited)."""
    if not steps:
        return None
    from .lang.eval import EvalBudget

    return EvalBudget(max_fuel=steps)


def _cmd_run(args) -> int:
    from .core.run import run_source
    from .lang.errors import LittleError, ResourceExhausted

    source = _read_source(args.file, "run")
    if source is None:
        return 1
    # The same staged pipeline the editor runs on; --heuristic additionally
    # exercises the Prepare stages (assignments/triggers/sliders).
    try:
        pipeline = run_source(source,
                              heuristic=args.heuristic or "fair",
                              prepare=args.heuristic is not None,
                              auto_freeze=args.auto_freeze,
                              prelude_frozen=not args.prelude_unfrozen,
                              budget=_eval_budget(args.eval_budget))
    except ResourceExhausted as error:
        print(f"repro run: {args.file}: program_limit: {error}",
              file=sys.stderr)
        return 1
    except LittleError as error:
        print(f"repro run: {args.file}: {error}", file=sys.stderr)
        return 1
    rendered = pipeline.render(include_hidden=args.include_hidden)
    if args.output:
        pathlib.Path(args.output).write_text(rendered + "\n",
                                             encoding="utf-8")
        print(f"wrote {args.output} ({len(pipeline.canvas)} shapes)")
    else:
        print(rendered)
    if args.heuristic is not None:
        print(f"active zones: {len(pipeline.assignments.chosen)} "
              f"(heuristic={args.heuristic}, "
              f"sliders={len(pipeline.sliders)})", file=sys.stderr)
    return 0


def _cmd_check(args) -> int:
    from .core.run import run_source
    from .lang.errors import LittleError, ResourceExhausted

    source = _read_source(args.file, "check")
    if source is None:
        return 1
    # Parse and run through the same pipeline (and hence the same error
    # path) as ``repro run``, but never render: the output is one line
    # either way, so editors can surface it verbatim.
    try:
        pipeline = run_source(source, auto_freeze=args.auto_freeze,
                              prelude_frozen=not args.prelude_unfrozen,
                              budget=_eval_budget(args.eval_budget))
    except ResourceExhausted as error:
        print(f"repro check: {args.file}: program_limit: {error}",
              file=sys.stderr)
        return 1
    except LittleError as error:
        print(f"repro check: {args.file}: {error}", file=sys.stderr)
        return 1
    print(f"{args.file}: ok ({len(pipeline.canvas)} shapes, "
          f"{len(pipeline.program.user_locs())} constants)")
    return 0


def _cmd_serve(args) -> int:
    from .serve.faults import plan_from_env
    from .serve.http import run_server

    return run_server(host=args.host, port=args.port,
                      max_sessions=args.max_sessions, shards=args.shards,
                      workers=args.workers, verbose=args.verbose,
                      state_dir=args.state_dir,
                      eval_budget=_eval_budget(args.eval_budget),
                      faults=plan_from_env())


def _cmd_examples(args) -> int:
    from .core.run import run_program
    from .examples.registry import (example_info, example_names,
                                    load_example)

    if args.render:
        out_dir = pathlib.Path(args.render)
        out_dir.mkdir(parents=True, exist_ok=True)
        for name in example_names():
            pipeline = run_program(load_example(name))
            (out_dir / f"{name}.svg").write_text(
                pipeline.render() + "\n", encoding="utf-8")
        print(f"rendered {len(example_names())} examples to {out_dir}/")
        return 0
    for name in example_names():
        info = example_info(name)
        print(f"{name:28s} {info.title:24s} {info.description}")
    return 0


def _cmd_import_svg(args) -> int:
    from .svg.importer import import_svg_file

    source = import_svg_file(args.file)
    if args.output:
        pathlib.Path(args.output).write_text(source, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(source)
    return 0


def _cmd_import(args) -> int:
    from .svg.ingest import ingest_file

    budget = _eval_budget(args.eval_budget)
    if args.bulk:
        return _import_bulk(args, budget)
    result = ingest_file(args.file, budget=budget)
    if not result.ok:
        # Quarantine: one line, nonzero exit, and never a partial file.
        print(f"repro import: {result.diagnostic()}", file=sys.stderr)
        return 1
    if args.output:
        pathlib.Path(args.output).write_text(result.source,
                                             encoding="utf-8")
        print(f"wrote {args.output} ({result.shapes} shapes, "
              f"{result.zones} zones, {result.constants} constants)")
    else:
        print(result.source, end="")
        print(result.diagnostic(), file=sys.stderr)
    return 0


def _import_bulk(args, budget) -> int:
    from .bench.report import format_ingest_table
    from .svg.ingest import ingest_directory

    directory = pathlib.Path(args.file)
    if not directory.is_dir():
        print(f"repro import: {directory} is not a directory",
              file=sys.stderr)
        return 1
    report = ingest_directory(directory, budget=budget)
    if not report.results:
        print(f"repro import: no .svg files in {directory}",
              file=sys.stderr)
        return 1
    out_dir = pathlib.Path(args.out_dir) if args.out_dir else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    for result in report.results:
        print(result.diagnostic())
        if result.ok and out_dir:
            # Only verified programs reach disk — a quarantined document
            # never leaves a partial file behind.
            name = pathlib.Path(result.name).stem + ".little"
            (out_dir / name).write_text(result.source, encoding="utf-8")
    print()
    print(format_ingest_table(report))
    if not report.ok:
        return 1                    # nothing ingested at all
    if args.strict and report.failed:
        return 1
    return 0


def _cmd_tables(args) -> int:
    from .bench import (corpus_loc_stats, corpus_zone_stats,
                        equation_totals, format_equation_table,
                        format_loc_rows, format_perf_table,
                        format_zone_rows, format_zone_table, loc_totals,
                        measure_corpus, prepare_corpus, zone_totals)

    corpus = prepare_corpus(heuristic=args.heuristic)
    sections = {
        "zone_table": format_zone_table(
            zone_totals(corpus_zone_stats(corpus))),
        "solvability_table": format_equation_table(
            equation_totals(corpus)),
        "appendix_g_zones": format_zone_rows(corpus_zone_stats(corpus)),
        "appendix_g_locs": format_loc_rows(
            corpus_loc_stats(corpus),
            loc_totals(corpus_loc_stats(corpus))),
    }
    if args.perf:
        sections["perf_table"] = format_perf_table(
            measure_corpus(corpus, runs=args.runs))
    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    for name, text in sections.items():
        print(text)
        print()
        if out_dir:
            (out_dir / f"{name}.txt").write_text(text + "\n",
                                                 encoding="utf-8")
    return 0


def _cmd_study(args) -> int:
    from .study.analysis import format_figure9

    print(format_figure9(resamples=args.resamples))
    return 0


def _add_parse_mode_options(parser) -> None:
    """The parse-mode flags ``run`` and ``check`` share."""
    parser.add_argument("--auto-freeze", action="store_true",
                        help="freeze all literals except ?-thawed ones")
    parser.add_argument("--prelude-unfrozen", action="store_true",
                        help="treat Prelude literals as thawed, as the "
                             "editor and tests can")
    parser.add_argument("--eval-budget", type=int, default=0,
                        metavar="STEPS",
                        help="cap evaluation at STEPS interpreter steps "
                             "(plus default recursion-depth and value-"
                             "size caps); a runaway program fails with a "
                             "one-line program_limit diagnostic instead "
                             "of hanging (0 = unlimited)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sketch-n-Sketch reproduction (PLDI 2016)")
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="evaluate a little program and emit SVG")
    run_parser.add_argument("file")
    run_parser.add_argument("-o", "--output")
    run_parser.add_argument("--include-hidden", action="store_true",
                            help="include 'HIDDEN' helper shapes")
    _add_parse_mode_options(run_parser)
    run_parser.add_argument("--heuristic", choices=("fair", "biased"),
                            help="also run the Prepare stages with this "
                                 "assignment heuristic and report zone "
                                 "counts on stderr")
    run_parser.set_defaults(handler=_cmd_run)

    check_parser = commands.add_parser(
        "check", help="parse + run a program; nonzero exit and a one-line "
                      "diagnostic on any error (editor hook)")
    check_parser.add_argument("file")
    _add_parse_mode_options(check_parser)
    check_parser.set_defaults(handler=_cmd_check)

    serve_parser = commands.add_parser(
        "serve", help="run the multi-session sync service over HTTP")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8000,
                              help="TCP port (0 picks a free one)")
    serve_parser.add_argument("--max-sessions", type=int, default=64,
                              help="live sessions kept before LRU "
                                   "eviction to snapshots")
    serve_parser.add_argument("--shards", type=int, default=4,
                              help="independent session shards (each with "
                                   "its own lock, LRU budget, and "
                                   "snapshot store)")
    serve_parser.add_argument("--workers", type=int, default=0,
                              help="max requests dispatched concurrently "
                                   "(0 = unbounded; same-session requests "
                                   "always serialize)")
    serve_parser.add_argument("--verbose", action="store_true",
                              help="log every request to stderr")
    serve_parser.add_argument("--eval-budget", type=int, default=0,
                              metavar="STEPS",
                              help="per-command evaluation budget: a "
                                   "runaway program gets a structured "
                                   "program_limit error (HTTP 422) and "
                                   "the session rolls back "
                                   "(0 = unlimited)")
    serve_parser.add_argument("--state-dir", metavar="DIR", default=None,
                              help="spill session state to DIR (write-"
                                   "behind) and replay it on boot: "
                                   "restarts are warm, SIGTERM drains "
                                   "and persists before exiting")
    serve_parser.set_defaults(handler=_cmd_serve)

    examples_parser = commands.add_parser(
        "examples", help="list or render the example corpus")
    examples_parser.add_argument("--render", metavar="DIR")
    examples_parser.set_defaults(handler=_cmd_examples)

    ingest_parser = commands.add_parser(
        "import",
        help="convert SVG to little and round-trip verify the result "
             "(parse + run + render + draggable zones); failures are "
             "quarantined with a one-line diagnostic")
    ingest_parser.add_argument("file",
                               help="an .svg file, or a directory with "
                                    "--bulk")
    ingest_parser.add_argument("-o", "--output",
                               help="write the verified program here "
                                    "(single-file mode; nothing is "
                                    "written on quarantine)")
    ingest_parser.add_argument("--bulk", action="store_true",
                               help="ingest every *.svg directly under "
                                    "FILE (a directory): per-document "
                                    "one-line statuses, a summary table "
                                    "and per-failure-class counters")
    ingest_parser.add_argument("--out-dir", metavar="DIR", default=None,
                               help="with --bulk, write each verified "
                                    "program as DIR/<name>.little")
    ingest_parser.add_argument("--strict", action="store_true",
                               help="with --bulk, exit nonzero if any "
                                    "document was quarantined (CI mode)")
    ingest_parser.add_argument("--eval-budget", type=int, default=0,
                               metavar="STEPS",
                               help="cap verification evaluation at STEPS "
                                    "interpreter steps (0 = unlimited)")
    ingest_parser.set_defaults(handler=_cmd_import)

    import_parser = commands.add_parser(
        "import-svg", help="convert an SVG file to little source "
                           "without verification (see 'import' for the "
                           "verified pipeline)")
    import_parser.add_argument("file")
    import_parser.add_argument("-o", "--output")
    import_parser.set_defaults(handler=_cmd_import_svg)

    tables_parser = commands.add_parser(
        "tables", help="regenerate the paper's evaluation tables")
    tables_parser.add_argument("--out", metavar="DIR")
    tables_parser.add_argument("--heuristic", choices=("fair", "biased"),
                               default="fair",
                               help="assignment heuristic for the corpus")
    tables_parser.add_argument("--perf", action="store_true",
                               help="also run the timing table")
    tables_parser.add_argument("--runs", type=int, default=3)
    tables_parser.set_defaults(handler=_cmd_tables)

    study_parser = commands.add_parser(
        "study", help="print the Figure 9 user-study analysis")
    study_parser.add_argument("--resamples", type=int, default=10_000)
    study_parser.set_defaults(handler=_cmd_study)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())

"""Ad hoc synchronization (paper §7.2, goal (c)).

Live synchronization reconciles after *every* mouse move; ad hoc
synchronization instead lets the user "temporarily break the relationship
between program and output so that larger changes can be made, and then
reconcile these changes with the original program".

:class:`AdHocSession` accumulates any number of direct edits to the
output's numbers, then ``reconcile()`` runs trace-based synthesis over the
full system of value-trace equations (§3) and *ranks* the candidates —
realizing §3's remark that "in a setting where multiple updates are
synthesized, ranking functions could be used to optimize for soft
constraints":

1. more hard constraints satisfied (the user's edits) is better;
2. more soft constraints preserved (untouched output values) is better;
3. fewer changed locations is better (smaller updates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..lang.errors import LittleError
from ..lang.program import Program
from ..trace.context import numeric_leaves, similar
from ..trace.equation import Equation
from ..trace.substitution import Substitution
from .synthesize import Candidate, synthesize_plausible


@dataclass(frozen=True)
class RankedUpdate:
    """One reconciliation candidate with its ranking evidence."""

    substitution: Substitution
    program: Program
    hard_satisfied: int       # edited values matched
    hard_total: int
    soft_preserved: int       # untouched values unchanged
    soft_total: int
    changed_locs: Tuple

    @property
    def faithful(self) -> bool:
        return self.hard_satisfied == self.hard_total

    @property
    def rank_key(self):
        return (-self.hard_satisfied, -self.soft_preserved,
                len(self.changed_locs))

    def describe(self) -> str:
        names = ", ".join(sorted(loc.display()
                                 for loc in self.changed_locs))
        return (f"changes {{{names}}}: {self.hard_satisfied}/"
                f"{self.hard_total} edits matched, "
                f"{self.soft_preserved}/{self.soft_total} other values "
                f"preserved")


class AdHocSession:
    """Accumulate output edits, then reconcile them at once."""

    def __init__(self, program: Program):
        self.program = program
        self.output = program.evaluate()
        self.leaves = numeric_leaves(self.output)
        self.edits: Dict[int, float] = {}

    def edit(self, leaf_index: int, new_value: float) -> None:
        """Record that output number ``leaf_index`` should become
        ``new_value`` (the w′ of §3)."""
        if not 0 <= leaf_index < len(self.leaves):
            raise IndexError(f"output has {len(self.leaves)} numbers; "
                             f"index {leaf_index} is out of range")
        self.edits[leaf_index] = new_value

    def edit_value(self, old_value: float, new_value: float) -> int:
        """Convenience: edit the first output number equal to
        ``old_value``; returns its index."""
        for index, leaf in enumerate(self.leaves):
            if leaf.value == old_value:
                self.edit(index, new_value)
                return index
        raise ValueError(f"no output number equals {old_value}")

    def reconcile(self, max_results: int = 10) -> List[RankedUpdate]:
        """Synthesize and rank candidate updates for all recorded edits."""
        if not self.edits:
            return []
        equations = [Equation(value, self.leaves[index].trace)
                     for index, value in sorted(self.edits.items())]
        candidates = synthesize_plausible(self.program.rho0, equations)
        ranked = []
        seen = set()
        for candidate in candidates:
            changes = candidate.substitution.changes_from(self.program.rho0)
            key = frozenset(changes.items())
            if key in seen:
                continue
            seen.add(key)
            update = self._score(dict(changes))
            if update is not None:
                ranked.append(update)
        ranked.sort(key=lambda update: update.rank_key)
        return ranked[:max_results]

    def _score(self, changes: Dict) -> Optional[RankedUpdate]:
        try:
            new_program = self.program.substitute(changes)
            new_output = new_program.evaluate()
        except LittleError:
            return None
        if not similar(self.output, new_output):
            return None
        new_leaves = numeric_leaves(new_output)
        hard = soft = 0
        soft_total = len(self.leaves) - len(self.edits)
        for index, leaf in enumerate(self.leaves):
            new_value = new_leaves[index].value
            if index in self.edits:
                if math.isclose(new_value, self.edits[index],
                                rel_tol=1e-9, abs_tol=1e-6):
                    hard += 1
            elif math.isclose(new_value, leaf.value,
                              rel_tol=1e-9, abs_tol=1e-6):
                soft += 1
        return RankedUpdate(
            substitution=Substitution(self.program.rho0).concat(changes),
            program=new_program,
            hard_satisfied=hard,
            hard_total=len(self.edits),
            soft_preserved=soft,
            soft_total=soft_total,
            changed_locs=tuple(changes),
        )

    def apply(self, update: RankedUpdate) -> Program:
        """Commit a ranked update; the session restarts from the new
        program (further edits start fresh)."""
        self.program = update.program
        self.output = self.program.evaluate()
        self.leaves = numeric_leaves(self.output)
        self.edits = {}
        return self.program

"""Value-trace equation solvers (paper §5.1 and Appendix B.2, Figure 6).

Three design principles (Appendix B.2):

  (I)   solve only one equation at a time;
  (II)  solve only univariate equations;
  (III) solve equations only in simple, stylized forms.

``SolveA`` handles *addition-only* equations (the only operator is ``+``) by
counting occurrences of the unknown and dividing the residual.  ``SolveB``
handles *single-occurrence* equations top-down using inverses of primitive
operations.  ``solve_one`` tries A then B, exactly as Figure 6's overall
solver.  "In practice, SolveB subsumes SolveA on virtually all equations
encountered in our examples."

``solve_linear`` is a strictly-more-general helper used by the Figure 1D
enumeration, where the paper exhibits candidate updates (ρ4 = [ℓ1 → 1.75])
whose traces are linear but multi-occurrence and not addition-only.  It is
*not* used by the live-synchronization pipeline or the §5.2.2 statistics,
which measure the paper's own solver.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Tuple

from ..lang.ast import Loc
from ..lang.errors import LittleRuntimeError, SolverFailure
from ..lang.ops import apply_numeric_op
from ..trace.trace import (OpTrace, Trace, eval_trace, is_addition_only,
                           locs, occurrences)

_REL_TOL = 1e-9
_ABS_TOL = 1e-6


# ---------------------------------------------------------------------------
# Fragment classification (§5.2.2)
# ---------------------------------------------------------------------------

def in_a_fragment(trace: Trace, loc: Loc) -> bool:
    """Equation lies in SolveA's addition-only fragment."""
    return is_addition_only(trace) and occurrences(trace, loc) >= 1


def in_b_fragment(trace: Trace, loc: Loc) -> bool:
    """Equation lies in SolveB's single-occurrence fragment."""
    return occurrences(trace, loc) == 1


def in_solver_fragment(trace: Trace, loc: Loc) -> bool:
    """Inside the syntactic fragment handled by the combined solver;
    equations outside it "are guaranteed not to be solvable" (§5.2.2)."""
    return in_a_fragment(trace, loc) or in_b_fragment(trace, loc)


# ---------------------------------------------------------------------------
# SolveA: addition-only equations
# ---------------------------------------------------------------------------

def walk_plus(rho: Mapping[Loc, float], loc: Loc,
              trace: Trace) -> Tuple[float, float]:
    """``WalkPlus(ρ, ℓ, t) = (c, s)``: occurrence count of ℓ and the partial
    sum of everything else (Figure 6A)."""
    if isinstance(trace, Loc):
        if trace == loc:
            return (1.0, 0.0)
        try:
            return (0.0, rho[trace])
        except KeyError as exc:
            raise SolverFailure(f"location {trace.display()} has no value "
                                "in rho") from exc
    if trace.op != "+":
        raise SolverFailure("trace is not addition-only")
    count1, sum1 = walk_plus(rho, loc, trace.args[0])
    count2, sum2 = walk_plus(rho, loc, trace.args[1])
    return (count1 + count2, sum1 + sum2)


def solve_addition_only(rho: Mapping[Loc, float], loc: Loc, target: float,
                        trace: Trace) -> float:
    """``SolveA(ρ, ℓ, n = t) = (n − s)/c`` (Figure 6A)."""
    count, partial_sum = walk_plus(rho, loc, trace)
    if count == 0:
        raise SolverFailure(f"{loc.display()} does not occur in the trace")
    return (target - partial_sum) / count


# ---------------------------------------------------------------------------
# SolveB: single-occurrence equations via inverse operations
# ---------------------------------------------------------------------------

def solve_single_occurrence(rho: Mapping[Loc, float], loc: Loc,
                            target: float, trace: Trace) -> float:
    """``SolveB`` (Figure 6B): recursively peel operators off the trace,
    applying inverse operations, until the unknown location remains."""
    if occurrences(trace, loc) != 1:
        raise SolverFailure(f"{loc.display()} must occur exactly once")
    return _solve_b(rho, loc, target, trace)


def _solve_b(rho: Mapping[Loc, float], loc: Loc, target: float,
             trace: Trace) -> float:
    if isinstance(trace, Loc):
        if trace == loc:
            return target
        raise SolverFailure("descended to the wrong location")
    if len(trace.args) == 1:
        return _solve_b(rho, loc, _invert_unary(trace.op, target),
                        trace.args[0])
    if len(trace.args) == 2:
        left, right = trace.args
        if occurrences(left, loc) == 1:
            known = _eval_known(rho, right)
            return _solve_b(rho, loc,
                            _invert_binary_right(trace.op, known, target),
                            left)
        known = _eval_known(rho, left)
        return _solve_b(rho, loc,
                        _invert_binary_left(trace.op, known, target),
                        right)
    raise SolverFailure(f"operator {trace.op!r} has no inverse")


def _eval_known(rho: Mapping[Loc, float], trace: Trace) -> float:
    try:
        return eval_trace(trace, rho)
    except KeyError as exc:
        raise SolverFailure("trace mentions a location with no value "
                            "in rho") from exc
    except LittleRuntimeError as exc:
        raise SolverFailure(f"known subtrace failed to evaluate: {exc}") \
            from exc


def _invert_unary(op: str, n: float) -> float:
    """``Inv(op)(n)`` (Figure 6): solve ``n = (op x)`` for x."""
    if op == "cos":
        if not -1.0 <= n <= 1.0:
            raise SolverFailure("cos equation has no solution "
                                "(target outside [-1, 1])")
        return math.acos(n)
    if op == "sin":
        if not -1.0 <= n <= 1.0:
            raise SolverFailure("sin equation has no solution "
                                "(target outside [-1, 1])")
        return math.asin(n)
    if op == "arccos":
        return math.cos(n)
    if op == "arcsin":
        return math.sin(n)
    if op == "sqrt":
        if n < 0:
            raise SolverFailure("sqrt result cannot be negative")
        return n * n
    if op == "neg":
        return -n
    raise SolverFailure(f"operator {op!r} has no inverse")


def _invert_binary_right(op: str, n2: float, n: float) -> float:
    """``InvR(op, n2)(n)``: solve ``n = (op x n2)`` for x."""
    if op == "+":
        return n - n2
    if op == "-":
        return n + n2
    if op == "*":
        if n2 == 0:
            raise SolverFailure("cannot divide by zero (x * 0 = n)")
        return n / n2
    if op == "/":
        return n * n2
    if op == "pow":
        return _inverse_pow_base(n, n2)
    raise SolverFailure(f"operator {op!r} has no inverse")


def _invert_binary_left(op: str, n1: float, n: float) -> float:
    """``InvL(op, n1)(n)``: solve ``n = (op n1 x)`` for x."""
    if op == "+":
        return n - n1
    if op == "-":
        return n1 - n
    if op == "*":
        if n1 == 0:
            raise SolverFailure("cannot divide by zero (0 * x = n)")
        return n / n1
    if op == "/":
        if n == 0:
            raise SolverFailure("cannot solve n1 / x = 0")
        return n1 / n
    if op == "pow":
        return _inverse_pow_exponent(n, n1)
    raise SolverFailure(f"operator {op!r} has no inverse")


def _inverse_pow_base(n: float, exponent: float) -> float:
    """Solve ``x ** exponent = n`` for x."""
    if exponent == 0:
        raise SolverFailure("x ** 0 is constant")
    if n > 0:
        return n ** (1.0 / exponent)
    if n == 0:
        if exponent > 0:
            return 0.0
        raise SolverFailure("0 target with non-positive exponent")
    if exponent == int(exponent) and int(exponent) % 2 == 1:
        return -((-n) ** (1.0 / exponent))
    raise SolverFailure("negative target with even/non-integer exponent")


def _inverse_pow_exponent(n: float, base: float) -> float:
    """Solve ``base ** x = n`` for x."""
    if base <= 0 or base == 1 or n <= 0:
        raise SolverFailure("logarithm undefined for these values")
    return math.log(n) / math.log(base)


# ---------------------------------------------------------------------------
# Combined solver (Figure 6O)
# ---------------------------------------------------------------------------

def solve_one(rho: Mapping[Loc, float], loc: Loc, target: float,
              trace: Trace, *, verify: bool = True) -> float:
    """``Solve(ρ, ℓ, n = t)``: SolveA, falling back to SolveB.

    With ``verify`` (default), the solution is substituted back into the
    trace and checked against the target — guarding against inverse-branch
    mismatches (e.g. arccos picking the wrong branch).
    """
    try:
        solution = solve_addition_only(rho, loc, target, trace)
    except SolverFailure:
        solution = solve_single_occurrence(rho, loc, target, trace)
    if verify:
        _verify(rho, loc, target, trace, solution)
    return solution


def compile_solve_one(rho: Mapping[Loc, float], loc: Loc, trace: Trace, *,
                      verify: bool = True):
    """Specialize :func:`solve_one` for a fixed ``(ρ, ℓ, t)``: returns a
    ``target → solution`` closure.

    During a drag, a trigger solves the *same* equation once per mouse
    sample with only the target changing; the occurrence counts, the
    descent path through the trace and every known subtrace value are
    functions of ``(ρ, ℓ, t)`` alone.  This hoists all of that to one
    up-front walk, leaving per-sample work of a few arithmetic inverse
    steps (plus the back-substitution check).  Failures that do not
    depend on the target (wrong occurrence count, unknown locations,
    non-invertible operators) are raised per call, verbatim, by the
    returned closure; target-dependent ones (trig range, division by a
    zero target, the verification itself) stay inside it.
    """
    steps = None
    try:
        count, partial = walk_plus(rho, loc, trace)
        if count == 0:
            raise SolverFailure(
                f"{loc.display()} does not occur in the trace")
    except SolverFailure:
        try:
            steps = _compile_single_occurrence(rho, loc, trace)
        except SolverFailure as failure:
            def failing(target: float, _failure=failure) -> float:
                raise _failure
            return failing
    check = dict(rho) if verify else None

    def solve(target: float) -> float:
        if steps is None:
            solution = (target - partial) / count
        else:
            solution = target
            for invert, op, known in steps:
                solution = invert(op, solution) if known is None \
                    else invert(op, known, solution)
        if check is not None:
            check[loc] = solution
            try:
                value = eval_trace(trace, check)
            except LittleRuntimeError as exc:
                raise SolverFailure(
                    f"solution does not evaluate: {exc}") from exc
            if not math.isclose(value, target,
                                rel_tol=_REL_TOL, abs_tol=_ABS_TOL):
                raise SolverFailure(
                    f"solution check failed: got {value}, wanted {target}")
        return solution

    return solve


def _compile_single_occurrence(rho: Mapping[Loc, float], loc: Loc,
                               trace: Trace):
    """The descent of :func:`_solve_b` as data: a list of
    ``(inverse, op, known)`` steps to apply to the target in order."""
    if occurrences(trace, loc) != 1:
        raise SolverFailure(f"{loc.display()} must occur exactly once")
    steps = []
    node = trace
    while not isinstance(node, Loc):
        if len(node.args) == 1:
            steps.append((_invert_unary, node.op, None))
            node = node.args[0]
        elif len(node.args) == 2:
            left, right = node.args
            if occurrences(left, loc) == 1:
                steps.append((_invert_binary_right, node.op,
                              _eval_known(rho, right)))
                node = left
            else:
                steps.append((_invert_binary_left, node.op,
                              _eval_known(rho, left)))
                node = right
        else:
            raise SolverFailure(f"operator {node.op!r} has no inverse")
    if node != loc:
        raise SolverFailure("descended to the wrong location")
    return steps


def solve_linear(rho: Mapping[Loc, float], loc: Loc, target: float,
                 trace: Trace) -> float:
    """Solve equations whose trace is *linear* in ℓ, regardless of
    occurrence count — used only by the candidate-enumeration experiment
    (Figure 1D); see the module docstring."""
    if occurrences(trace, loc) == 0:
        raise SolverFailure(f"{loc.display()} does not occur in the trace")
    probe = dict(rho)

    def evaluate_at(x: float) -> float:
        probe[loc] = x
        try:
            return eval_trace(trace, probe)
        except LittleRuntimeError as exc:
            raise SolverFailure(f"trace not defined at probe point: {exc}") \
                from exc

    f0 = evaluate_at(0.0)
    f1 = evaluate_at(1.0)
    f2 = evaluate_at(2.0)
    slope = f1 - f0
    if not math.isclose(f2 - f1, slope, rel_tol=1e-9, abs_tol=1e-9):
        raise SolverFailure("trace is not linear in the unknown")
    if slope == 0:
        raise SolverFailure("trace does not depend on the unknown")
    solution = (target - f0) / slope
    _verify(rho, loc, target, trace, solution)
    return solution


def _verify(rho: Mapping[Loc, float], loc: Loc, target: float, trace: Trace,
            solution: float) -> None:
    check = dict(rho)
    check[loc] = solution
    try:
        value = eval_trace(trace, check)
    except LittleRuntimeError as exc:
        raise SolverFailure(f"solution does not evaluate: {exc}") from exc
    if not math.isclose(value, target, rel_tol=_REL_TOL, abs_tol=_ABS_TOL):
        raise SolverFailure(
            f"solution check failed: got {value}, wanted {target}")

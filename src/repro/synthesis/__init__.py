"""Trace-based program synthesis: solvers and candidate enumeration (§3, §5.1)."""

from .adhoc import AdHocSession, RankedUpdate
from .solver import (in_a_fragment, in_b_fragment, in_solver_fragment,
                     solve_addition_only, solve_linear, solve_one,
                     solve_single_occurrence, walk_plus)
from .synthesize import Candidate, synthesize_plausible

__all__ = [
    "AdHocSession", "RankedUpdate",
    "in_a_fragment", "in_b_fragment", "in_solver_fragment",
    "solve_addition_only", "solve_linear", "solve_one",
    "solve_single_occurrence", "walk_plus",
    "Candidate", "synthesize_plausible",
]

"""``SynthesizePlausible`` — enumerate candidate local updates (App. B.2).

Given the original substitution ρ0 and a set of value-trace equations
``{n′1 = t1, …, n′m = tm}`` induced by user edits, enumerate substitutions

    SynthesizePlausible(ρ0, …) =
        { ρ0 (⊕ᵢ (ℓᵢ → kᵢ)) | (ℓ1, …, ℓm) ∈ L′1 × … × L′m }

where ``kᵢ = Solve(ρ0, ℓᵢ, n′ᵢ = tᵢ)`` and ``L′ᵢ = Locs(tᵢ)``.  Later
bindings shadow earlier ones, so the results are *plausible*, not
necessarily faithful (§3, §4.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

from ..lang.ast import Loc
from ..lang.errors import SolverFailure
from ..trace.equation import Equation
from ..trace.substitution import Substitution
from .solver import solve_linear, solve_one

#: Safety cap on the cross-product enumeration; equations from real examples
#: have small location sets (§5.2.1 reports 3.83 candidates on average).
MAX_CANDIDATES = 4096


@dataclass(frozen=True)
class Candidate:
    """One candidate update: which location each equation solved for, the
    solved values, and the resulting substitution."""

    choice: Tuple[Loc, ...]
    values: Tuple[float, ...]
    substitution: Substitution


def synthesize_plausible(rho0: Mapping[Loc, float],
                         equations: Sequence[Equation],
                         *, allow_linear: bool = False,
                         max_candidates: int = MAX_CANDIDATES
                         ) -> List[Candidate]:
    """Enumerate candidate substitutions for the given equations.

    ``allow_linear`` additionally admits linear multi-occurrence equations
    (needed to exhibit all four Figure 1D candidates); the paper's own
    solver is used when it is False.
    """
    location_sets = []
    for equation in equations:
        unknowns = sorted(equation.unknowns(), key=lambda loc: loc.ident)
        if not unknowns:
            return []
        location_sets.append(unknowns)

    candidates: List[Candidate] = []
    for choice in itertools.islice(itertools.product(*location_sets),
                                   max_candidates):
        values: List[float] = []
        bindings: List[Tuple[Loc, float]] = []
        try:
            for loc, equation in zip(choice, equations):
                try:
                    value = solve_one(rho0, loc, equation.target,
                                      equation.trace)
                except SolverFailure:
                    if not allow_linear:
                        raise
                    value = solve_linear(rho0, loc, equation.target,
                                         equation.trace)
                values.append(value)
                bindings.append((loc, value))
        except SolverFailure:
            continue
        substitution = Substitution(rho0)
        for loc, value in bindings:
            substitution = substitution.extend(loc, value)
        candidates.append(Candidate(tuple(choice), tuple(values),
                                    substitution))
    return candidates

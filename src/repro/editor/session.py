"""Headless live-synchronization editor (§4.1, §5).

:class:`LiveSession` substitutes for the reference implementation's browser
UI: it exposes exactly the interaction loop of the paper —

1. **run**: parse + evaluate the program, build the canvas;
2. **prepare**: compute shape assignments (heuristics) and mouse triggers
   for every zone ("we only perform this computation when the program is
   run initially and after the user finishes dragging a zone", §5.2.3);
3. **drag**: while the mouse moves, fire the zone's trigger, apply the
   substitution to the original program, re-evaluate, re-render;
4. **release**: commit, then re-prepare for the next action.

The session is a thin shell over :class:`~repro.core.pipeline.SyncPipeline`
— the staged run→assign→trigger→sliders core shared with the CLI and the
benchmarks — adding only interaction state: the drag in flight, the undo
history (§6.2), and hover/highlight presentation (§5).  Each drag step
feeds the pipeline the substitution's change set, so the Run stage replays
recorded guards instead of re-evaluating, and the release's Prepare only
re-computes what the gesture's accumulated change could have touched.

The *programmatic* half of the paper's workflow flows through the same
machinery: :meth:`LiveSession.edit_source` classifies a text edit with the
structural differ (:mod:`repro.lang.diff`) and routes it through the
pipeline as a change set, so editing a literal in the text is exactly as
cheap as dragging it on the canvas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.changeset import EMPTY_CHANGE, FULL_CHANGE, ChangeSet
from ..core.pipeline import SyncPipeline
from ..lang.ast import Loc
from ..lang.diff import IDENTITY, SourceDiff, diff_source
from ..lang.errors import LittleError
from ..lang.prelude import prelude_rho0
from ..lang.program import Program, parse_program
from ..svg.canvas import Canvas
from ..zones.assignment import CanvasAssignments
from ..zones.triggers import MouseTrigger, TriggerResult
from .sliders import BuiltinSlider

__all__ = ["EditorError", "HoverInfo", "LiveSession"]


class EditorError(LittleError):
    """Misuse of the editor API (dragging an Inactive zone, …)."""


@dataclass(frozen=True)
class HoverInfo:
    """What the editor shows when hovering a zone (§5): whether it is
    Active, the constants that will change (highlighted yellow), and the
    constants that contributed to the attributes but were not selected
    (highlighted gray)."""

    active: bool
    caption: str
    selected: Tuple[Loc, ...] = ()
    unselected: Tuple[Loc, ...] = ()


class LiveSession:
    """A headless Sketch-n-Sketch editing session."""

    def __init__(self, source: Optional[str] = None, *,
                 program: Optional[Program] = None,
                 heuristic: str = "fair",
                 auto_freeze: bool = False,
                 prelude_frozen: bool = True,
                 seed=None,
                 budget=None,
                 compiled: Optional[bool] = None,
                 specialize_probe=None):
        if (source is None) == (program is None):
            raise EditorError("provide exactly one of source or program")
        if program is None:
            program = parse_program(source, auto_freeze=auto_freeze,
                                    prelude_frozen=prelude_frozen)
        self.pipeline = SyncPipeline(program, heuristic=heuristic,
                                     record=True, budget=budget,
                                     compiled=compiled,
                                     specialize_probe=specialize_probe)
        self.history: List[Program] = []
        self._drag_base: Optional[Program] = None
        self._drag_trigger: Optional[MouseTrigger] = None
        self._drag_key: Optional[Tuple[int, str]] = None
        self._drag_offsets: Optional[Tuple[float, float]] = None
        self._last_result: Optional[TriggerResult] = None
        self._gesture_change: ChangeSet = EMPTY_CHANGE
        if seed is not None:
            # A recorded evaluation of exactly ``program`` (shared compile
            # cache): skip the redundant evaluation, Prepare from scratch.
            output, eval_cache = seed
            self.pipeline.seed_run(output, eval_cache)
            self.pipeline.prepare(FULL_CHANGE)
        else:
            self.run()

    # -- pipeline views ----------------------------------------------------------

    @property
    def program(self) -> Program:
        return self.pipeline.program

    @property
    def heuristic(self) -> str:
        return self.pipeline.heuristic

    @property
    def canvas(self) -> Canvas:
        return self.pipeline.canvas

    @property
    def assignments(self) -> CanvasAssignments:
        return self.pipeline.assignments

    @property
    def triggers(self) -> Dict[Tuple[int, str], MouseTrigger]:
        return self.pipeline.triggers

    @property
    def sliders(self) -> Dict[Loc, BuiltinSlider]:
        return self.pipeline.sliders

    # -- run / prepare ---------------------------------------------------------

    def run(self) -> None:
        """Evaluate the current program from scratch and prepare for user
        actions."""
        self.pipeline.run()

    def prepare(self) -> None:
        """Recompute assignments and triggers for every zone (the
        from-scratch "Prepare" operation measured in §5.2.3)."""
        self.pipeline.prepare()

    # -- hovering ----------------------------------------------------------------

    def hover(self, shape_index: int, zone_name: str) -> HoverInfo:
        active, caption, selected, unselected = \
            self.assignments.hover_data(shape_index, zone_name)
        return HoverInfo(active=active, caption=caption,
                         selected=selected, unselected=unselected)

    # -- dragging ---------------------------------------------------------------

    @property
    def dragging(self) -> Optional[Tuple[int, str]]:
        """The ``(shape_index, zone_name)`` of the drag in flight, if any."""
        return self._drag_key if self._drag_base is not None else None

    def check_drag(self, shape_index: int, zone_name: str):
        """The trigger a drag of this zone would fire, or
        :class:`EditorError` if the zone is not an Active drag target —
        the same validation (and message) ``start_drag`` applies, for
        callers that must reject a gesture without starting it (the
        serve layer's queued drags)."""
        trigger = self.triggers.get((shape_index, zone_name))
        if trigger is None:
            raise EditorError(
                f"zone {zone_name!r} of shape {shape_index} is Inactive")
        return trigger

    def start_drag(self, shape_index: int, zone_name: str) -> None:
        trigger = self.check_drag(shape_index, zone_name)
        self._drag_base = self.program
        self._drag_trigger = trigger
        self._drag_key = (shape_index, zone_name)
        self._drag_offsets = None
        self._last_result = None
        # _gesture_change is NOT reset here: if a previous gesture was
        # never released, its accumulated change must still reach the
        # next Prepare (release() resets it after consuming it).

    def drag(self, dx: float, dy: float) -> TriggerResult:
        """One mouse-move step: the offsets are cumulative from the
        drag start, exactly as in §4.1's τ(dx, dy)."""
        if self._drag_trigger is None or self._drag_base is None:
            raise EditorError("drag without start_drag")
        previous_offsets = self._drag_offsets
        previous_result = self._last_result
        self._drag_offsets = (dx, dy)
        result = self._drag_trigger(dx, dy)
        self._last_result = result
        if result.bindings:
            previous = self.pipeline.program
            program = self._drag_base.substitute(result.bindings)
            # The substitution (and hence ``last_change``) is relative to
            # the drag *base*, but the pipeline's state is at the previous
            # step — also a substitution of the same base.  Their union
            # bounds the step-over-step difference (a loc dragged away and
            # back to its base value appears only in the previous one).
            step_change = program.last_change
            if previous is not self._drag_base:
                step_change = step_change.union(previous.last_change)
            self.pipeline.replace_program(program, step_change)
            try:
                effective = self.pipeline.run_stage(step_change)
            except LittleError:
                # A step that fails to run (a budget trip, a domain error
                # the solver pushed into a literal) leaves the pipeline's
                # caches at the previous step — the Run stage mutates them
                # only on success — so re-installing the previous program
                # is a complete rollback; the gesture stays in flight at
                # its last good offsets.
                self.pipeline.replace_program(previous, EMPTY_CHANGE)
                self._drag_offsets = previous_offsets
                self._last_result = previous_result
                raise
            self._gesture_change = self._gesture_change.union(effective)
        return result

    def release(self) -> None:
        """Finish the user action: commit to history and re-prepare
        ("when the user releases the mouse button, we compute new shape
        assignments and mouse triggers", §4.1) — incrementally, against
        the gesture's accumulated change set."""
        if self._drag_base is None:
            raise EditorError("release without start_drag")
        if self.program is not self._drag_base:
            self.history.append(self._drag_base)
        self._drag_base = None
        self._drag_trigger = None
        self._drag_key = None
        self._drag_offsets = None
        self.pipeline.prepare(self._gesture_change)
        self._gesture_change = EMPTY_CHANGE

    def drag_zone(self, shape_index: int, zone_name: str, dx: float,
                  dy: float) -> TriggerResult:
        """Convenience: a full click-drag-release gesture."""
        self.start_drag(shape_index, zone_name)
        result = self.drag(dx, dy)
        self.release()
        return result

    # -- sliders (§2.4) -----------------------------------------------------------

    def set_slider(self, loc: Loc, value: float) -> None:
        slider = self.sliders.get(loc)
        if slider is None:
            raise EditorError(f"no slider for location {loc.display()}")
        clamped = max(slider.lo, min(slider.hi, value))
        if clamped == slider.value:
            # No-op drag to the current value: no history entry, no re-run.
            return
        previous = self.program
        self.history.append(previous)
        program = previous.substitute({loc: clamped})
        change = self.pipeline.replace_program(program)
        try:
            self.pipeline.run(change)
        except LittleError:
            # Same discipline as ``edit_source``: a slider move whose
            # program fails to run is rolled back atomically.
            self.history.pop()
            self.pipeline.replace_program(previous, FULL_CHANGE)
            self.pipeline.run(FULL_CHANGE)
            raise

    # -- source edits (§4.1, the other half of the loop) ---------------------------

    def edit_source(self, text: str) -> SourceDiff:
        """Apply a source-text edit to the live program.

        The structural differ (:func:`repro.lang.diff.diff_source`)
        classifies the edit and re-expresses it against the current
        program, so a value-only edit (only literal values changed) flows
        through the incremental pipeline exactly like a drag step — guards
        replayed, canvas nodes shared, assignments revalidated — while a
        structural edit re-runs from scratch with surviving literals
        re-keyed to their old locations.  The previous program is pushed
        onto the undo history (identity edits excepted), and an in-flight
        drag gesture is committed first.  The edit is atomic: a parse
        error propagates as :class:`~repro.lang.errors.LittleSyntaxError`
        before any state changes, and an edit whose program fails to
        *run* is rolled back — the session stays on its previous program
        either way.  Returns the :class:`~repro.lang.diff.SourceDiff`.
        """
        diff = diff_source(self.program, text)
        if self._drag_base is not None:
            self.release()
        if diff.kind == IDENTITY:
            # Same program, new text: adopt it without a history entry or
            # a re-run — ρ0 is value-identical, so the existing triggers
            # and caches stay exact.
            self.pipeline.replace_program(diff.program, diff.change)
            return diff
        previous = self.program
        self.history.append(previous)
        try:
            self.pipeline.edit_program(diff.program, diff.change)
        except LittleError:
            self.history.pop()
            self.pipeline.replace_program(previous, FULL_CHANGE)
            self.pipeline.run(FULL_CHANGE)
            raise
        return diff

    # -- undo (§6.2) ----------------------------------------------------------------

    def undo(self) -> None:
        if not self.history:
            raise EditorError("nothing to undo")
        restored = self.history.pop()
        current = self.pipeline.program
        if self._drag_base is not None:
            # Undo during an in-flight drag aborts the gesture: the
            # pipeline state is then more than one substitution away from
            # the restored program, so no cheap change set bounds the
            # difference — re-run from scratch.
            change = FULL_CHANGE
        else:
            # Between user actions the current program was derived from
            # the popped one by a single step whose ``last_change`` bounds
            # the difference: a substitution (drag commit, slider move,
            # value-only source edit) names exactly the touched locations,
            # and a structural source edit carries ``FULL_CHANGE``.
            change = current.last_change
        self.pipeline.replace_program(restored, change)
        try:
            self.pipeline.run(change)
        except LittleError:
            # Failed undo (e.g. the restored program trips a since-
            # tightened budget): put the entry back and stay where we
            # were — an in-flight gesture is likewise kept in flight.
            self.history.append(restored)
            self.pipeline.replace_program(current, FULL_CHANGE)
            self.pipeline.run(FULL_CHANGE)
            raise
        if self._drag_base is not None:
            self._drag_base = None
            self._drag_trigger = None
            self._drag_key = None
            self._drag_offsets = None
            self._gesture_change = EMPTY_CHANGE

    # -- snapshot / restore ------------------------------------------------------

    def _program_state(self, program: Program,
                       current_source: str) -> dict:
        """A JSON-able picture of one program in the session's chain.

        ``user`` is the full list of user-literal values in parse order
        (stable across re-parses of the same source); ``prelude`` lists the
        ``(ident, value)`` pairs of any rewritten Prelude literals — Prelude
        locations are parsed once per process, so their idents are stable
        for the lifetime of the snapshot's holder.  A history entry from
        before a source edit carries its own ``source`` text, since its
        overlays are relative to a different base program than the
        current one's.
        """
        state = {"user": program.user_values(), "prelude": []}
        if program.source != current_source:
            state["source"] = program.source
        if program.prelude_modified:
            baseline = prelude_rho0(program.prelude_frozen)
            state["prelude"] = [
                [loc.ident, value] for loc, value in program.rho0.items()
                if loc.in_prelude and baseline.get(loc) != value]
        return state

    def snapshot(self) -> dict:
        """Serialize the session to a JSON-able dict (see :meth:`restore`).

        The snapshot captures the full interaction state — undo history,
        current program, and any drag in flight — as the original source
        text plus literal-value overlays, so restoring costs one (cacheable)
        parse instead of storing ASTs.  Snapshots are what the serve layer's
        :class:`~repro.serve.manager.SessionManager` keeps for sessions it
        evicts; they are process-local when the Prelude has been modified
        (Prelude location idents are per-process).
        """
        current = self._drag_base if self._drag_base is not None \
            else self.program
        drag = None
        if self._drag_base is not None:
            dx, dy = self._drag_offsets or (None, None)
            shape_index, zone_name = self._drag_key
            drag = {"shape": shape_index, "zone": zone_name,
                    "dx": dx, "dy": dy}
        return {
            "version": 2,
            "source": current.source,
            "options": {"heuristic": self.heuristic,
                        "auto_freeze": current.auto_freeze,
                        "prelude_frozen": current.prelude_frozen,
                        "with_prelude": current.with_prelude},
            "history": [self._program_state(p, current.source)
                        for p in self.history],
            "current": self._program_state(current, current.source),
            "drag": drag,
        }

    @classmethod
    def restore(cls, snapshot: dict, *, compile_fn=None,
                budget=None, compiled: Optional[bool] = None,
                specialize_probe=None) -> "LiveSession":
        """Rebuild a session from a :meth:`snapshot`.

        ``compile_fn(source, **parse_options)`` must return a tuple of the
        parsed base :class:`Program` and an optional evaluation seed
        ``(output, eval_cache)`` for it — the serve layer passes its shared
        compile cache here; the default parses from scratch.  A seed cache
        that already carries a compiled drag artifact
        (:mod:`repro.lang.compile`) carries it into the restored session
        for free, so rehydration under LRU pressure skips re-specializing
        too.  The restored session is behaviorally identical to the
        snapshotted one: same rendered output, same undo history, and any
        in-flight drag is replayed so the gesture can simply continue.
        """
        options = snapshot["options"]
        parse_options = {"auto_freeze": options["auto_freeze"],
                         "prelude_frozen": options["prelude_frozen"],
                         "with_prelude": options["with_prelude"]}
        main_source = snapshot["source"]
        # A session that lived through source edits has history entries
        # based on *earlier* source texts (each carries its own ``source``
        # key); compile each distinct base once.
        bases: Dict[str, tuple] = {}

        def base_for(source: str) -> tuple:
            cached = bases.get(source)
            if cached is None:
                if compile_fn is None:
                    base, seed = parse_program(source, **parse_options), None
                else:
                    base, seed = compile_fn(source, **parse_options)
                cached = (base, seed, base.user_locs(), base.user_values(),
                          {loc.ident: loc for loc in base.rho0
                           if loc.in_prelude})
                bases[source] = cached
            return cached

        def materialize(state: dict) -> Program:
            base, _seed, locs, base_values, prelude_locs = \
                base_for(state.get("source", main_source))
            values = state["user"]
            if len(values) != len(locs):
                raise EditorError("snapshot does not match its source")
            rho = {loc: value
                   for loc, value, base_value in zip(locs, values,
                                                     base_values)
                   if value != base_value}
            for ident, value in state["prelude"]:
                loc = prelude_locs.get(ident)
                if loc is None:
                    raise EditorError(
                        "snapshot references an unknown Prelude location")
                rho[loc] = value
            # Always substitute (even an empty ρ) so the chain entries are
            # distinct objects whose ``last_change`` we may widen below
            # without touching a shared base program.
            return base.substitute(rho)

        states = list(snapshot["history"]) + [snapshot["current"]]
        sources = [state.get("source", main_source) for state in states]
        chain = [materialize(state) for state in states]
        # ``undo`` bounds the diff to a program's *predecessor* with
        # ``last_change``; after a restore every chain entry is a direct
        # substitution of its base instead, so widen each change to the
        # union with its predecessor's (a conservative superset of the
        # true step-over-step diff).  Consecutive entries from *different*
        # bases (a source edit happened between them) share no location
        # coordinate system, so the step is pessimized to ``FULL_CHANGE``.
        own_changes = [program.last_change for program in chain]
        for index, program in enumerate(chain):
            if not index:
                continue
            if sources[index] == sources[index - 1]:
                program.last_change = \
                    own_changes[index].union(own_changes[index - 1])
            else:
                program.last_change = FULL_CHANGE
        current = chain.pop()
        seed = base_for(main_source)[1]
        session = cls(program=current, heuristic=options["heuristic"],
                      seed=seed if not own_changes[-1] else None,
                      budget=budget, compiled=compiled,
                      specialize_probe=specialize_probe)
        session.history = chain
        drag = snapshot.get("drag")
        if drag is not None:
            session.start_drag(drag["shape"], drag["zone"])
            if drag["dx"] is not None:
                session.drag(drag["dx"], drag["dy"])
        return session

    # -- output -----------------------------------------------------------------------

    def source(self) -> str:
        """Current program text as the user would see it."""
        return self.program.unparse()

    def export_svg(self, *, include_hidden: bool = False) -> str:
        """Export the canvas as SVG text (Appendix C)."""
        return self.pipeline.render(include_hidden=include_hidden)

    # -- introspection -------------------------------------------------------------

    def zone_names(self, shape_index: int) -> List[str]:
        return [analysis.zone.name for analysis in self.assignments.analyses
                if analysis.zone.shape_index == shape_index]

    def active_zone_count(self) -> int:
        return len(self.assignments.chosen)

    def freeze_highlight(self) -> Dict[str, Tuple[Loc, ...]]:
        """Locations grouped by highlight color after the last drag:
        green (updated) and red (solver failed) (§5)."""
        if self._last_result is None:
            return {"green": (), "red": ()}
        green = tuple(outcome.loc for outcome in self._last_result.outcomes
                      if outcome.solved)
        red = tuple(outcome.loc for outcome in self._last_result.outcomes
                    if not outcome.solved)
        return {"green": green, "red": red}

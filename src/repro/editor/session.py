"""Headless live-synchronization editor (§4.1, §5).

:class:`LiveSession` substitutes for the reference implementation's browser
UI: it exposes exactly the interaction loop of the paper —

1. **run**: parse + evaluate the program, build the canvas;
2. **prepare**: compute shape assignments (heuristics) and mouse triggers
   for every zone ("we only perform this computation when the program is
   run initially and after the user finishes dragging a zone", §5.2.3);
3. **drag**: while the mouse moves, fire the zone's trigger, apply the
   substitution to the original program, re-evaluate, re-render;
4. **release**: commit, then re-prepare for the next action.

Hover captions, freeze highlighting and the undo feature of §5/§6.2 are
modelled as inspectable data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..lang.ast import Loc
from ..lang.errors import LittleError
from ..lang.incremental import EvalCache, record_evaluation, reevaluate
from ..lang.program import Program, parse_program
from ..svg.canvas import Canvas
from ..svg.node import rebuild_node
from ..svg.render import render_canvas
from ..trace.trace import locs
from ..zones.assignment import CanvasAssignments, assign_canvas
from ..zones.triggers import MouseTrigger, TriggerResult, compute_triggers
from .sliders import BuiltinSlider, collect_sliders


class EditorError(LittleError):
    """Misuse of the editor API (dragging an Inactive zone, …)."""


@dataclass(frozen=True)
class HoverInfo:
    """What the editor shows when hovering a zone (§5): whether it is
    Active, the constants that will change (highlighted yellow), and the
    constants that contributed to the attributes but were not selected
    (highlighted gray)."""

    active: bool
    caption: str
    selected: Tuple[Loc, ...] = ()
    unselected: Tuple[Loc, ...] = ()


class LiveSession:
    """A headless Sketch-n-Sketch editing session."""

    def __init__(self, source: Optional[str] = None, *,
                 program: Optional[Program] = None,
                 heuristic: str = "fair",
                 auto_freeze: bool = False,
                 prelude_frozen: bool = True):
        if (source is None) == (program is None):
            raise EditorError("provide exactly one of source or program")
        if program is None:
            program = parse_program(source, auto_freeze=auto_freeze,
                                    prelude_frozen=prelude_frozen)
        self.heuristic = heuristic
        self.program = program
        self.history: List[Program] = []
        self.canvas: Canvas
        self.assignments: CanvasAssignments
        self.triggers: Dict[Tuple[int, str], MouseTrigger]
        self.sliders: Dict[Loc, BuiltinSlider]
        self._drag_base: Optional[Program] = None
        self._drag_trigger: Optional[MouseTrigger] = None
        self._last_result: Optional[TriggerResult] = None
        self._eval_cache: Optional[EvalCache] = None
        self._last_output = None
        self.run()

    # -- run / prepare ---------------------------------------------------------

    def run(self) -> None:
        """Evaluate the current program and prepare for user actions.

        The evaluation records control-flow guards so that subsequent drag
        steps can re-run incrementally (trace-driven, §4.1)."""
        output, self._eval_cache = record_evaluation(self.program)
        self._last_output = output
        self.canvas = Canvas.from_value(output)
        self.prepare()

    def prepare(self) -> None:
        """Compute assignments and triggers for every zone (the "Prepare"
        operation measured in §5.2.3)."""
        self.assignments = assign_canvas(self.canvas, self.heuristic)
        self.triggers = compute_triggers(self.canvas, self.assignments,
                                         self.program.rho0)
        self.sliders = collect_sliders(self.program)

    # -- hovering ----------------------------------------------------------------

    def hover(self, shape_index: int, zone_name: str) -> HoverInfo:
        assignment = self.assignments.lookup(shape_index, zone_name)
        analysis = self.assignments.analysis(shape_index, zone_name)
        if assignment is None or analysis is None:
            return HoverInfo(active=False, caption="Inactive")
        selected = tuple(sorted(assignment.location_set,
                                key=lambda loc: loc.ident))
        contributing = set()
        for locset in analysis.locsets:
            contributing.update(locset)
        unselected = tuple(sorted(contributing - set(selected),
                                  key=lambda loc: loc.ident))
        return HoverInfo(active=True, caption=assignment.caption(),
                         selected=selected, unselected=unselected)

    # -- dragging ---------------------------------------------------------------

    def start_drag(self, shape_index: int, zone_name: str) -> None:
        trigger = self.triggers.get((shape_index, zone_name))
        if trigger is None:
            raise EditorError(
                f"zone {zone_name!r} of shape {shape_index} is Inactive")
        self._drag_base = self.program
        self._drag_trigger = trigger
        self._last_result = None

    def drag(self, dx: float, dy: float) -> TriggerResult:
        """One mouse-move step: the offsets are cumulative from the
        drag start, exactly as in §4.1's τ(dx, dy)."""
        if self._drag_trigger is None or self._drag_base is None:
            raise EditorError("drag without start_drag")
        result = self._drag_trigger(dx, dy)
        self._last_result = result
        if result.bindings:
            self.program = self._drag_base.substitute(result.bindings)
            output = None
            if self._eval_cache is not None:
                # Incremental fast path: same structure, new ρ — rebuild the
                # output from traces, checking the recorded guards.
                output = reevaluate(self._eval_cache, self.program.rho0)
            if output is None:
                # A guard flipped (or no cache): full run, re-record.
                output, self._eval_cache = record_evaluation(self.program)
                self.canvas = Canvas.from_value(output)
            else:
                # Same structure: rebuild the canvas in lockstep, sharing
                # unchanged nodes and skipping re-validation.
                self.canvas = Canvas(
                    rebuild_node(self.canvas.root, self._last_output,
                                 output))
            self._last_output = output
        return result

    def release(self) -> None:
        """Finish the user action: commit to history and re-prepare
        ("when the user releases the mouse button, we compute new shape
        assignments and mouse triggers", §4.1)."""
        if self._drag_base is None:
            raise EditorError("release without start_drag")
        if self.program is not self._drag_base:
            self.history.append(self._drag_base)
        self._drag_base = None
        self._drag_trigger = None
        self.prepare()

    def drag_zone(self, shape_index: int, zone_name: str, dx: float,
                  dy: float) -> TriggerResult:
        """Convenience: a full click-drag-release gesture."""
        self.start_drag(shape_index, zone_name)
        result = self.drag(dx, dy)
        self.release()
        return result

    # -- sliders (§2.4) -----------------------------------------------------------

    def set_slider(self, loc: Loc, value: float) -> None:
        slider = self.sliders.get(loc)
        if slider is None:
            raise EditorError(f"no slider for location {loc.display()}")
        clamped = max(slider.lo, min(slider.hi, value))
        self.history.append(self.program)
        self.program = self.program.substitute({loc: clamped})
        self.run()

    # -- undo (§6.2) ----------------------------------------------------------------

    def undo(self) -> None:
        if not self.history:
            raise EditorError("nothing to undo")
        self.program = self.history.pop()
        self.run()

    # -- output -----------------------------------------------------------------------

    def source(self) -> str:
        """Current program text as the user would see it."""
        return self.program.unparse()

    def export_svg(self, *, include_hidden: bool = False) -> str:
        """Export the canvas as SVG text (Appendix C)."""
        return render_canvas(self.canvas.root, include_hidden=include_hidden)

    # -- introspection -------------------------------------------------------------

    def zone_names(self, shape_index: int) -> List[str]:
        return [analysis.zone.name for analysis in self.assignments.analyses
                if analysis.zone.shape_index == shape_index]

    def active_zone_count(self) -> int:
        return len(self.assignments.chosen)

    def freeze_highlight(self) -> Dict[str, Tuple[Loc, ...]]:
        """Locations grouped by highlight color after the last drag:
        green (updated) and red (solver failed) (§5)."""
        if self._last_result is None:
            return {"green": (), "red": ()}
        green = tuple(outcome.loc for outcome in self._last_result.outcomes
                      if outcome.solved)
        red = tuple(outcome.loc for outcome in self._last_result.outcomes
                    if not outcome.solved)
        return {"green": green, "red": red}

"""Headless prodirect-manipulation editor (live synchronization, §4–§5)."""

from .drawing import add_shape, shape_literal_source
from .session import EditorError, HoverInfo, LiveSession
from .sliders import BuiltinSlider, collect_sliders

__all__ = ["EditorError", "HoverInfo", "LiveSession", "BuiltinSlider",
           "collect_sliders", "add_shape", "shape_literal_source"]

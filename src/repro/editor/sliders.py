"""Built-in sliders — re-exported from :mod:`repro.core.sliders`.

The Sliders stage moved into the core pipeline (it is one of the four
Prepare stages shared by the CLI, editor and benchmarks); this module
keeps the historical ``repro.editor.sliders`` import path working.
"""

from ..core.sliders import BuiltinSlider, collect_sliders

__all__ = ["BuiltinSlider", "collect_sliders"]

"""Adding shapes from the editor — the "Draw" half of prodirect
manipulation.

§6.1: "Our current implementation does not allow new shapes to be added
directly using the GUI"; §7.2 lists "the ability to synthesize program
expressions from output created directly via the user interface" as the
second prodirect-manipulation goal.  This module adds the simplest sound
version: a new shape literal is spliced into the program's output
expression, and its fresh numeric literals immediately become manipulable
locations like any hand-written ones.

The splice wraps the program's final body E (which evaluates to an
``['svg' attrs children]`` node) as::

    (case E ([kind attrs children]
             [kind attrs (append children [ <new-shape-literal> ])]))

which is output-type-directed and works for any program, no matter how E
is computed.
"""

from __future__ import annotations

from typing import Optional

from ..lang.ast import ECase, ELet, EVar, EApp, Expr, PVar, elist, plist
from ..lang.parser import parse_expr
from ..lang.program import Program
from ..lang.values import format_number

_SHAPE_TEMPLATES = {
    "rect": ("x", "y", "width", "height"),
    "circle": ("cx", "cy", "r"),
    "ellipse": ("cx", "cy", "rx", "ry"),
    "line": ("x1", "y1", "x2", "y2"),
}


def shape_literal_source(kind: str, fill: str = "gray", **attrs) -> str:
    """little source for a literal shape node, e.g.
    ``shape_literal_source('rect', x=10, y=20, width=30, height=40)``."""
    if kind not in _SHAPE_TEMPLATES:
        raise ValueError(f"cannot draw shapes of kind {kind!r}; "
                         f"supported: {sorted(_SHAPE_TEMPLATES)}")
    expected = _SHAPE_TEMPLATES[kind]
    missing = [name for name in expected if name not in attrs]
    if missing:
        raise ValueError(f"{kind} needs attributes {missing}")
    stroke_attrs = ""
    if kind == "line":
        stroke_attrs = f" ['stroke' '{fill}'] ['stroke-width' 3]"
        fill_attr = ""
    else:
        fill_attr = f" ['fill' '{fill}']"
    pairs = " ".join(f"['{name}' {format_number(float(attrs[name]))}]"
                     for name in expected)
    return f"['{kind}' [{pairs}{fill_attr}{stroke_attrs}] []]"


def _wrap_final_body(expr: Expr, wrap) -> Expr:
    """Rebuild ``expr`` with its final (non-let) body replaced by
    ``wrap(body)``; the definition spine is preserved."""
    if isinstance(expr, ELet):
        return ELet(expr.pattern, expr.bound,
                    _wrap_final_body(expr.body, wrap),
                    expr.rec, expr.from_def)
    return wrap(expr)


def add_shape(program: Program, kind: str, fill: str = "gray",
              **attrs) -> Program:
    """Return a new program whose output contains one more shape.

    The new literals receive fresh locations, so the added shape is
    directly manipulable in the very next Prepare.
    """
    literal = parse_expr(shape_literal_source(kind, fill, **attrs))
    pattern = plist([PVar("kind"), PVar("attrs"), PVar("children")])

    def wrap(body: Expr) -> Expr:
        appended = EApp(
            EApp(EVar("append"), EVar("children")),
            elist([literal]))
        rebuilt = elist([EVar("kind"), EVar("attrs"), appended])
        return ECase(body, ((pattern, rebuilt),))

    new_user = _wrap_final_body(program.user_ast, wrap)
    return Program(new_user, source=program.source,
                   with_prelude=program.with_prelude,
                   prelude_frozen=program.prelude_frozen)

"""Session lifecycle for the serve layer: many editors, true concurrency.

A :class:`SessionManager` owns a fleet of
:class:`~repro.editor.session.LiveSession`\\ s behind opaque string ids,
split across N :class:`~repro.serve.shard.SessionShard`\\ s (sessions
placed by stable hash of their id).  The concurrency contract:

* **requests for different sessions run in parallel** — each session has
  its own lock (:meth:`locked`), and shard bookkeeping locks are held
  only for dict operations;
* **requests for the same session are strictly ordered** — the protocol
  layer holds the session lock for the whole command, and an optional
  per-session monotonic sequence number (:meth:`peek_seq`/:meth:`bump_seq`)
  lets clients *detect* duplicated or re-ordered requests instead of
  silently applying them;
* **eviction never tears a session** — a shard over its live budget first
  *migrates* its least-recently-used idle session to the coldest
  under-budget shard, and only snapshots
  (:meth:`~repro.editor.session.LiveSession.snapshot`) when every shard
  is full; a session whose lock is held (mid-drag) is skipped, never
  snapshotted mid-operation;
* a shared single-flight :class:`~repro.serve.cache.CompileCache` —
  concurrent opens of the same source block on **one** parse and one
  recorded evaluation instead of racing.

Snapshots transparently rehydrate on the next touch, mid-gesture drags
included; a session whose snapshot was expired to bound the store is
remembered as a tombstone, so callers get the distinct
:class:`SessionExpired` (HTTP 410) instead of the never-issued
:class:`UnknownSession` (HTTP 404).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from contextlib import contextmanager
from threading import RLock, get_ident
from typing import Dict, List, Optional, Tuple

from ..editor.session import LiveSession
from ..examples.registry import example_source
from .cache import CompileCache
from .shard import SessionShard, shard_index

__all__ = ["SessionManager", "SessionExpired", "UnknownSession"]


class UnknownSession(KeyError):
    """The session id was never issued."""


class SessionExpired(UnknownSession):
    """The session id was issued, but its snapshot was expired to keep
    the eviction store bounded — distinct from a never-issued id."""


class _SessionEntry:
    """Coordinator-side state that survives eviction and migration:
    the per-session lock, sequence number, home shard, queued (not yet
    applied) drag samples, and edit counters."""

    __slots__ = ("lock", "seq", "shard", "pending", "edits", "owner",
                 "depth")

    def __init__(self, shard: SessionShard):
        self.lock = RLock()
        self.seq = 0
        self.shard = shard
        #: Thread currently inside :meth:`SessionManager.locked` (and
        #: its nesting depth) — lets the evictor refuse a victim whose
        #: RLock it could acquire *re-entrantly* (its own command's
        #: session), which would tear the session it is serving.
        self.owner: Optional[int] = None
        self.depth = 0
        #: ``(shape, zone, count, [dx, dy])`` — acknowledged-but-unapplied
        #: drag samples (cumulative from gesture start).  Only the count
        #: and the *final* sample are kept: the flush re-runs once at the
        #: last cumulative offset, so a client streaming moves for hours
        #: costs O(1) memory, not one stored pair per sample.
        self.pending: Optional[Tuple[int, str, int, list]] = None
        self.edits: Dict[str, int] = {}


class SessionManager:
    """Owns live sessions, their snapshots, and the shared compile cache.

    >>> manager = SessionManager(max_sessions=2)
    >>> sid, session, hit = manager.open(source="(svg [(rect 'red' 1 2 3 4)])")
    >>> hit, len(session.canvas)
    (False, 1)
    >>> manager.get(sid) is session
    True
    """

    def __init__(self, max_sessions: int = 64, *, shards: int = 1,
                 compile_cache_size: int = 128,
                 snapshot_limit: int = 1024):
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        shards = min(shards, max_sessions)
        self.max_sessions = max_sessions
        self.snapshot_limit = snapshot_limit
        self.cache = CompileCache(compile_cache_size)
        # Snapshot budgets get a floor of 1 so a small global limit split
        # across shards never silently expires an eviction on the spot
        # (the effective global bound rounds up to at most one per shard).
        self.shards: List[SessionShard] = [
            SessionShard(index,
                         budget=self._split(max_sessions, shards, index),
                         snapshot_budget=max(1, self._split(
                             snapshot_limit, shards, index)))
            for index in range(shards)]
        self._entries: Dict[str, _SessionEntry] = {}
        #: Tombstones of expired ids (bounded FIFO): distinguishes
        #: ``SessionExpired`` from ``UnknownSession``.
        self._expired_ids: "OrderedDict[str, bool]" = OrderedDict()
        self._expired_limit = max(1024, 4 * snapshot_limit)
        self._ids = itertools.count(1)
        self._lock = RLock()        # coordinator bookkeeping only
        self.opened = 0
        self.expired = 0
        self.edits = 0
        self.migrations = 0

    @staticmethod
    def _split(total: int, parts: int, index: int) -> int:
        """Distribute ``total`` over ``parts`` shards (first shards take
        the remainder)."""
        return total // parts + (1 if index < total % parts else 0)

    # -- lifecycle --------------------------------------------------------------

    def open(self, source: Optional[str] = None, *,
             example: Optional[str] = None, heuristic: str = "fair",
             auto_freeze: bool = False, prelude_frozen: bool = True
             ) -> Tuple[str, LiveSession, bool]:
        """Create a session, returning ``(session_id, session, cache_hit)``.

        Exactly one of ``source`` / ``example`` must be given; ``example``
        names a program of the bundled corpus
        (:func:`repro.examples.registry.example_names`).
        """
        if (source is None) == (example is None):
            raise ValueError("provide exactly one of source or example")
        if example is not None:
            source = example_source(example)
        compiled, hit = self.cache.compile(source, auto_freeze=auto_freeze,
                                           prelude_frozen=prelude_frozen)
        session = LiveSession(program=compiled.program, heuristic=heuristic,
                              seed=compiled.seed)
        with self._lock:
            sid = f"s{next(self._ids)}"
            shard = self.shards[shard_index(sid, len(self.shards))]
        # Admit before registering the entry: once an entry exists, an
        # entry with no backing store means "expiry in flight", so the
        # stores must never lag behind the entry.
        shard.admit(sid, session)
        with self._lock:
            self._entries[sid] = _SessionEntry(shard)
            self.opened += 1
        self._shed(shard, exclude=sid)
        return sid, session, hit

    def get(self, session_id: str) -> LiveSession:
        """The live session for ``session_id``, rehydrating if evicted.

        Acquires (and releases) the per-session lock; concurrent callers
        that need the session to *stay* theirs for a whole command use
        :meth:`locked` instead.
        """
        with self.locked(session_id) as session:
            return session

    @contextmanager
    def locked(self, session_id: str):
        """Hold ``session_id``'s lock for a whole command: requests for
        the same session serialize in arrival order; requests for other
        sessions proceed in parallel.  Rehydrates evicted sessions."""
        entry = self._entry(session_id)
        try:
            with entry.lock:
                entry.owner = get_ident()
                entry.depth += 1
                try:
                    yield self._materialize(session_id, entry)
                finally:
                    entry.depth -= 1
                    if entry.depth == 0:
                        entry.owner = None
        finally:
            # A shard can be left over budget when every victim was busy
            # at admit time; completing a request (even a failed one) is
            # the retry point — our own session is fair game again now
            # its lock is free.
            self._shed(entry.shard, exclude=None)

    def close(self, session_id: str) -> None:
        """Forget a session (live or snapshotted)."""
        entry = self._entry(session_id)
        with entry.lock:
            entry.shard.forget(session_id)
            with self._lock:
                self._entries.pop(session_id, None)

    def record_edit(self, session_id: str, kind: str) -> None:
        """Count one :meth:`~repro.editor.session.LiveSession.edit_source`
        call against ``session_id``, keyed by the differ's classification."""
        entry = self._entry(session_id)
        with self._lock:
            self.edits += 1
            entry.edits[kind] = entry.edits.get(kind, 0) + 1

    def session_ids(self) -> List[str]:
        """Ids of all addressable sessions (live first, then evicted).

        Only *issued* ids are listed (a session whose ``open`` has not
        returned yet is filtered out), and a session caught between
        stores mid-migration is still listed as live — every returned
        id is addressable at the moment it was read.
        """
        with self._lock:
            known = set(self._entries)
        seen = set()
        live, snapshotted = [], []
        for shard in self.shards:
            shard_live, shard_snapshotted = shard.ids()
            # ``seen`` also de-duplicates a session caught mid-migration
            # (listed by its source shard, then again by its target).
            for sid in shard_live:
                if sid in known and sid not in seen:
                    seen.add(sid)
                    live.append(sid)
            for sid in shard_snapshotted:
                if sid in known and sid not in seen:
                    seen.add(sid)
                    snapshotted.append(sid)
        live.extend(sid for sid in known if sid not in seen)
        return live + snapshotted

    # -- per-session ordering ----------------------------------------------------

    def peek_seq(self, session_id: str) -> int:
        """The session's current sequence number: accepted operations
        so far (acknowledged-but-queued drags included)."""
        return self._held_entry(session_id).seq

    def bump_seq(self, session_id: str) -> int:
        """Advance the sequence number for one applied operation.  The
        caller must hold the session lock (:meth:`locked`)."""
        entry = self._held_entry(session_id)
        entry.seq += 1
        return entry.seq

    # -- queued drags ------------------------------------------------------------

    def pending_drag(self, session_id: str
                     ) -> Optional[Tuple[int, str, int, list]]:
        return self._held_entry(session_id).pending

    def drop_pending(self, session_id: str) -> None:
        """Discard queued drag samples without applying them — used when
        a newer cumulative sample for the same gesture supersedes them.
        Caller holds the session lock."""
        self._held_entry(session_id).pending = None

    def queue_drag(self, session_id: str, shape: int, zone: str,
                   steps: list) -> int:
        """Acknowledge drag samples without applying them; returns the
        total queued.  Offsets are cumulative from the gesture start, so
        only the count and the final sample are retained.  Caller holds
        the session lock and has checked the gesture matches."""
        entry = self._held_entry(session_id)
        count = len(steps) if entry.pending is None \
            else entry.pending[2] + len(steps)
        entry.pending = (shape, zone, count, list(steps[-1]))
        return count

    def flush_pending(self, session_id: str, session: LiveSession) -> None:
        """Apply queued drag samples as **one** incremental re-run at the
        final cumulative sample.  Caller holds the session lock."""
        entry = self._held_entry(session_id)
        self._flush(entry, session)

    @staticmethod
    def _flush(entry: _SessionEntry, session: LiveSession) -> None:
        if entry.pending is None:
            return
        shape, zone, _count, last = entry.pending
        # Cleared in the finally so a failed apply surfaces its error
        # exactly once (matching an eager client whose drag failed)
        # instead of poisoning every subsequent command.
        try:
            if session.dragging is None:
                session.start_drag(shape, zone)
            dx, dy = last
            session.drag(float(dx), float(dy))
        finally:
            entry.pending = None

    # -- internals --------------------------------------------------------------

    def _entry(self, session_id: str) -> _SessionEntry:
        with self._lock:
            entry = self._entries.get(session_id)
            if entry is not None:
                return entry
            if session_id in self._expired_ids:
                raise SessionExpired(session_id)
            raise UnknownSession(session_id)

    def _held_entry(self, session_id: str) -> _SessionEntry:
        """Entry lookup for the per-session accessors, whose callers
        already hold the session lock (:meth:`locked`): a plain dict
        read suffices — the entry object cannot be swapped while the
        lock is held (ids are never reused) — sparing the coordinator
        lock on every hot-path operation.  Falls back to :meth:`_entry`
        for the precise expired/unknown error when the id is gone."""
        entry = self._entries.get(session_id)
        return entry if entry is not None else self._entry(session_id)

    def _materialize(self, session_id: str, entry: _SessionEntry
                     ) -> LiveSession:
        """Find or rehydrate the session.  Caller holds the session lock,
        so the home shard cannot change underneath us."""
        shard = entry.shard
        session = shard.touch(session_id)
        if session is not None:
            return session
        snapshot = shard.pop_snapshot(session_id)
        if snapshot is None:
            # Closed or expired while we waited on the lock.  If the
            # entry is already gone, _entry reports the precise error;
            # if it still exists with no backing store, an expiry
            # (store_snapshot popped us, _expire hasn't tombstoned us
            # yet) is in flight — report it as such, not as a 404.
            self._entry(session_id)
            raise SessionExpired(session_id)
        session = LiveSession.restore(snapshot,
                                      compile_fn=self._compile_for_restore)
        shard.note_rehydrated()
        shard.admit(session_id, session)
        self._shed(shard, exclude=session_id)
        return session

    def _shed(self, shard: SessionShard, *,
              exclude: Optional[str]) -> None:
        """Bring ``shard`` back inside its live budget: migrate the
        least-recently-used idle session to the coldest under-budget
        shard, else snapshot it.  Sessions whose lock is held (a request
        — or drag — is in flight) are skipped, never torn."""
        while shard.over_budget():
            progressed = False
            for victim_id in shard.lru_live_ids():
                if exclude is not None and victim_id == exclude:
                    continue
                with self._lock:
                    entry = self._entries.get(victim_id)
                if entry is None or entry.shard is not shard:
                    continue
                if entry.owner == get_ident():
                    # Our own in-flight command's session: the RLock
                    # would let us acquire it re-entrantly and tear the
                    # session we are serving.
                    continue
                if not entry.lock.acquire(blocking=False):
                    continue                # mid-request: never evict
                try:
                    session = shard.remove_live(victim_id)
                    if session is None:
                        continue            # touched or closed meanwhile
                    target = self._coldest(exclude=shard)
                    if target is not None \
                            and target.admit_within_budget(victim_id,
                                                           session):
                        entry.shard = target
                        with self._lock:
                            self.migrations += 1
                        shard.note_migration(inbound=False)
                        target.note_migration(inbound=True)
                    else:
                        try:
                            self._flush(entry, session)
                            snapshot = session.snapshot()
                        except Exception:
                            # A failed flush or snapshot must not destroy
                            # the victim or poison the bystander request
                            # that triggered shedding: drop the queued
                            # gesture, put the victim back (as MRU), and
                            # stay over budget until a later request
                            # retries the shed.
                            entry.pending = None
                            shard.admit(victim_id, session)
                            return
                        expired = shard.store_snapshot(victim_id,
                                                       snapshot)
                        shard.note_evicted()
                        self._expire(expired)
                    progressed = True
                    break
                finally:
                    entry.lock.release()
            if not progressed:
                break                       # everything busy: stay over
                                            # budget until requests drain

    def _coldest(self, *, exclude: SessionShard) -> Optional[SessionShard]:
        """The least-loaded shard with live headroom, if any."""
        best = None
        for shard in self.shards:
            if shard is exclude:
                continue
            count = shard.live_count()
            if count < shard.budget and (best is None or count < best[0]):
                best = (count, shard)
        return best[1] if best else None

    def _expire(self, session_ids: List[str]) -> None:
        if not session_ids:
            return
        with self._lock:
            for sid in session_ids:
                if self._entries.pop(sid, None) is None:
                    # Closed concurrently (the entry is already gone):
                    # a tombstone would resurrect it as "expired" when
                    # the client explicitly forgot it.
                    continue
                self._expired_ids[sid] = True
                self.expired += 1
            while len(self._expired_ids) > self._expired_limit:
                self._expired_ids.popitem(last=False)

    def _compile_for_restore(self, source: str, **parse_options):
        compiled, _hit = self.cache.compile(source, **parse_options)
        return compiled.program, compiled.seed

    # -- introspection ----------------------------------------------------------

    def stats(self) -> dict:
        per_shard = [shard.stats() for shard in self.shards]
        with self._lock:
            session_edits = {sid: dict(entry.edits)
                             for sid, entry in self._entries.items()
                             if entry.edits}
            return {
                "live_sessions": sum(s["live"] for s in per_shard),
                "snapshotted_sessions": sum(s["snapshots"]
                                            for s in per_shard),
                "max_sessions": self.max_sessions,
                "shards": len(self.shards),
                "opened": self.opened,
                "evicted": sum(s["evicted"] for s in per_shard),
                "rehydrated": sum(s["rehydrated"] for s in per_shard),
                "expired": self.expired,
                "migrations": self.migrations,
                "edits": self.edits,
                "session_edits": session_edits,
                "per_shard": per_shard,
                "compile_cache": self.cache.stats(),
            }

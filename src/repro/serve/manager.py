"""Session lifecycle for the serve layer: many editors, bounded memory.

A :class:`SessionManager` owns a fleet of
:class:`~repro.editor.session.LiveSession`s behind opaque string ids.  Two
mechanisms keep N users affordable:

* a shared :class:`~repro.serve.cache.CompileCache` — sessions opening the
  same source share one parse and one recorded evaluation
  (:meth:`~repro.core.pipeline.SyncPipeline.seed_run`);
* **LRU eviction with transparent rehydration** — only ``max_sessions``
  live editors are kept; the least-recently-used one is collapsed to a
  :meth:`~repro.editor.session.LiveSession.snapshot` (source text +
  literal-value overlays, a few hundred bytes) and rebuilt on its next
  touch, mid-gesture drags included.  Callers never observe the
  difference except through :meth:`stats`.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from threading import RLock
from typing import Optional, Tuple

from ..editor.session import LiveSession
from ..examples.registry import example_source
from .cache import CompileCache

__all__ = ["SessionManager", "UnknownSession"]


class UnknownSession(KeyError):
    """The session id was never issued, or its snapshot has expired."""


class SessionManager:
    """Owns live sessions, their snapshots, and the shared compile cache.

    >>> manager = SessionManager(max_sessions=2)
    >>> sid, session, hit = manager.open(source="(svg [(rect 'red' 1 2 3 4)])")
    >>> hit, len(session.canvas)
    (False, 1)
    >>> manager.get(sid) is session
    True
    """

    def __init__(self, max_sessions: int = 64, *,
                 compile_cache_size: int = 128,
                 snapshot_limit: int = 1024):
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        self.snapshot_limit = snapshot_limit
        self.cache = CompileCache(compile_cache_size)
        self._sessions: "OrderedDict[str, LiveSession]" = OrderedDict()
        self._snapshots: "OrderedDict[str, dict]" = OrderedDict()
        self._ids = itertools.count(1)
        self._lock = RLock()
        self.opened = 0
        self.evicted = 0
        self.rehydrated = 0
        self.expired = 0
        self.edits = 0
        #: Per-session edit counts by differ classification
        #: (``identity``/``value``/``structural``/``full``) — load tests
        #: read these to confirm that value-only edits re-key in place
        #: instead of re-seeding through the compile cache.
        self._session_edits: "OrderedDict[str, dict]" = OrderedDict()

    # -- lifecycle --------------------------------------------------------------

    def open(self, source: Optional[str] = None, *,
             example: Optional[str] = None, heuristic: str = "fair",
             auto_freeze: bool = False, prelude_frozen: bool = True
             ) -> Tuple[str, LiveSession, bool]:
        """Create a session, returning ``(session_id, session, cache_hit)``.

        Exactly one of ``source`` / ``example`` must be given; ``example``
        names a program of the bundled corpus
        (:func:`repro.examples.registry.example_names`).
        """
        if (source is None) == (example is None):
            raise ValueError("provide exactly one of source or example")
        if example is not None:
            source = example_source(example)
        compiled, hit = self.cache.compile(source, auto_freeze=auto_freeze,
                                           prelude_frozen=prelude_frozen)
        session = LiveSession(program=compiled.program, heuristic=heuristic,
                              seed=compiled.seed)
        with self._lock:
            sid = f"s{next(self._ids)}"
            self.opened += 1
            self._admit(sid, session)
        return sid, session, hit

    def get(self, session_id: str) -> LiveSession:
        """The live session for ``session_id``, rehydrating if evicted."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is not None:
                self._sessions.move_to_end(session_id)
                return session
            snapshot = self._snapshots.pop(session_id, None)
            if snapshot is None:
                raise UnknownSession(session_id)
            session = LiveSession.restore(snapshot,
                                          compile_fn=self._compile_for_restore)
            self.rehydrated += 1
            self._admit(session_id, session)
            return session

    def close(self, session_id: str) -> None:
        """Forget a session (live or snapshotted)."""
        with self._lock:
            in_live = self._sessions.pop(session_id, None) is not None
            in_snap = self._snapshots.pop(session_id, None) is not None
            if not (in_live or in_snap):
                raise UnknownSession(session_id)
            self._session_edits.pop(session_id, None)

    def record_edit(self, session_id: str, kind: str) -> None:
        """Count one :meth:`~repro.editor.session.LiveSession.edit_source`
        call against ``session_id``, keyed by the differ's classification."""
        with self._lock:
            self.edits += 1
            per_session = self._session_edits.setdefault(session_id, {})
            per_session[kind] = per_session.get(kind, 0) + 1

    def session_ids(self):
        """Ids of all addressable sessions (live first, then evicted)."""
        with self._lock:
            return list(self._sessions) + list(self._snapshots)

    # -- internals --------------------------------------------------------------

    def _admit(self, session_id: str, session: LiveSession) -> None:
        self._sessions[session_id] = session
        self._sessions.move_to_end(session_id)
        while len(self._sessions) > self.max_sessions:
            victim_id, victim = self._sessions.popitem(last=False)
            self._snapshots[victim_id] = victim.snapshot()
            self._snapshots.move_to_end(victim_id)
            self.evicted += 1
        while len(self._snapshots) > self.snapshot_limit:
            expired_id, _ = self._snapshots.popitem(last=False)
            # The id is no longer addressable, so its edit counters go too
            # (otherwise a long-lived server accumulates them forever).
            self._session_edits.pop(expired_id, None)
            self.expired += 1

    def _compile_for_restore(self, source: str, **parse_options):
        compiled, _hit = self.cache.compile(source, **parse_options)
        return compiled.program, compiled.seed

    # -- introspection ----------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "live_sessions": len(self._sessions),
                "snapshotted_sessions": len(self._snapshots),
                "max_sessions": self.max_sessions,
                "opened": self.opened,
                "evicted": self.evicted,
                "rehydrated": self.rehydrated,
                "expired": self.expired,
                "edits": self.edits,
                "session_edits": {sid: dict(counts) for sid, counts
                                  in self._session_edits.items()},
                "compile_cache": self.cache.stats(),
            }

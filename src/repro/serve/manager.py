"""Session lifecycle for the serve layer: many editors, true concurrency.

A :class:`SessionManager` owns a fleet of
:class:`~repro.editor.session.LiveSession`\\ s behind opaque string ids,
split across N :class:`~repro.serve.shard.SessionShard`\\ s (sessions
placed by stable hash of their id).  The concurrency contract:

* **requests for different sessions run in parallel** — each session has
  its own lock (:meth:`locked`), and shard bookkeeping locks are held
  only for dict operations;
* **requests for the same session are strictly ordered** — the protocol
  layer holds the session lock for the whole command, and an optional
  per-session monotonic sequence number (:meth:`peek_seq`/:meth:`bump_seq`)
  lets clients *detect* duplicated or re-ordered requests instead of
  silently applying them;
* **eviction never tears a session** — a shard over its live budget first
  *migrates* its least-recently-used idle session to the coldest
  under-budget shard, and only snapshots
  (:meth:`~repro.editor.session.LiveSession.snapshot`) when every shard
  is full; a session whose lock is held (mid-drag) is skipped, never
  snapshotted mid-operation;
* a shared single-flight :class:`~repro.serve.cache.CompileCache` —
  concurrent opens of the same source block on **one** parse and one
  recorded evaluation instead of racing.

Snapshots transparently rehydrate on the next touch, mid-gesture drags
included; a session whose snapshot was expired to bound the store is
remembered as a tombstone, so callers get the distinct
:class:`SessionExpired` (HTTP 410) instead of the never-issued
:class:`UnknownSession` (HTTP 404).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from contextlib import contextmanager
from threading import RLock, get_ident
from typing import Dict, List, Optional, Tuple

from ..editor.session import LiveSession
from ..examples.registry import example_source
from .cache import CompileCache
from .faults import fail_point
from .shard import SessionShard, shard_index

__all__ = ["SessionManager", "SessionExpired", "UnknownSession"]


class UnknownSession(KeyError):
    """The session id was never issued."""


class SessionExpired(UnknownSession):
    """The session id was issued, but its snapshot was expired to keep
    the eviction store bounded — distinct from a never-issued id."""


class _SessionEntry:
    """Coordinator-side state that survives eviction and migration:
    the per-session lock, sequence number, home shard, queued (not yet
    applied) drag samples, and edit counters."""

    __slots__ = ("lock", "seq", "shard", "pending", "edits", "owner",
                 "depth", "poisoned", "last_good")

    def __init__(self, shard: SessionShard):
        self.lock = RLock()
        self.seq = 0
        self.shard = shard
        #: Incident id of the unexpected dispatch failure that poisoned
        #: this session, or ``None``.  A poisoned session's live object /
        #: stored snapshot are untrusted; the next touch discards them
        #: and self-heals from :attr:`last_good`.
        self.poisoned: Optional[str] = None
        #: Rolling known-good snapshot, refreshed at command boundaries
        #: (open, release, edit, slider, undo) — never mid-gesture.
        self.last_good: Optional[dict] = None
        #: Thread currently inside :meth:`SessionManager.locked` (and
        #: its nesting depth) — lets the evictor refuse a victim whose
        #: RLock it could acquire *re-entrantly* (its own command's
        #: session), which would tear the session it is serving.
        self.owner: Optional[int] = None
        self.depth = 0
        #: ``(shape, zone, count, [dx, dy])`` — acknowledged-but-unapplied
        #: drag samples (cumulative from gesture start).  Only the count
        #: and the *final* sample are kept: the flush re-runs once at the
        #: last cumulative offset, so a client streaming moves for hours
        #: costs O(1) memory, not one stored pair per sample.
        self.pending: Optional[Tuple[int, str, int, list]] = None
        self.edits: Dict[str, int] = {}


class SessionManager:
    """Owns live sessions, their snapshots, and the shared compile cache.

    >>> manager = SessionManager(max_sessions=2)
    >>> sid, session, hit = manager.open(source="(svg [(rect 'red' 1 2 3 4)])")
    >>> hit, len(session.canvas)
    (False, 1)
    >>> manager.get(sid) is session
    True
    """

    def __init__(self, max_sessions: int = 64, *, shards: int = 1,
                 compile_cache_size: int = 128,
                 snapshot_limit: int = 1024,
                 eval_budget=None, faults=None, log=None):
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        shards = min(shards, max_sessions)
        self.max_sessions = max_sessions
        self.snapshot_limit = snapshot_limit
        #: Prototype :class:`~repro.lang.eval.EvalBudget`; every session
        #: (and the compile cache's leader evaluation) gets its own clone,
        #: since budget counters are mutable per-run state.
        self.eval_budget = eval_budget
        #: Armed :class:`~repro.serve.faults.FaultPlan`, if any.
        self.faults = faults
        #: ``log(message)`` sink for failure events (``--verbose`` wires
        #: it to stderr; default drops them — the *counters* always count).
        self._log = log if log is not None else (lambda message: None)
        self.cache = CompileCache(compile_cache_size, budget=eval_budget,
                                  faults=faults)
        # Snapshot budgets get a floor of 1 so a small global limit split
        # across shards never silently expires an eviction on the spot
        # (the effective global bound rounds up to at most one per shard).
        self.shards: List[SessionShard] = [
            SessionShard(index,
                         budget=self._split(max_sessions, shards, index),
                         snapshot_budget=max(1, self._split(
                             snapshot_limit, shards, index)))
            for index in range(shards)]
        self._entries: Dict[str, _SessionEntry] = {}
        #: Tombstones of expired ids (bounded FIFO): distinguishes
        #: ``SessionExpired`` from ``UnknownSession``.
        self._expired_ids: "OrderedDict[str, bool]" = OrderedDict()
        self._expired_limit = max(1024, 4 * snapshot_limit)
        self._ids = itertools.count(1)
        self._lock = RLock()        # coordinator bookkeeping only
        self.opened = 0
        self.expired = 0
        self.edits = 0
        self.migrations = 0
        #: Unexpected dispatch failures (sessions quarantined), heals
        #: performed, sessions lost because healing had nothing to
        #: restore from, and commands refused over budget.
        self.incidents = 0
        self.healed = 0
        self.heal_failures = 0
        self.limit_errors = 0
        #: Eviction flush/snapshot failures (previously swallowed).
        self.evict_failures = 0
        #: Failed last-good snapshot refreshes (session kept the older one).
        self.snapshot_failures = 0
        #: Drag hot paths specialized to compiled artifacts
        #: (:mod:`repro.lang.compile`), and specializations that failed —
        #: each failure pins its recording to the interpreted fast path
        #: (correctness is never at stake; only the speedup is lost).
        self.specializations = 0
        self.specialize_failures = 0
        #: Attached :class:`~repro.serve.persist.StatePersister`, if any.
        self.persister = None

    @staticmethod
    def _split(total: int, parts: int, index: int) -> int:
        """Distribute ``total`` over ``parts`` shards (first shards take
        the remainder)."""
        return total // parts + (1 if index < total % parts else 0)

    # -- lifecycle --------------------------------------------------------------

    def open(self, source: Optional[str] = None, *,
             example: Optional[str] = None, heuristic: str = "fair",
             auto_freeze: bool = False, prelude_frozen: bool = True
             ) -> Tuple[str, LiveSession, bool]:
        """Create a session, returning ``(session_id, session, cache_hit)``.

        Exactly one of ``source`` / ``example`` must be given; ``example``
        names a program of the bundled corpus
        (:func:`repro.examples.registry.example_names`).
        """
        if (source is None) == (example is None):
            raise ValueError("provide exactly one of source or example")
        if example is not None:
            source = example_source(example)
        compiled, hit = self.cache.compile(source, auto_freeze=auto_freeze,
                                           prelude_frozen=prelude_frozen)
        session = LiveSession(program=compiled.program, heuristic=heuristic,
                              seed=compiled.seed, budget=self._session_budget(),
                              specialize_probe=self._specialize_probe)
        with self._lock:
            sid = f"s{next(self._ids)}"
            shard = self.shards[shard_index(sid, len(self.shards))]
        # Admit before registering the entry: once an entry exists, an
        # entry with no backing store means "expiry in flight", so the
        # stores must never lag behind the entry.
        shard.admit(sid, session)
        with self._lock:
            entry = _SessionEntry(shard)
            self._entries[sid] = entry
            self.opened += 1
        # Every session carries a last-good snapshot from birth, so
        # quarantine can always heal (a fresh session's snapshot is just
        # its source text plus empty overlays).
        entry.last_good = session.snapshot()
        if self.persister is not None:
            self.persister.mark_dirty(sid)
        self._shed(shard, exclude=sid)
        return sid, session, hit

    def _session_budget(self):
        return self.eval_budget.clone() if self.eval_budget is not None \
            else None

    def get(self, session_id: str) -> LiveSession:
        """The live session for ``session_id``, rehydrating if evicted.

        Acquires (and releases) the per-session lock; concurrent callers
        that need the session to *stay* theirs for a whole command use
        :meth:`locked` instead.
        """
        with self.locked(session_id) as session:
            return session

    @contextmanager
    def locked(self, session_id: str):
        """Hold ``session_id``'s lock for a whole command: requests for
        the same session serialize in arrival order; requests for other
        sessions proceed in parallel.  Rehydrates evicted sessions."""
        entry = self._entry(session_id)
        try:
            with entry.lock:
                entry.owner = get_ident()
                entry.depth += 1
                try:
                    yield self._materialize(session_id, entry)
                finally:
                    entry.depth -= 1
                    if entry.depth == 0:
                        entry.owner = None
        finally:
            # A shard can be left over budget when every victim was busy
            # at admit time; completing a request (even a failed one) is
            # the retry point — our own session is fair game again now
            # its lock is free.
            self._shed(entry.shard, exclude=None)

    def close(self, session_id: str) -> None:
        """Forget a session (live or snapshotted)."""
        entry = self._entry(session_id)
        with entry.lock:
            entry.shard.forget(session_id)
            with self._lock:
                self._entries.pop(session_id, None)
        if self.persister is not None:
            self.persister.remove(session_id)

    # -- crash quarantine + self-healing ------------------------------------------

    def quarantine(self, session_id: str, incident: str) -> None:
        """Mark a session poisoned after an unexpected dispatch failure.

        The live object (and any stored snapshot) are no longer trusted —
        the failed command may have died mid-mutation.  They stay in
        place, untouched, until the next command on the session heals it
        from :attr:`_SessionEntry.last_good` (:meth:`_materialize`).
        A second incident on an already-poisoned session keeps the
        *first* incident id (that is the state the healer will report
        having recovered from).
        """
        entry = self._entries.get(session_id)
        if entry is None:
            return                  # closed/expired concurrently: nothing
        # Takes the session lock itself (re-entrant if the caller still
        # holds it): the failed command's ``locked()`` scope has already
        # exited by the time the shard boundary runs this.
        with entry.lock:
            if entry.poisoned is None:
                entry.poisoned = incident
            entry.pending = None    # queued gesture died with the command
        with self._lock:
            self.incidents += 1
        if self.persister is not None:
            # The on-disk state converges onto last-good too.
            self.persister.mark_dirty(session_id)
        self._log(f"quarantine: session {session_id} poisoned "
                  f"(incident {incident})")

    def update_last_good(self, session_id: str,
                         session: LiveSession) -> None:
        """Refresh the rolling known-good snapshot at a command boundary
        (the protocol calls this after successful state-changing commands
        — never mid-gesture).  Caller holds the session lock.  A snapshot
        failure (``snapshot.serialize`` fault point) keeps the previous —
        still correct, just older — snapshot and counts the event."""
        entry = self._held_entry(session_id)
        try:
            fail_point(self.faults, "snapshot.serialize")
            entry.last_good = session.snapshot()
        except Exception as error:
            with self._lock:
                self.snapshot_failures += 1
            self._log(f"last-good snapshot of {session_id} failed: {error}")

    def poisoned_count(self) -> int:
        with self._lock:
            return sum(1 for entry in self._entries.values()
                       if entry.poisoned is not None)

    def note_limit_error(self) -> None:
        """Count one command refused with ``program_limit`` (422)."""
        with self._lock:
            self.limit_errors += 1

    def record_edit(self, session_id: str, kind: str) -> None:
        """Count one :meth:`~repro.editor.session.LiveSession.edit_source`
        call against ``session_id``, keyed by the differ's classification."""
        entry = self._entry(session_id)
        with self._lock:
            self.edits += 1
            entry.edits[kind] = entry.edits.get(kind, 0) + 1

    def session_ids(self) -> List[str]:
        """Ids of all addressable sessions (live first, then evicted).

        Only *issued* ids are listed (a session whose ``open`` has not
        returned yet is filtered out), and a session caught between
        stores mid-migration is still listed as live — every returned
        id is addressable at the moment it was read.
        """
        with self._lock:
            known = set(self._entries)
        seen = set()
        live, snapshotted = [], []
        for shard in self.shards:
            shard_live, shard_snapshotted = shard.ids()
            # ``seen`` also de-duplicates a session caught mid-migration
            # (listed by its source shard, then again by its target).
            for sid in shard_live:
                if sid in known and sid not in seen:
                    seen.add(sid)
                    live.append(sid)
            for sid in shard_snapshotted:
                if sid in known and sid not in seen:
                    seen.add(sid)
                    snapshotted.append(sid)
        live.extend(sid for sid in known if sid not in seen)
        return live + snapshotted

    # -- per-session ordering ----------------------------------------------------

    def peek_seq(self, session_id: str) -> int:
        """The session's current sequence number: accepted operations
        so far (acknowledged-but-queued drags included)."""
        return self._held_entry(session_id).seq

    def bump_seq(self, session_id: str) -> int:
        """Advance the sequence number for one applied operation.  The
        caller must hold the session lock (:meth:`locked`)."""
        entry = self._held_entry(session_id)
        entry.seq += 1
        if self.persister is not None:
            self.persister.mark_dirty(session_id)
        return entry.seq

    # -- queued drags ------------------------------------------------------------

    def pending_drag(self, session_id: str
                     ) -> Optional[Tuple[int, str, int, list]]:
        return self._held_entry(session_id).pending

    def drop_pending(self, session_id: str) -> None:
        """Discard queued drag samples without applying them — used when
        a newer cumulative sample for the same gesture supersedes them.
        Caller holds the session lock."""
        self._held_entry(session_id).pending = None

    def queue_drag(self, session_id: str, shape: int, zone: str,
                   steps: list) -> int:
        """Acknowledge drag samples without applying them; returns the
        total queued.  Offsets are cumulative from the gesture start, so
        only the count and the final sample are retained.  Caller holds
        the session lock and has checked the gesture matches."""
        entry = self._held_entry(session_id)
        count = len(steps) if entry.pending is None \
            else entry.pending[2] + len(steps)
        entry.pending = (shape, zone, count, list(steps[-1]))
        return count

    def flush_pending(self, session_id: str, session: LiveSession) -> None:
        """Apply queued drag samples as **one** incremental re-run at the
        final cumulative sample.  Caller holds the session lock."""
        entry = self._held_entry(session_id)
        self._flush(entry, session)

    @staticmethod
    def _flush(entry: _SessionEntry, session: LiveSession) -> None:
        if entry.pending is None:
            return
        shape, zone, _count, last = entry.pending
        # Cleared in the finally so a failed apply surfaces its error
        # exactly once (matching an eager client whose drag failed)
        # instead of poisoning every subsequent command.
        try:
            if session.dragging is None:
                session.start_drag(shape, zone)
            dx, dy = last
            session.drag(float(dx), float(dy))
        finally:
            entry.pending = None

    # -- internals --------------------------------------------------------------

    def _entry(self, session_id: str) -> _SessionEntry:
        with self._lock:
            entry = self._entries.get(session_id)
            if entry is not None:
                return entry
            if session_id in self._expired_ids:
                raise SessionExpired(session_id)
            raise UnknownSession(session_id)

    def _held_entry(self, session_id: str) -> _SessionEntry:
        """Entry lookup for the per-session accessors, whose callers
        already hold the session lock (:meth:`locked`): a plain dict
        read suffices — the entry object cannot be swapped while the
        lock is held (ids are never reused) — sparing the coordinator
        lock on every hot-path operation.  Falls back to :meth:`_entry`
        for the precise expired/unknown error when the id is gone."""
        entry = self._entries.get(session_id)
        return entry if entry is not None else self._entry(session_id)

    def _materialize(self, session_id: str, entry: _SessionEntry
                     ) -> LiveSession:
        """Find or rehydrate the session.  Caller holds the session lock,
        so the home shard cannot change underneath us."""
        if entry.poisoned is not None:
            return self._heal(session_id, entry)
        shard = entry.shard
        session = shard.touch(session_id)
        if session is not None:
            return session
        snapshot = shard.pop_snapshot(session_id)
        if snapshot is None:
            # Closed or expired while we waited on the lock.  If the
            # entry is already gone, _entry reports the precise error;
            # if it still exists with no backing store, an expiry
            # (store_snapshot popped us, _expire hasn't tombstoned us
            # yet) is in flight — report it as such, not as a 404.
            self._entry(session_id)
            raise SessionExpired(session_id)
        session = self._restore(snapshot)
        shard.note_rehydrated()
        shard.admit(session_id, session)
        self._shed(shard, exclude=session_id)
        return session

    def _restore(self, snapshot: dict) -> LiveSession:
        fail_point(self.faults, "snapshot.deserialize")
        return LiveSession.restore(snapshot,
                                   compile_fn=self._compile_for_restore,
                                   budget=self._session_budget(),
                                   specialize_probe=self._specialize_probe)

    def _specialize_probe(self, event: str) -> None:
        """Observe drag hot-path specialization from every session we own
        (:func:`repro.lang.compile.ensure_compiled`).  ``"attempt"`` is
        the ``compile.specialize`` fault point — an injected fault aborts
        that one specialization, which the compiler layer converts into a
        permanent interpreter fallback for the recording (never a wrong
        or missing answer); outcomes are counted for ``/stats``."""
        if event == "attempt":
            fail_point(self.faults, "compile.specialize")
        elif event == "compiled":
            with self._lock:
                self.specializations += 1
        elif event == "failed":
            with self._lock:
                self.specialize_failures += 1
            self._log("specialize: compile failed, recording pinned to "
                      "the interpreted fast path")

    def _heal(self, session_id: str, entry: _SessionEntry) -> LiveSession:
        """Self-heal a poisoned session from its last-good snapshot.

        The untrusted live object and any stored snapshot are discarded
        first.  Healing failure (no last-good snapshot, or its restore
        itself fails) forgets the session and tombstones the id — the
        client gets the structured 410, never a wedged or corrupt
        session.  Caller holds the session lock.
        """
        incident = entry.poisoned
        shard = entry.shard
        shard.remove_live(session_id)
        shard.pop_snapshot(session_id)
        try:
            if entry.last_good is None:
                raise ValueError("no last-good snapshot")
            session = self._restore(entry.last_good)
        except Exception as error:
            with self._lock:
                self.heal_failures += 1
                if self._entries.pop(session_id, None) is not None:
                    self._expired_ids[session_id] = True
                    self.expired += 1
            if self.persister is not None:
                self.persister.remove(session_id)
            self._log(f"heal: session {session_id} lost "
                      f"(incident {incident}): {error}")
            raise SessionExpired(session_id)
        entry.poisoned = None
        with self._lock:
            self.healed += 1
        self._log(f"heal: session {session_id} restored from last-good "
                  f"snapshot (incident {incident})")
        shard.admit(session_id, session)
        self._shed(shard, exclude=session_id)
        return session

    def _shed(self, shard: SessionShard, *,
              exclude: Optional[str]) -> None:
        """Bring ``shard`` back inside its live budget: migrate the
        least-recently-used idle session to the coldest under-budget
        shard, else snapshot it.  Sessions whose lock is held (a request
        — or drag — is in flight) are skipped, never torn."""
        while shard.over_budget():
            progressed = False
            for victim_id in shard.lru_live_ids():
                if exclude is not None and victim_id == exclude:
                    continue
                with self._lock:
                    entry = self._entries.get(victim_id)
                if entry is None or entry.shard is not shard:
                    continue
                if entry.owner == get_ident():
                    # Our own in-flight command's session: the RLock
                    # would let us acquire it re-entrantly and tear the
                    # session we are serving.
                    continue
                if not entry.lock.acquire(blocking=False):
                    continue                # mid-request: never evict
                try:
                    session = shard.remove_live(victim_id)
                    if session is None:
                        continue            # touched or closed meanwhile
                    target = self._coldest(exclude=shard)
                    if target is not None \
                            and target.admit_within_budget(victim_id,
                                                           session):
                        entry.shard = target
                        with self._lock:
                            self.migrations += 1
                        shard.note_migration(inbound=False)
                        target.note_migration(inbound=True)
                    elif entry.poisoned is not None:
                        # Never snapshot a poisoned session's broken live
                        # state: store its last-good snapshot, so the
                        # rehydration path *is* the healing path.
                        if entry.last_good is not None:
                            expired = shard.store_snapshot(victim_id,
                                                           entry.last_good)
                            entry.poisoned = None
                            with self._lock:
                                self.healed += 1
                            shard.note_evicted()
                            self._expire(expired)
                        else:
                            with self._lock:
                                self.heal_failures += 1
                            self._expire([victim_id])
                    else:
                        try:
                            self._flush(entry, session)
                            fail_point(self.faults, "snapshot.serialize")
                            snapshot = session.snapshot()
                        except Exception as error:
                            # A failed flush or snapshot must not destroy
                            # the victim or poison the bystander request
                            # that triggered shedding: drop the queued
                            # gesture, put the victim back (as MRU), and
                            # stay over budget until a later request
                            # retries the shed.  Counted and logged — a
                            # silently-ignored failure here previously
                            # hid every snapshot bug until restart.
                            entry.pending = None
                            shard.admit(victim_id, session)
                            with self._lock:
                                self.evict_failures += 1
                            self._log(f"evict: flush/snapshot of "
                                      f"{victim_id} failed: {error}")
                            return
                        expired = shard.store_snapshot(victim_id,
                                                       snapshot)
                        shard.note_evicted()
                        self._expire(expired)
                    progressed = True
                    break
                finally:
                    entry.lock.release()
            if not progressed:
                break                       # everything busy: stay over
                                            # budget until requests drain

    def _coldest(self, *, exclude: SessionShard) -> Optional[SessionShard]:
        """The least-loaded shard with live headroom, if any."""
        best = None
        for shard in self.shards:
            if shard is exclude:
                continue
            count = shard.live_count()
            if count < shard.budget and (best is None or count < best[0]):
                best = (count, shard)
        return best[1] if best else None

    def _expire(self, session_ids: List[str]) -> None:
        if not session_ids:
            return
        expired = []
        with self._lock:
            for sid in session_ids:
                if self._entries.pop(sid, None) is None:
                    # Closed concurrently (the entry is already gone):
                    # a tombstone would resurrect it as "expired" when
                    # the client explicitly forgot it.
                    continue
                self._expired_ids[sid] = True
                self.expired += 1
                expired.append(sid)
            while len(self._expired_ids) > self._expired_limit:
                self._expired_ids.popitem(last=False)
        if self.persister is not None:
            for sid in expired:
                self.persister.remove(sid)

    def _compile_for_restore(self, source: str, **parse_options):
        compiled, _hit = self.cache.compile(source, **parse_options)
        return compiled.program, compiled.seed

    # -- durable state (write-behind persister) -----------------------------------

    def attach_persister(self, persister) -> None:
        """Wire a :class:`~repro.serve.persist.StatePersister` (already
        constructed over :meth:`persist_payload`); every currently known
        session is marked dirty so a reattach starts from a full spill."""
        self.persister = persister
        with self._lock:
            ids = list(self._entries)
        for sid in ids:
            persister.mark_dirty(sid)

    def persist_payload(self, session_id: str) -> Optional[dict]:
        """The JSON payload the persister writes for one session, or
        ``None`` when the session is gone (its file is deleted).

        Called from the persister thread: takes the session lock briefly
        so it never observes a command mid-mutation, and reads LRU state
        with non-reordering peeks.  A poisoned session persists its
        last-good snapshot — quarantine survives restarts as an
        already-healed session.
        """
        with self._lock:
            entry = self._entries.get(session_id)
        if entry is None:
            return None
        with entry.lock:
            if session_id not in self._entries:
                return None         # closed while we acquired the lock
            if entry.poisoned is not None:
                snapshot = entry.last_good
            else:
                session = entry.shard.peek_live(session_id)
                if session is not None:
                    try:
                        fail_point(self.faults, "snapshot.serialize")
                        snapshot = session.snapshot()
                    except Exception as error:
                        # Persist the older-but-correct snapshot rather
                        # than nothing (or a torn state).
                        with self._lock:
                            self.snapshot_failures += 1
                        self._log(f"persist: snapshot of {session_id} "
                                  f"failed, keeping last-good: {error}")
                        snapshot = entry.last_good
                else:
                    snapshot = entry.shard.peek_snapshot(session_id) \
                        or entry.last_good
            if snapshot is None:
                return None
            pending = list(entry.pending) if entry.pending is not None \
                else None
            return {"version": 1, "sid": session_id, "seq": entry.seq,
                    "pending": pending, "snapshot": snapshot}

    def load_state(self, payloads: List[dict]) -> int:
        """Replay persisted payloads on boot; returns sessions restored.

        Sessions are admitted *lazily*: the payload's snapshot goes into
        the home shard's snapshot store and the first touch rehydrates it
        (so a boot over thousands of spilled sessions costs directory
        reads, not evaluations).  The id counter fast-forwards past every
        replayed id so fresh opens can never collide with a restored
        session.
        """
        restored = 0
        max_id = 0
        for payload in payloads:
            sid = payload.get("sid")
            snapshot = payload.get("snapshot")
            if not isinstance(sid, str) or not isinstance(snapshot, dict):
                continue
            if sid.startswith("s") and sid[1:].isdigit():
                max_id = max(max_id, int(sid[1:]))
            shard = self.shards[shard_index(sid, len(self.shards))]
            entry = _SessionEntry(shard)
            entry.seq = int(payload.get("seq") or 0)
            pending = payload.get("pending")
            if pending:
                shape, zone, count, last = pending
                entry.pending = (int(shape), str(zone), int(count),
                                 list(last))
            entry.last_good = snapshot
            expired = shard.store_snapshot(sid, snapshot)
            with self._lock:
                self._entries[sid] = entry
            self._expire(expired)
            if self.persister is not None:
                self.persister.mark_dirty(sid)
            restored += 1
        if max_id:
            with self._lock:
                next_id = next(self._ids)
                self._ids = itertools.count(max(next_id, max_id + 1))
        return restored

    def flush_state(self) -> None:
        """Persist every known session now — the graceful-shutdown path
        (SIGTERM: stop accepting, finish in-flight, then this)."""
        if self.persister is None:
            return
        with self._lock:
            ids = list(self._entries)
        for sid in ids:
            self.persister.mark_dirty(sid)
        self.persister.flush()

    # -- introspection ----------------------------------------------------------

    def stats(self) -> dict:
        per_shard = [shard.stats() for shard in self.shards]
        persister = self.persister
        persist_stats = persister.stats() if persister is not None else None
        faults = self.faults
        fault_counts = faults.counts() if faults is not None else {}
        with self._lock:
            session_edits = {sid: dict(entry.edits)
                             for sid, entry in self._entries.items()
                             if entry.edits}
            poisoned = sum(1 for entry in self._entries.values()
                           if entry.poisoned is not None)
            return {
                "live_sessions": sum(s["live"] for s in per_shard),
                "snapshotted_sessions": sum(s["snapshots"]
                                            for s in per_shard),
                "max_sessions": self.max_sessions,
                "shards": len(self.shards),
                "opened": self.opened,
                "evicted": sum(s["evicted"] for s in per_shard),
                "rehydrated": sum(s["rehydrated"] for s in per_shard),
                "expired": self.expired,
                "migrations": self.migrations,
                "edits": self.edits,
                "session_edits": session_edits,
                "per_shard": per_shard,
                "compile_cache": self.cache.stats(),
                "incidents": self.incidents,
                "healed": self.healed,
                "heal_failures": self.heal_failures,
                "poisoned_sessions": poisoned,
                "limit_errors": self.limit_errors,
                "evict_failures": self.evict_failures,
                "snapshot_failures": self.snapshot_failures,
                "specializations": self.specializations,
                "specialize_failures": self.specialize_failures,
                "persist": persist_stats,
                "faults": fault_counts,
            }

    def health(self) -> dict:
        """Liveness + degradation signal for ``GET /healthz``.

        ``ok`` is ``False`` — the HTTP layer answers 503 — while any
        session awaits healing or the persister's disk is currently
        rejecting writes, so a load balancer can drain the instance
        before clients notice.  Fault counters and the persist backlog
        ride along for observability without gating.
        """
        poisoned = self.poisoned_count()
        persister = self.persister
        degraded = []
        if poisoned:
            degraded.append("poisoned_sessions")
        persist = None
        if persister is not None:
            persist = persister.stats()
            if persist["consecutive_failures"] > 0:
                degraded.append("persist_failures")
        with self._lock:
            report = {
                "ok": not degraded,
                "degraded": degraded,
                "poisoned_sessions": poisoned,
                "incidents": self.incidents,
                "healed": self.healed,
                "heal_failures": self.heal_failures,
                "limit_errors": self.limit_errors,
                "evict_failures": self.evict_failures,
            }
        report["persist_backlog"] = persist["backlog"] if persist else 0
        report["persist_failures"] = persist["failures"] if persist else 0
        report["faults"] = self.faults.counts() if self.faults else {}
        return report

"""Durable warm restart: a write-behind persister for session state.

A server restart — deploy, crash, ``kill -TERM`` — used to discard every
live session and snapshot.  With ``repro serve --state-dir DIR`` the
:class:`~repro.serve.manager.SessionManager` attaches a
:class:`StatePersister` that spills one JSON file per session to ``DIR``
and replays them on boot, so clients resume with their session id, undo
history, sequence number and even a mid-flight drag intact.

Design points:

* **Write-behind** — mutations mark the session *dirty*; a background
  thread batches the writes, so the request path pays a set-insert, not
  a disk write.  :meth:`flush` forces the queue empty (used on graceful
  shutdown and by tests); :meth:`backlog` sizes the queue for
  ``/healthz``.
* **Atomic + durable** — each file is written to a temp name, fsynced,
  ``os.replace``\\ d over the final name, and the directory fsynced: a
  crash mid-write leaves the previous good file, never a torn one.
* **Failure-contained** — a failed write (full disk, injected via the
  ``persist.write`` fault point) counts in stats, leaves the session
  dirty for retry, and never surfaces into a request.

>>> import tempfile
>>> with tempfile.TemporaryDirectory() as state_dir:
...     persister = StatePersister(
...         state_dir, lambda sid: {"sid": sid, "snapshot": {}})
...     persister.mark_dirty("s1")
...     pending = persister.flush()
...     payloads, corrupt = load_state(state_dir)
...     (sorted(p["sid"] for p in payloads), corrupt)
(['s1'], 0)
"""

from __future__ import annotations

import json
import os
import threading
from typing import Callable, List, Optional, Tuple

from .faults import FaultPlan, InjectedFault, fail_point

__all__ = ["StatePersister", "load_state"]


def _session_path(state_dir: str, session_id: str) -> str:
    return os.path.join(state_dir, f"{session_id}.json")


class StatePersister:
    """Write-behind spiller of per-session payloads to ``state_dir``.

    ``payload_fn(session_id)`` must return the JSON-able payload to
    persist — or ``None`` when the session no longer exists (its file is
    then deleted).  The function is called from the persister thread (or
    a flusher); the manager's implementation takes the session lock, so
    a payload is never read mid-command.
    """

    def __init__(self, state_dir: str,
                 payload_fn: Callable[[str], Optional[dict]], *,
                 interval: float = 0.25,
                 faults: Optional[FaultPlan] = None,
                 log: Optional[Callable[[str], None]] = None):
        self.state_dir = state_dir
        os.makedirs(state_dir, exist_ok=True)
        self._payload_fn = payload_fn
        self._interval = interval
        self._faults = faults
        self._log = log
        self._dirty: set = set()
        self._removed: set = set()
        self._lock = threading.Lock()       # queue state
        self._flush_lock = threading.Lock()  # serializes whole flushes
        self._wake = threading.Event()
        self._stopping = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.writes = 0
        self.removes = 0
        self.failures = 0
        #: Failures since the last successful write — nonzero means the
        #: disk is currently rejecting us (``/healthz`` degrades on it).
        self.consecutive_failures = 0

    # -- queue ------------------------------------------------------------------

    def mark_dirty(self, session_id: str) -> None:
        """Schedule ``session_id``'s state for (re-)writing."""
        with self._lock:
            self._dirty.add(session_id)
            self._removed.discard(session_id)
        self._wake.set()

    def remove(self, session_id: str) -> None:
        """Schedule ``session_id``'s file for deletion (close/expiry)."""
        with self._lock:
            self._dirty.discard(session_id)
            self._removed.add(session_id)
        self._wake.set()

    def backlog(self) -> int:
        """Queued-but-unwritten work items (the ``/healthz`` signal)."""
        with self._lock:
            return len(self._dirty) + len(self._removed)

    # -- background thread --------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(target=self._run,
                                        name="repro-persist", daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._stopping.is_set():
            self._wake.wait(self._interval)
            self._wake.clear()
            self.flush()

    def stop(self, *, flush: bool = True) -> None:
        """Stop the background thread; by default drain the queue first
        (the graceful-shutdown path)."""
        self._stopping.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        if flush:
            self.flush()

    # -- writing ------------------------------------------------------------------

    def flush(self) -> int:
        """Drain the queue now; returns items still pending (failed
        writes re-queued for retry)."""
        with self._flush_lock:
            with self._lock:
                dirty = sorted(self._dirty)
                removed = sorted(self._removed)
                self._dirty.clear()
                self._removed.clear()
            for session_id in removed:
                try:
                    os.unlink(_session_path(self.state_dir, session_id))
                    self.removes += 1
                except FileNotFoundError:
                    pass
                except OSError:
                    pass            # directory gone: nothing to durably keep
            failed = []
            for session_id in dirty:
                payload = self._payload_fn(session_id)
                if payload is None:
                    try:
                        os.unlink(_session_path(self.state_dir, session_id))
                    except OSError:
                        pass
                    continue
                try:
                    fail_point(self._faults, "persist.write")
                    self._write(session_id, payload)
                    self.writes += 1
                    self.consecutive_failures = 0
                except (OSError, InjectedFault) as error:
                    self.failures += 1
                    self.consecutive_failures += 1
                    failed.append(session_id)
                    if self._log is not None:
                        self._log(f"persist: write of {session_id} failed: "
                                  f"{error}")
            if failed:
                with self._lock:
                    # A close that raced the failed write wins: don't
                    # resurrect a session the manager asked us to remove.
                    self._dirty.update(sid for sid in failed
                                       if sid not in self._removed)
        return self.backlog()

    def _write(self, session_id: str, payload: dict) -> None:
        final = _session_path(self.state_dir, session_id)
        tmp = final + ".tmp"
        data = json.dumps(payload, separators=(",", ":"))
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        # fsync the directory so the rename itself is durable.
        dir_fd = os.open(self.state_dir, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def stats(self) -> dict:
        return {"writes": self.writes, "removes": self.removes,
                "failures": self.failures,
                "consecutive_failures": self.consecutive_failures,
                "backlog": self.backlog()}


def load_state(state_dir: str) -> Tuple[List[dict], int]:
    """Read every persisted session payload from ``state_dir``.

    Returns ``(payloads, corrupt)`` where ``corrupt`` counts files that
    were unreadable or undecodable — a torn ``.tmp`` left by a crash is
    not counted (the atomic-rename protocol makes it garbage by design,
    and it is cleaned up here).
    """
    payloads: List[dict] = []
    corrupt = 0
    if not os.path.isdir(state_dir):
        return payloads, corrupt
    for name in sorted(os.listdir(state_dir)):
        path = os.path.join(state_dir, name)
        if name.endswith(".tmp"):
            try:
                os.unlink(path)
            except OSError:
                pass
            continue
        if not name.endswith(".json"):
            continue
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict) or "sid" not in payload:
                raise ValueError("not a session payload")
            payloads.append(payload)
        except (OSError, ValueError):
            corrupt += 1
    return payloads, corrupt

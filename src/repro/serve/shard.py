"""One independent slice of the session fleet.

The coordinator (:class:`~repro.serve.manager.SessionManager`) splits its
sessions across N :class:`SessionShard`\\ s — each with **its own lock, its
own LRU budget of live sessions, and its own snapshot store** — so that
bookkeeping for different sessions never contends on one global structure.
A shard knows nothing about other shards, per-session locks, or the
protocol; it is a thread-safe pair of LRU stores:

* ``live``: at most ``budget`` :class:`~repro.editor.session.LiveSession`
  objects, most-recently-touched last;
* ``snapshots``: at most ``snapshot_budget`` JSON-able snapshots of
  evicted sessions, oldest expired first.

Placement is by stable hash of the session id (:func:`shard_index`); the
coordinator records the home shard on each session's entry so it can
*migrate* a session off a hot shard without breaking lookups.

All methods take the shard lock internally and hold it only for dict
operations — never across a parse, an evaluation, or a snapshot restore.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from threading import Lock
from typing import List, Optional, Tuple

from ..editor.session import LiveSession

__all__ = ["SessionShard", "shard_index"]


def shard_index(session_id: str, nshards: int) -> int:
    """The home shard for ``session_id``: a stable hash, *not* the
    per-process-randomized ``hash()``, so placement is reproducible in
    tests and stable across interpreter restarts.

    >>> shard_index("s1", 4)
    0
    >>> shard_index("s1", 1)
    0
    """
    return zlib.crc32(session_id.encode("utf-8")) % nshards


class SessionShard:
    """A lock + live-session LRU + snapshot LRU, independent of its peers."""

    def __init__(self, index: int, budget: int, snapshot_budget: int):
        self.index = index
        #: Max live sessions before the coordinator migrates or evicts.
        self.budget = budget
        #: Max stored snapshots before the oldest expires.
        self.snapshot_budget = snapshot_budget
        self._lock = Lock()
        self._live: "OrderedDict[str, LiveSession]" = OrderedDict()
        self._snapshots: "OrderedDict[str, dict]" = OrderedDict()
        self.evicted = 0
        self.rehydrated = 0
        self.migrated_in = 0
        self.migrated_out = 0

    # -- live sessions ----------------------------------------------------------

    def touch(self, session_id: str) -> Optional[LiveSession]:
        """The live session, bumped to most-recently-used, else ``None``."""
        with self._lock:
            session = self._live.get(session_id)
            if session is not None:
                self._live.move_to_end(session_id)
            return session

    def admit(self, session_id: str, session: LiveSession) -> int:
        """Install a live session (most-recently-used); returns the live
        count so the coordinator can decide whether to shed load."""
        with self._lock:
            self._live[session_id] = session
            self._live.move_to_end(session_id)
            return len(self._live)

    def remove_live(self, session_id: str) -> Optional[LiveSession]:
        """Detach a live session (for migration or eviction), if present."""
        with self._lock:
            return self._live.pop(session_id, None)

    def peek_live(self, session_id: str) -> Optional[LiveSession]:
        """The live session *without* bumping its LRU position — for
        observers (the persister) that must not distort eviction order."""
        with self._lock:
            return self._live.get(session_id)

    def admit_within_budget(self, session_id: str,
                            session: LiveSession) -> bool:
        """Install a live session only if the shard has headroom — the
        check and the insert are one atomic step, so two concurrent
        migrations cannot both squeeze into the last slot."""
        with self._lock:
            if len(self._live) >= self.budget:
                return False
            self._live[session_id] = session
            self._live.move_to_end(session_id)
            return True

    def lru_live_ids(self) -> List[str]:
        """Live session ids, least-recently-used first."""
        with self._lock:
            return list(self._live)

    def live_count(self) -> int:
        with self._lock:
            return len(self._live)

    def over_budget(self) -> int:
        with self._lock:
            return max(0, len(self._live) - self.budget)

    # -- snapshots --------------------------------------------------------------

    def store_snapshot(self, session_id: str, snapshot: dict) -> List[str]:
        """Store an evicted session's snapshot; returns the ids whose
        snapshots *expired* to keep the store inside its budget (the
        coordinator turns those into tombstones)."""
        expired = []
        with self._lock:
            self._snapshots[session_id] = snapshot
            self._snapshots.move_to_end(session_id)
            while len(self._snapshots) > self.snapshot_budget:
                expired_id, _ = self._snapshots.popitem(last=False)
                expired.append(expired_id)
        return expired

    def pop_snapshot(self, session_id: str) -> Optional[dict]:
        with self._lock:
            return self._snapshots.pop(session_id, None)

    def peek_snapshot(self, session_id: str) -> Optional[dict]:
        """Read a stored snapshot without consuming or reordering it."""
        with self._lock:
            return self._snapshots.get(session_id)

    def snapshot_count(self) -> int:
        with self._lock:
            return len(self._snapshots)

    # -- counters (coordinator-driven events) ------------------------------------

    def note_rehydrated(self) -> None:
        with self._lock:
            self.rehydrated += 1

    def note_evicted(self) -> None:
        with self._lock:
            self.evicted += 1

    def note_migration(self, *, inbound: bool) -> None:
        with self._lock:
            if inbound:
                self.migrated_in += 1
            else:
                self.migrated_out += 1

    # -- lifecycle / introspection ----------------------------------------------

    def forget(self, session_id: str) -> bool:
        """Drop every trace of a session (close); True if it was here."""
        with self._lock:
            in_live = self._live.pop(session_id, None) is not None
            in_snap = self._snapshots.pop(session_id, None) is not None
            return in_live or in_snap

    def ids(self) -> Tuple[List[str], List[str]]:
        """All addressable ids on this shard, partitioned under one lock
        acquisition: ``(live ids, snapshotted ids)``."""
        with self._lock:
            return list(self._live), list(self._snapshots)

    def stats(self) -> dict:
        with self._lock:
            return {"live": len(self._live),
                    "snapshots": len(self._snapshots),
                    "budget": self.budget,
                    "snapshot_budget": self.snapshot_budget,
                    "evicted": self.evicted,
                    "rehydrated": self.rehydrated,
                    "migrated_in": self.migrated_in,
                    "migrated_out": self.migrated_out}

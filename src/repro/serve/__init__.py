"""Multi-session sync service: the editor loop as a headless server.

The paper frames prodirect manipulation as an *editor* feature; this
package turns the same run→assign→trigger substrate
(:mod:`repro.core.pipeline`) into a service many users drive concurrently:

* :mod:`repro.serve.cache` — shared compile cache: N sessions opening the
  same program parse and evaluate it once;
* :mod:`repro.serve.manager` — :class:`SessionManager`: LRU-bounded live
  sessions with snapshot/rehydrate eviction;
* :mod:`repro.serve.protocol` — :class:`ServeApp`: the JSON command set
  (``open`` / ``drag`` / ``release`` / ``set_slider`` / ``undo`` /
  ``render`` …) with per-session drag-burst coalescing;
* :mod:`repro.serve.http` — a stdlib HTTP transport
  (``repro serve --port 8000``).

Everything below the protocol is byte-identical to driving a
:class:`~repro.editor.session.LiveSession` directly — enforced by
``tests/test_serve.py`` and the serve-throughput benchmark.

>>> from repro.serve import ServeApp
>>> app = ServeApp()
>>> opened = app.handle({"cmd": "open", "example": "three_boxes"})
>>> opened["ok"], opened["shapes"] > 0
(True, True)
>>> moved = app.handle({"cmd": "drag", "session": opened["session"],
...                     "shape": 0, "zone": "INTERIOR",
...                     "steps": [[2, 1], [4, 2], [6, 3]]})
>>> moved["coalesced"]
3
>>> app.handle({"cmd": "release", "session": opened["session"]})["ok"]
True
"""

from .cache import CompileCache, CompiledProgram
from .http import make_server, run_server
from .manager import SessionManager, UnknownSession
from .protocol import ProtocolError, ServeApp

__all__ = ["CompileCache", "CompiledProgram", "SessionManager",
           "UnknownSession", "ProtocolError", "ServeApp", "make_server",
           "run_server"]

"""Multi-session sync service: the editor loop as a headless server.

The paper frames prodirect manipulation as an *editor* feature; this
package turns the same run→assign→trigger substrate
(:mod:`repro.core.pipeline`) into a service many users drive concurrently:

* :mod:`repro.serve.cache` — shared compile cache with single-flight
  compilation: N sessions opening the same program parse and evaluate it
  once, even when they open concurrently;
* :mod:`repro.serve.shard` — :class:`SessionShard`: one slice of the
  fleet with its own lock, live-session LRU budget, and snapshot store;
* :mod:`repro.serve.manager` — :class:`SessionManager`: the coordinator —
  sessions hashed across shards, per-session locks (same-session requests
  strictly ordered, different sessions in parallel), eviction
  rebalancing by migration, snapshot/rehydrate eviction;
* :mod:`repro.serve.protocol` — :class:`ServeApp`: the JSON command set
  (``open`` / ``drag`` / ``release`` / ``set_slider`` / ``undo`` /
  ``render`` …) with per-session drag-burst coalescing and optional
  monotonic sequence numbers;
* :mod:`repro.serve.http` — a stdlib HTTP transport with concurrent
  dispatch (``repro serve --port 8000 --shards 4``).

Everything below the protocol is byte-identical to driving a
:class:`~repro.editor.session.LiveSession` directly — enforced by
``tests/test_serve.py`` and the serve-throughput benchmark.

>>> from repro.serve import ServeApp
>>> app = ServeApp()
>>> opened = app.handle({"cmd": "open", "example": "three_boxes"})
>>> opened["ok"], opened["shapes"] > 0
(True, True)
>>> moved = app.handle({"cmd": "drag", "session": opened["session"],
...                     "shape": 0, "zone": "INTERIOR",
...                     "steps": [[2, 1], [4, 2], [6, 3]]})
>>> moved["coalesced"]
3
>>> app.handle({"cmd": "release", "session": opened["session"]})["ok"]
True
"""

from .cache import CompileCache, CompiledProgram
from .http import make_server, run_server
from .manager import SessionExpired, SessionManager, UnknownSession
from .protocol import ProtocolError, ServeApp
from .shard import SessionShard, shard_index

__all__ = ["CompileCache", "CompiledProgram", "SessionManager",
           "SessionExpired", "SessionShard", "shard_index",
           "UnknownSession", "ProtocolError", "ServeApp", "make_server",
           "run_server"]

"""JSON protocol over the run→assign→trigger loop (§4.1, as a service).

:class:`ServeApp` maps plain-dict requests onto a
:class:`~repro.serve.manager.SessionManager`; the HTTP layer
(:mod:`repro.serve.http`) is a thin transport over :meth:`ServeApp.handle`,
and tests and benchmarks call it directly.

Requests are ``{"cmd": <name>, ...}``; responses are ``{"ok": true, ...}``
or ``{"ok": false, "error": {"code": ..., "message": ..., "status": ...}}``
(``status`` is the HTTP status the transport serves the error with) —
malformed input of any shape produces a structured error, never a
traceback.

Commands::

    open        {source | example, heuristic?, auto_freeze?, prelude_frozen?}
    drag        {session, shape, zone, steps: [[dx, dy], ...], sync?, seq?}
    edit        {session, source, seq?}
    release     {session, seq?}
    set_slider  {session, loc, value, seq?}
    undo        {session, seq?}
    render      {session, include_hidden?}
    hover       {session, shape, zone}
    source      {session}
    close       {session}
    stats       {}

**Concurrency contract.**  ``handle`` may be called from many threads at
once: commands for *different* sessions run in parallel, while commands
for the *same* session serialize on its per-session lock, in arrival
order.  A state-changing command may carry ``seq``, a client-side
monotonic sequence number: the server accepts it only when it equals the
session's accepted-operation count plus one (acknowledged-but-queued
``"sync": false`` bursts count as accepted), answering ``stale_seq``
(duplicate or re-ordered, HTTP 409) or ``seq_gap`` (a lost request,
HTTP 409) otherwise — out-of-order drags are *detected*, never silently
applied.  Every state-changing response carries the session's new ``seq``.

``drag`` carries a *burst* of mouse-move samples.  Offsets are cumulative
from the gesture start (the paper's ``τ(dx, dy)``), so a burst coalesces
into a single incremental re-run at its final offset — the program state
after ``[[2,1],[4,2],[6,3]]`` is byte-identical to three separate moves,
but costs one solver pass and one re-evaluation.  With ``"sync": false``
the burst is only *acknowledged* (``{"queued": ..., "pending": ...}``, no
re-run): queued samples accumulate on the session and the next
state-bearing command applies them all as one incremental re-run — the
same coalescing, extended across requests, for clients that stream
mouse-move floods without waiting on each response.

``edit`` replaces the session's source text through the structural differ
(:func:`repro.lang.diff.diff_source`): a value-only edit *re-keys* the
live session in place — the pipeline replays its recorded evaluation and
revalidates its Prepare caches, never touching the shared
:class:`~repro.serve.cache.CompileCache` — instead of re-seeding a fresh
session from a new compile.  The response reports the classification and
the rewritten locations; a parse error returns ``parse_error`` and leaves
the session untouched.

>>> app = ServeApp()
>>> opened = app.handle({"cmd": "open",
...                      "source": "(def y 20) (svg [(rect 'red' 10 y 30 40)])"})
>>> opened["ok"], opened["shapes"]
(True, 1)
>>> edited = app.handle({"cmd": "edit", "session": opened["session"],
...                      "source": "(def y 80) (svg [(rect 'red' 10 y 30 40)])"})
>>> edited["edit"], edited["changed"]
('value', ['y'])
>>> app.handle({"cmd": "bogus"})["error"]["code"]
'unknown_command'
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..editor.session import EditorError, LiveSession
from ..lang.errors import LittleError, LittleSyntaxError, ResourceExhausted
from .manager import SessionExpired, SessionManager, UnknownSession

__all__ = ["ProtocolError", "ServeApp"]

#: Commands that mutate session state — the ones a forced-budget fault
#: (``budget.force``) refuses and a rolling last-good snapshot follows.
STATE_COMMANDS = frozenset({"drag", "edit", "release", "set_slider",
                            "undo"})


class ProtocolError(Exception):
    """A structured request failure: an error code plus a one-line message."""

    def __init__(self, code: str, message: str, *, status: int = 400):
        super().__init__(message)
        self.code = code
        self.message = message
        #: The HTTP status the transport serves this error with.
        self.status = status

    def to_response(self) -> dict:
        return {"ok": False,
                "error": {"code": self.code, "message": self.message,
                          "status": self.status}}


def _field(request: dict, name: str, kind, *, required: bool = True,
           default=None):
    """Extract + type-check one request field, or raise ``bad_request``."""
    if name not in request:
        if required:
            raise ProtocolError("bad_request",
                                f"missing required field {name!r}")
        return default
    value = request[name]
    if kind is float and isinstance(value, int) \
            and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, kind) or isinstance(value, bool) \
            and kind is not bool:
        raise ProtocolError(
            "bad_request",
            f"field {name!r} must be {getattr(kind, '__name__', kind)}")
    return value


class ServeApp:
    """The protocol layer: one dict in, one dict out, no exceptions."""

    def __init__(self, manager: Optional[SessionManager] = None, *,
                 max_sessions: int = 64, shards: int = 1,
                 eval_budget=None, faults=None, log=None):
        self.manager = manager if manager is not None \
            else SessionManager(max_sessions=max_sessions, shards=shards,
                                eval_budget=eval_budget, faults=faults,
                                log=log)
        #: The manager's armed fault plan (covers an externally built
        #: manager too) — dispatch-level points fire from here.
        self.faults = self.manager.faults
        self._incident_ids = itertools.count(1)
        self._handlers = {
            "open": self._cmd_open,
            "drag": self._cmd_drag,
            "edit": self._cmd_edit,
            "release": self._cmd_release,
            "set_slider": self._cmd_set_slider,
            "undo": self._cmd_undo,
            "render": self._cmd_render,
            "hover": self._cmd_hover,
            "source": self._cmd_source,
            "close": self._cmd_close,
            "stats": self._cmd_stats,
        }

    # -- dispatch ---------------------------------------------------------------

    def handle(self, request) -> dict:
        """Process one request dict; never raises.

        The final ``except Exception`` is the **shard boundary** of
        fault containment: an unforeseen failure (a bug, or an armed
        ``dispatch.*`` fault) becomes a structured ``internal_error``
        tagged with an incident id, and the target session — whose
        state the dead command may have torn mid-mutation — is
        quarantined (:meth:`~repro.serve.manager.SessionManager
        .quarantine`); its next touch transparently self-heals from
        the last-good snapshot.  One bug never bricks a session id,
        and never takes the server down.
        """
        try:
            if not isinstance(request, dict):
                raise ProtocolError("bad_request",
                                    "request must be a JSON object")
            cmd = _field(request, "cmd", str)
            handler = self._handlers.get(cmd)
            if handler is None:
                raise ProtocolError("unknown_command",
                                    f"unknown command {cmd!r}", status=404)
            if self.faults is not None:
                if cmd in STATE_COMMANDS \
                        and self.faults.should_fire("budget.force"):
                    raise ResourceExhausted(
                        "fuel", 0, "program exceeded its evaluation "
                        "budget: forced by fault injection (budget.force)")
                self.faults.fire(f"dispatch.{cmd}")
            response = handler(request)
            response["ok"] = True
            return response
        except ProtocolError as error:
            return error.to_response()
        except SessionExpired as error:
            return ProtocolError(
                "session_expired",
                f"session {error.args[0]!r} expired from the snapshot "
                f"store; open it again", status=410).to_response()
        except UnknownSession as error:
            return ProtocolError("unknown_session",
                                 f"unknown session {error.args[0]!r}",
                                 status=404).to_response()
        except EditorError as error:
            return ProtocolError("editor_error", str(error)).to_response()
        except LittleSyntaxError as error:
            return ProtocolError("parse_error", str(error)).to_response()
        except ResourceExhausted as error:
            # The session layer already rolled the session back to its
            # pre-command state (like ``edit_source`` does for run
            # failures), so refusing the command leaves state untouched.
            self.manager.note_limit_error()
            response = ProtocolError("program_limit", str(error),
                                     status=422).to_response()
            response["error"]["kind"] = error.kind
            response["error"]["limit"] = error.limit
            return response
        except LittleError as error:
            return ProtocolError("program_error", str(error)).to_response()
        except Exception as error:      # noqa: BLE001 — the shard boundary
            incident = f"inc{next(self._incident_ids)}"
            sid = request.get("session") if isinstance(request, dict) \
                else None
            if isinstance(sid, str):
                self.manager.quarantine(sid, incident)
            response = ProtocolError(
                "internal_error",
                f"unexpected failure handling {cmd!r} "
                f"(incident {incident}): {error}", status=500).to_response()
            response["error"]["incident"] = incident
            return response

    def _check_seq(self, request: dict, sid: str) -> None:
        """Validate an optional client sequence number against the
        session's accepted-operation count (caller holds the session
        lock).  Duplicates and gaps are rejected, never applied."""
        seq = _field(request, "seq", int, required=False)
        if seq is None:
            return
        expected = self.manager.peek_seq(sid) + 1
        if seq < expected:
            raise ProtocolError(
                "stale_seq",
                f"stale sequence number {seq} for session {sid}; "
                f"expected {expected}", status=409)
        if seq > expected:
            raise ProtocolError(
                "seq_gap",
                f"sequence gap for session {sid}: got {seq}, "
                f"expected {expected}", status=409)

    @staticmethod
    def _state(session: LiveSession) -> dict:
        """The response fields every state-changing command reports."""
        return {"source": session.source(),
                "svg": session.export_svg(),
                "shapes": len(session.canvas),
                "history": len(session.history)}

    @staticmethod
    def _slider_state(session: LiveSession) -> list:
        """The slider payload ``open`` and ``edit`` responses share."""
        return [{"loc": slider.loc.display(), "lo": slider.lo,
                 "hi": slider.hi, "value": slider.value}
                for slider in session.sliders.values()]

    # -- commands ---------------------------------------------------------------

    def _cmd_open(self, request: dict) -> dict:
        source = _field(request, "source", str, required=False)
        example = _field(request, "example", str, required=False)
        if (source is None) == (example is None):
            raise ProtocolError("bad_request",
                                "provide exactly one of source or example")
        heuristic = _field(request, "heuristic", str, required=False,
                           default="fair")
        if heuristic not in ("fair", "biased"):
            raise ProtocolError("bad_request",
                                "heuristic must be 'fair' or 'biased'")
        try:
            sid, session, hit = self.manager.open(
                source, example=example, heuristic=heuristic,
                auto_freeze=_field(request, "auto_freeze", bool,
                                   required=False, default=False),
                prelude_frozen=_field(request, "prelude_frozen", bool,
                                      required=False, default=True))
        except KeyError:
            raise ProtocolError("unknown_example",
                                f"unknown example {example!r}", status=404)
        response = self._state(session)
        response.update({
            "session": sid,
            "cache": "hit" if hit else "miss",
            "active_zones": session.active_zone_count(),
            "sliders": self._slider_state(session),
        })
        return response

    def _drag_conflict(self, sid: str, session: LiveSession,
                       shape: int, zone: str) -> None:
        if session.dragging is not None \
                and session.dragging != (shape, zone):
            held_shape, held_zone = session.dragging
            raise ProtocolError(
                "drag_in_progress",
                f"session {sid} is dragging zone {held_zone!r} of shape "
                f"{held_shape}; release it first", status=409)

    def _cmd_drag(self, request: dict) -> dict:
        sid = _field(request, "session", str)
        shape = _field(request, "shape", int)
        zone = _field(request, "zone", str)
        steps = _field(request, "steps", list)
        sync = _field(request, "sync", bool, required=False, default=True)
        if not steps:
            raise ProtocolError("bad_request", "steps must be non-empty")
        for step in steps:
            if (not isinstance(step, (list, tuple)) or len(step) != 2
                    or not all(isinstance(delta, (int, float))
                               and not isinstance(delta, bool)
                               for delta in step)):
                raise ProtocolError(
                    "bad_request", "each step must be a [dx, dy] pair")
        with self.manager.locked(sid) as session:
            self._check_seq(request, sid)
            if not sync:
                # Acknowledge and queue; the next state-bearing command
                # applies all queued samples as one incremental re-run.
                pending = self.manager.pending_drag(sid)
                if pending is not None and pending[:2] != (shape, zone):
                    self.manager.flush_pending(sid, session)
                self._drag_conflict(sid, session, shape, zone)
                if session.dragging is None:
                    # Same rejection start_drag would raise eagerly — an
                    # invalid gesture must fail *now*, not poison the
                    # queue and surface on an unrelated later command.
                    session.check_drag(shape, zone)
                queued = self.manager.queue_drag(sid, shape, zone, steps)
                return {"session": sid, "queued": len(steps),
                        "pending": queued,
                        "seq": self.manager.bump_seq(sid)}
            pending = self.manager.pending_drag(sid)
            superseded = pending is not None and pending[:2] == (shape,
                                                                 zone)
            if not superseded:
                self.manager.flush_pending(sid, session)
            self._drag_conflict(sid, session, shape, zone)
            if session.dragging is None:
                session.start_drag(shape, zone)
            # Offsets are cumulative from the gesture start, so a burst
            # coalesces into one incremental re-run at its final sample
            # — which also supersedes any same-gesture queued backlog,
            # dropped below only once this drag has actually applied.
            dx, dy = steps[-1]
            result = session.drag(float(dx), float(dy))
            if superseded:
                self.manager.drop_pending(sid)
            response = self._state(session)
            response.update({
                "session": sid,
                "coalesced": len(steps),
                "bindings": {loc.display(): value
                             for loc, value in result.bindings.items()},
                "solved": [outcome.loc.display()
                           for outcome in result.outcomes
                           if outcome.solved],
                "unsolved": [outcome.loc.display()
                             for outcome in result.outcomes
                             if not outcome.solved],
                "seq": self.manager.bump_seq(sid),
            })
            return response

    def _cmd_edit(self, request: dict) -> dict:
        sid = _field(request, "session", str)
        source = _field(request, "source", str)
        with self.manager.locked(sid) as session:
            self._check_seq(request, sid)
            self.manager.flush_pending(sid, session)
            # ``edit_source`` parses before touching any session state,
            # so a parse error (surfaced by ``handle`` as
            # ``parse_error``) leaves the session exactly as it was.
            diff = session.edit_source(source)
            self.manager.record_edit(sid, diff.kind)
            self.manager.update_last_good(sid, session)
            response = self._state(session)
            response.update({
                "session": sid,
                "edit": diff.kind,
                "structural": diff.change.structural,
                "changed": sorted(loc.display()
                                  for loc in diff.change.locs),
                "active_zones": session.active_zone_count(),
                "sliders": self._slider_state(session),
                "seq": self.manager.bump_seq(sid),
            })
            return response

    def _cmd_release(self, request: dict) -> dict:
        sid = _field(request, "session", str)
        with self.manager.locked(sid) as session:
            self._check_seq(request, sid)
            self.manager.flush_pending(sid, session)
            if session.dragging is None:
                raise ProtocolError("no_drag",
                                    f"session {sid} has no drag in flight",
                                    status=409)
            session.release()
            self.manager.update_last_good(sid, session)
            response = self._state(session)
            response.update({"session": sid,
                             "active_zones": session.active_zone_count(),
                             "seq": self.manager.bump_seq(sid)})
            return response

    def _cmd_set_slider(self, request: dict) -> dict:
        sid = _field(request, "session", str)
        name = _field(request, "loc", str)
        value = _field(request, "value", float)
        with self.manager.locked(sid) as session:
            self._check_seq(request, sid)
            self.manager.flush_pending(sid, session)
            for loc, slider in session.sliders.items():
                if loc.display() == name:
                    session.set_slider(loc, value)
                    break
            else:
                raise ProtocolError(
                    "no_slider", f"no slider named {name!r}; available: "
                    f"{sorted(loc.display() for loc in session.sliders)}",
                    status=404)
            self.manager.update_last_good(sid, session)
            response = self._state(session)
            response.update({"session": sid, "loc": name,
                             "value": session.sliders[loc].value,
                             "seq": self.manager.bump_seq(sid)})
            return response

    def _cmd_undo(self, request: dict) -> dict:
        sid = _field(request, "session", str)
        with self.manager.locked(sid) as session:
            self._check_seq(request, sid)
            self.manager.flush_pending(sid, session)
            if not session.history:
                raise ProtocolError("nothing_to_undo",
                                    f"session {sid} has an empty history",
                                    status=409)
            session.undo()
            self.manager.update_last_good(sid, session)
            response = self._state(session)
            response["session"] = sid
            response["seq"] = self.manager.bump_seq(sid)
            return response

    def _cmd_render(self, request: dict) -> dict:
        sid = _field(request, "session", str)
        include_hidden = _field(request, "include_hidden", bool,
                                required=False, default=False)
        with self.manager.locked(sid) as session:
            self.manager.flush_pending(sid, session)
            return {"session": sid,
                    "svg": session.export_svg(
                        include_hidden=include_hidden)}

    def _cmd_hover(self, request: dict) -> dict:
        sid = _field(request, "session", str)
        shape = _field(request, "shape", int)
        zone = _field(request, "zone", str)
        with self.manager.locked(sid) as session:
            self.manager.flush_pending(sid, session)
            if not 0 <= shape < len(session.canvas):
                raise ProtocolError("bad_request",
                                    f"shape {shape} out of range",
                                    status=404)
            if zone not in session.zone_names(shape):
                raise ProtocolError(
                    "bad_request", f"shape {shape} has no zone {zone!r}",
                    status=404)
            info = session.hover(shape, zone)
            return {"session": sid, "active": info.active,
                    "caption": info.caption,
                    "selected": [loc.display() for loc in info.selected],
                    "unselected": [loc.display()
                                   for loc in info.unselected]}

    def _cmd_source(self, request: dict) -> dict:
        sid = _field(request, "session", str)
        with self.manager.locked(sid) as session:
            self.manager.flush_pending(sid, session)
            return {"session": sid, "source": session.source()}

    def _cmd_close(self, request: dict) -> dict:
        sid = _field(request, "session", str)
        self.manager.close(sid)
        return {"session": sid, "closed": True}

    def _cmd_stats(self, request: dict) -> dict:
        return {"stats": self.manager.stats()}

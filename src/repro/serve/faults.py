"""Deterministic fault injection for the serve layer.

Every recovery path in the fault-contained server — crash quarantine,
snapshot self-healing, persister backoff, budget enforcement — is only
trustworthy if it is *exercised*, and production exercises them rarely
and unreproducibly.  This module plants named **injection points** at
the seams where real failures occur and arms them from configuration,
so the chaos suite (``tests/test_serve_chaos.py``) can replay the exact
same failure schedule on every run and across processes.

Points currently planted (prefix-match with ``*`` to arm a family):

========================  =====================================================
``compile.leader``        the compile-cache leader's evaluation blows up
``compile.specialize``    specializing a recorded evaluation into a
                          compiled drag artifact fails — the recording
                          is pinned to the interpreted fast path
``snapshot.serialize``    taking a session snapshot fails (eviction, persist)
``snapshot.deserialize``  restoring a snapshot fails (admission, healing)
``persist.write``         the write-behind persister hits a full disk
``dispatch.<command>``    an unexpected exception mid-dispatch (one point
                          per protocol command: ``dispatch.drag``, …)
``budget.force``          the command's evaluation budget is reported
                          exhausted without running (the protocol raises
                          :class:`~repro.lang.errors.ResourceExhausted`)
========================  =====================================================

Determinism: each point draws from its own ``random.Random`` seeded with
``(seed, point name)`` — string seeding is processed with SHA-512, so the
schedule is independent of ``PYTHONHASHSEED``, of other points, and of
how threads interleave *draws across different points*.  (Draws within
one point are ordered by a lock; concurrent tests assert invariants, not
exact schedules, while single-threaded tests get bit-stable schedules.)

Configuration comes from explicit arguments or the environment:

* ``REPRO_FAULTS`` — comma-separated ``point:rate`` pairs, e.g.
  ``"dispatch.*:0.1,persist.write:1"`` (rate 1 fires every time);
* ``REPRO_FAULT_SEED`` — integer seed for the schedule (default 0).

>>> plan = FaultPlan("dispatch.*:1,persist.write:0", seed=7)
>>> plan.fire("dispatch.drag")
Traceback (most recent call last):
    ...
repro.serve.faults.InjectedFault: injected fault at 'dispatch.drag'
>>> plan.fire("persist.write")        # armed at rate 0: never fires
>>> plan.fire("compile.leader")       # not armed at all
>>> plan.counts()
{'dispatch.drag': 1}
"""

from __future__ import annotations

import os
import random
import threading
from typing import Dict, Optional

__all__ = ["FaultPlan", "InjectedFault", "fail_point", "plan_from_env"]


class InjectedFault(RuntimeError):
    """The synthetic failure raised by an armed injection point.

    Deliberately *not* a ``LittleError``: the serve layer must treat it
    exactly like an unforeseen bug — quarantine the session, tag the
    incident — rather than as a structured program error.
    """

    def __init__(self, point: str):
        self.point = point
        super().__init__(f"injected fault at {point!r}")


class FaultPlan:
    """An armed, seeded schedule of injection points.

    ``spec`` maps point names (or ``prefix.*`` wildcards) to firing
    rates in ``[0, 1]``; it may also be given as the ``REPRO_FAULTS``
    string form.  An exact point name takes precedence over a wildcard;
    the longest matching wildcard wins otherwise.
    """

    def __init__(self, spec=None, seed: int = 0):
        if isinstance(spec, str):
            spec = self.parse_spec(spec)
        self.seed = seed
        self.rates: Dict[str, float] = dict(spec or {})
        self._rngs: Dict[str, random.Random] = {}
        self._fired: Dict[str, int] = {}
        self._lock = threading.Lock()

    @staticmethod
    def parse_spec(text: str) -> Dict[str, float]:
        """Parse the ``"point:rate,point:rate"`` string form.

        >>> FaultPlan.parse_spec("dispatch.*:0.5, persist.write:1")
        {'dispatch.*': 0.5, 'persist.write': 1.0}
        """
        rates: Dict[str, float] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            point, _, rate = part.rpartition(":")
            if not point:
                raise ValueError(
                    f"fault spec entry {part!r} is not 'point:rate'")
            rates[point.strip()] = float(rate)
        return rates

    def rate_for(self, point: str) -> float:
        """The armed rate for ``point`` (0.0 when not armed)."""
        exact = self.rates.get(point)
        if exact is not None:
            return exact
        best = ""
        rate = 0.0
        for pattern, pattern_rate in self.rates.items():
            if pattern.endswith("*") and point.startswith(pattern[:-1]) \
                    and len(pattern) > len(best):
                best = pattern
                rate = pattern_rate
        return rate

    def should_fire(self, point: str) -> bool:
        """Advance ``point``'s schedule one draw; ``True`` to fail now.

        Counts the hit — callers that get ``True`` are expected to fail
        (raise, or simulate the failure in-place, like the persister's
        disk-full path).
        """
        rate = self.rate_for(point)
        if rate <= 0.0:
            return False
        with self._lock:
            rng = self._rngs.get(point)
            if rng is None:
                rng = random.Random(f"{self.seed}:{point}")
                self._rngs[point] = rng
            fire = rate >= 1.0 or rng.random() < rate
            if fire:
                self._fired[point] = self._fired.get(point, 0) + 1
        return fire

    def fire(self, point: str) -> None:
        """Raise :class:`InjectedFault` if ``point`` fails this draw."""
        if self.should_fire(point):
            raise InjectedFault(point)

    def counts(self) -> Dict[str, int]:
        """Fired-fault counts per point (for ``/stats`` and assertions)."""
        with self._lock:
            return dict(self._fired)

    def total_fired(self) -> int:
        with self._lock:
            return sum(self._fired.values())


def fail_point(plan: Optional[FaultPlan], point: str) -> None:
    """``plan.fire(point)`` tolerating ``plan=None`` (the common case:
    production runs carry no plan and pay one ``is None`` test)."""
    if plan is not None:
        plan.fire(point)


def plan_from_env(environ=os.environ) -> Optional[FaultPlan]:
    """Build the plan ``REPRO_FAULTS``/``REPRO_FAULT_SEED`` describe,
    or ``None`` when no faults are armed."""
    spec = environ.get("REPRO_FAULTS", "").strip()
    if not spec:
        return None
    return FaultPlan(spec, seed=int(environ.get("REPRO_FAULT_SEED", "0")))

"""Shared program-compile cache for the serve layer.

Parsing and first evaluation dominate the cost of opening a session (the
paper's §5.2.3 table puts Parse at a median 53 ms and up to 520 ms), and a
service's traffic is heavily skewed toward the example corpus — N users
opening the same program should parse and evaluate it **once**.

:class:`CompileCache` keys on the SHA-256 of the source text plus the parse
options, and stores the parsed :class:`~repro.lang.program.Program`
together with its recorded first evaluation (the output value and the
control-flow guards of :mod:`repro.lang.incremental`).  Everything stored
is read-only under sharing: ``Program.substitute`` copies, ``reevaluate``
only reads the guard list, and each session's pipeline replaces — never
mutates — the cache entry's objects.  The one sanctioned exception: the
shared :class:`~repro.lang.incremental.EvalCache` lazily carries the
compiled drag artifact (:func:`repro.lang.compile.ensure_compiled`), so
the first session to specialize a recording pays for every later session
— and for rehydrations under LRU pressure — that adopts the same seed.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from threading import Event, Lock
from typing import Dict, Tuple

from ..lang.eval import budget_scope
from ..lang.incremental import EvalCache, record_evaluation
from ..lang.program import Program, parse_program
from ..lang.values import Value
from .faults import fail_point

__all__ = ["CompileCache", "CompiledProgram"]


@dataclass(frozen=True)
class CompiledProgram:
    """One cache entry: a parsed program plus its recorded evaluation."""

    program: Program
    output: Value
    eval_cache: EvalCache

    @property
    def seed(self) -> Tuple[Value, EvalCache]:
        """The ``(output, eval_cache)`` pair a session pipeline adopts
        via :meth:`~repro.core.pipeline.SyncPipeline.seed_run`."""
        return (self.output, self.eval_cache)


def source_key(source: str, *, auto_freeze: bool = False,
               prelude_frozen: bool = True,
               with_prelude: bool = True) -> Tuple[str, bool, bool, bool]:
    """The cache key: source hash + every option that affects parsing."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return (digest, auto_freeze, prelude_frozen, with_prelude)


class _Flight:
    """One in-progress compilation that concurrent misses wait on."""

    __slots__ = ("done", "entry", "error")

    def __init__(self):
        self.done = Event()
        self.entry = None
        self.error = None


class CompileCache:
    """An LRU cache of :class:`CompiledProgram`s with **single-flight**
    compilation: when N threads miss on the same key at once, one thread
    parses and evaluates while the rest block on its result — the work
    happens exactly once, never raced or duplicated.

    >>> cache = CompileCache(capacity=8)
    >>> compiled, hit = cache.compile("(svg [(rect 'red' 1 2 3 4)])")
    >>> hit
    False
    >>> again, hit = cache.compile("(svg [(rect 'red' 1 2 3 4)])")
    >>> hit and again.program is compiled.program
    True
    """

    def __init__(self, capacity: int = 128, *, budget=None, faults=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        #: Prototype :class:`~repro.lang.eval.EvalBudget` applied to the
        #: leader's first evaluation (cloned per compile — leaders for
        #: different keys run concurrently) so an adversarial program
        #: fails its open with ``ResourceExhausted`` instead of wedging
        #: the leader and every waiter coalesced behind it.
        self.budget = budget
        self.faults = faults
        self.hits = 0
        self.misses = 0
        #: Opens served by *waiting* on another thread's compilation.
        self.coalesced = 0
        self._entries: "OrderedDict[tuple, CompiledProgram]" = OrderedDict()
        self._inflight: Dict[tuple, _Flight] = {}
        self._lock = Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def compile(self, source: str, *, auto_freeze: bool = False,
                prelude_frozen: bool = True, with_prelude: bool = True
                ) -> Tuple[CompiledProgram, bool]:
        """Parse + evaluate ``source`` (or reuse), returning
        ``(compiled, cache_hit)``.  Parse and runtime errors propagate as
        :class:`~repro.lang.errors.LittleError`; failures are not cached.
        """
        key = source_key(source, auto_freeze=auto_freeze,
                         prelude_frozen=prelude_frozen,
                         with_prelude=with_prelude)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry, True
            flight = self._inflight.get(key)
            if flight is None:
                flight = _Flight()
                self._inflight[key] = flight
                leader = True
            else:
                leader = False
        if not leader:
            # Single-flight: block on the leader's parse + evaluation
            # instead of duplicating it; its failure is our failure.
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            with self._lock:
                self.hits += 1
                self.coalesced += 1
            return flight.entry, True
        # Compile outside the lock: a slow parse must not stall sessions
        # hitting other entries.
        try:
            fail_point(self.faults, "compile.leader")
            program = parse_program(source, auto_freeze=auto_freeze,
                                    prelude_frozen=prelude_frozen,
                                    with_prelude=with_prelude)
            budget = self.budget.clone() if self.budget is not None else None
            with budget_scope(budget):
                output, eval_cache = record_evaluation(program)
            entry = CompiledProgram(program, output, eval_cache)
        except BaseException as error:
            with self._lock:
                self._inflight.pop(key, None)
            flight.error = error
            flight.done.set()
            raise
        with self._lock:
            self.misses += 1
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            self._inflight.pop(key, None)
        flight.entry = entry
        flight.done.set()
        return entry, False

    def stats(self) -> dict:
        with self._lock:
            return {"entries": len(self._entries), "capacity": self.capacity,
                    "hits": self.hits, "misses": self.misses,
                    "coalesced": self.coalesced}

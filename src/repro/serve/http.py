"""Stdlib HTTP transport for the serve protocol (no third-party deps).

``POST /api`` with a JSON body is dispatched to
:meth:`~repro.serve.protocol.ServeApp.handle`; ``GET /healthz`` and
``GET /stats`` are read-only probes.  The server is a
:class:`~http.server.ThreadingHTTPServer` and requests dispatch
**concurrently**: the protocol layer serializes only commands for the
same session (per-session locks in
:class:`~repro.serve.manager.SessionManager`), so requests for different
sessions execute in parallel on the server threads.  An optional
``workers`` bound caps in-flight dispatches with a semaphore — excess
requests queue at the gate instead of oversubscribing the interpreter.

Run it from the CLI (``repro serve --port 8000 --shards 4``) or embed it::

    server = make_server("127.0.0.1", 0, ServeApp())
    threading.Thread(target=server.serve_forever, daemon=True).start()
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from threading import BoundedSemaphore
from typing import Optional

from .persist import StatePersister, load_state
from .protocol import ProtocolError, ServeApp

__all__ = ["make_server", "run_server"]

#: Upper bound on request bodies (1 MiB) — little programs are a few KB.
MAX_BODY = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    # -- helpers ----------------------------------------------------------------

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, code: str, message: str) -> None:
        # The request body may be partly or wholly unread on these paths;
        # closing keeps a keep-alive client from having its unread bytes
        # parsed as the next request line.
        self.close_connection = True
        self._send_json(status,
                        ProtocolError(code, message,
                                      status=status).to_response())

    # -- verbs ------------------------------------------------------------------

    def do_GET(self) -> None:                   # noqa: N802 (stdlib casing)
        if self.path == "/healthz":
            # Degraded (sessions awaiting healing, persister being
            # rejected by the disk) answers 503 so a load balancer can
            # drain the instance before clients notice.
            health = self.server.app.manager.health()
            self._send_json(200 if health["ok"] else 503, health)
        elif self.path == "/stats":
            response = self.server.app.handle({"cmd": "stats"})
            self._send_json(200, response)
        else:
            self._send_error(404, "not_found", f"no route {self.path!r}")

    def do_POST(self) -> None:                  # noqa: N802 (stdlib casing)
        if self.path not in ("/", "/api"):
            self._send_error(404, "not_found", f"no route {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if not 0 < length <= MAX_BODY:
            self._send_error(400, "bad_request",
                             "Content-Length required (at most 1 MiB)")
            return
        try:
            request = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._send_error(400, "bad_json", "request body is not JSON")
            return
        gate = self.server.dispatch_gate
        if gate is None:
            response = self.server.app.handle(request)
        else:
            with gate:
                response = self.server.app.handle(request)
        status = 200
        if not response.get("ok"):
            status = response.get("error", {}).get("status", 400)
        self._send_json(status, response)

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:
            sys.stderr.write("%s - %s\n" % (self.address_string(),
                                            format % args))


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, app: ServeApp, *, verbose: bool = False,
                 workers: int = 0):
        super().__init__(address, _Handler)
        self.app = app
        #: ``None`` = unbounded concurrent dispatch (per-session locks
        #: still order same-session requests); N > 0 = at most N
        #: requests inside ``ServeApp.handle`` at once.  The bound
        #: exists to stop interpreter oversubscription, not to schedule
        #: fairly: a slot is held while a request waits on its session
        #: lock, so size it above the expected same-session queue depth
        #: or a flood on one session can stall others at the gate.
        self.dispatch_gate = BoundedSemaphore(workers) if workers > 0 \
            else None
        self.verbose = verbose


def make_server(host: str, port: int, app: Optional[ServeApp] = None, *,
                verbose: bool = False, workers: int = 0) -> _Server:
    """Bind (but do not start) a protocol server; ``port=0`` auto-picks."""
    return _Server((host, port), app if app is not None else ServeApp(),
                   verbose=verbose, workers=workers)


def run_server(host: str = "127.0.0.1", port: int = 8000, *,
               max_sessions: int = 64, shards: int = 4, workers: int = 0,
               verbose: bool = False, state_dir: Optional[str] = None,
               eval_budget=None, faults=None) -> int:
    """The CLI entry point: serve until interrupted.

    With ``state_dir`` the server replays previously spilled sessions on
    boot and attaches a write-behind :class:`StatePersister`, so a
    restart is *warm*: clients resume with their session ids, undo
    histories, sequence numbers, and even mid-flight drags intact.

    ``SIGTERM`` drains gracefully — stop accepting, finish in-flight
    requests, persist every session, exit 0 — so a supervisor's routine
    restart never loses state.
    """
    log = (lambda message: sys.stderr.write(f"repro serve: {message}\n")) \
        if verbose else None
    app = ServeApp(max_sessions=max_sessions, shards=shards,
                   eval_budget=eval_budget, faults=faults, log=log)
    persister = None
    if state_dir is not None:
        payloads, corrupt = load_state(state_dir)
        restored = app.manager.load_state(payloads)
        persister = StatePersister(state_dir, app.manager.persist_payload,
                                   faults=faults, log=log)
        app.manager.attach_persister(persister)
        persister.start()
        if restored or corrupt:
            print(f"repro serve: restored {restored} session(s) from "
                  f"{state_dir}"
                  + (f" ({corrupt} corrupt file(s) skipped)"
                     if corrupt else ""))
    server = make_server(host, port, app, verbose=verbose, workers=workers)
    draining = threading.Event()

    def _drain(signum, frame):
        draining.set()
        # ``shutdown`` blocks until ``serve_forever`` exits; calling it
        # from this handler (which runs *on* the serving thread) would
        # deadlock, so hand it to a helper thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _drain)
    except ValueError:
        pass                        # not the main thread (embedded use)
    bound_host, bound_port = server.server_address[:2]
    nshards = len(app.manager.shards)
    print(f"repro serve: listening on http://{bound_host}:{bound_port}/api "
          f"(max {max_sessions} live sessions over {nshards} shards"
          f"{f', {workers} workers' if workers else ''}"
          f"{f', state in {state_dir}' if state_dir else ''}; "
          f"POST JSON, GET /healthz)")
    try:
        server.serve_forever()
        if draining.is_set():
            print("repro serve: draining (SIGTERM)")
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    finally:
        # ``server_close`` joins the in-flight request threads
        # (``block_on_close``), so every accepted command completes
        # before state is flushed.
        server.server_close()
        if persister is not None:
            app.manager.flush_state()
            persister.stop()
            print(f"repro serve: state persisted to {state_dir}")
    return 0

"""Stdlib HTTP transport for the serve protocol (no third-party deps).

``POST /api`` with a JSON body is dispatched to
:meth:`~repro.serve.protocol.ServeApp.handle`; ``GET /healthz`` and
``GET /stats`` are read-only probes.  The server is a
:class:`~http.server.ThreadingHTTPServer`, but requests are serialized
through one lock — session state is mutable and the pipeline is
single-threaded by design; the threads only keep slow clients from
blocking the accept loop.

Run it from the CLI (``repro serve --port 8000``) or embed it::

    server = make_server("127.0.0.1", 0, ServeApp())
    threading.Thread(target=server.serve_forever, daemon=True).start()
"""

from __future__ import annotations

import json
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from threading import Lock
from typing import Optional

from .protocol import ProtocolError, ServeApp

__all__ = ["make_server", "run_server"]

#: Upper bound on request bodies (1 MiB) — little programs are a few KB.
MAX_BODY = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    # -- helpers ----------------------------------------------------------------

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, code: str, message: str) -> None:
        # The request body may be partly or wholly unread on these paths;
        # closing keeps a keep-alive client from having its unread bytes
        # parsed as the next request line.
        self.close_connection = True
        self._send_json(status,
                        ProtocolError(code, message,
                                      status=status).to_response())

    # -- verbs ------------------------------------------------------------------

    def do_GET(self) -> None:                   # noqa: N802 (stdlib casing)
        if self.path == "/healthz":
            self._send_json(200, {"ok": True})
        elif self.path == "/stats":
            response = self.server.app.handle({"cmd": "stats"})
            self._send_json(200, response)
        else:
            self._send_error(404, "not_found", f"no route {self.path!r}")

    def do_POST(self) -> None:                  # noqa: N802 (stdlib casing)
        if self.path not in ("/", "/api"):
            self._send_error(404, "not_found", f"no route {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if not 0 < length <= MAX_BODY:
            self._send_error(400, "bad_request",
                             "Content-Length required (at most 1 MiB)")
            return
        try:
            request = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._send_error(400, "bad_json", "request body is not JSON")
            return
        with self.server.dispatch_lock:
            response = self.server.app.handle(request)
        status = 200
        if not response.get("ok"):
            status = response.get("error", {}).get("status", 400)
        self._send_json(status, response)

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:
            sys.stderr.write("%s - %s\n" % (self.address_string(),
                                            format % args))


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, app: ServeApp, *, verbose: bool = False):
        super().__init__(address, _Handler)
        self.app = app
        self.dispatch_lock = Lock()
        self.verbose = verbose


def make_server(host: str, port: int, app: Optional[ServeApp] = None, *,
                verbose: bool = False) -> _Server:
    """Bind (but do not start) a protocol server; ``port=0`` auto-picks."""
    return _Server((host, port), app if app is not None else ServeApp(),
                   verbose=verbose)


def run_server(host: str = "127.0.0.1", port: int = 8000, *,
               max_sessions: int = 64, verbose: bool = False) -> int:
    """The CLI entry point: serve until interrupted."""
    app = ServeApp(max_sessions=max_sessions)
    server = make_server(host, port, app, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve: listening on http://{bound_host}:{bound_port}/api "
          f"(max {max_sessions} live sessions; POST JSON, GET /healthz)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    finally:
        server.server_close()
    return 0

"""One-shot conveniences over :class:`~repro.core.pipeline.SyncPipeline`.

The CLI ``run`` command, the example renderer and the benchmark corpus all
used to carry their own parse → evaluate → build-canvas → render loops;
they now share this entry point (and, through it, the staged pipeline the
editor runs on).
"""

from __future__ import annotations

from ..lang.program import Program, parse_program
from .pipeline import SyncPipeline

__all__ = ["run_program", "run_source"]


def run_program(program: Program, *, heuristic: str = "fair",
                prepare: bool = False, record: bool = False,
                budget=None) -> SyncPipeline:
    """Run ``program`` through the pipeline and return it.

    ``prepare=True`` also computes assignments, triggers and sliders (the
    editor's Prepare); the default stops after the Run stage, which is all
    a render needs.  ``record=True`` keeps evaluation guards so subsequent
    runs can be incremental (the editor's mode).  ``budget`` caps the
    evaluation (:class:`~repro.lang.eval.EvalBudget`); a runaway program
    raises :class:`~repro.lang.errors.ResourceExhausted` instead of
    spinning.

    >>> from repro.lang.program import parse_program
    >>> pipeline = run_program(
    ...     parse_program("(svg [(circle 'navy' 60 60 25)])"),
    ...     prepare=True)
    >>> len(pipeline.canvas), len(pipeline.assignments.chosen) > 0
    (1, True)
    """
    pipeline = SyncPipeline(program, heuristic=heuristic, record=record,
                            budget=budget)
    if prepare:
        pipeline.run()
    else:
        pipeline.run_stage()
    return pipeline


def run_source(source: str, *, heuristic: str = "fair",
               prepare: bool = False, record: bool = False,
               budget=None, **parse_options) -> SyncPipeline:
    """Parse little ``source`` and run it (see :func:`run_program`).

    >>> pipeline = run_source("(svg [(rect 'gold' 10 20 30 40)])")
    >>> print(pipeline.render())
    <svg xmlns="http://www.w3.org/2000/svg" width="800" height="600">
      <rect x="10" y="20" width="30" height="40" fill="gold"/>
    </svg>
    """
    return run_program(
        parse_program(source, **parse_options),
        heuristic=heuristic, prepare=prepare, record=record, budget=budget)

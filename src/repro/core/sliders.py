"""Built-in sliders for range-annotated numbers (§2.4).

"If a number is annotated with a range, written ``n{nmin-nmax}``, then
Sketch-n-Sketch will display a slider in the output pane that can be used to
manipulate the n value between nmin and nmax."

(User-*defined* sliders — §6.3 — are ordinary little shapes and are
manipulated through zones like any other shape.)

This is the Sliders stage of the core pipeline; ``repro.editor.sliders``
re-exports it for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..lang.ast import Loc
from ..lang.program import Program


@dataclass(frozen=True)
class BuiltinSlider:
    loc: Loc
    lo: float
    hi: float
    value: float

    @property
    def fraction(self) -> float:
        """Handle position in [0, 1]."""
        if self.hi == self.lo:
            return 0.0
        return (self.value - self.lo) / (self.hi - self.lo)

    def caption(self) -> str:
        return (f"{self.loc.display()} = {self.value} "
                f"[{self.lo} .. {self.hi}]")


def collect_sliders(program: Program) -> Dict[Loc, BuiltinSlider]:
    """One slider per range-annotated literal in the user program.

    >>> from repro.lang.program import parse_program
    >>> program = parse_program(
    ...     "(def x 10{0-100}) (svg [(rect 'red' x 0 20 20)])")
    >>> [slider.caption() for slider in collect_sliders(program).values()]
    ['x = 10.0 [0.0 .. 100.0]']
    """
    return {
        loc: BuiltinSlider(loc, lo, hi, value)
        for loc, lo, hi, value in program.range_annotations()
    }

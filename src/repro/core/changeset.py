"""Change sets: the currency of incremental re-computation.

Every program edit in the live-sync loop (§4.1) is a substitution ρ over
numeric literals.  A :class:`ChangeSet` records *which* locations a step
actually rewrote, so downstream stages of the pipeline can answer "which
shapes could this change affect?" instead of recomputing from scratch.

The contract:

* ``locs`` — the substituted :class:`~repro.lang.ast.Loc`s.  A non-structural
  change set promises that the program differs from its predecessor *only*
  in the values of these literals; the AST shape, every run-time trace, and
  therefore every zone's candidate location sets are unchanged **provided**
  the re-evaluation's control-flow guards still hold.
* ``structural`` — set when that promise cannot be made: the initial run, a
  guard flip during re-evaluation (a branch, clamp or list length changed),
  a program edit, or an unknown provenance.  A structural change invalidates
  every per-shape cache.

``FULL_CHANGE`` (structural, no loc information) and ``EMPTY_CHANGE``
(nothing changed) are the two distinguished values.

>>> bool(EMPTY_CHANGE), bool(FULL_CHANGE)
(False, True)
>>> EMPTY_CHANGE.union(FULL_CHANGE) is FULL_CHANGE
True
>>> from repro.lang.program import parse_program
>>> program = parse_program("(def x 10) (svg [(rect 'red' x 20 30 40)])")
>>> moved = program.substitute({program.user_locs()[0]: 50.0})
>>> moved.last_change
ChangeSet({x})
>>> moved.last_change.affects(moved.last_change.idents)
True
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, Iterable

if TYPE_CHECKING:                       # runtime import would be circular:
    from ..lang.ast import Loc          # lang.program records ChangeSets

__all__ = ["ChangeSet", "FULL_CHANGE", "EMPTY_CHANGE"]


class ChangeSet:
    """An immutable description of one program-update step."""

    __slots__ = ("locs", "idents", "structural")

    def __init__(self, locs: Iterable["Loc"] = (), *,
                 structural: bool = False):
        self.locs: FrozenSet["Loc"] = frozenset(locs)
        #: The same set keyed by ``Loc.ident`` — plain ints hash at C speed
        #: on the per-shape intersection path.
        self.idents: FrozenSet[int] = frozenset(
            loc.ident for loc in self.locs)
        self.structural = structural

    @classmethod
    def of(cls, locs: Iterable["Loc"]) -> "ChangeSet":
        """A value-only change of exactly ``locs``."""
        return cls(locs)

    def union(self, other: "ChangeSet") -> "ChangeSet":
        """Combine two consecutive steps (e.g. the drags of one gesture)."""
        if self.structural or other.structural:
            return FULL_CHANGE
        if not other.locs:
            return self
        if not self.locs:
            return other
        return ChangeSet(self.locs | other.locs)

    def affects(self, idents: FrozenSet[int]) -> bool:
        """Could a value with dependency set ``idents`` have changed?"""
        return self.structural or not self.idents.isdisjoint(idents)

    def __bool__(self) -> bool:
        return self.structural or bool(self.locs)

    def __repr__(self) -> str:
        if self.structural:
            return "ChangeSet(structural)"
        names = sorted(loc.display() for loc in self.locs)
        return f"ChangeSet({{{', '.join(names)}}})"


#: The pessimistic change set: everything may have changed.
FULL_CHANGE = ChangeSet(structural=True)

#: Nothing changed at all.
EMPTY_CHANGE = ChangeSet()

"""The staged run→assign→trigger→sliders pipeline (§4.1, §5.2.3).

:class:`SyncPipeline` is the single implementation of the loop the paper
describes — "the program is run, the new output is rendered … when the
user releases the mouse button, we compute new shape assignments and mouse
triggers" — shared by the CLI, the headless editor, the example renderer
and the benchmark harness.  It models the loop as four stages:

1. **Run** — evaluate the program and build the canvas
   (:meth:`eval_stage` + :meth:`canvas_stage`);
2. **Assign** — per-zone candidate analysis and heuristic choice
   (:meth:`assign_stage`);
3. **Trigger** — mouse triggers for every Active zone
   (:meth:`trigger_stage`);
4. **Sliders** — built-in sliders for range-annotated literals
   (:meth:`slider_stage`).

Every stage takes a :class:`~repro.core.changeset.ChangeSet` describing how
the current program differs from the one the stage last ran against, and
caches accordingly:

* **Run** replays the recorded evaluation guards
  (:mod:`repro.lang.incremental`) and rebuilds only changed canvas nodes;
  a guard flip escalates the change to structural (full re-run).
* **Assign** exploits that candidate location sets depend only on *trace
  structure*, never attribute values: after a non-structural change the
  incremental canvas rebuild preserves every trace object, which the stage
  revalidates per affected shape via identity signatures
  (:meth:`~repro.svg.canvas.Shape.trace_sig`) — re-analyzing a shape (and,
  if anything truly differs, re-choosing globally) only when the proof
  fails.
* **Trigger** rebuilds triggers for shapes whose dependency set intersects
  the change set and rebinds (shares the pre-read features of) the rest.
* **Sliders** recomputes only when the change touches a slider location.

The escalation discipline makes the caching self-checking: every
assumption ("same structure") is guarded by the recorded control-flow
guards, and anything unprovable falls back to the from-scratch path whose
outputs the caches are verified against (``tests/test_incremental_prepare``
and the release-latency benchmark).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..lang.ast import Loc
from ..lang.compile import compiled_enabled, ensure_compiled
from ..lang.eval import EvalBudget, budget_scope
from ..lang.incremental import EvalCache, record_evaluation, reevaluate
from ..lang.program import Program, parse_program
from ..svg.canvas import Canvas
from ..svg.render import render_canvas
from ..zones.assignment import (CanvasAssignments, ZoneAnalysis,
                                analyze_shape, choose_assignments)
from ..zones.triggers import (MouseTrigger, compute_shape_triggers,
                              compute_triggers)
from .changeset import EMPTY_CHANGE, FULL_CHANGE, ChangeSet
from .sliders import BuiltinSlider, collect_sliders

__all__ = ["SyncPipeline"]


class SyncPipeline:
    """Stateful staged pipeline over one evolving :class:`Program`.

    >>> pipeline = SyncPipeline.from_source(
    ...     "(def x 10) (svg [(rect 'teal' x 20 30 40)])")
    >>> pipeline.run().structural        # first run: everything computed
    True
    >>> x = pipeline.program.user_locs()[0]
    >>> change = pipeline.replace_program(
    ...     pipeline.program.substitute({x: 50.0}))
    >>> pipeline.run(change).structural  # guards held: incremental re-run
    False
    >>> 'x="50"' in pipeline.render()
    True
    """

    def __init__(self, program: Program, *, heuristic: str = "fair",
                 record: bool = True,
                 budget: Optional[EvalBudget] = None,
                 compiled: Optional[bool] = None,
                 specialize_probe=None):
        self.program = program
        self.heuristic = heuristic
        #: Compiled-artifact policy for the Run stage: ``True``/``False``
        #: pin it per pipeline (the differential harness runs both paths
        #: side by side); ``None`` defers to the ``REPRO_COMPILED``
        #: environment knob (:func:`repro.lang.compile.compiled_enabled`)
        #: at every run, so the knob is live even for open sessions.
        self.compiled = compiled
        #: Lifecycle observer passed to
        #: :func:`~repro.lang.compile.ensure_compiled` — the serve layer
        #: wires its ``compile.specialize`` fault point and counters here.
        self.specialize_probe = specialize_probe
        #: Whether the Run stage records control-flow guards so later runs
        #: can be incremental.  One-shot consumers (CLI render, example
        #: export, stage benchmarks) switch it off.
        self.record = record
        #: Optional :class:`~repro.lang.eval.EvalBudget` installed around
        #: every evaluation this pipeline performs (fresh counters per
        #: run).  A runaway program then fails the Run stage with
        #: :class:`~repro.lang.errors.ResourceExhausted` instead of
        #: wedging the thread; the stage leaves its caches untouched on
        #: failure, so the caller can roll back by re-installing the
        #: previous program.  The budget must not be shared with another
        #: thread's pipeline (counters are mutable): clone per pipeline.
        self.budget = budget
        self.output = None
        self.canvas: Optional[Canvas] = None
        self.assignments: Optional[CanvasAssignments] = None
        self.triggers: Dict[Tuple[int, str], MouseTrigger] = {}
        self.sliders: Dict[Loc, BuiltinSlider] = {}
        self._eval_cache: Optional[EvalCache] = None
        self._pending_output = None
        # Per-shape Assign caches: analyses and trace-identity signatures.
        self._shape_analyses: Optional[List[List[ZoneAnalysis]]] = None
        self._shape_sigs: Optional[List[Tuple[int, ...]]] = None
        self._slider_idents: frozenset = frozenset()

    @classmethod
    def from_source(cls, source: str, *, heuristic: str = "fair",
                    record: bool = True,
                    budget: Optional[EvalBudget] = None,
                    compiled: Optional[bool] = None,
                    specialize_probe=None,
                    **parse_options) -> "SyncPipeline":
        return cls(parse_program(source, **parse_options),
                   heuristic=heuristic, record=record, budget=budget,
                   compiled=compiled, specialize_probe=specialize_probe)

    # -- program replacement ---------------------------------------------------

    def replace_program(self, program: Program,
                        change: Optional[ChangeSet] = None) -> ChangeSet:
        """Install a new program and return the change set to feed the
        stages — ``program.last_change`` unless the caller knows better."""
        self.program = program
        return change if change is not None else program.last_change

    def edit_program(self, program: Program,
                     change: Optional[ChangeSet] = None) -> ChangeSet:
        """Install an *edited* program and run every stage under its change.

        The change-set-aware counterpart of :meth:`replace_program` for
        source edits (:func:`repro.lang.diff.diff_source`): a value-only
        change replays the recorded guards and revalidates the Prepare
        caches exactly like a drag step; a structural change rebuilds
        everything.  Returns the effective change set (escalated to
        ``FULL_CHANGE`` if a guard flipped during the replay).
        """
        change = self.replace_program(program, change)
        return self.run(change)

    # -- stage 1: Run ------------------------------------------------------------

    def eval_stage(self, change: Optional[ChangeSet] = None) -> ChangeSet:
        """Evaluate the program, incrementally when the change allows.

        Returns the *effective* change set: the input one when the guarded
        replay succeeded, ``FULL_CHANGE`` when a full (re-)evaluation was
        needed.  The output is staged for :meth:`canvas_stage`.
        """
        change = FULL_CHANGE if change is None else change
        # One budget scope per Run: a guarded replay that flips into a
        # full re-evaluation spends from the same allowance — it is one
        # user action either way.  Failure (ResourceExhausted, any
        # LittleError) propagates *before* any cache assignment below, so
        # the pipeline still describes the previously installed program.
        with budget_scope(self.budget):
            if (not change.structural and self._eval_cache is not None
                    and self.output is not None):
                if not change.locs:
                    self._pending_output = self.output
                    return change
                # Consult the compiled artifact first (when the policy
                # allows).  Its verdict is final: a ``None`` — guard flip
                # or replay error — escalates straight to the full
                # re-evaluation below, exactly like the interpreted
                # replay's, so the budget is never charged twice for one
                # step and the two paths stay step-for-step equivalent.
                replayed = False
                output = None
                if (self.compiled if self.compiled is not None
                        else compiled_enabled()):
                    artifact = ensure_compiled(self._eval_cache,
                                               self.specialize_probe)
                    if artifact is not None:
                        output = artifact.replay(self.program.rho0)
                        replayed = True
                if not replayed:
                    output = reevaluate(self._eval_cache, self.program.rho0)
                if output is not None:
                    self._pending_output = output
                    return change
            if self.record:
                output, self._eval_cache = record_evaluation(self.program)
            else:
                output = self.program.evaluate()
                self._eval_cache = None
            self._pending_output = output
            return FULL_CHANGE

    def canvas_stage(self, change: Optional[ChangeSet] = None) -> Canvas:
        """Build the canvas for the staged output — incrementally (shared
        nodes, no re-validation, transplanted indexes) for a
        non-structural change."""
        change = FULL_CHANGE if change is None else change
        output = self._pending_output
        if output is None:
            raise RuntimeError("canvas_stage before eval_stage")
        self._pending_output = None
        if change.structural or self.canvas is None:
            self.canvas = Canvas.from_value(output)
        elif output is not self.output:
            self.canvas = Canvas.rebuilt(self.canvas, self.output, output)
        self.output = output
        return self.canvas

    def run_stage(self, change: Optional[ChangeSet] = None) -> ChangeSet:
        """The Run stage: evaluate + build the canvas."""
        effective = self.eval_stage(change)
        self.canvas_stage(effective)
        return effective

    def seed_run(self, output, eval_cache: Optional[EvalCache] = None
                 ) -> ChangeSet:
        """Adopt a recorded evaluation of ``self.program`` as the Run stage.

        ``output`` (and optionally the :class:`EvalCache` recorded alongside
        it) must come from evaluating exactly ``self.program`` — e.g. from
        the serve layer's shared compile cache, so N sessions opening the
        same source evaluate it once.  The cache is only adopted on a
        recording pipeline; re-evaluations replace it per pipeline, so
        sharing is read-only.
        """
        self._eval_cache = eval_cache if self.record else None
        self._pending_output = output
        self.canvas_stage(FULL_CHANGE)
        return FULL_CHANGE

    # -- stage 2: Assign ---------------------------------------------------------

    def assign_stage(self, change: Optional[ChangeSet] = None
                     ) -> CanvasAssignments:
        """Compute (or revalidate) shape assignments for every zone."""
        change = FULL_CHANGE if change is None else change
        canvas = self.canvas
        if canvas is None:
            raise RuntimeError("assign_stage before run_stage")
        stale = (change.structural or self._shape_analyses is None
                 or self.assignments is None
                 or self.assignments.heuristic != self.heuristic
                 or len(self._shape_analyses) != len(canvas.shapes))
        if stale:
            self._shape_analyses = [analyze_shape(canvas, shape)
                                    for shape in canvas]
            self._shape_sigs = [shape.trace_sig() for shape in canvas]
            self.assignments = choose_assignments(
                canvas, [analysis for per_shape in self._shape_analyses
                         for analysis in per_shape], self.heuristic)
            return self.assignments
        # Value-only change: candidate locsets depend on trace structure
        # alone, and the incremental canvas rebuild preserves trace
        # objects.  Revalidate that per affected shape by identity
        # signature; re-analyze (and re-choose globally — the fair
        # heuristic's rotation couples zones across shapes) only if a
        # signature fails the proof.
        rechoose = False
        for index in sorted(canvas.shapes_affected(change)):
            shape = canvas[index]
            sig = shape.trace_sig()
            if sig == self._shape_sigs[index]:
                continue
            self._shape_sigs[index] = sig
            fresh = analyze_shape(canvas, shape)
            if fresh != self._shape_analyses[index]:
                rechoose = True
            self._shape_analyses[index] = fresh
        if rechoose:
            self.assignments = choose_assignments(
                canvas, [analysis for per_shape in self._shape_analyses
                         for analysis in per_shape], self.heuristic)
        return self.assignments

    # -- stage 3: Trigger --------------------------------------------------------

    def trigger_stage(self, change: Optional[ChangeSet] = None
                      ) -> Dict[Tuple[int, str], MouseTrigger]:
        """Compute mouse triggers for every Active zone."""
        change = FULL_CHANGE if change is None else change
        canvas, assignments = self.canvas, self.assignments
        if canvas is None or assignments is None:
            raise RuntimeError("trigger_stage before assign_stage")
        rho = self.program.rho0
        if change.structural or not self.triggers:
            self.triggers = compute_triggers(canvas, assignments, rho)
            return self.triggers
        affected = canvas.shapes_affected(change)
        triggers: Dict[Tuple[int, str], MouseTrigger] = {}
        for index, keys in assignments.keys_by_shape().items():
            fresh = index in affected
            if not fresh:
                shape = canvas[index]
                for key in keys:
                    previous = self.triggers.get(key)
                    if (previous is None or
                            previous.assignment is not assignments.chosen[key]):
                        fresh = True          # re-chosen or never built
                        break
                else:
                    for key in keys:
                        triggers[key] = self.triggers[key].rebind(shape, rho)
            if fresh:
                triggers.update(compute_shape_triggers(
                    canvas, assignments, index, rho))
        self.triggers = triggers
        return triggers

    # -- stage 4: Sliders --------------------------------------------------------

    def slider_stage(self, change: Optional[ChangeSet] = None
                     ) -> Dict[Loc, BuiltinSlider]:
        """Collect built-in sliders (§2.4) for range-annotated literals."""
        change = FULL_CHANGE if change is None else change
        if change.structural or change.affects(self._slider_idents):
            self.sliders = collect_sliders(self.program)
            self._slider_idents = frozenset(loc.ident
                                            for loc in self.sliders)
        return self.sliders

    # -- composite operations ----------------------------------------------------

    def prepare(self, change: Optional[ChangeSet] = None) -> None:
        """Assign + Trigger + Sliders — the Prepare operation of §5.2.3,
        performed "when the program is run initially and after the user
        finishes dragging a zone"."""
        self.assign_stage(change)
        self.trigger_stage(change)
        self.slider_stage(change)

    def run(self, change: Optional[ChangeSet] = None) -> ChangeSet:
        """The whole pipeline: Run, then Prepare under the effective
        change (escalated to full if evaluation could not be replayed)."""
        effective = self.run_stage(change)
        self.prepare(effective)
        return effective

    # -- output ------------------------------------------------------------------

    def render(self, *, include_hidden: bool = False) -> str:
        """The canvas as SVG text (Appendix C)."""
        if self.canvas is None:
            raise RuntimeError("render before run_stage")
        return render_canvas(self.canvas.root, include_hidden=include_hidden)

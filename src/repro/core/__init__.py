"""The staged live-synchronization core (§4.1, §5.2.3).

This package is the one run path shared by the CLI, the headless editor,
the example renderer and the benchmark harness:

* :mod:`~repro.core.changeset` — the :class:`ChangeSet` contract describing
  how a program differs from its predecessor;
* :mod:`~repro.core.pipeline` — :class:`SyncPipeline`, the
  Run → Assign → Trigger → Sliders stages with change-set-driven caching;
* :mod:`~repro.core.run` — one-shot conveniences (``run_source`` /
  ``run_program``) for parse-evaluate-render consumers.

``changeset`` is imported eagerly (the ``lang`` layer depends on it);
``pipeline``/``run`` symbols are resolved lazily to keep the dependency
graph acyclic — ``pipeline`` imports ``lang``, ``svg`` and ``zones``.
"""

from .changeset import EMPTY_CHANGE, FULL_CHANGE, ChangeSet

__all__ = [
    "ChangeSet", "EMPTY_CHANGE", "FULL_CHANGE",
    "SyncPipeline", "run_program", "run_source",
]

_LAZY = {
    "SyncPipeline": "pipeline",
    "run_program": "run",
    "run_source": "run",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module
    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value

"""Bounding boxes for canvas shapes.

Used by examples and tests (e.g. checking that a "group box" really spans a
design, §6.1) and by hit-testing in the headless editor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang.errors import SvgError
from .canvas import Shape


@dataclass(frozen=True)
class BBox:
    x_min: float
    y_min: float
    x_max: float
    y_max: float

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def center(self):
        return ((self.x_min + self.x_max) / 2.0,
                (self.y_min + self.y_max) / 2.0)

    def contains(self, x: float, y: float) -> bool:
        return self.x_min <= x <= self.x_max and self.y_min <= y <= self.y_max

    def union(self, other: "BBox") -> "BBox":
        return BBox(min(self.x_min, other.x_min),
                    min(self.y_min, other.y_min),
                    max(self.x_max, other.x_max),
                    max(self.y_max, other.y_max))


def shape_bbox(shape: Shape) -> Optional[BBox]:
    """Bounding box of a shape, or None for kinds without box geometry."""
    kind = shape.kind
    try:
        if kind == "rect":
            x = shape.simple_num("x").value
            y = shape.simple_num("y").value
            w = shape.simple_num("width").value
            h = shape.simple_num("height").value
            return BBox(x, y, x + w, y + h)
        if kind == "circle":
            cx = shape.simple_num("cx").value
            cy = shape.simple_num("cy").value
            r = shape.simple_num("r").value
            return BBox(cx - r, cy - r, cx + r, cy + r)
        if kind == "ellipse":
            cx = shape.simple_num("cx").value
            cy = shape.simple_num("cy").value
            rx = shape.simple_num("rx").value
            ry = shape.simple_num("ry").value
            return BBox(cx - rx, cy - ry, cx + rx, cy + ry)
        if kind == "line":
            x1 = shape.simple_num("x1").value
            y1 = shape.simple_num("y1").value
            x2 = shape.simple_num("x2").value
            y2 = shape.simple_num("y2").value
            return BBox(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        if kind in ("polygon", "polyline"):
            points = shape.points()
            xs = [p[0].value for p in points]
            ys = [p[1].value for p in points]
            if not xs:
                return None
            return BBox(min(xs), min(ys), max(xs), max(ys))
        if kind == "path":
            numbers = shape.path_numbers()
            axes = shape.path_coordinate_axes()
            xs = [n.value for n, axis in zip(numbers, axes) if axis == 0]
            ys = [n.value for n, axis in zip(numbers, axes) if axis == 1]
            if not xs or not ys:
                return None
            return BBox(min(xs), min(ys), max(xs), max(ys))
        if kind == "text":
            x = shape.simple_num("x").value
            y = shape.simple_num("y").value
            return BBox(x, y - 12, x + 100, y)   # nominal text extent
    except SvgError:
        return None
    return None


def canvas_bbox(shapes) -> Optional[BBox]:
    """Union of the bounding boxes of ``shapes``."""
    box: Optional[BBox] = None
    for shape in shapes:
        shape_box = shape_bbox(shape)
        if shape_box is None:
            continue
        box = shape_box if box is None else box.union(shape_box)
    return box

"""Bulk SVG → little ingestion with round-trip verification.

The importer (:mod:`repro.svg.importer`) converts one document; this
module is the *pipeline* around it — the ``repro import`` CLI verb and
the scenario-diversity machine ROADMAP open item 5 asks for.  Every
converted document is verified through the one shared run path
(:func:`repro.core.run.run_source`, the same staged pipeline the editor,
CLI and benchmarks run on): the emitted program must **parse**, **run**,
**render**, and expose **draggable zones** — the sequel paper's premise
that imported shapes arrive with usable locations.  A document that
fails any stage is *quarantined*: the result carries a one-line
diagnostic and a failure class (never a traceback, and the caller never
writes a partial program file), and bulk reports count quarantined
documents per class.

>>> result = ingest_text('<svg><circle cx="9" cy="9" r="4"/></svg>',
...                      name='dot.svg')
>>> result.ok, result.shapes, result.zones > 0
(True, 1, True)
>>> bad = ingest_text('<svg><rect x="inf" y="1" width="2" height="3"/>'
...                   '</svg>', name='bad.svg')
>>> bad.ok, bad.failure
(False, 'number')
>>> print(bad.diagnostic())
bad.svg: number: non-finite number in attribute 'x'
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..lang.errors import (LittleError, LittleSyntaxError, ResourceExhausted,
                           SvgError, SvgImportError)
from .importer import svg_to_little

__all__ = ["IngestResult", "IngestReport", "ingest_text", "ingest_file",
           "ingest_directory", "verify_little"]

#: Every failure class a quarantined document can carry: the importer's
#: :class:`~repro.lang.errors.SvgImportError` reasons, plus the
#: verification stages (``emit-parse``/``emit-run``/``emit-render`` name
#: importer bugs — the *emitted program* misbehaved), plus resource and
#: shape/zone guarantees.
FAILURE_CLASSES = ("read", "xml", "not-svg", "string", "number", "path",
                   "points", "transform", "root", "convert", "emit-parse",
                   "emit-run", "emit-render", "limit", "no-shapes",
                   "no-zones", "internal")


@dataclass
class IngestResult:
    """The outcome of ingesting one SVG document."""

    name: str                        #: file name (or label) of the document
    ok: bool
    failure: Optional[str] = None    #: one of :data:`FAILURE_CLASSES`
    message: str = ""                #: one-line detail for quarantines
    source: Optional[str] = None     #: the *verified* little program
    shapes: int = 0
    zones: int = 0
    constants: int = 0

    def diagnostic(self) -> str:
        """The one-line status, à la ``repro check``."""
        if self.ok:
            return (f"{self.name}: ok ({self.shapes} shapes, "
                    f"{self.zones} zones, {self.constants} constants)")
        return f"{self.name}: {self.failure}: {self.message}"


@dataclass
class IngestReport:
    """A bulk ingestion run: per-document results plus counters."""

    results: List[IngestResult] = field(default_factory=list)

    @property
    def ok(self) -> List[IngestResult]:
        return [result for result in self.results if result.ok]

    @property
    def failed(self) -> List[IngestResult]:
        return [result for result in self.results if not result.ok]

    def counters(self) -> Dict[str, int]:
        """Quarantined documents per failure class (only classes that
        occurred), for the summary table and machine consumers."""
        counts: Dict[str, int] = {}
        for result in self.failed:
            counts[result.failure] = counts.get(result.failure, 0) + 1
        return dict(sorted(counts.items()))


def _one_line(error: BaseException) -> str:
    """Collapse an exception message to a single diagnostic line."""
    text = " ".join(str(error).split())
    return text or type(error).__name__


def verify_little(source: str, *, budget=None) -> Tuple[int, int, int]:
    """Round-trip-verify an emitted program through the shared run path.

    Parses, runs (Prepare stages included, so zone assignment really
    happens), renders, and checks the canvas has shapes with at least
    one draggable (Active, chosen) zone.  Returns ``(shapes, zones,
    constants)``; raises the stage's error otherwise — callers classify.
    """
    from ..core.run import run_source

    pipeline = run_source(source, prepare=True, budget=budget)
    pipeline.render()
    shapes = len(pipeline.canvas)
    if shapes == 0:
        raise SvgImportError("document has no importable shapes",
                             reason="no-shapes")
    zones = len(pipeline.assignments.chosen)
    if zones == 0:
        raise SvgImportError("no draggable zones on any imported shape",
                             reason="no-zones")
    return shapes, zones, len(pipeline.program.user_locs())


def ingest_text(xml_text: str, *, name: str = "<svg>",
                budget=None) -> IngestResult:
    """Convert and verify one SVG document held in memory."""
    def quarantine(failure: str, error: BaseException) -> IngestResult:
        return IngestResult(name=name, ok=False, failure=failure,
                            message=_one_line(error))
    try:
        source = svg_to_little(xml_text)
    except SvgImportError as error:
        return quarantine(error.reason, error)
    except SvgError as error:
        return quarantine("convert", error)
    try:
        shapes, zones, constants = verify_little(source, budget=budget)
    except SvgImportError as error:     # no-shapes / no-zones guarantees
        return quarantine(error.reason, error)
    except LittleSyntaxError as error:
        return quarantine("emit-parse", error)
    except ResourceExhausted as error:
        return quarantine("limit", error)
    except SvgError as error:
        return quarantine("emit-render", error)
    except LittleError as error:
        return quarantine("emit-run", error)
    except Exception as error:          # never a traceback to the user
        return quarantine("internal", error)
    return IngestResult(name=name, ok=True, source=source, shapes=shapes,
                        zones=zones, constants=constants)


def ingest_file(path, *, budget=None) -> IngestResult:
    """Convert and verify one ``.svg`` file (read errors quarantine as
    class ``read``)."""
    path = pathlib.Path(path)
    try:
        xml_text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        reason = getattr(error, "strerror", None) or "not valid UTF-8"
        return IngestResult(name=path.name, ok=False, failure="read",
                            message=" ".join(str(reason).split()))
    return ingest_text(xml_text, name=path.name, budget=budget)


def ingest_directory(directory, *, pattern: str = "*.svg",
                     budget=None) -> IngestReport:
    """Ingest every ``pattern`` file directly under ``directory``
    (sorted by name; not recursive — quarantine subfolders stay out of
    the green corpus)."""
    directory = pathlib.Path(directory)
    report = IngestReport()
    for path in sorted(directory.glob(pattern)):
        if path.is_file():
            report.results.append(ingest_file(path, budget=budget))
    return report

"""The canvas model: a flattened, indexable view of the output shapes.

The editor, zone assignment and statistics all address shapes by canvas
index and read numeric attributes (with traces) through :class:`AttrRef`
paths, which also reach inside structured attributes such as ``'points'``
and path data ``'d'``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..lang.ast import Loc
from ..lang.errors import SvgError
from ..lang.values import VNum, Value, is_list, to_pylist
from .attrs import path_command_groups
from .node import SHAPE_KINDS, SvgNode, parse_canvas, rebuild_node


@dataclass(frozen=True)
class AttrRef:
    """A reference to one numeric attribute of a shape.

    ``path`` addresses the number:

    * ``('x',)`` — a plain numeric attribute;
    * ``('points', i, axis)`` — coordinate ``axis`` (0=x, 1=y) of point i;
    * ``('d', i)`` — the i-th number in the path data list.
    """

    name: str
    path: Tuple


class Shape:
    """One manipulable shape on the canvas."""

    def __init__(self, index: int, node: SvgNode):
        self.index = index
        self.node = node
        self.kind = node.kind
        self._path_numbers: Optional[List[VNum]] = None
        self._dep_locs: Optional[frozenset] = None

    def __repr__(self) -> str:
        return f"Shape({self.index}, {self.kind!r})"

    @property
    def hidden(self) -> bool:
        return self.node.hidden

    # -- numeric attribute access ---------------------------------------------

    def get_num(self, ref: AttrRef) -> VNum:
        """Resolve an :class:`AttrRef` to the numeric value it denotes."""
        key = ref.path[0]
        value = self.node.attr(key)
        if value is None:
            raise SvgError(f"shape {self.index} ({self.kind}) has no "
                           f"attribute {key!r}")
        if len(ref.path) == 1:
            if not isinstance(value, VNum):
                raise SvgError(f"attribute {key!r} is not a number")
            return value
        if key == "points":
            _, point_index, axis = ref.path
            points = to_pylist(value)
            coords = to_pylist(points[point_index])
            coord = coords[axis]
            if not isinstance(coord, VNum):
                raise SvgError(f"point {point_index} of shape "
                               f"{self.index} is not numeric")
            return coord
        if key == "d":
            _, number_index = ref.path
            numbers = self.path_numbers()
            return numbers[number_index]
        if key == "transform":
            _, command_index, arg_index = ref.path
            commands = to_pylist(value)
            parts = to_pylist(commands[command_index])
            number = parts[arg_index]
            if not isinstance(number, VNum):
                raise SvgError(f"transform argument {arg_index} of shape "
                               f"{self.index} is not numeric")
            return number
        raise SvgError(f"unsupported attribute path {ref.path!r}")

    def simple_num(self, key: str) -> VNum:
        return self.get_num(AttrRef(key, (key,)))

    def points(self) -> List[Tuple[VNum, VNum]]:
        value = self.node.attr("points")
        if value is None or not is_list(value):
            raise SvgError(f"shape {self.index} has no 'points' list")
        pairs = []
        for point in to_pylist(value):
            coords = to_pylist(point)
            pairs.append((coords[0], coords[1]))
        return pairs

    def path_numbers(self) -> List[VNum]:
        """All numbers in the path data, flattened in order.

        Cached per shape: every ``('d', i)`` AttrRef resolved through
        :meth:`get_num` (zone analysis, trigger construction, hover) hits
        the same parse, which is linear in the path length.
        """
        if self._path_numbers is not None:
            return self._path_numbers
        value = self.node.attr("d")
        if value is None:
            raise SvgError(f"shape {self.index} has no 'd' attribute")
        numbers: List[VNum] = []
        for _command, group in path_command_groups(value):
            numbers.extend(group)
        self._path_numbers = numbers
        return numbers

    # -- loc dependencies (the incremental-Prepare index) -----------------------

    def attr_traces(self) -> List:
        """Traces of every numeric value in this shape's attributes."""
        traces = []
        for key, value in self.node.attrs:
            traces.extend(_attr_traces(key, value))
        return traces

    def trace_sig(self) -> Tuple[int, ...]:
        """Identity signature of the shape's attribute traces.

        The incremental canvas rebuild (:meth:`Canvas.rebuilt`) preserves
        trace objects, so an unchanged signature proves the shape's zone
        structure and candidate location sets are exactly those of the
        previous Prepare — without re-walking any trace.
        """
        return tuple(id(trace) for trace in self.attr_traces())

    def dep_locs(self) -> frozenset:
        """``Loc.ident`` of every location (frozen or not) appearing in any
        attribute trace — "which changes could affect this shape?"."""
        if self._dep_locs is not None:
            return self._dep_locs
        idents = set()
        seen = set()
        stack = list(self.attr_traces())
        while stack:
            node = stack.pop()
            if type(node) is Loc:
                idents.add(node.ident)
            else:
                key = id(node)
                if key in seen:        # traces are DAGs; walk shared
                    continue           # subtrees once per shape
                seen.add(key)
                stack.extend(node.args)
        self._dep_locs = frozenset(idents)
        return self._dep_locs

    def path_coordinate_axes(self) -> List[int]:
        """For each number in :meth:`path_numbers`, whether it is an x (0)
        or a y (1) coordinate."""
        value = self.node.attr("d")
        if value is None:
            raise SvgError(f"shape {self.index} has no 'd' attribute")
        axes: List[int] = []
        for command, group in path_command_groups(value):
            letter = command.upper()
            if letter == "H":
                axes.extend([0] * len(group))
            elif letter == "V":
                axes.extend([1] * len(group))
            elif letter == "A":
                # rx ry rot large-arc sweep x y — only the endpoint is a
                # plain coordinate pair; mark the rest as x-like.
                for chunk_start in range(0, len(group), 7):
                    axes.extend([0, 1, 0, 0, 0, 0, 1])
            else:
                for position in range(len(group)):
                    axes.append(position % 2)
        return axes


class Canvas:
    """The flattened list of shapes generated by a program run."""

    def __init__(self, root: SvgNode):
        self.root = root
        self.shapes: List[Shape] = []
        self._flatten(root)
        self._loc_index: Optional[Dict[int, Tuple[int, ...]]] = None

    @classmethod
    def from_value(cls, value: Value) -> "Canvas":
        return cls(parse_canvas(value))

    @classmethod
    def rebuilt(cls, canvas: "Canvas", old_value: Value,
                new_value: Value) -> "Canvas":
        """Incremental rebuild for a *structurally identical* new output
        (see :func:`~repro.svg.node.rebuild_node`).  Traces are preserved,
        so the loc-dependency index carries over unchanged.

        The flatten order only depends on node kinds, which the rebuild
        preserves, so shapes are paired with their predecessors by
        position: an untouched node keeps its old :class:`Shape` (and
        thereby its lazy caches — both are pure functions of the node), a
        rebuilt one gets a fresh wrapper with the dependency set
        transplanted."""
        new_root = rebuild_node(canvas.root, old_value, new_value)
        new_canvas = cls.__new__(cls)
        new_canvas.root = new_root
        new_canvas.shapes = shapes = []
        new_canvas._loc_index = canvas._loc_index
        old_shapes = canvas.shapes

        def walk(node: SvgNode) -> None:
            for child in node.children:
                if child.kind in ("svg", "g"):
                    walk(child)
                else:
                    old_shape = old_shapes[len(shapes)]
                    if child is old_shape.node:
                        shapes.append(old_shape)
                    else:
                        shape = Shape(len(shapes), child)
                        shape._dep_locs = old_shape._dep_locs
                        shapes.append(shape)

        walk(new_root)
        return new_canvas

    def _flatten(self, node: SvgNode) -> None:
        for child in node.children:
            if child.kind in ("svg", "g"):
                self._flatten(child)
            else:
                self.shapes.append(Shape(len(self.shapes), child))

    def __len__(self) -> int:
        return len(self.shapes)

    def __iter__(self) -> Iterator[Shape]:
        return iter(self.shapes)

    def __getitem__(self, index: int) -> Shape:
        return self.shapes[index]

    def visible_shapes(self) -> List[Shape]:
        return [shape for shape in self.shapes if not shape.hidden]

    def shapes_of_kind(self, kind: str) -> List[Shape]:
        return [shape for shape in self.shapes if shape.kind == kind]

    def all_numeric_traces(self):
        """Traces of every numeric attribute on the canvas — the trace pool
        used by the biased heuristic and the Appendix G "# Output Locs"
        statistic."""
        traces = []
        for shape in self.shapes:
            traces.extend(shape.attr_traces())
        return traces

    # -- loc-dependency index ----------------------------------------------------

    def loc_shape_index(self) -> Dict[int, Tuple[int, ...]]:
        """``Loc.ident`` → indices of the shapes whose attribute traces
        mention it.  Built lazily, once per canvas structure; the
        incremental rebuild transplants it."""
        if self._loc_index is None:
            index: Dict[int, List[int]] = {}
            for shape in self.shapes:
                for ident in shape.dep_locs():
                    index.setdefault(ident, []).append(shape.index)
            self._loc_index = {ident: tuple(indices)
                               for ident, indices in index.items()}
        return self._loc_index

    def shapes_affected(self, change) -> frozenset:
        """Indices of the shapes whose dependency set intersects the
        change set; every shape when the change is structural."""
        if change.structural:
            return frozenset(range(len(self.shapes)))
        index = self.loc_shape_index()
        affected = set()
        for ident in change.idents:
            affected.update(index.get(ident, ()))
        return frozenset(affected)


def _attr_traces(key: str, value: Value):
    if isinstance(value, VNum):
        return [value.trace]
    if key == "points" and is_list(value):
        traces = []
        for point in to_pylist(value):
            if is_list(point):
                for coord in to_pylist(point):
                    if isinstance(coord, VNum):
                        traces.append(coord.trace)
        return traces
    if key in ("d", "fill", "stroke", "transform") and is_list(value):
        traces = []
        stack = list(to_pylist(value))
        while stack:
            item = stack.pop()
            if isinstance(item, VNum):
                traces.append(item.trace)
            elif is_list(item):
                stack.extend(to_pylist(item))
        return traces
    return []

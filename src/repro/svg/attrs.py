"""Attribute translation ``[wk wv] ↪ svgAttr`` (paper Appendix A).

* strings pass through — "a thin wrapper over the target SVG format";
* numbers print without units (pixels);
* ``'points'`` lists become ``"x1,y1 x2,y2 …"``;
* ``'fill'``/``'stroke'`` given ``[r g b a]`` become ``rgba(…)``;
* ``'fill'``/``'stroke'`` given a *color number* in [0, 500] are mapped onto
  a hue spectrum with a grayscale band (Appendix C, "Color Numbers");
* ``'d'`` command lists become path-data strings;
* ``'transform'`` command lists become ``rotate(…)``/``matrix(…)`` strings;
* ``'ZONES'``/``'HIDDEN'``/``'TEXT'`` are editor-internal and translate to
  nothing.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..lang.errors import SvgError
from ..lang.values import VNum, VStr, Value, format_number, is_list, to_pylist

#: Hues cover color numbers 0–360; 360–500 is the grayscale band.
GRAYSCALE_START = 360.0
COLOR_NUM_MAX = 500.0


def translate_attr(key: str, value: Value) -> Optional[Tuple[str, str]]:
    """Translate one attribute pair to an XML (name, text) pair, or None
    for editor-internal attributes."""
    if key in ("ZONES", "HIDDEN", "TEXT"):
        return None
    if isinstance(value, VStr):
        return (key, value.value)
    if isinstance(value, VNum):
        if key in ("fill", "stroke"):
            return (key, color_number_to_css(value.value))
        return (key, format_number(value.value))
    if is_list(value):
        if key == "points":
            return (key, points_to_string(value))
        if key in ("fill", "stroke"):
            return (key, rgba_to_css(value))
        if key == "d":
            return (key, path_data_to_string(value))
        if key == "transform":
            return (key, transform_to_string(value))
        raise SvgError(f"attribute {key!r} does not accept a list value")
    raise SvgError(f"cannot translate attribute {key!r} "
                   f"({type(value).__name__})")


def points_to_string(value: Value) -> str:
    """``[[x1 y1] [x2 y2] …] ↪ "x1,y1 x2,y2 …"``."""
    rendered: List[str] = []
    for point in to_pylist(value):
        if not is_list(point):
            raise SvgError("'points' entries must be [x y] pairs")
        coords = to_pylist(point)
        if len(coords) != 2 or not all(isinstance(c, VNum) for c in coords):
            raise SvgError("'points' entries must be numeric [x y] pairs")
        rendered.append(f"{format_number(coords[0].value)},"
                        f"{format_number(coords[1].value)}")
    return " ".join(rendered)


def rgba_to_css(value: Value) -> str:
    """``[r g b a] ↪ 'rgba(r, g, b, a)'``."""
    parts = to_pylist(value)
    if len(parts) != 4 or not all(isinstance(p, VNum) for p in parts):
        raise SvgError("color lists must be numeric [r g b a]")
    r, g, b, a = (p.value for p in parts)
    return (f"rgba({format_number(r)},{format_number(g)},"
            f"{format_number(b)},{format_number(a)})")


def color_number_to_css(n: float) -> str:
    """Map a color number in [0, 500] onto the paper's spectrum: hues for
    [0, 360), then grayscale for [360, 500]."""
    n = max(0.0, min(COLOR_NUM_MAX, n))
    if n < GRAYSCALE_START:
        return f"hsl({format_number(round(n, 3))},100%,50%)"
    fraction = (n - GRAYSCALE_START) / (COLOR_NUM_MAX - GRAYSCALE_START)
    level = round(fraction * 255)
    return f"rgb({level},{level},{level})"


_PATH_COMMANDS = {
    # command letter -> number of numeric parameters
    "M": 2, "L": 2, "H": 1, "V": 1, "C": 6, "S": 4, "Q": 4, "T": 2,
    "A": 7, "Z": 0,
}


def path_command_groups(value: Value) -> List[Tuple[str, List[VNum]]]:
    """Split a ``'d'`` attribute list into (command, [numbers]) groups,
    validating parameter counts.  Lower-case (relative) commands are kept
    as written."""
    groups: List[Tuple[str, List[VNum]]] = []
    items = to_pylist(value)
    index = 0
    while index < len(items):
        item = items[index]
        if not isinstance(item, VStr):
            raise SvgError("path data must start each group with a "
                           "command letter")
        command = item.value
        expected = _PATH_COMMANDS.get(command.upper())
        if expected is None:
            raise SvgError(f"unknown path command {command!r}")
        numbers: List[VNum] = []
        index += 1
        while (index < len(items) and isinstance(items[index], VNum)):
            numbers.append(items[index])
            index += 1
        if expected and (not numbers or len(numbers) % expected != 0):
            raise SvgError(
                f"path command {command!r} expects groups of {expected} "
                f"numbers, got {len(numbers)}")
        groups.append((command, numbers))
    return groups


def path_data_to_string(value: Value) -> str:
    parts: List[str] = []
    for command, numbers in path_command_groups(value):
        parts.append(command)
        parts.extend(format_number(num.value) for num in numbers)
    return " ".join(parts)


def transform_to_string(value: Value) -> str:
    """``[['rotate' a cx cy] …] ↪ "rotate(a,cx,cy) …"``."""
    rendered: List[str] = []
    for command in to_pylist(value):
        if not is_list(command):
            raise SvgError("'transform' entries must be command lists")
        parts = to_pylist(command)
        if not parts or not isinstance(parts[0], VStr):
            raise SvgError("'transform' commands must start with a name")
        name = parts[0].value
        if name not in ("rotate", "translate", "scale", "matrix"):
            raise SvgError(f"unknown transform command {name!r}")
        numbers = parts[1:]
        if not all(isinstance(n, VNum) for n in numbers):
            raise SvgError(f"transform {name!r} arguments must be numbers")
        args = ",".join(format_number(n.value) for n in numbers)
        rendered.append(f"{name}({args})")
    return " ".join(rendered)

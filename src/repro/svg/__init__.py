"""SVG substrate: node model, attribute translation, canvas, rendering."""

from .attrs import (color_number_to_css, path_command_groups,
                    path_data_to_string, points_to_string, rgba_to_css,
                    transform_to_string, translate_attr)
from .bbox import BBox, canvas_bbox, shape_bbox
from .canvas import AttrRef, Canvas, Shape
from .importer import import_svg_file, svg_to_little
from .node import (EDITOR_ATTRS, SHAPE_KINDS, SvgNode, parse_canvas,
                   value_to_node)
from .render import render_canvas, render_node

__all__ = [
    "color_number_to_css", "path_command_groups", "path_data_to_string",
    "points_to_string", "rgba_to_css", "transform_to_string",
    "translate_attr",
    "BBox", "canvas_bbox", "shape_bbox",
    "AttrRef", "Canvas", "Shape",
    "EDITOR_ATTRS", "SHAPE_KINDS", "SvgNode", "parse_canvas",
    "value_to_node",
    "render_canvas", "render_node",
    "import_svg_file", "svg_to_little",
]

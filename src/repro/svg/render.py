"""Serialize :class:`~repro.svg.node.SvgNode` trees to SVG/XML text.

Matches the reference implementation's export facility (Appendix C,
"Exporting to SVG"): editor-internal attributes are stripped, ``TEXT``
becomes character data, and hidden helper shapes may optionally be omitted.
"""

from __future__ import annotations

from typing import List

from ..lang.values import VStr
from .attrs import translate_attr
from .node import SvgNode

_XML_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def _escape(text: str) -> str:
    for char, escape in _XML_ESCAPES.items():
        text = text.replace(char, escape)
    return text


def render_node(node: SvgNode, *, include_hidden: bool = True,
                indent: int = 0) -> str:
    """Render one node (and its children) as SVG text."""
    pad = "  " * indent
    rendered_attrs: List[str] = []
    text_content = ""
    for key, value in node.attrs:
        if key == "TEXT" and isinstance(value, VStr):
            text_content = _escape(value.value)
            continue
        translated = translate_attr(key, value)
        if translated is None:
            continue
        name, text = translated
        rendered_attrs.append(f'{name}="{_escape(text)}"')
    attr_text = (" " + " ".join(rendered_attrs)) if rendered_attrs else ""
    children = [child for child in node.children
                if include_hidden or not child.hidden]
    if not children and not text_content:
        return f"{pad}<{node.kind}{attr_text}/>"
    lines = [f"{pad}<{node.kind}{attr_text}>"]
    if text_content:
        lines.append(f"{pad}  {text_content}")
    for child in children:
        lines.append(render_node(child, include_hidden=include_hidden,
                                 indent=indent + 1))
    lines.append(f"{pad}</{node.kind}>")
    return "\n".join(lines)


def render_canvas(node: SvgNode, *, include_hidden: bool = False,
                  width: int = 800, height: int = 600) -> str:
    """Render the canvas ('svg' root) as a standalone SVG document."""
    if node.kind != "svg":
        raise ValueError("render_canvas expects an 'svg' root node")
    if not node.has_attr("width"):
        defaults = (f'xmlns="http://www.w3.org/2000/svg" '
                    f'width="{width}" height="{height}"')
    else:
        defaults = 'xmlns="http://www.w3.org/2000/svg"'
    body = render_node(node, include_hidden=include_hidden)
    # Splice the xmlns/size attributes into the root element.
    head, _, rest = body.partition(">")
    if head.endswith("/"):
        head = head[:-1]
        rest = "</svg>"
        return f"{head} {defaults}></svg>"
    return f"{head} {defaults}>{rest}"

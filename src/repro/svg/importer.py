"""SVG → little importer.

The paper built the Elm logo by hand-"massaging the definition from the
SVG format to the representation in little.  This process will be
automatic once we add support for importing SVG images directly"
(Appendix D).  This module is that importer: it converts an SVG document
into little source whose literal numbers then become manipulable
locations, exactly like the hand-translated logos.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ElementTree
from typing import List, Optional

from ..lang.errors import SvgError

SUPPORTED_SHAPES = ("rect", "circle", "ellipse", "line", "polygon",
                    "polyline", "path", "text")

#: Presentation attributes imported verbatim as strings.
_STRING_ATTRS = ("fill", "stroke", "stroke-width", "opacity",
                 "fill-opacity", "stroke-opacity", "stroke-linecap",
                 "stroke-linejoin", "rx", "ry")

_NUMERIC_ATTRS = {
    "rect": ("x", "y", "width", "height", "rx", "ry"),
    "circle": ("cx", "cy", "r"),
    "ellipse": ("cx", "cy", "rx", "ry"),
    "line": ("x1", "y1", "x2", "y2"),
    "text": ("x", "y"),
    "polygon": (),
    "polyline": (),
    "path": (),
}

_NUMBER = re.compile(r"-?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][-+]?\d+)?")
_PATH_TOKEN = re.compile(r"([MmLlHhVvCcSsQqTtAaZz])|"
                         r"(-?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][-+]?\d+)?)")
_TRANSFORM = re.compile(r"(rotate|translate|scale|matrix)\s*\(([^)]*)\)")


def _format(number: float) -> str:
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(float(number))


def _strip_namespace(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


def parse_points(text: str) -> List[List[float]]:
    """``"x1,y1 x2,y2 …"`` → [[x1, y1], [x2, y2], …]."""
    numbers = [float(match.group()) for match in _NUMBER.finditer(text)]
    if len(numbers) % 2 != 0:
        raise SvgError("odd number of coordinates in points attribute")
    return [[numbers[i], numbers[i + 1]]
            for i in range(0, len(numbers), 2)]


def parse_path_data(text: str) -> List[object]:
    """``"M 10 20 C …"`` → the little command-list encoding
    (['M' 10 20 'C' …])."""
    items: List[object] = []
    for match in _PATH_TOKEN.finditer(text):
        command, number = match.groups()
        if command is not None:
            items.append(command)
        else:
            items.append(float(number))
    if items and not isinstance(items[0], str):
        raise SvgError("path data must start with a command letter")
    return items


def parse_transform(text: str) -> List[List[object]]:
    """``"rotate(45 10 10) …"`` → [['rotate' 45 10 10] …]."""
    commands: List[List[object]] = []
    for name, args in _TRANSFORM.findall(text):
        numbers = [float(match.group())
                   for match in _NUMBER.finditer(args)]
        commands.append([name] + numbers)
    return commands


def _emit_value(value: object) -> str:
    if isinstance(value, str):
        return f"'{value}'"
    if isinstance(value, float):
        return _format(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, list):
        return "[" + " ".join(_emit_value(item) for item in value) + "]"
    raise SvgError(f"cannot emit value {value!r}")


def _emit_attr(key: str, value: object) -> str:
    return f"['{key}' {_emit_value(value)}]"


def _import_element(element: ElementTree.Element, lines: List[str],
                    indent: str) -> None:
    tag = _strip_namespace(element.tag)
    if tag in ("svg", "g"):
        for child in element:
            _import_element(child, lines, indent)
        return
    if tag not in SUPPORTED_SHAPES:
        return                      # silently skip defs, metadata, etc.
    attrs: List[str] = []
    numeric = _NUMERIC_ATTRS.get(tag, ())
    for key, raw in element.attrib.items():
        key = _strip_namespace(key)
        if key in numeric:
            try:
                attrs.append(_emit_attr(key, float(raw)))
                continue
            except ValueError:
                pass                # fall through: keep as string
        if key == "points" and tag in ("polygon", "polyline"):
            attrs.append(_emit_attr("points", parse_points(raw)))
        elif key == "d" and tag == "path":
            attrs.append(_emit_attr("d", parse_path_data(raw)))
        elif key == "transform":
            attrs.append(_emit_attr("transform", parse_transform(raw)))
        elif key in _STRING_ATTRS or key.startswith("data-"):
            attrs.append(_emit_attr(key, raw))
        elif key in ("id", "class", "style"):
            attrs.append(_emit_attr(key, raw))
        # anything else (xmlns, width/height on the root) is dropped
    if tag == "text" and element.text:
        attrs.append(_emit_attr("TEXT", element.text.strip()))
    attr_text = " ".join(attrs)
    lines.append(f"{indent}['{tag}' [{attr_text}] []]")


def svg_to_little(xml_text: str) -> str:
    """Convert an SVG document into a little program.

    Every coordinate becomes a literal with its own fresh location — the
    Elm-logo situation: the shapes are manipulable, but "the high-level
    relationships between the shapes are not captured" until the user
    introduces variables (Appendix D).
    """
    try:
        root = ElementTree.fromstring(xml_text)
    except ElementTree.ParseError as exc:
        raise SvgError(f"not well-formed XML: {exc}") from exc
    if _strip_namespace(root.tag) != "svg":
        raise SvgError("root element must be <svg>")
    lines: List[str] = []
    _import_element(root, lines, "  ")
    body = "\n".join(lines)
    return "; imported from SVG\n(svg [\n" + body + "\n])\n"


def import_svg_file(path) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return svg_to_little(handle.read())

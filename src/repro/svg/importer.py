"""SVG → little importer.

The paper built the Elm logo by hand-"massaging the definition from the
SVG format to the representation in little.  This process will be
automatic once we add support for importing SVG images directly"
(Appendix D).  This module is that importer: it converts an SVG document
into little source whose literal numbers then become manipulable
locations, exactly like the hand-translated logos.

Real-world coverage: group ``transform`` attributes compose onto their
children, ``style="fill:red"`` declarations are promoted to attributes,
``<tspan>`` runs contribute to the text content, the root's
``viewBox``/``width``/``height`` survive, and anything the little
lexer cannot represent raises a typed
:class:`~repro.lang.errors.SvgImportError` (with a ``reason`` failure
class) instead of silently emitting a program that will not parse.

>>> print(svg_to_little('<svg viewBox="0 0 20 20">'
...                     '<g transform="translate(5 5)">'
...                     '<rect x="1" y="2" width="3" height="4" '
...                     'style="fill:teal"/></g></svg>'))
; imported from SVG
['svg' [['viewBox' '0 0 20 20'] ['width' 20] ['height' 20]] [
  ['rect' [['x' 1] ['y' 2] ['width' 3] ['height' 4] ['fill' 'teal'] ['transform' [['translate' 5 5]]]] []]
]]
<BLANKLINE>
"""

from __future__ import annotations

import decimal
import math
import re
import xml.etree.ElementTree as ElementTree
from typing import Dict, List, Optional, Sequence, Tuple

from ..lang.errors import SvgImportError

SUPPORTED_SHAPES = ("rect", "circle", "ellipse", "line", "polygon",
                    "polyline", "path", "text")

#: Container elements whose children are imported in place (their
#: ``transform``, if any, composes onto every descendant shape).
_CONTAINER_TAGS = ("svg", "g", "a", "switch")

#: Presentation attributes imported verbatim as strings.
_STRING_ATTRS = ("fill", "stroke", "stroke-width", "opacity",
                 "fill-opacity", "stroke-opacity", "stroke-linecap",
                 "stroke-linejoin", "stroke-dasharray", "fill-rule",
                 "rx", "ry")

#: ``style`` declarations promoted to real attributes (CSS wins over the
#: presentation attribute of the same name, per the cascade).
_STYLE_PROMOTED = frozenset(_STRING_ATTRS)

_NUMERIC_ATTRS = {
    "rect": ("x", "y", "width", "height", "rx", "ry"),
    "circle": ("cx", "cy", "r"),
    "ellipse": ("cx", "cy", "rx", "ry"),
    "line": ("x1", "y1", "x2", "y2"),
    "text": ("x", "y"),
    "polygon": (),
    "polyline": (),
    "path": (),
}

_NUMBER = re.compile(r"-?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][-+]?\d+)?")
_TRANSFORM = re.compile(r"([A-Za-z][A-Za-z]*)\s*\(([^)]*)\)")
_TRANSFORM_COMMANDS = frozenset({"rotate", "translate", "scale", "matrix"})
_CSS_URL_QUOTES = re.compile(r"url\(\s*(['\"])(.*?)\1\s*\)")
#: Absolute path commands → parameter-group size (Z takes none).
_PATH_ARITY = {"M": 2, "L": 2, "H": 1, "V": 1, "C": 6, "S": 4, "Q": 4,
               "T": 2, "A": 7, "Z": 0}
_PATH_SEPARATORS = frozenset(" \t\r\n,")
#: CSS length units accepted (and stripped) on root width/height; pixel
#: equivalence is assumed, percentages defer to the viewBox.
_LENGTH_UNITS = ("px", "pt", "pc", "mm", "cm", "in", "em", "ex")


def _finite(number: float, context: str) -> float:
    """Reject NaN/infinity with a clean, classified diagnostic."""
    if not math.isfinite(number):
        raise SvgImportError(f"non-finite number in {context}",
                             reason="number")
    return number


def _format(number: float) -> str:
    if not math.isfinite(number):
        raise SvgImportError(f"cannot emit non-finite number {number!r}",
                             reason="number")
    if number == 0.0:
        # float equality folds -0.0 into the integer branch; keep the sign
        # (it is meaningful to arc sweeps and transforms).
        return "-0.0" if math.copysign(1.0, number) < 0.0 else "0"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    text = repr(float(number))
    if "e" in text or "E" in text:
        # The little lexer has no exponent form; expand to an exact
        # positional decimal (Decimal(repr) round-trips the float).
        text = format(decimal.Decimal(text), "f")
    return text


def _strip_namespace(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


def parse_points(text: str) -> List[List[float]]:
    """``"x1,y1 x2,y2 …"`` → [[x1, y1], [x2, y2], …]."""
    numbers = [_finite(float(match.group()), "points attribute")
               for match in _NUMBER.finditer(text)]
    if len(numbers) % 2 != 0:
        raise SvgImportError("odd number of coordinates in points attribute",
                             reason="points")
    return [[numbers[i], numbers[i + 1]]
            for i in range(0, len(numbers), 2)]


def parse_path_data(text: str) -> List[object]:
    """``"M 10 20 C …"`` → the little command-list encoding
    (['M' 10 20 'C' …]).

    Arc commands are parsed per the SVG grammar: the 4th and 5th
    parameters of every ``A``/``a`` group are *flags* — single ``0``/``1``
    digits that may be concatenated with the following number
    (``"A5 5 0 011 10"`` is rx=5 ry=5 rot=0 large-arc=0 sweep=1 x=1 y=10,
    not sweep=11).  Parameter-group sizes are validated, so a document
    whose path data cannot mean what it says is rejected here instead of
    surfacing as a corrupt canvas later.

    >>> parse_path_data("A5 5 0 011 10")
    ['A', 5.0, 5.0, 0.0, 0.0, 1.0, 1.0, 10.0]
    """
    items: List[object] = []
    command: Optional[str] = None
    params = 0                       # numbers consumed since the command
    pos = 0
    length = len(text)

    def close_group() -> None:
        if command is None:
            return
        arity = _PATH_ARITY[command.upper()]
        if arity == 0:
            return
        if params == 0 or params % arity != 0:
            raise SvgImportError(
                f"path command {command!r} expects groups of {arity} "
                f"parameters, got {params}", reason="path")

    while pos < length:
        char = text[pos]
        if char in _PATH_SEPARATORS:
            pos += 1
            continue
        if char.isalpha():
            if char.upper() not in _PATH_ARITY:
                raise SvgImportError(f"unknown path command {char!r}",
                                     reason="path")
            close_group()
            command = char
            params = 0
            items.append(char)
            pos += 1
            continue
        if command is None:
            raise SvgImportError("path data must start with a command "
                                 "letter", reason="path")
        arity = _PATH_ARITY[command.upper()]
        if arity == 0:
            raise SvgImportError("number after path command 'Z'",
                                 reason="path")
        if command in ("A", "a") and params % 7 in (3, 4):
            # large-arc-flag / sweep-flag: exactly one digit, 0 or 1.
            if char not in "01":
                raise SvgImportError(
                    f"arc flag must be 0 or 1, got {char!r}", reason="path")
            items.append(float(char))
            params += 1
            pos += 1
            continue
        match = _NUMBER.match(text, pos)
        if match is None:
            raise SvgImportError(
                f"unexpected character {char!r} in path data", reason="path")
        items.append(_finite(float(match.group()), "path data"))
        params += 1
        pos = match.end()
    close_group()
    if items and not isinstance(items[0], str):
        raise SvgImportError("path data must start with a command letter",
                             reason="path")
    return items


def parse_transform(text: str) -> List[List[object]]:
    """``"rotate(45 10 10) …"`` → [['rotate' 45 10 10] …].

    Only the transform functions the canvas model understands are
    accepted; an exotic one (``skewX``, CSS ``translateX``) raises — a
    silently dropped transform would import the shape at the wrong
    position.
    """
    commands: List[List[object]] = []
    for name, args in _TRANSFORM.findall(text):
        if name not in _TRANSFORM_COMMANDS:
            raise SvgImportError(f"unsupported transform function {name!r}",
                                 reason="transform")
        numbers = [_finite(float(match.group()), f"transform {name!r}")
                   for match in _NUMBER.finditer(args)]
        commands.append([name] + numbers)
    return commands


def _sanitize_string(key: str, value: str) -> str:
    """Make an attribute string representable as a little string literal.

    The little lexer has no escape sequences — a string runs to the next
    ``'``.  CSS-quoted ``url('#id')`` references are normalized to the
    equivalent unquoted form; any quote that survives is unrepresentable
    and quarantines the document with a clean diagnostic instead of
    emitting a program ``parse_program`` rejects.
    """
    value = _CSS_URL_QUOTES.sub(lambda m: f"url({m.group(2)})", value)
    if "'" in value:
        raise SvgImportError(
            f"attribute {key!r} contains a quote the little lexer cannot "
            f"represent: {value!r}", reason="string")
    return value


def parse_style(text: str) -> Tuple[Dict[str, str], str]:
    """Split a ``style`` attribute into promoted declarations and the
    residual CSS text.

    Declarations naming a supported presentation attribute are promoted
    (the cascade makes them override the attribute of the same name);
    everything else is kept verbatim in the residual ``style`` string so
    rendering stays faithful.

    >>> parse_style("fill: red; cursor: pointer")
    ({'fill': 'red'}, 'cursor:pointer')
    """
    promoted: Dict[str, str] = {}
    residual: List[str] = []
    for declaration in text.split(";"):
        if not declaration.strip():
            continue
        prop, colon, value = declaration.partition(":")
        prop = prop.strip().lower()
        value = value.strip()
        if not colon or not prop or not value:
            continue                 # tolerate sloppy wild CSS
        if prop in _STYLE_PROMOTED:
            promoted[prop] = value
        else:
            residual.append(f"{prop}:{value}")
    return promoted, ";".join(residual)


def _emit_value(value: object) -> str:
    if isinstance(value, str):
        return f"'{value}'"
    if isinstance(value, float):
        return _format(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, list):
        return "[" + " ".join(_emit_value(item) for item in value) + "]"
    raise SvgImportError(f"cannot emit value {value!r}")


def _emit_attr(key: str, value: object) -> str:
    if isinstance(value, str):
        value = _sanitize_string(key, value)
    return f"['{key}' {_emit_value(value)}]"


def _element_text(element: ElementTree.Element) -> str:
    """All character data under a ``<text>`` element — ``<tspan>`` runs
    included — whitespace-normalized the way XML renderers collapse it."""
    return " ".join("".join(element.itertext()).split())


def _import_element(element: ElementTree.Element, lines: List[str],
                    indent: str,
                    inherited: Sequence[List[object]] = ()) -> None:
    tag = _strip_namespace(element.tag)
    if tag in _CONTAINER_TAGS:
        transform = list(inherited)
        raw = element.get("transform")
        if raw is not None:
            transform += parse_transform(raw)
        for child in element:
            _import_element(child, lines, indent, transform)
        return
    if tag not in SUPPORTED_SHAPES:
        return                      # silently skip defs, metadata, etc.
    # Attribute order is preserved; collisions (style promotion) replace
    # in place so the emitted node never carries duplicate keys.
    attrs: Dict[str, object] = {}
    numeric = _NUMERIC_ATTRS.get(tag, ())
    style_promoted: Dict[str, str] = {}
    own_transform: List[List[object]] = []
    for key, raw in element.attrib.items():
        key = _strip_namespace(key)
        if key in numeric:
            try:
                number = float(raw)
            except ValueError:
                pass                # fall through: keep as string
            else:
                attrs[key] = _finite(number, f"attribute {key!r}")
                continue
        if key == "points" and tag in ("polygon", "polyline"):
            attrs["points"] = parse_points(raw)
        elif key == "d" and tag == "path":
            attrs["d"] = parse_path_data(raw)
        elif key == "transform":
            own_transform = parse_transform(raw)
        elif key == "style":
            style_promoted, residual = parse_style(raw)
            if residual:
                attrs["style"] = residual
        elif key in _STRING_ATTRS or key.startswith("data-"):
            attrs[key] = raw
        elif key in ("id", "class"):
            attrs[key] = raw
        # anything else (xmlns, width/height on the root) is dropped
    attrs.update(style_promoted)
    transform = list(inherited) + own_transform
    if transform:
        attrs["transform"] = transform
    if tag == "text":
        content = _element_text(element)
        if content:
            attrs["TEXT"] = content
    attr_text = " ".join(_emit_attr(key, value)
                         for key, value in attrs.items())
    lines.append(f"{indent}['{tag}' [{attr_text}] []]")


def _parse_length(raw: Optional[str]) -> Optional[float]:
    """A root ``width``/``height`` as pixels, or None when absent or
    relative (``100%`` defers to the viewBox)."""
    if raw is None:
        return None
    text = raw.strip().lower()
    for unit in _LENGTH_UNITS:
        if text.endswith(unit):
            text = text[:-len(unit)].strip()
            break
    try:
        return _finite(float(text), "root width/height")
    except ValueError:
        return None


def _root_attrs(root: ElementTree.Element) -> List[str]:
    """The emitted root attributes: ``viewBox`` verbatim plus pixel
    ``width``/``height`` (falling back to the viewBox extent), so an
    icon with ``viewBox="0 0 24 24"`` keeps its coordinate system
    instead of floating in the renderer's default 800×600 canvas."""
    attrs: List[str] = []
    width = _parse_length(root.get("width"))
    height = _parse_length(root.get("height"))
    viewbox = root.get("viewBox")
    if viewbox is not None:
        numbers = [_finite(float(match.group()), "viewBox")
                   for match in _NUMBER.finditer(viewbox)]
        if len(numbers) != 4:
            raise SvgImportError(
                f"viewBox must have 4 numbers, got {len(numbers)}",
                reason="root")
        attrs.append(_emit_attr(
            "viewBox", " ".join(_format(number) for number in numbers)))
        if width is None:
            width = numbers[2]
        if height is None:
            height = numbers[3]
    if width is not None:
        attrs.append(_emit_attr("width", width))
    if height is not None:
        attrs.append(_emit_attr("height", height))
    return attrs


def svg_to_little(xml_text: str) -> str:
    """Convert an SVG document into a little program.

    Every coordinate becomes a literal with its own fresh location — the
    Elm-logo situation: the shapes are manipulable, but "the high-level
    relationships between the shapes are not captured" until the user
    introduces variables (Appendix D).

    >>> print(svg_to_little('<svg><circle cx="9" cy="9" r="4"/></svg>'))
    ; imported from SVG
    ['svg' [] [
      ['circle' [['cx' 9] ['cy' 9] ['r' 4]] []]
    ]]
    <BLANKLINE>
    """
    try:
        root = ElementTree.fromstring(xml_text)
    except ElementTree.ParseError as exc:
        raise SvgImportError(f"not well-formed XML: {exc}",
                             reason="xml") from exc
    if _strip_namespace(root.tag) != "svg":
        raise SvgImportError("root element must be <svg>", reason="not-svg")
    lines: List[str] = []
    transform: List[List[object]] = []
    raw = root.get("transform")
    if raw is not None:
        transform = parse_transform(raw)
    for child in root:
        _import_element(child, lines, "  ", transform)
    root_attrs = " ".join(_root_attrs(root))
    body = "\n".join(lines)
    return (f"; imported from SVG\n['svg' [{root_attrs}] [\n"
            + body + "\n]]\n")


def import_svg_file(path) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return svg_to_little(handle.read())

"""The SVG node model: little values → structured nodes (§2, Appendix A).

"An SVG node is represented as a list ``[svgNodeKind attributes children]``
… the intended result of a little program is a node with kind 'svg'."

Attribute values stay as little run-time values, so numbers keep their
traces — the zone machinery reads them through :class:`AttrRef` paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..lang.errors import SvgError
from ..lang.values import (VCons, VNil, VNum, VStr, Value, is_list,
                           to_pylist)

#: Shape kinds with dedicated zone tables (Figure 5).
SHAPE_KINDS = frozenset({
    "rect", "circle", "ellipse", "line", "polygon", "polyline", "path",
    "text",
})

#: Non-standard attributes consumed by the editor, stripped when exporting
#: ("we eliminate them when translating to SVG", Appendix A).
EDITOR_ATTRS = frozenset({"ZONES", "HIDDEN", "TEXT"})


@dataclass
class SvgNode:
    kind: str
    attrs: List[Tuple[str, Value]]
    children: List["SvgNode"]

    def attr(self, key: str) -> Optional[Value]:
        """The value of the *last* binding of ``key`` (later attributes
        override earlier ones, as in SVG/XML processing)."""
        found = None
        for name, value in self.attrs:
            if name == key:
                found = value
        return found

    def has_attr(self, key: str) -> bool:
        return any(name == key for name, _ in self.attrs)

    def num(self, key: str) -> VNum:
        value = self.attr(key)
        if not isinstance(value, VNum):
            raise SvgError(f"attribute {key!r} of {self.kind!r} is not "
                           "a number")
        return value

    @property
    def hidden(self) -> bool:
        """Marked with the 'HIDDEN' attribute (helper shapes, §6.3)."""
        return self.has_attr("HIDDEN")


def value_to_node(value: Value, path: str = "root") -> SvgNode:
    """Validate and convert a little value into an :class:`SvgNode` tree."""
    if not is_list(value):
        raise SvgError(f"{path}: SVG node must be a list")
    parts = to_pylist(value)
    if len(parts) != 3:
        raise SvgError(f"{path}: SVG node must have exactly 3 elements "
                       f"[kind attrs children], got {len(parts)}")
    kind_value, attrs_value, children_value = parts
    if not isinstance(kind_value, VStr):
        raise SvgError(f"{path}: node kind must be a string")
    kind = kind_value.value
    if not is_list(attrs_value):
        raise SvgError(f"{path}: attributes of {kind!r} must be a list")
    attrs: List[Tuple[str, Value]] = []
    for index, pair in enumerate(to_pylist(attrs_value)):
        if not is_list(pair):
            raise SvgError(f"{path}: attribute {index} of {kind!r} is not "
                           "a [key value] pair")
        pair_parts = to_pylist(pair)
        if len(pair_parts) != 2 or not isinstance(pair_parts[0], VStr):
            raise SvgError(f"{path}: attribute {index} of {kind!r} must be "
                           "a [key value] pair with a string key")
        attrs.append((pair_parts[0].value, pair_parts[1]))
    if not is_list(children_value):
        raise SvgError(f"{path}: children of {kind!r} must be a list")
    children = [value_to_node(child, f"{path}/{kind}[{index}]")
                for index, child in enumerate(to_pylist(children_value))]
    return SvgNode(kind, attrs, children)


def rebuild_node(node: SvgNode, old_value: Value,
                 new_value: Value) -> SvgNode:
    """Rebuild a validated node for a *structurally identical* new value.

    This is the incremental drag path: ``new_value`` came out of
    :func:`repro.lang.incremental.reevaluate`, which only swaps numeric
    leaves inside the structure ``node`` was built (and validated) from,
    sharing every unchanged subtree by identity.  Unchanged subtrees map
    to the existing nodes; changed ones are rebuilt without re-validation.
    """
    if new_value is old_value:
        return node
    # ``node`` was validated by :func:`value_to_node`, so both values are
    # the cons spine ``[kind attrs children]`` with ``len(node.attrs)``
    # attribute pairs and ``len(node.children)`` children — destructure the
    # cells directly rather than materializing python lists on every drag
    # step (this is the hottest part of the incremental canvas rebuild).
    old_rest = old_value.tail
    new_rest = new_value.tail
    old_attrs_value = old_rest.head
    new_attrs_value = new_rest.head
    if new_attrs_value is old_attrs_value:
        attrs = node.attrs
    else:
        attrs = []
        old_cell = old_attrs_value
        new_cell = new_attrs_value
        for entry in node.attrs:
            new_pair = new_cell.head
            if new_pair is old_cell.head:
                attrs.append(entry)
            else:
                attrs.append((entry[0], new_pair.tail.head))
            old_cell = old_cell.tail
            new_cell = new_cell.tail
    old_children_value = old_rest.tail.head
    new_children_value = new_rest.tail.head
    if new_children_value is old_children_value:
        children = node.children
    else:
        children = []
        old_cell = old_children_value
        new_cell = new_children_value
        for child in node.children:
            new_child = new_cell.head
            children.append(child if new_child is old_cell.head
                            else rebuild_node(child, old_cell.head,
                                              new_child))
            old_cell = old_cell.tail
            new_cell = new_cell.tail
    return SvgNode(node.kind, attrs, children)


def parse_canvas(value: Value) -> SvgNode:
    """Convert a program's output into its canvas node, checking the §2
    requirement that the result has kind 'svg'."""
    node = value_to_node(value)
    if node.kind != "svg":
        raise SvgError(
            f"program output must be an 'svg' node, got {node.kind!r}")
    return node

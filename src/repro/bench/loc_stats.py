"""Location statistics — Appendix G's second table.

Per example: how many locations reach the output ("# Output Locs"), how
many of those are unfrozen, and how the chosen assignments distribute over
them ("Unassigned" / "Assigned (avg times) (avg rate)").

* *avg times* — among assigned locations, the mean number of zones whose
  chosen assignment includes the location;
* *avg rate* — among assigned locations, the mean fraction of
  opportunities taken: zones whose chosen assignment includes the location
  over zones where the location was a candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..lang.ast import Loc
from ..trace.trace import all_locs
from .corpus import PreparedExample


@dataclass(frozen=True)
class LocStatsRow:
    name: str
    output_locs: int
    unfrozen: int
    unassigned: int
    assigned: int
    avg_times: float
    avg_rate: float


def loc_stats(example: PreparedExample) -> LocStatsRow:
    output_locs: Set[Loc] = set()
    for trace in example.canvas.all_numeric_traces():
        output_locs.update(all_locs(trace))
    unfrozen = {loc for loc in output_locs if not loc.frozen}

    candidate_zones: Dict[Loc, int] = {loc: 0 for loc in unfrozen}
    chosen_zones: Dict[Loc, int] = {loc: 0 for loc in unfrozen}
    for analysis in example.assignments.analyses:
        zone_candidates: Set[Loc] = set()
        for locset in analysis.locsets:
            zone_candidates.update(locset)
        for loc in zone_candidates:
            if loc in candidate_zones:
                candidate_zones[loc] += 1
    for assignment in example.assignments.chosen.values():
        for loc in assignment.location_set:
            if loc in chosen_zones:
                chosen_zones[loc] += 1

    assigned = [loc for loc in unfrozen if chosen_zones[loc] > 0]
    times = [chosen_zones[loc] for loc in assigned]
    rates = [chosen_zones[loc] / candidate_zones[loc] for loc in assigned
             if candidate_zones[loc] > 0]
    return LocStatsRow(
        name=example.name,
        output_locs=len(output_locs),
        unfrozen=len(unfrozen),
        unassigned=len(unfrozen) - len(assigned),
        assigned=len(assigned),
        avg_times=(sum(times) / len(times)) if times else 0.0,
        avg_rate=(100.0 * sum(rates) / len(rates)) if rates else 0.0,
    )


def corpus_loc_stats(corpus: Dict[str, PreparedExample]) -> List[LocStatsRow]:
    return [loc_stats(example) for example in corpus.values()]


@dataclass(frozen=True)
class LocTotals:
    output_locs: int
    unfrozen: int
    unassigned: int
    assigned: int


def loc_totals(rows: List[LocStatsRow]) -> LocTotals:
    return LocTotals(
        output_locs=sum(row.output_locs for row in rows),
        unfrozen=sum(row.unfrozen for row in rows),
        unassigned=sum(row.unassigned for row in rows),
        assigned=sum(row.assigned for row in rows),
    )

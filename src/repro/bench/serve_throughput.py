"""Serve-throughput benchmark: the JSON protocol under concurrent sessions.

A load generator drives :class:`~repro.serve.protocol.ServeApp` with N
interleaved sessions — open, then rounds of drag bursts + release — and
measures **sessions opened/sec** (where the shared compile cache pays off:
N sessions opening the same corpus program parse and evaluate it once) and
**drag-events/sec** (where per-session burst coalescing pays off: a burst
of K cumulative mouse samples costs one incremental re-run).

Every response is verified byte-identical to a direct
:class:`~repro.editor.session.LiveSession` driven with the same inputs.
Sessions opened on the same example receive identical gesture sequences,
so one mirror session per example is the exact direct-path state for all
of them; the mirrors advance outside the timed regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Sequence, Tuple

from ..editor.session import LiveSession
from ..examples.registry import example_source
from ..serve.manager import SessionManager
from ..serve.protocol import ServeApp

__all__ = ["SERVE_CONCURRENCY", "SERVE_EXAMPLES", "ServeThroughputRow",
           "measure_serve_throughput"]

#: Concurrency levels of the load table (sessions interleaved per round).
SERVE_CONCURRENCY = (1, 8, 64)

#: Corpus programs the generator cycles over: the "hello world", the
#: running example, a case study, and a heavy multi-shape canvas.
SERVE_EXAMPLES = ("three_boxes", "sine_wave_of_boxes", "ferris_wheel",
                  "chicago_flag")

DEFAULT_BURSTS = 3
DEFAULT_STEPS_PER_BURST = 5


@dataclass(frozen=True)
class ServeThroughputRow:
    concurrency: int
    steps_per_burst: int
    opens_per_sec: float
    drag_events_per_sec: float
    requests: int
    responses_identical: bool


def _burst(round_index: int, steps: int) -> List[List[float]]:
    """One drag burst: cumulative offsets, deterministic per round."""
    return [[float((round_index * 7 + sample + 3) % 23),
             float((round_index * 5 + sample * 2 + 2) % 17)]
            for sample in range(steps)]


def measure_serve_throughput(
        concurrencies: Sequence[int] = SERVE_CONCURRENCY, *,
        bursts: int = DEFAULT_BURSTS,
        steps_per_burst: int = DEFAULT_STEPS_PER_BURST,
        examples: Sequence[str] = SERVE_EXAMPLES
        ) -> List[ServeThroughputRow]:
    rows = []
    for concurrency in concurrencies:
        app = ServeApp(manager=SessionManager(
            max_sessions=max(64, concurrency)))
        mirrors: Dict[str, LiveSession] = {
            name: LiveSession(example_source(name))
            for name in set(examples[i % len(examples)]
                            for i in range(concurrency))}
        identical = True
        requests = 0

        # -- open phase: sessions/sec, shared compile cache hot ------------
        sessions: List[Tuple[str, str]] = []        # (session id, example)
        open_elapsed = 0.0
        for index in range(concurrency):
            name = examples[index % len(examples)]
            request = {"cmd": "open", "example": name}
            start = perf_counter()
            response = app.handle(request)
            open_elapsed += perf_counter() - start
            requests += 1
            mirror = mirrors[name]
            identical &= (response.get("ok", False)
                          and response["svg"] == mirror.export_svg()
                          and response["source"] == mirror.source())
            sessions.append((response["session"], name))

        # -- drag phase: bursts of coalesced samples + release -------------
        drag_elapsed = 0.0
        drag_events = 0
        for round_index in range(bursts):
            steps = _burst(round_index, steps_per_burst)
            final_dx, final_dy = steps[-1]
            # Advance each example's mirror once: every session of that
            # example is in the same state and receives the same gesture.
            round_keys: Dict[str, Tuple[int, str]] = {}
            for name, mirror in mirrors.items():
                keys = sorted(mirror.triggers)
                key = keys[round_index % len(keys)]
                round_keys[name] = key
                mirror.start_drag(*key)
                mirror.drag(final_dx, final_dy)
                mirror.release()
            for sid, name in sessions:
                shape, zone = round_keys[name]
                drag_request = {"cmd": "drag", "session": sid,
                                "shape": shape, "zone": zone,
                                "steps": steps}
                release_request = {"cmd": "release", "session": sid}
                start = perf_counter()
                dragged = app.handle(drag_request)
                released = app.handle(release_request)
                drag_elapsed += perf_counter() - start
                requests += 2
                drag_events += len(steps)
                mirror = mirrors[name]
                # ``release`` never changes the program, so the drag
                # response must already show the final geometry.
                identical &= (dragged.get("ok", False)
                              and released.get("ok", False)
                              and dragged["svg"] == released["svg"]
                              and released["svg"] == mirror.export_svg()
                              and released["source"] == mirror.source())

        rows.append(ServeThroughputRow(
            concurrency=concurrency,
            steps_per_burst=steps_per_burst,
            opens_per_sec=concurrency / open_elapsed if open_elapsed else 0.0,
            drag_events_per_sec=(drag_events / drag_elapsed
                                 if drag_elapsed else 0.0),
            requests=requests,
            responses_identical=identical))
    return rows

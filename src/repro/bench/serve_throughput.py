"""Serve-throughput benchmarks: the JSON protocol under concurrent load.

Two tables:

* **interleaved throughput** (:func:`measure_serve_throughput`) — a
  single-threaded load generator interleaves N sessions and measures
  sessions opened/sec (shared compile cache) and drag-events/sec
  (per-request burst coalescing);
* **concurrent scaling** (:func:`measure_serve_scaling`) — a *real*
  thread pool of N worker clients hammers disjoint sessions, comparing
  three server configurations at each worker count:

  - ``global`` — every request serialized through one global dispatch
    lock with eager per-request re-runs (the pre-sharding PR 3 server);
  - ``shard`` — per-session locks + sharded manager, same eager
    requests (on a GIL interpreter this measures lock overhead; on a
    free-threaded/multi-core build it scales with cores);
  - ``coalesce`` — per-session locks + cross-request drag coalescing
    (``"sync": false`` acknowledged bursts applied as one re-run at the
    next state-bearing command), the flood-tolerant client protocol the
    per-session ordering machinery makes safe;
  - ``compiled`` — the coalescing server with the trace compiler
    (:mod:`repro.lang.compile`) replaying drags through specialized
    artifacts instead of the guarded interpreter.

  The first three configurations are pinned to the interpreted replay
  (:func:`~repro.lang.compile.force_compiled`) so the table's columns
  measure their own tier regardless of the ``REPRO_COMPILED``
  environment the benchmark runs under.

Every state-bearing response is verified byte-identical to a direct
:class:`~repro.editor.session.LiveSession` driven with the same inputs;
verification happens outside the timed regions.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Sequence, Tuple

from ..editor.session import LiveSession
from ..examples.registry import example_source
from ..lang.compile import force_compiled
from ..serve.manager import SessionManager
from ..serve.protocol import ServeApp

__all__ = ["SERVE_CONCURRENCY", "SERVE_EXAMPLES", "SERVE_WORKERS",
           "ServeThroughputRow", "ServeScalingRow",
           "measure_serve_throughput", "measure_serve_scaling"]

#: Concurrency levels of the load table (sessions interleaved per round).
SERVE_CONCURRENCY = (1, 8, 64)

#: Worker-thread counts of the scaling table (one disjoint session each).
SERVE_WORKERS = (1, 4, 16)

#: Corpus programs the generator cycles over: the "hello world", the
#: running example, a case study, and a heavy multi-shape canvas.
SERVE_EXAMPLES = ("three_boxes", "sine_wave_of_boxes", "ferris_wheel",
                  "chicago_flag")

DEFAULT_BURSTS = 3
DEFAULT_STEPS_PER_BURST = 5


@dataclass(frozen=True)
class ServeThroughputRow:
    concurrency: int
    steps_per_burst: int
    opens_per_sec: float
    drag_events_per_sec: float
    requests: int
    responses_identical: bool


def _burst(round_index: int, steps: int) -> List[List[float]]:
    """One drag burst: cumulative offsets, deterministic per round."""
    return [[float((round_index * 7 + sample + 3) % 23),
             float((round_index * 5 + sample * 2 + 2) % 17)]
            for sample in range(steps)]


def measure_serve_throughput(
        concurrencies: Sequence[int] = SERVE_CONCURRENCY, *,
        bursts: int = DEFAULT_BURSTS,
        steps_per_burst: int = DEFAULT_STEPS_PER_BURST,
        examples: Sequence[str] = SERVE_EXAMPLES
        ) -> List[ServeThroughputRow]:
    rows = []
    for concurrency in concurrencies:
        app = ServeApp(manager=SessionManager(
            max_sessions=max(64, concurrency)))
        mirrors: Dict[str, LiveSession] = {
            name: LiveSession(example_source(name))
            for name in set(examples[i % len(examples)]
                            for i in range(concurrency))}
        identical = True
        requests = 0

        # -- open phase: sessions/sec, shared compile cache hot ------------
        sessions: List[Tuple[str, str]] = []        # (session id, example)
        open_elapsed = 0.0
        for index in range(concurrency):
            name = examples[index % len(examples)]
            request = {"cmd": "open", "example": name}
            start = perf_counter()
            response = app.handle(request)
            open_elapsed += perf_counter() - start
            requests += 1
            mirror = mirrors[name]
            identical &= (response.get("ok", False)
                          and response["svg"] == mirror.export_svg()
                          and response["source"] == mirror.source())
            sessions.append((response["session"], name))

        # -- drag phase: bursts of coalesced samples + release -------------
        drag_elapsed = 0.0
        drag_events = 0
        for round_index in range(bursts):
            steps = _burst(round_index, steps_per_burst)
            final_dx, final_dy = steps[-1]
            # Advance each example's mirror once: every session of that
            # example is in the same state and receives the same gesture.
            round_keys: Dict[str, Tuple[int, str]] = {}
            for name, mirror in mirrors.items():
                keys = sorted(mirror.triggers)
                key = keys[round_index % len(keys)]
                round_keys[name] = key
                mirror.start_drag(*key)
                mirror.drag(final_dx, final_dy)
                mirror.release()
            for sid, name in sessions:
                shape, zone = round_keys[name]
                drag_request = {"cmd": "drag", "session": sid,
                                "shape": shape, "zone": zone,
                                "steps": steps}
                release_request = {"cmd": "release", "session": sid}
                start = perf_counter()
                dragged = app.handle(drag_request)
                released = app.handle(release_request)
                drag_elapsed += perf_counter() - start
                requests += 2
                drag_events += len(steps)
                mirror = mirrors[name]
                # ``release`` never changes the program, so the drag
                # response must already show the final geometry.
                identical &= (dragged.get("ok", False)
                              and released.get("ok", False)
                              and dragged["svg"] == released["svg"]
                              and released["svg"] == mirror.export_svg()
                              and released["source"] == mirror.source())

        rows.append(ServeThroughputRow(
            concurrency=concurrency,
            steps_per_burst=steps_per_burst,
            opens_per_sec=concurrency / open_elapsed if open_elapsed else 0.0,
            drag_events_per_sec=(drag_events / drag_elapsed
                                 if drag_elapsed else 0.0),
            requests=requests,
            responses_identical=identical))
    return rows


# ---------------------------------------------------------------------------
# Concurrent scaling: real worker threads on disjoint sessions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ServeScalingRow:
    workers: int
    global_eps: float           # drag-events/s, global dispatch lock
    shard_eps: float            # drag-events/s, per-session locks
    coalesce_eps: float         # drag-events/s, + cross-request coalescing
    compiled_eps: float         # drag-events/s, + trace-compiled replay
    speedup: float              # coalesce_eps / global_eps
    responses_identical: bool


def _scaling_source(index: int) -> str:
    """One small program per worker: disjoint sessions, disjoint compile
    cache entries (the scaling table measures dispatch, not the cache)."""
    return (f"(def x {10 + index})\n"
            f"(svg [(rect 'teal' x 20 30 40) (rect 'navy' 90 x 20 25)])")


def _drive_workers(handle, workers: int, *, rounds: int,
                   bursts: int, steps_per_burst: int, coalesce: bool
                   ) -> Tuple[int, float, bool]:
    """Hammer a server (its ``handle`` callable) from ``workers`` client
    threads, one disjoint session each; returns
    ``(drag_events, elapsed, identical)``.  Each
    round sends ``bursts`` cumulative-sample bursts then a release;
    with ``coalesce`` the bursts are ``"sync": false`` acknowledgements
    and only the release re-runs.  Responses are recorded inside the
    timed region and verified against per-worker mirrors outside it."""
    sources = [_scaling_source(i) for i in range(workers)]
    opened = [handle({"cmd": "open", "source": source})
              for source in sources]
    sessions = [response["session"] for response in opened]
    mirrors = [LiveSession(source) for source in sources]
    keys = [sorted(mirror.triggers)[0] for mirror in mirrors]
    recorded: List[List[dict]] = [[] for _ in range(workers)]
    barrier = threading.Barrier(workers + 1)

    def burst_steps(round_index: int, burst: int) -> List[List[float]]:
        return [[float(1 + (round_index * 7 + burst * 3 + s) % 19),
                 float(1 + (round_index * 5 + burst * 2 + s) % 13)]
                for s in range(steps_per_burst)]

    def worker(index: int):
        sid = sessions[index]
        shape, zone = keys[index]
        out = recorded[index]
        barrier.wait()
        for round_index in range(rounds):
            for burst in range(bursts):
                request = {"cmd": "drag", "session": sid, "shape": shape,
                           "zone": zone,
                           "steps": burst_steps(round_index, burst)}
                if coalesce:
                    request["sync"] = False
                out.append(handle(request))
            out.append(handle({"cmd": "release", "session": sid}))

    threads = [threading.Thread(target=worker, args=(index,))
               for index in range(workers)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = perf_counter()
    for thread in threads:
        thread.join()
    elapsed = perf_counter() - start

    identical = all(response["ok"] for response in opened)
    for index in range(workers):
        identical &= opened[index]["svg"] == mirrors[index].export_svg()
        mirror = mirrors[index]
        shape, zone = keys[index]
        position = 0
        for round_index in range(rounds):
            mirror.start_drag(shape, zone)
            for burst in range(bursts):
                response = recorded[index][position]
                position += 1
                if not response.get("ok"):
                    identical = False
                elif coalesce:
                    identical &= response["queued"] == steps_per_burst
                else:
                    # Eager mode: every drag response shows the geometry
                    # at its burst's final cumulative sample.
                    dx, dy = burst_steps(round_index, burst)[-1]
                    mirror.drag(dx, dy)
                    identical &= response["svg"] == mirror.export_svg()
            if coalesce:
                dx, dy = burst_steps(round_index, bursts - 1)[-1]
                mirror.drag(dx, dy)
            mirror.release()
            released = recorded[index][position]
            position += 1
            identical &= (released.get("ok", False)
                          and released["svg"] == mirror.export_svg()
                          and released["source"] == mirror.source())
    events = workers * rounds * bursts * steps_per_burst
    return events, elapsed, identical


#: The four server configurations of the scaling table, in column order:
#: (coalesce bursts?, compiled replay?, one global dispatch lock?).
_SCALING_CONFIGS = (
    ("global", False, False, True),
    ("shard", False, False, False),
    ("coalesce", True, False, False),
    ("compiled", True, True, False),
)


def _scaling_pass(workers: int, *, rounds: int, bursts: int,
                  steps_per_burst: int, coalesce: bool, compiled: bool,
                  global_lock: bool) -> Tuple[float, bool]:
    """One timed pass of one server configuration; returns
    ``(drag_events_per_sec, responses_identical)``."""
    with force_compiled(compiled):
        if global_lock:
            # Baseline: the pre-sharding server — one global dispatch lock.
            app = ServeApp(manager=SessionManager(max_sessions=workers + 1))
            lock = threading.Lock()

            def handle(request, _app=app, _lock=lock):
                with _lock:
                    return _app.handle(request)
        else:
            app = ServeApp(manager=SessionManager(max_sessions=workers + 1,
                                                  shards=4))
            handle = app.handle
        events, elapsed, identical = _drive_workers(
            handle, workers, rounds=rounds, bursts=bursts,
            steps_per_burst=steps_per_burst, coalesce=coalesce)
        return events / elapsed if elapsed else 0.0, identical


def measure_serve_scaling(worker_counts: Sequence[int] = SERVE_WORKERS, *,
                          rounds: int = 3, bursts: int = 6,
                          steps_per_burst: int = 5, repeats: int = 2
                          ) -> List[ServeScalingRow]:
    """The scaling table: drag-events/s at N concurrent worker threads
    on disjoint sessions, global-lock baseline vs the sharded server.

    Each configuration is timed ``repeats`` times with the passes
    interleaved across configurations, keeping the best rate — so a
    noisy scheduling window (or a GC pause inherited from an earlier
    benchmark in the same process) taxes all columns instead of
    skewing one ratio.
    """
    rows = []
    for workers in worker_counts:
        best = {name: 0.0 for name, *_ in _SCALING_CONFIGS}
        identical = True
        for _ in range(repeats):
            for name, coalesce, compiled, global_lock in _SCALING_CONFIGS:
                eps, ok = _scaling_pass(
                    workers, rounds=rounds, bursts=bursts,
                    steps_per_burst=steps_per_burst, coalesce=coalesce,
                    compiled=compiled, global_lock=global_lock)
                best[name] = max(best[name], eps)
                identical &= ok
        rows.append(ServeScalingRow(
            workers=workers,
            global_eps=best["global"],
            shard_eps=best["shard"],
            coalesce_eps=best["coalesce"],
            compiled_eps=best["compiled"],
            speedup=(best["coalesce"] / best["global"]
                     if best["global"] else 0.0),
            responses_identical=identical))
    return rows

"""Measurement harness regenerating the paper's tables (§5.2, Appendix G)."""

from .corpus import PreparedExample, prepare_corpus, prepare_example
from .drag_latency import (DEFAULT_EXAMPLES as DRAG_LATENCY_EXAMPLES,
                           RELEASE_EXAMPLES, DragLatencyRow,
                           ReleaseLatencyRow, measure_drag_latency,
                           measure_release_latency,
                           median_compiled_speedup, median_release_speedup,
                           median_speedup, naive_prepare, prepare_equal)
from .edit_latency import (EDIT_EXAMPLES, EditLatencyRow,
                           measure_edit_latency, median_edit_speedup,
                           structural_edit_texts, value_edit_texts)
from .equation_stats import (EquationTotals, PreEquation, equation_totals,
                             extract_pre_equations)
from .interactivity import (InteractivityTotals, format_interactivity,
                            interactivity_stats)
from .loc_stats import (LocStatsRow, LocTotals, corpus_loc_stats, loc_stats,
                        loc_totals)
from .perf import (OperationTimes, PerfRow, measure_corpus,
                   measure_example, measure_rows, measure_solve)
from .report import (PAPER_EQUATION_TOTALS, PAPER_PERF_MS, PAPER_ZONE_TOTALS,
                     format_drag_latency_table, format_edit_latency_table,
                     format_equation_table, format_ingest_table,
                     format_loc_rows, format_perf_rows, format_perf_table,
                     format_release_latency_table,
                     format_serve_scaling_table,
                     format_serve_throughput_table, format_zone_rows,
                     format_zone_table, table_records)
from .serve_throughput import (SERVE_CONCURRENCY, SERVE_EXAMPLES,
                               SERVE_WORKERS, ServeScalingRow,
                               ServeThroughputRow, measure_serve_scaling,
                               measure_serve_throughput)
from .zone_stats import (ZoneStatsRow, ZoneTotals, corpus_zone_stats,
                         zone_stats, zone_totals)

__all__ = [
    "PreparedExample", "prepare_corpus", "prepare_example",
    "DRAG_LATENCY_EXAMPLES", "DragLatencyRow", "measure_drag_latency",
    "median_speedup", "median_compiled_speedup",
    "format_drag_latency_table",
    "RELEASE_EXAMPLES", "ReleaseLatencyRow", "measure_release_latency",
    "median_release_speedup", "naive_prepare", "prepare_equal",
    "format_release_latency_table",
    "EDIT_EXAMPLES", "EditLatencyRow", "measure_edit_latency",
    "median_edit_speedup", "structural_edit_texts", "value_edit_texts",
    "format_edit_latency_table",
    "SERVE_CONCURRENCY", "SERVE_EXAMPLES", "SERVE_WORKERS",
    "ServeThroughputRow", "ServeScalingRow", "measure_serve_throughput",
    "measure_serve_scaling", "format_serve_throughput_table",
    "format_serve_scaling_table",
    "EquationTotals", "PreEquation", "equation_totals",
    "extract_pre_equations",
    "InteractivityTotals", "format_interactivity", "interactivity_stats",
    "LocStatsRow", "LocTotals", "corpus_loc_stats", "loc_stats",
    "loc_totals",
    "OperationTimes", "PerfRow", "measure_corpus", "measure_example",
    "measure_rows", "measure_solve",
    "PAPER_EQUATION_TOTALS", "PAPER_PERF_MS", "PAPER_ZONE_TOTALS",
    "format_equation_table", "format_ingest_table", "format_loc_rows",
    "format_perf_rows",
    "format_perf_table", "format_zone_rows", "format_zone_table",
    "table_records",
    "ZoneStatsRow", "ZoneTotals", "corpus_zone_stats", "zone_stats",
    "zone_totals",
]

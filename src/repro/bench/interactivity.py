"""Interactivity analysis — §5.2's definition of a *successful* user
action, measured end to end.

"For a user action to be 'successful' requires that the particular zone be
Active, that the solver computes an update in response to the mouse
manipulation, and that the resulting update is applied to the program and
re-evaluated within a short period of time."

For every zone in the corpus we fire its trigger with the paper's two
probe offsets (d = 1 and d = 100, applied on both axes) and classify the
outcome:

* ``full``    — every controlled attribute solved;
* ``partial`` — some solved, some failed (red highlight on the rest);
* ``none``    — no attribute solved;
* ``inactive`` — the zone had no trigger at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..zones.triggers import compute_triggers
from .corpus import PreparedExample

PROBES = (1.0, 100.0)


@dataclass(frozen=True)
class InteractivityTotals:
    zones: int
    inactive: int
    full: Dict[float, int]
    partial: Dict[float, int]
    none: Dict[float, int]

    @property
    def active(self) -> int:
        return self.zones - self.inactive

    def success_rate(self, delta: float) -> float:
        """Fraction of *all* zones where a drag of ``delta`` fully
        succeeds."""
        if not self.zones:
            return 0.0
        return self.full[delta] / self.zones


def interactivity_stats(corpus: Dict[str, PreparedExample]
                        ) -> InteractivityTotals:
    zones = inactive = 0
    full = {delta: 0 for delta in PROBES}
    partial = {delta: 0 for delta in PROBES}
    none = {delta: 0 for delta in PROBES}
    for example in corpus.values():
        triggers = compute_triggers(example.canvas, example.assignments,
                                    example.program.rho0)
        for analysis in example.assignments.analyses:
            zones += 1
            key = (analysis.zone.shape_index, analysis.zone.name)
            trigger = triggers.get(key)
            if trigger is None:
                inactive += 1
                continue
            for delta in PROBES:
                result = trigger(delta, delta)
                if result.all_solved and result.outcomes:
                    full[delta] += 1
                elif result.any_solved:
                    partial[delta] += 1
                else:
                    none[delta] += 1
    return InteractivityTotals(zones, inactive, full, partial, none)


def format_interactivity(totals: InteractivityTotals) -> str:
    lines = [
        "Interactivity: successful user actions (paper Section 5.2)",
        f"{'Zones':28s}{totals.zones:>8d}",
        f"{'Inactive':28s}{totals.inactive:>8d}",
        f"{'Active':28s}{totals.active:>8d}",
    ]
    for delta in PROBES:
        share = 100.0 * totals.success_rate(delta)
        lines.append(
            f"  drag d={delta:<5g} full {totals.full[delta]:>6d}  "
            f"partial {totals.partial[delta]:>5d}  "
            f"failed {totals.none[delta]:>5d}  "
            f"({share:.0f}% of all zones fully succeed)")
    return "\n".join(lines)

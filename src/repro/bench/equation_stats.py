"""Pre-equation extraction and solvability — paper §5.2.2 and the Appendix G
solver-fragment table.

For every Active zone with chosen assignment γ, each controlled attribute
'k' contributes a tuple (ρ, v, ζ, ℓ, n, t) where ℓ = γ(v)(ζ)('k').  Tuples
identical modulo (v, ζ) are deduplicated into unique *pre-equations*
(ρ, ℓ, n, t), each classified by solver fragment and tested for solvability
with the concrete offsets d = 1 and d = 100 (the paper's two probes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..lang.ast import Loc
from ..lang.errors import SolverFailure
from ..synthesis.solver import (in_a_fragment, in_b_fragment, solve_one)
from ..trace.trace import Trace, trace_key, trace_size
from .corpus import PreparedExample

PROBE_DELTAS = (1.0, 100.0)


@dataclass
class PreEquation:
    example: str
    loc: Loc
    value: float
    trace: Trace
    in_a: bool
    in_b: bool
    solved: Dict[float, bool]

    @property
    def in_fragment(self) -> bool:
        return self.in_a or self.in_b

    @property
    def size(self) -> int:
        return trace_size(self.trace)


def extract_pre_equations(example: PreparedExample
                          ) -> Tuple[int, List[PreEquation]]:
    """Return (total tuple count, unique pre-equations) for one example."""
    rho = example.program.rho0
    total = 0
    unique: Dict[Tuple, PreEquation] = {}
    for assignment in example.assignments.chosen.values():
        shape = example.canvas[assignment.zone.shape_index]
        for feature, loc in zip(assignment.zone.features, assignment.theta):
            if loc is None:      # uncontrolled attribute
                continue
            number = shape.get_num(feature.ref)
            total += 1
            key = (loc.ident, trace_key(number.trace))
            if key in unique:
                continue
            equation = PreEquation(
                example=example.name,
                loc=loc,
                value=number.value,
                trace=number.trace,
                in_a=in_a_fragment(number.trace, loc),
                in_b=in_b_fragment(number.trace, loc),
                solved={},
            )
            for delta in PROBE_DELTAS:
                equation.solved[delta] = _try_solve(
                    rho, loc, number.value + delta, number.trace)
            unique[key] = equation
    return total, list(unique.values())


def _try_solve(rho, loc: Loc, target: float, trace: Trace) -> bool:
    try:
        solve_one(rho, loc, target, trace)
    except SolverFailure:
        return False
    return True


@dataclass(frozen=True)
class EquationTotals:
    """Corpus-wide §5.2.2 / Appendix G numbers."""

    total_tuples: int
    unique: int
    outside: int
    inside: int
    unsolved_d1: int       # inside the fragment but unsolvable at d=1
    solved_d1: int
    unsolved_d100: int     # solvable at d=1 but not at d=100
    solved_d100: int
    a_fragment: int
    a_solved_d1: int
    a_solved_d100: int
    b_fragment: int
    b_solved_d1: int
    b_solved_d100: int
    mean_trace_size: float

    def pct(self, count: int) -> float:
        return 100.0 * count / self.unique if self.unique else 0.0


def equation_totals(corpus: Dict[str, PreparedExample]) -> EquationTotals:
    total_tuples = 0
    equations: List[PreEquation] = []
    for example in corpus.values():
        example_total, example_equations = extract_pre_equations(example)
        total_tuples += example_total
        equations.extend(example_equations)

    inside = [eq for eq in equations if eq.in_fragment]
    solved_d1 = [eq for eq in inside if eq.solved[1.0]]
    solved_d100 = [eq for eq in solved_d1 if eq.solved[100.0]]
    a_fragment = [eq for eq in equations if eq.in_a]
    b_fragment = [eq for eq in equations if eq.in_b]
    sizes = [eq.size for eq in equations]
    return EquationTotals(
        total_tuples=total_tuples,
        unique=len(equations),
        outside=len(equations) - len(inside),
        inside=len(inside),
        unsolved_d1=len(inside) - len(solved_d1),
        solved_d1=len(solved_d1),
        unsolved_d100=len(solved_d1) - len(solved_d100),
        solved_d100=len(solved_d100),
        a_fragment=len(a_fragment),
        a_solved_d1=sum(1 for eq in a_fragment if eq.solved[1.0]),
        a_solved_d100=sum(1 for eq in a_fragment if eq.solved[100.0]),
        b_fragment=len(b_fragment),
        b_solved_d1=sum(1 for eq in b_fragment if eq.solved[1.0]),
        b_solved_d100=sum(1 for eq in b_fragment if eq.solved[100.0]),
        mean_trace_size=(sum(sizes) / len(sizes)) if sizes else 0.0,
    )

"""Text renderers for the paper's tables, side by side with paper values.

Every table also has a machine-readable form: :func:`table_records`
turns the row objects (dataclasses, namedtuples, dicts of either) into
plain JSON-able structures, and the benchmark suite's ``write_table``
fixture writes them as ``BENCH_<name>.json`` alongside the ``.txt`` so
CI and future re-anchors can track the perf trajectory without parsing
formatted text.
"""

from __future__ import annotations

import dataclasses

from typing import Dict, List, Optional

from .equation_stats import EquationTotals
from .loc_stats import LocStatsRow, LocTotals
from .perf import OperationTimes
from .zone_stats import ZoneStatsRow, ZoneTotals

#: Published corpus totals (68 examples) for side-by-side reporting.
PAPER_ZONE_TOTALS = {
    "zones": 14106, "inactive": 991, "inactive_pct": 7,
    "active": 13115, "unambiguous": 4856, "unambiguous_pct": 34,
    "ambiguous": 8259, "ambiguous_pct": 59, "ambiguous_avg": 3.83,
}

PAPER_EQUATION_TOTALS = {
    "total_tuples": 28222, "unique": 4574,
    "outside": 919, "outside_pct": 20, "inside": 3655,
    "unsolved_d1": 194, "unsolved_d1_pct": 4, "solved_d1": 3461,
    "unsolved_d100": 438, "unsolved_d100_pct": 10,
    "solved_d100": 3023, "solved_d100_pct": 66,
    "a_fragment": 778, "b_fragment": 3655, "mean_trace_size": 141.30,
}

PAPER_PERF_MS = {
    "parse": {"min": 9, "med": 53, "avg": 77, "max": 520},
    "eval": {"min": 0.5, "med": 5, "avg": 12, "max": 165},
    "prepare": {"min": 1, "med": 13, "avg": 200, "max": 6789},
    "solve": {"min": 0.1, "med": 0.5, "avg": 0.5, "max": 14},
}


def table_records(rows):
    """A JSON-able mirror of a table's row objects.

    Handles the row shapes the benchmark suite produces — dataclasses,
    namedtuples, dicts and sequences of any of them, arbitrarily nested
    — and falls back to ``str`` for anything else, so every table can be
    serialized without a per-table schema.

    >>> from dataclasses import dataclass
    >>> @dataclass
    ... class Row: name: str; speedup: float
    >>> table_records([Row("three_boxes", 7.5)])
    [{'name': 'three_boxes', 'speedup': 7.5}]
    """
    if dataclasses.is_dataclass(rows) and not isinstance(rows, type):
        return {field.name: table_records(getattr(rows, field.name))
                for field in dataclasses.fields(rows)}
    if isinstance(rows, dict):
        return {str(key): table_records(value)
                for key, value in rows.items()}
    if hasattr(rows, "_asdict"):        # namedtuple
        return table_records(rows._asdict())
    if isinstance(rows, (list, tuple)):
        return [table_records(item) for item in rows]
    if isinstance(rows, (str, int, float, bool)) or rows is None:
        return rows
    if hasattr(rows, "__dict__"):
        return {key: table_records(value)
                for key, value in vars(rows).items()
                if not key.startswith("_")}
    return str(rows)


def format_zone_table(totals: ZoneTotals) -> str:
    """The §5.2.1 summary table, ours vs. paper."""
    paper = PAPER_ZONE_TOTALS
    lines = [
        "Zone statistics (paper Section 5.2.1)",
        f"{'':24s}{'ours':>10s}  {'ours %':>7s}   {'paper':>10s}  "
        f"{'paper %':>8s}",
        f"{'Zones':24s}{totals.zones:>10d}  {'':>7s}   "
        f"{paper['zones']:>10d}",
        f"{'Inactive':24s}{totals.inactive:>10d}  "
        f"{totals.inactive_pct:>6.0f}%   {paper['inactive']:>10d}  "
        f"{paper['inactive_pct']:>7d}%",
        f"{'Active':24s}{totals.active:>10d}  {'':>7s}   "
        f"{paper['active']:>10d}",
        f"{'  Unambiguous':24s}{totals.unambiguous:>10d}  "
        f"{totals.unambiguous_pct:>6.0f}%   {paper['unambiguous']:>10d}  "
        f"{paper['unambiguous_pct']:>7d}%",
        f"{'  Ambiguous':24s}{totals.ambiguous:>10d}  "
        f"{totals.ambiguous_pct:>6.0f}%   {paper['ambiguous']:>10d}  "
        f"{paper['ambiguous_pct']:>7d}%",
        f"{'  (avg candidates)':24s}{totals.ambiguous_avg:>10.2f}  "
        f"{'':>7s}   {paper['ambiguous_avg']:>10.2f}",
    ]
    return "\n".join(lines)


def format_equation_table(totals: EquationTotals) -> str:
    """The §5.2.2 pre-equation table, ours vs. paper."""
    paper = PAPER_EQUATION_TOTALS
    lines = [
        "Pre-equation solvability (paper Section 5.2.2)",
        f"{'':28s}{'ours':>8s}  {'ours %':>7s}   {'paper':>8s}  "
        f"{'paper %':>8s}",
        f"{'(shape,zone,attr) tuples':28s}{totals.total_tuples:>8d}"
        f"  {'':>7s}   {paper['total_tuples']:>8d}",
        f"{'Unique pre-equations':28s}{totals.unique:>8d}  {'':>7s}   "
        f"{paper['unique']:>8d}",
        f"{'Outside fragment':28s}{totals.outside:>8d}  "
        f"{totals.pct(totals.outside):>6.0f}%   {paper['outside']:>8d}  "
        f"{paper['outside_pct']:>7d}%",
        f"{'Inside fragment':28s}{totals.inside:>8d}  {'':>7s}   "
        f"{paper['inside']:>8d}",
        f"{'  No solution for d=1':28s}{totals.unsolved_d1:>8d}  "
        f"{totals.pct(totals.unsolved_d1):>6.0f}%   "
        f"{paper['unsolved_d1']:>8d}  {paper['unsolved_d1_pct']:>7d}%",
        f"{'  Solution for d=1':28s}{totals.solved_d1:>8d}  {'':>7s}   "
        f"{paper['solved_d1']:>8d}",
        f"{'  No solution for d=100':28s}{totals.unsolved_d100:>8d}  "
        f"{totals.pct(totals.unsolved_d100):>6.0f}%   "
        f"{paper['unsolved_d100']:>8d}  {paper['unsolved_d100_pct']:>7d}%",
        f"{'  Solution for d=100':28s}{totals.solved_d100:>8d}  "
        f"{totals.pct(totals.solved_d100):>6.0f}%   "
        f"{paper['solved_d100']:>8d}  {paper['solved_d100_pct']:>7d}%",
        "",
        f"{'SolveA fragment':28s}{totals.a_fragment:>8d}  {'':>7s}   "
        f"{paper['a_fragment']:>8d}",
        f"{'SolveB fragment':28s}{totals.b_fragment:>8d}  {'':>7s}   "
        f"{paper['b_fragment']:>8d}",
        f"{'Mean trace size (nodes)':28s}{totals.mean_trace_size:>8.2f}"
        f"  {'':>7s}   {paper['mean_trace_size']:>8.2f}",
    ]
    return "\n".join(lines)


def format_perf_table(times: Dict[str, OperationTimes]) -> str:
    """The §5.2.3 performance table, ours vs. paper (ms)."""
    lines = [
        "Performance (paper Section 5.2.3), milliseconds",
        f"{'Operation':10s}{'Min':>9s}{'Med':>9s}{'Avg':>9s}{'Max':>10s}"
        f"   {'paper (min/med/avg/max)':>28s}",
    ]
    for op in ("parse", "eval", "prepare", "solve"):
        measured = times[op]
        paper = PAPER_PERF_MS[op]
        lines.append(
            f"{op.capitalize():10s}{measured.min_ms:>9.2f}"
            f"{measured.median_ms:>9.2f}{measured.avg_ms:>9.2f}"
            f"{measured.max_ms:>10.2f}   "
            f"{paper['min']:>6g}/{paper['med']:>4g}/{paper['avg']:>4g}/"
            f"{paper['max']:>5g}")
    return "\n".join(lines)


def format_drag_latency_table(rows) -> str:
    """Before/after table for the incremental live-sync hot path: drag
    steps per second, naive (pre-optimization) vs. fast (incremental)
    vs. compiled (trace-compiled replay); ``c-gain`` is compiled over
    fast — the trace compiler's own tier."""
    from .drag_latency import median_compiled_speedup, median_speedup

    lines = [
        "Drag latency: live-sync steps/sec over a "
        f"{rows[0].steps if rows else 0}-step gesture",
        f"{'Example':28s}{'naive/s':>10s}{'fast/s':>10s}{'speedup':>9s}"
        f"{'compiled/s':>12s}{'c-gain':>8s}{'identical':>11s}",
    ]
    for row in rows:
        lines.append(
            f"{row.name:28s}{row.naive_sps:>10.1f}{row.fast_sps:>10.1f}"
            f"{row.speedup:>8.2f}x{row.compiled_sps:>12.1f}"
            f"{row.compiled_speedup:>7.2f}x"
            f"{'yes' if row.outputs_identical else 'NO':>11s}")
    if rows:
        lines.append(f"{'median speedup':28s}{'':>10s}{'':>10s}"
                     f"{median_speedup(rows):>8.2f}x{'':>12s}"
                     f"{median_compiled_speedup(rows):>7.2f}x")
    return "\n".join(lines)


def format_release_latency_table(rows) -> str:
    """Before/after table for the incremental Prepare: releases (assign +
    trigger + sliders) per second, from-scratch vs. change-set-driven."""
    from .drag_latency import median_release_speedup

    lines = [
        "Release latency: Prepare operations/sec over "
        f"{rows[0].releases if rows else 0} drag-release gestures",
        f"{'Example':28s}{'naive/s':>10s}{'fast/s':>10s}{'speedup':>9s}"
        f"{'identical':>11s}",
    ]
    for row in rows:
        lines.append(
            f"{row.name:28s}{row.naive_rps:>10.1f}{row.fast_rps:>10.1f}"
            f"{row.speedup:>8.2f}x"
            f"{'yes' if row.outputs_identical else 'NO':>11s}")
    if rows:
        lines.append(f"{'median speedup':28s}{'':>10s}{'':>10s}"
                     f"{median_release_speedup(rows):>8.2f}x")
    return "\n".join(lines)


def format_edit_latency_table(rows) -> str:
    """Before/after table for the edit path: source edits applied per
    second via ``LiveSession.edit_source`` (value-only and structural)
    vs. reopening a fresh session on the new text."""
    from .edit_latency import median_edit_speedup

    lines = [
        "Edit latency: text edit -> synced canvas, "
        f"{rows[0].edits if rows else 0} edits per example",
        f"{'Example':28s}{'reopen/s':>10s}{'value/s':>10s}{'speedup':>9s}"
        f"{'struct/s':>10s}{'identical':>11s}",
    ]
    for row in rows:
        lines.append(
            f"{row.name:28s}{row.naive_eps:>10.1f}{row.fast_eps:>10.1f}"
            f"{row.speedup:>8.2f}x{row.structural_eps:>10.1f}"
            f"{'yes' if row.outputs_identical else 'NO':>11s}")
    if rows:
        lines.append(f"{'median speedup':28s}{'':>10s}{'':>10s}"
                     f"{median_edit_speedup(rows):>8.2f}x")
    return "\n".join(lines)


def format_serve_throughput_table(rows) -> str:
    """Load-generator table for the serve layer: protocol requests/sec at
    1/8/64 concurrent sessions, responses verified byte-identical to a
    direct :class:`~repro.editor.session.LiveSession`."""
    burst = rows[0].steps_per_burst if rows else 0
    lines = [
        "Serve throughput: JSON protocol, drag bursts of "
        f"{burst} samples coalesced per request",
        f"{'sessions':>9s}{'opens/s':>10s}{'drag-ev/s':>11s}"
        f"{'requests':>10s}{'identical':>11s}",
    ]
    for row in rows:
        lines.append(
            f"{row.concurrency:>9d}{row.opens_per_sec:>10.1f}"
            f"{row.drag_events_per_sec:>11.1f}{row.requests:>10d}"
            f"{'yes' if row.responses_identical else 'NO':>11s}")
    return "\n".join(lines)


def format_serve_scaling_table(rows) -> str:
    """Concurrent-scaling table: drag-events/s from N real worker
    threads on disjoint sessions — global dispatch lock vs per-session
    locks vs per-session locks + cross-request burst coalescing."""
    lines = [
        "Serve scaling: drag-events/s, N worker threads on disjoint "
        "sessions",
        f"{'workers':>8s}{'global/s':>11s}{'shard/s':>11s}"
        f"{'coalesce/s':>12s}{'compiled/s':>12s}{'speedup':>9s}"
        f"{'identical':>11s}",
    ]
    for row in rows:
        lines.append(
            f"{row.workers:>8d}{row.global_eps:>11.1f}{row.shard_eps:>11.1f}"
            f"{row.coalesce_eps:>12.1f}{row.compiled_eps:>12.1f}"
            f"{row.speedup:>8.2f}x"
            f"{'yes' if row.responses_identical else 'NO':>11s}")
    lines.append("(global = one dispatch lock, eager re-runs; shard = "
                 "per-session locks; coalesce = queued bursts applied as "
                 "one re-run; compiled = coalesce + trace-compiled replay)")
    return "\n".join(lines)


def format_ingest_table(report) -> str:
    """Summary table for a bulk SVG ingestion run
    (:class:`repro.svg.ingest.IngestReport`): per-document verification
    outcomes plus per-failure-class quarantine counters."""
    results = report.results
    lines = [
        "SVG ingestion: emitted programs verified "
        "parse -> run -> render -> zones",
        f"{'Document':32s}{'status':>12s}{'shapes':>8s}{'zones':>7s}"
        f"{'constants':>11s}",
    ]
    for result in results:
        if result.ok:
            lines.append(f"{result.name:32s}{'ok':>12s}"
                         f"{result.shapes:>8d}{result.zones:>7d}"
                         f"{result.constants:>11d}")
        else:
            lines.append(f"{result.name:32s}"
                         f"{'quarantined':>12s}  [{result.failure}]")
    ok = len(report.ok)
    lines.append(f"{'Totals':32s}{ok:>3d} ok, {len(report.failed)} "
                 f"quarantined of {len(results)}")
    for failure, count in report.counters().items():
        lines.append(f"  quarantined[{failure}]: {count}")
    return "\n".join(lines)


def format_perf_rows(rows) -> str:
    """Appendix G per-example timing table (median ms per operation)."""
    lines = [
        "Per-example timings (paper Appendix G, timing table; median ms)",
        f"{'Example':28s}{'LOC':>5s}{'Parse':>9s}{'Eval':>9s}"
        f"{'Prepare':>9s}",
    ]
    for row in rows:
        lines.append(f"{row.name:28s}{row.loc:>5d}{row.parse_ms:>9.2f}"
                     f"{row.eval_ms:>9.2f}{row.prepare_ms:>9.2f}")
    return "\n".join(lines)


def format_zone_rows(rows: List[ZoneStatsRow]) -> str:
    """Appendix G table 1 (per-example zone counts)."""
    lines = [
        "Per-example zones (paper Appendix G, table 1)",
        f"{'Example':28s}{'Shapes':>7s}{'Zones':>7s}{'0':>6s}{'1':>6s}"
        f"{'>1 (avg)':>12s}",
    ]
    for row in rows:
        avg = f"{row.ambiguous} ({row.ambiguous_avg:.2f})" \
            if row.ambiguous else "0"
        lines.append(f"{row.name:28s}{row.shape_count:>7d}"
                     f"{row.zone_count:>7d}{row.inactive:>6d}"
                     f"{row.unambiguous:>6d}{avg:>12s}")
    totals = (sum(r.shape_count for r in rows),
              sum(r.zone_count for r in rows),
              sum(r.inactive for r in rows),
              sum(r.unambiguous for r in rows),
              sum(r.ambiguous for r in rows))
    lines.append(f"{'Totals':28s}{totals[0]:>7d}{totals[1]:>7d}"
                 f"{totals[2]:>6d}{totals[3]:>6d}{totals[4]:>12d}")
    return "\n".join(lines)


def format_loc_rows(rows: List[LocStatsRow], totals: LocTotals) -> str:
    """Appendix G table 2 (per-example location assignment counts)."""
    lines = [
        "Per-example locations (paper Appendix G, table 2)",
        f"{'Example':28s}{'OutLocs':>8s}{'Unfroz':>7s}{'Unassig':>8s}"
        f"{'Assigned':>9s}{'avg times':>11s}{'avg rate':>10s}",
    ]
    for row in rows:
        lines.append(f"{row.name:28s}{row.output_locs:>8d}"
                     f"{row.unfrozen:>7d}{row.unassigned:>8d}"
                     f"{row.assigned:>9d}{row.avg_times:>11.1f}"
                     f"{row.avg_rate:>9.0f}%")
    lines.append(f"{'Totals':28s}{totals.output_locs:>8d}"
                 f"{totals.unfrozen:>7d}{totals.unassigned:>8d}"
                 f"{totals.assigned:>9d}")
    return "\n".join(lines)

"""Performance measurements — paper §5.2.3.

Four critical operations are timed per example:

* **Parse** — parsing the user program text;
* **Eval**  — evaluating the (already parsed) program;
* **Prepare** — computing shape assignments and triggers for all zones;
* **Solve** — solving one pre-equation (measured per unique pre-equation).

The paper reports Min/Med/Avg/Max across all runs; absolute values differ
from the Elm/browser implementation, but the ordering (Solve ≪ Eval ≤
Parse ≪ Prepare) is the reproducible shape.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..core.pipeline import SyncPipeline
from ..examples.registry import example_source
from ..lang.errors import SolverFailure
from ..lang.parser import parse_top_level
from ..synthesis.solver import solve_one
from .corpus import PreparedExample
from .equation_stats import extract_pre_equations


@dataclass
class OperationTimes:
    name: str
    samples: List[float] = field(default_factory=list)   # seconds

    def record(self, seconds: float) -> None:
        self.samples.append(seconds)

    @property
    def min_ms(self) -> float:
        return 1000.0 * min(self.samples)

    @property
    def median_ms(self) -> float:
        return 1000.0 * statistics.median(self.samples)

    @property
    def avg_ms(self) -> float:
        return 1000.0 * statistics.mean(self.samples)

    @property
    def max_ms(self) -> float:
        return 1000.0 * max(self.samples)


def _timed(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def measure_example(example: PreparedExample, runs: int = 3
                    ) -> Dict[str, OperationTimes]:
    """Time Parse/Eval/Prepare ``runs`` times for one prepared example.

    Each operation is one stage of the shared core pipeline, timed
    from scratch (no change-set carried between runs): Eval is the
    evaluation half of the Run stage (the canvas build stays outside the
    timed region, as in the paper's operation split), and Prepare, per
    §5.2.3, covers shape assignments + mouse triggers.
    """
    source = example_source(example.name)
    times = {op: OperationTimes(op) for op in ("parse", "eval", "prepare")}
    program = example.program
    for _ in range(runs):
        times["parse"].record(_timed(lambda: parse_top_level(source)))
        pipeline = SyncPipeline(program,
                                heuristic=example.assignments.heuristic,
                                record=False)
        times["eval"].record(_timed(pipeline.eval_stage))
        pipeline.canvas_stage()

        def do_prepare():
            pipeline.assign_stage()
            pipeline.trigger_stage()
        times["prepare"].record(_timed(do_prepare))
    return times


def measure_solve(example: PreparedExample, repeats: int = 2
                  ) -> OperationTimes:
    """Time the solver on every unique pre-equation of the example."""
    rho = example.program.rho0
    times = OperationTimes("solve")
    _, equations = extract_pre_equations(example)
    for equation in equations:
        for _ in range(repeats):
            start = time.perf_counter()
            try:
                solve_one(rho, equation.loc, equation.value + 1.0,
                          equation.trace)
            except SolverFailure:
                pass
            times.record(time.perf_counter() - start)
    return times


@dataclass(frozen=True)
class PerfRow:
    """One row of the Appendix G per-example timing table."""

    name: str
    loc: int
    parse_ms: float
    eval_ms: float
    prepare_ms: float


def measure_rows(corpus: Dict[str, PreparedExample], runs: int = 2
                 ) -> List[PerfRow]:
    """Per-example median times — Appendix G's per-example timing table
    (the paper reports FF/Chrome columns; we report CPython)."""
    rows: List[PerfRow] = []
    for example in corpus.values():
        times = measure_example(example, runs)
        rows.append(PerfRow(
            name=example.name,
            loc=example.source_loc,
            parse_ms=times["parse"].median_ms,
            eval_ms=times["eval"].median_ms,
            prepare_ms=times["prepare"].median_ms,
        ))
    return rows


def measure_corpus(corpus: Dict[str, PreparedExample], runs: int = 3,
                   solve_repeats: int = 1) -> Dict[str, OperationTimes]:
    """Aggregate Parse/Eval/Prepare/Solve times across the whole corpus."""
    aggregate = {op: OperationTimes(op)
                 for op in ("parse", "eval", "prepare", "solve")}
    for example in corpus.values():
        example_times = measure_example(example, runs)
        for op in ("parse", "eval", "prepare"):
            aggregate[op].samples.extend(example_times[op].samples)
        aggregate["solve"].samples.extend(
            measure_solve(example, solve_repeats).samples)
    return aggregate

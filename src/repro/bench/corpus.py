"""Prepared corpus: parse/evaluate/assign every example once for analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.pipeline import SyncPipeline
from ..examples.registry import example_names, example_source, load_example
from ..lang.program import Program
from ..svg.canvas import Canvas
from ..zones.assignment import CanvasAssignments


@dataclass
class PreparedExample:
    name: str
    program: Program
    canvas: Canvas
    assignments: CanvasAssignments

    @property
    def source_loc(self) -> int:
        """Non-comment, non-empty lines of little code."""
        count = 0
        for line in example_source(self.name).splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith(";"):
                count += 1
        return count


def prepare_example(name: str, heuristic: str = "fair") -> PreparedExample:
    pipeline = SyncPipeline(load_example(name), heuristic=heuristic,
                            record=False)
    pipeline.run_stage()
    assignments = pipeline.assign_stage()
    return PreparedExample(name, pipeline.program, pipeline.canvas,
                           assignments)


def prepare_corpus(names: Optional[List[str]] = None,
                   heuristic: str = "fair") -> Dict[str, PreparedExample]:
    """Prepare every example (or the given subset)."""
    if names is None:
        names = example_names()
    return {name: prepare_example(name, heuristic) for name in names}

"""Prepared corpus: parse/evaluate/assign every example once for analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..examples.registry import example_names, example_source, load_example
from ..lang.program import Program
from ..svg.canvas import Canvas
from ..zones.assignment import CanvasAssignments, assign_canvas


@dataclass
class PreparedExample:
    name: str
    program: Program
    canvas: Canvas
    assignments: CanvasAssignments

    @property
    def source_loc(self) -> int:
        """Non-comment, non-empty lines of little code."""
        count = 0
        for line in example_source(self.name).splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith(";"):
                count += 1
        return count


def prepare_example(name: str, heuristic: str = "fair") -> PreparedExample:
    program = load_example(name)
    canvas = Canvas.from_value(program.evaluate())
    assignments = assign_canvas(canvas, heuristic)
    return PreparedExample(name, program, canvas, assignments)


def prepare_corpus(names: Optional[List[str]] = None,
                   heuristic: str = "fair") -> Dict[str, PreparedExample]:
    """Prepare every example (or the given subset)."""
    if names is None:
        names = example_names()
    return {name: prepare_example(name, heuristic) for name in names}

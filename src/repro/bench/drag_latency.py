"""Drag- and release-latency measurement: live-sync throughput, fast vs naive.

The paper's premise is that the run-solve-rerun loop feels instantaneous
(§4.1, §5.2.3).  This module measures both halves of that loop:

* the throughput of a drag *gesture* — ``start_drag`` followed by N
  cumulative mouse-move steps — along three paths: the pre-optimization
  pipeline (rebuild the user AST, rebuild the combined Prelude+user
  program, re-walk it for ρ0, re-evaluate the whole ``ELet`` spine from
  scratch, re-validate the canvas), the incremental session path
  (indexed substitution, Prelude caches, guarded trace-driven
  re-evaluation), and the **compiled** path — the incremental session
  with the trace compiler (:mod:`repro.lang.compile`) specializing the
  recorded evaluation into a flat replay artifact;
* the throughput of the *release* — the Prepare operation ("we compute new
  shape assignments and mouse triggers", §4.1) — along the change-set-driven
  incremental pipeline (:mod:`repro.core.pipeline`) versus a from-scratch
  ``assign_canvas`` + ``compute_triggers`` + ``collect_sliders``.

Both comparisons drive the two paths through *identical* inputs, and a
verification pass checks bit-identical results at every step (rendered SVG
and traces for drags; assignments, triggers, sliders and hover data for
releases).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from statistics import median
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.pipeline import SyncPipeline
from ..core.sliders import collect_sliders
from ..editor.session import LiveSession
from ..examples.registry import example_source
from ..lang.ast import substitute
from ..lang.compile import ensure_compiled
from ..lang.eval import evaluate
from ..lang.parser import collect_rho0
from ..lang.program import Program, parse_program
from ..svg.canvas import Canvas
from ..svg.render import render_canvas
from ..trace.trace import trace_key
from ..zones.assignment import assign_canvas
from ..zones.triggers import compute_triggers

#: Corpus examples exercised by the drag-latency benchmark: the running
#: example, the smallest program, a case study, and progressively heavier
#: canvases (group box + stars, FILL zones, slider, 80-polygon tiling).
DEFAULT_EXAMPLES = (
    "sine_wave_of_boxes",
    "three_boxes",
    "ferris_wheel",
    "chicago_flag",
    "color_wheel",
    "n_boxes_slider",
    "tessellation",
)

DEFAULT_STEPS = 60


@dataclass(frozen=True)
class DragLatencyRow:
    name: str
    steps: int
    fast_sps: float        # steps per second, incremental session path
    naive_sps: float       # steps per second, pre-optimization path
    compiled_sps: float    # steps per second, trace-compiled replay
    outputs_identical: bool

    @property
    def speedup(self) -> float:
        return self.fast_sps / self.naive_sps if self.naive_sps else 0.0

    @property
    def compiled_speedup(self) -> float:
        """The trace compiler's gain over the already-incremental path."""
        return self.compiled_sps / self.fast_sps if self.fast_sps else 0.0


def _gesture(steps: int) -> List[Tuple[float, float]]:
    """Deterministic cumulative offsets for one drag gesture."""
    return [(float(i % 20), float((i * 3) % 11)) for i in range(steps)]


def _start(name: str, compiled: Optional[bool] = None) -> LiveSession:
    # The pin (``compiled=False``/``True``) beats the REPRO_COMPILED
    # knob, so each timed column measures its own path regardless of the
    # environment the benchmark runs under.
    session = LiveSession(example_source(name), compiled=compiled)
    key = next(iter(session.triggers))
    session.start_drag(*key)
    return session


def _canvas_signature(canvas: Canvas) -> Tuple[str, tuple]:
    rendered = render_canvas(canvas.root, include_hidden=True)
    traces = tuple(trace_key(trace)
                   for trace in canvas.all_numeric_traces())
    return rendered, traces


def _naive_step(base: Program, bindings) -> Canvas:
    """One pre-optimization drag step: full rebuild, full re-evaluation."""
    new_user = substitute(base.user_ast, bindings)
    program = Program(new_user, source=base.source,
                      with_prelude=base.with_prelude,
                      prelude_frozen=base.prelude_frozen)
    collect_rho0(program.ast)           # the seed constructor's full walk
    value = evaluate(program.ast)       # full Prelude spine, no caches
    return Canvas.from_value(value)


def _verify_identical(name: str, steps: int) -> bool:
    """Drive all three paths through the same gesture; outputs must
    match bit-for-bit (rendered SVG and trace structure) at every step.
    The sessions share one parsed program, so loc idents — which appear
    in trace keys — are comparable across them."""
    program = parse_program(example_source(name))
    session = LiveSession(program=program, compiled=False)
    compiled_session = LiveSession(program=program, compiled=True)
    key = next(iter(session.triggers))
    session.start_drag(*key)
    compiled_session.start_drag(*key)
    base = session._drag_base
    identical = True
    for dx, dy in _gesture(steps):
        result = session.drag(dx, dy)
        compiled_session.drag(dx, dy)
        fast_signature = _canvas_signature(session.canvas)
        if fast_signature != _canvas_signature(compiled_session.canvas):
            identical = False
            break
        if not result.bindings:
            continue
        naive_canvas = _naive_step(base, result.bindings)
        if fast_signature != _canvas_signature(naive_canvas):
            identical = False
            break
    session.release()
    compiled_session.release()
    return identical


def chunked_rate(step, offsets: Sequence[Tuple[float, float]],
                 chunk: int = 10) -> float:
    """Steps/sec from the *fastest* chunk of one gesture pass.

    Drag latency is a minimum-cost property — OS noise only ever adds
    time — so the pass is timed in ``chunk``-step windows and the best
    window wins: a scheduler stall or GC pause taxes one chunk instead
    of poisoning the whole measurement.
    """
    best = float("inf")
    for index in range(0, len(offsets), chunk):
        block = offsets[index:index + chunk]
        start = time.perf_counter()
        for dx, dy in block:
            step(dx, dy)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / len(block))
    return 1.0 / best if best > 0.0 else 0.0


def _time_fast(name: str, steps: int) -> float:
    session = _start(name, compiled=False)
    rate = chunked_rate(session.drag, _gesture(steps))
    session.release()
    return rate


def _time_compiled(name: str, steps: int) -> float:
    session = _start(name, compiled=True)
    offsets = _gesture(steps)
    # One warmup step pays the one-time specialization (it rides the
    # shared EvalCache thereafter) so the column measures steady state.
    session.drag(*offsets[0])
    assert ensure_compiled(session.pipeline._eval_cache) is not None
    rate = chunked_rate(session.drag, offsets)
    session.release()
    return rate


def _time_naive(name: str, steps: int) -> float:
    session = _start(name)
    base = session._drag_base
    trigger = session._drag_trigger

    def step(dx: float, dy: float) -> None:
        result = trigger(dx, dy)
        if result.bindings:
            _naive_step(base, result.bindings)

    rate = chunked_rate(step, _gesture(steps))
    session.release()
    return rate


def measure_drag_latency(names: Optional[Sequence[str]] = None,
                         steps: int = DEFAULT_STEPS,
                         repeats: int = 3,
                         verify: bool = True) -> List[DragLatencyRow]:
    """Measure fast/naive/compiled drag throughput for each example.

    Each path is timed ``repeats`` times and the best rate kept (drag
    latency is a minimum-cost property; the OS noise only adds time).
    The passes interleave the three paths so a noisy scheduling window
    taxes all of them rather than skewing one ratio.
    """
    rows: List[DragLatencyRow] = []
    for name in names or DEFAULT_EXAMPLES:
        identical = _verify_identical(name, steps) if verify else True
        fast = naive = compiled = 0.0
        for _ in range(repeats):
            fast = max(fast, _time_fast(name, steps))
            naive = max(naive, _time_naive(name, steps))
            compiled = max(compiled, _time_compiled(name, steps))
        rows.append(DragLatencyRow(name, steps, fast, naive, compiled,
                                   identical))
    return rows


def median_speedup(rows: Sequence[DragLatencyRow]) -> float:
    return median(row.speedup for row in rows)


def median_compiled_speedup(rows: Sequence[DragLatencyRow]) -> float:
    """Median gain of the trace-compiled replay over the incremental
    interpreter — the §4.1 hot path's second optimization tier."""
    return median(row.compiled_speedup for row in rows)


# ---------------------------------------------------------------------------
# Release latency: incremental vs from-scratch Prepare
# ---------------------------------------------------------------------------

#: Multi-shape examples where Prepare cost grows with zone count
#: (Appendix G): the flagship 80-polygon tiling, the §6.2 case study, and
#: the group-box + nStar flag.
RELEASE_EXAMPLES = (
    "tessellation",
    "ferris_wheel",
    "chicago_flag",
)

DEFAULT_RELEASES = 12
DEFAULT_RELEASE_STEPS = 5


@dataclass(frozen=True)
class ReleaseLatencyRow:
    name: str
    releases: int
    fast_rps: float        # Prepares per second, incremental pipeline
    naive_rps: float       # Prepares per second, from-scratch path
    outputs_identical: bool

    @property
    def speedup(self) -> float:
        return self.fast_rps / self.naive_rps if self.naive_rps else 0.0


def naive_prepare(pipeline: SyncPipeline):
    """The from-scratch Prepare: what every ``release()`` cost before the
    change-set-driven pipeline.  Returns (assignments, triggers, sliders)."""
    assignments = assign_canvas(pipeline.canvas, pipeline.heuristic)
    triggers = compute_triggers(pipeline.canvas, assignments,
                                pipeline.program.rho0)
    sliders = collect_sliders(pipeline.program)
    return assignments, triggers, sliders


def _trigger_state(trigger) -> tuple:
    """Structural snapshot of one trigger: the pre-read features with the
    trace compared by structure, plus the (shared) ρ."""
    return tuple((feature, loc, value, trace_key(trace))
                 for feature, loc, value, trace in trigger._features)


def prepare_equal(pipeline: SyncPipeline, assignments, triggers,
                  sliders) -> bool:
    """Is the pipeline's (incrementally maintained) Prepare state equal to
    a from-scratch one?  Compares analyses, chosen assignments, triggers
    (features and ρ), sliders, and per-zone hover data."""
    ours = pipeline.assignments
    if ours.analyses != assignments.analyses:
        return False
    if ours.chosen != assignments.chosen:
        return False
    if set(pipeline.triggers) != set(triggers):
        return False
    for key, trigger in triggers.items():
        mine = pipeline.triggers[key]
        if _trigger_state(mine) != _trigger_state(trigger):
            return False
        if mine.rho != trigger.rho:
            return False
    if pipeline.sliders != sliders:
        return False
    for analysis in assignments.analyses:
        key = (analysis.zone.shape_index, analysis.zone.name)
        if ours.hover_data(*key) != assignments.hover_data(*key):
            return False
    return True


def _release_gesture(session: LiveSession, start: int, steps: int) -> None:
    """One short drag gesture ending just before the release."""
    key = next(iter(session.triggers))
    session.start_drag(*key)
    for i in range(steps):
        session.drag(float((start + i) % 17), float((start + 2 * i) % 13))


def measure_release_latency(names: Optional[Sequence[str]] = None,
                            releases: int = DEFAULT_RELEASES,
                            steps: int = DEFAULT_RELEASE_STEPS,
                            verify: bool = True
                            ) -> List[ReleaseLatencyRow]:
    """Measure incremental vs from-scratch Prepare throughput per example.

    Each gesture is dragged along the session's fast path; at the release
    the incremental ``pipeline.prepare(change)`` is timed against a
    from-scratch Prepare on the *same* program/canvas state, and (when
    ``verify``) the two resulting states are checked for equality —
    assignments, triggers, sliders and hover data.
    """
    rows: List[ReleaseLatencyRow] = []
    for name in names or RELEASE_EXAMPLES:
        session = LiveSession(example_source(name))
        fast_time = 0.0
        naive_time = 0.0
        identical = True
        for round_index in range(releases):
            _release_gesture(session, round_index, steps)
            start = time.perf_counter()
            session.release()
            fast_time += time.perf_counter() - start
            start = time.perf_counter()
            state = naive_prepare(session.pipeline)
            naive_time += time.perf_counter() - start
            if verify and not prepare_equal(session.pipeline, *state):
                identical = False
        rows.append(ReleaseLatencyRow(
            name, releases,
            releases / fast_time if fast_time else 0.0,
            releases / naive_time if naive_time else 0.0,
            identical))
    return rows


def median_release_speedup(rows: Sequence[ReleaseLatencyRow]) -> float:
    return median(row.speedup for row in rows)

"""Drag-latency measurement: live-sync steps/sec, fast vs. naive.

The paper's premise is that the run-solve-rerun loop feels instantaneous
(§4.1, §5.2.3).  This module measures the throughput of a drag *gesture* —
``start_drag`` followed by N cumulative mouse-move steps — along two
implementations of the same loop:

* **fast** — the shipped :class:`~repro.editor.session.LiveSession` path:
  indexed substitution, Prelude caches, and guarded trace-driven
  re-evaluation with full-eval fallback;
* **naive** — the pre-optimization pipeline: rebuild the user AST, rebuild
  the combined Prelude+user program, re-walk it for ρ0, re-evaluate the
  whole ``ELet`` spine from scratch, and re-validate the canvas.

Both paths are driven by the *same* trigger so they see identical mouse
offsets, and a verification pass checks that they produce bit-identical
outputs (values, traces, and rendered SVG) at every step.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from statistics import median
from typing import List, Optional, Sequence, Tuple

from ..editor.session import LiveSession
from ..examples.registry import example_source
from ..lang.ast import substitute
from ..lang.eval import evaluate
from ..lang.parser import collect_rho0
from ..lang.program import Program
from ..svg.canvas import Canvas
from ..svg.render import render_canvas
from ..trace.trace import trace_key

#: Corpus examples exercised by the drag-latency benchmark: the running
#: example, the smallest program, a case study, and progressively heavier
#: canvases (group box + stars, FILL zones, slider, 80-polygon tiling).
DEFAULT_EXAMPLES = (
    "sine_wave_of_boxes",
    "three_boxes",
    "ferris_wheel",
    "chicago_flag",
    "color_wheel",
    "n_boxes_slider",
    "tessellation",
)

DEFAULT_STEPS = 60


@dataclass(frozen=True)
class DragLatencyRow:
    name: str
    steps: int
    fast_sps: float        # steps per second, incremental session path
    naive_sps: float       # steps per second, pre-optimization path
    outputs_identical: bool

    @property
    def speedup(self) -> float:
        return self.fast_sps / self.naive_sps if self.naive_sps else 0.0


def _gesture(steps: int) -> List[Tuple[float, float]]:
    """Deterministic cumulative offsets for one drag gesture."""
    return [(float(i % 20), float((i * 3) % 11)) for i in range(steps)]


def _start(name: str) -> LiveSession:
    session = LiveSession(example_source(name))
    key = next(iter(session.triggers))
    session.start_drag(*key)
    return session


def _canvas_signature(canvas: Canvas) -> Tuple[str, tuple]:
    rendered = render_canvas(canvas.root, include_hidden=True)
    traces = tuple(trace_key(trace)
                   for trace in canvas.all_numeric_traces())
    return rendered, traces


def _naive_step(base: Program, bindings) -> Canvas:
    """One pre-optimization drag step: full rebuild, full re-evaluation."""
    new_user = substitute(base.user_ast, bindings)
    program = Program(new_user, source=base.source,
                      with_prelude=base.with_prelude,
                      prelude_frozen=base.prelude_frozen)
    collect_rho0(program.ast)           # the seed constructor's full walk
    value = evaluate(program.ast)       # full Prelude spine, no caches
    return Canvas.from_value(value)


def _verify_identical(name: str, steps: int) -> bool:
    """Drive both paths through the same gesture; outputs must match
    bit-for-bit (rendered SVG and trace structure) at every step."""
    session = _start(name)
    base = session._drag_base
    for dx, dy in _gesture(steps):
        result = session.drag(dx, dy)
        if not result.bindings:
            continue
        naive_canvas = _naive_step(base, result.bindings)
        if _canvas_signature(session.canvas) != \
                _canvas_signature(naive_canvas):
            session.release()
            return False
    session.release()
    return True


def _time_fast(name: str, steps: int) -> float:
    session = _start(name)
    offsets = _gesture(steps)
    start = time.perf_counter()
    for dx, dy in offsets:
        session.drag(dx, dy)
    elapsed = time.perf_counter() - start
    session.release()
    return steps / elapsed


def _time_naive(name: str, steps: int) -> float:
    session = _start(name)
    base = session._drag_base
    trigger = session._drag_trigger
    offsets = _gesture(steps)
    start = time.perf_counter()
    for dx, dy in offsets:
        result = trigger(dx, dy)
        if result.bindings:
            _naive_step(base, result.bindings)
    elapsed = time.perf_counter() - start
    session.release()
    return steps / elapsed


def measure_drag_latency(names: Optional[Sequence[str]] = None,
                         steps: int = DEFAULT_STEPS,
                         repeats: int = 2,
                         verify: bool = True) -> List[DragLatencyRow]:
    """Measure fast/naive drag throughput for each example.

    Each path is timed ``repeats`` times and the best rate kept (drag
    latency is a minimum-cost property; the OS noise only adds time).
    """
    rows: List[DragLatencyRow] = []
    for name in names or DEFAULT_EXAMPLES:
        identical = _verify_identical(name, steps) if verify else True
        fast = max(_time_fast(name, steps) for _ in range(repeats))
        naive = max(_time_naive(name, steps) for _ in range(repeats))
        rows.append(DragLatencyRow(name, steps, fast, naive, identical))
    return rows


def median_speedup(rows: Sequence[DragLatencyRow]) -> float:
    return median(row.speedup for row in rows)

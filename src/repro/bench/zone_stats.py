"""Zone statistics — paper §5.2.1 and Appendix G's first table.

Per example: shape count, zone count, and how many zones have 0 / 1 / >1
candidate location assignments (with the average count among the ambiguous
ones).  Corpus totals reproduce the §5.2.1 summary table::

    Zones        14,106
    Inactive        991   7%
    Active       13,115
    Unambiguous   4,856  34%
    Ambiguous     8,259  59%   (3.83 candidates on average)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .corpus import PreparedExample


@dataclass(frozen=True)
class ZoneStatsRow:
    name: str
    shape_count: int
    zone_count: int
    inactive: int          # zero candidates
    unambiguous: int       # exactly one candidate
    ambiguous: int         # more than one candidate
    ambiguous_avg: float   # average candidates among ambiguous zones

    @property
    def active(self) -> int:
        return self.unambiguous + self.ambiguous


def zone_stats(example: PreparedExample) -> ZoneStatsRow:
    inactive = unambiguous = ambiguous = 0
    ambiguous_total = 0
    for analysis in example.assignments.analyses:
        if analysis.candidate_count == 0:
            inactive += 1
        elif analysis.candidate_count == 1:
            unambiguous += 1
        else:
            ambiguous += 1
            ambiguous_total += analysis.candidate_count
    return ZoneStatsRow(
        name=example.name,
        shape_count=len(example.canvas),
        zone_count=len(example.assignments.analyses),
        inactive=inactive,
        unambiguous=unambiguous,
        ambiguous=ambiguous,
        ambiguous_avg=(ambiguous_total / ambiguous) if ambiguous else 0.0,
    )


@dataclass(frozen=True)
class ZoneTotals:
    zones: int
    inactive: int
    active: int
    unambiguous: int
    ambiguous: int
    ambiguous_avg: float

    @property
    def inactive_pct(self) -> float:
        return 100.0 * self.inactive / self.zones if self.zones else 0.0

    @property
    def unambiguous_pct(self) -> float:
        return 100.0 * self.unambiguous / self.zones if self.zones else 0.0

    @property
    def ambiguous_pct(self) -> float:
        return 100.0 * self.ambiguous / self.zones if self.zones else 0.0


def zone_totals(rows: List[ZoneStatsRow]) -> ZoneTotals:
    zones = sum(row.zone_count for row in rows)
    inactive = sum(row.inactive for row in rows)
    unambiguous = sum(row.unambiguous for row in rows)
    ambiguous = sum(row.ambiguous for row in rows)
    weighted = sum(row.ambiguous_avg * row.ambiguous for row in rows)
    return ZoneTotals(
        zones=zones,
        inactive=inactive,
        active=zones - inactive,
        unambiguous=unambiguous,
        ambiguous=ambiguous,
        ambiguous_avg=(weighted / ambiguous) if ambiguous else 0.0,
    )


def corpus_zone_stats(corpus: Dict[str, PreparedExample]
                      ) -> List[ZoneStatsRow]:
    return [zone_stats(example) for example in corpus.values()]

"""Edit-latency measurement: text edit → synced canvas, fast vs reopen.

The paper's workflow *alternates* programmatic and direct manipulation;
PRs 1–2 made the direct-manipulation half (drag, release) incremental, and
this module measures the programmatic half: the latency from a source-text
edit to a fully synchronized canvas (run + assignments + triggers +
sliders).

Two paths are compared over identical edit sequences:

* **fast** — :meth:`~repro.editor.session.LiveSession.edit_source`: the
  structural differ classifies the edit and feeds it to the staged
  pipeline, so a value-only edit replays recorded guards and revalidates
  the Prepare caches instead of recomputing them;
* **naive** — reopen from scratch: a fresh
  :class:`~repro.editor.session.LiveSession` on the new text, which is
  what a text edit cost before the edit path existed (parse + record a
  full evaluation + full Prepare).

Structural edits (which must re-run from scratch by construction) are
timed along the fast path as well, as a floor.  A verification pass locks
the fast path byte-identical to a fresh session at every step: rendered
SVG (hidden shapes included), active zones and their hover captions,
sliders, and the unparsed source.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from statistics import median
from typing import List, Optional, Sequence

from ..editor.session import LiveSession
from ..examples.registry import example_source
from ..lang.errors import LittleError
from ..lang.incremental import record_evaluation, reevaluate
from ..lang.program import parse_program

#: Examples spanning the cost spectrum: cheap canvases where Parse
#: dominates a reopen up to the 80-polygon tiling where Prepare does.
EDIT_EXAMPLES = (
    "sine_wave_of_boxes",
    "ferris_wheel",
    "chicago_flag",
    "keyboard",
    "us13_flag",
    "tessellation",
)

DEFAULT_EDITS = 24


@dataclass(frozen=True)
class EditLatencyRow:
    name: str
    edits: int
    fast_eps: float          # value-only edits/sec via edit_source
    naive_eps: float         # reopen-from-scratch sessions/sec
    structural_eps: float    # structural edits/sec via edit_source
    value_only: bool         # differ classified every value edit 'value'
    outputs_identical: bool

    @property
    def speedup(self) -> float:
        return self.fast_eps / self.naive_eps if self.naive_eps else 0.0


def value_edit_texts(source: str, count: int) -> List[str]:
    """Up to ``count`` program texts, each differing from its predecessor
    in exactly one numeric literal's value (cycling over every literal).

    Perturbations that crash the program or flip a control-flow guard are
    skipped: the former are not valid edits at all, and the latter cannot
    be incremental *by construction* (the pipeline escalates them to a
    full re-run, exactly like a guard-flipping drag) — the benchmark
    measures the steady-state value-only path, and escalation correctness
    is locked by the equivalence tests instead.
    """
    program = parse_program(source)
    locs = program.user_locs()
    if not locs:
        return []
    try:
        _, guards = record_evaluation(program)
    except LittleError:
        guards = None
    texts: List[str] = []
    index = 0
    for _attempt in range(count * 8):
        if len(texts) >= count:
            break
        loc = locs[index % len(locs)]
        index += 1
        candidate = program.substitute(
            {loc: program.rho0[loc] + (len(texts) % 5) + 1})
        if guards is not None and reevaluate(guards, candidate.rho0) is None:
            continue
        try:
            _, guards = record_evaluation(candidate)
        except LittleError:
            continue
        program = candidate
        texts.append(program.unparse())
    return texts


def structural_edit_texts(source: str, count: int) -> List[str]:
    """``count`` texts each prepending a differently-*named* definition —
    a minimal structural edit whose other literals all survive re-keying."""
    return [f"(def pad_{index} {index + 1})\n{source}"
            for index in range(count)]


def _session_signature(session: LiveSession) -> tuple:
    """Everything a client can observe, in parse-stable coordinates.

    Loc *identities* necessarily differ between an edited session and a
    freshly-opened one (the allocator is global), so anonymous locations
    are labelled by their parse-order position and named ones by their
    canonical name — the rendered output, zones, hover location sets and
    sliders must then agree exactly.
    """
    labels = {loc.ident: (loc.name or f"u{index}")
              for index, loc in enumerate(session.program.user_locs())}

    def label(loc):
        return labels.get(loc.ident, loc.display())     # Prelude: shared

    assignments = session.assignments
    zones = sorted(assignments.chosen)
    hover = []
    for key in zones:
        active, _caption, selected, unselected = assignments.hover_data(*key)
        hover.append((active, tuple(sorted(label(loc) for loc in selected)),
                      tuple(sorted(label(loc) for loc in unselected))))
    sliders = tuple(sorted(
        (label(slider.loc), slider.lo, slider.hi, slider.value)
        for slider in session.sliders.values()))
    return (session.export_svg(include_hidden=True), tuple(zones),
            tuple(hover), sliders, session.source())


def _verify_edits(source: str, texts: Sequence[str]):
    """Apply ``texts`` through one session, checking it against a fresh
    session at every step.  Returns ``(identical, differ kinds)``."""
    session = LiveSession(source)
    kinds = []
    for text in texts:
        kinds.append(session.edit_source(text).kind)
        if _session_signature(session) != \
                _session_signature(LiveSession(text)):
            return False, kinds
    return True, kinds


def _time_edits(source: str, texts: Sequence[str]) -> float:
    session = LiveSession(source)
    start = time.perf_counter()
    for text in texts:
        session.edit_source(text)
    return len(texts) / (time.perf_counter() - start)


def _time_reopens(texts: Sequence[str]) -> float:
    start = time.perf_counter()
    for text in texts:
        LiveSession(text)
    return len(texts) / (time.perf_counter() - start)


def measure_edit_latency(names: Optional[Sequence[str]] = None,
                         edits: int = DEFAULT_EDITS,
                         repeats: int = 2,
                         verify: bool = True) -> List[EditLatencyRow]:
    """Measure fast/naive edit throughput for each example.

    Each path is timed ``repeats`` times and the best rate kept (latency
    is a minimum-cost property; OS noise only adds time).
    """
    rows: List[EditLatencyRow] = []
    for name in names or EDIT_EXAMPLES:
        source = example_source(name)
        value_texts = value_edit_texts(source, edits)
        if not value_texts:
            # Nothing perturbable: report the shortfall instead of a
            # vacuously-passing row of zeros.
            rows.append(EditLatencyRow(name, 0, 0.0, 0.0, 0.0,
                                       False, False))
            continue
        struct_texts = structural_edit_texts(source, len(value_texts))
        if verify:
            value_identical, kinds = _verify_edits(source, value_texts)
            struct_identical, _ = _verify_edits(source, struct_texts)
            identical = value_identical and struct_identical
            value_only = all(kind == "value" for kind in kinds)
        else:
            identical = value_only = True
        fast = max(_time_edits(source, value_texts)
                   for _ in range(repeats))
        naive = max(_time_reopens(value_texts) for _ in range(repeats))
        structural = max(_time_edits(source, struct_texts)
                         for _ in range(repeats))
        rows.append(EditLatencyRow(name, len(value_texts), fast, naive,
                                   structural, value_only, identical))
    return rows


def median_edit_speedup(rows: Sequence[EditLatencyRow]) -> float:
    return median(row.speedup for row in rows)

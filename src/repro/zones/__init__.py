"""Zones, shape assignments, heuristics and mouse triggers (§4, App. B)."""

from .assignment import (Assignment, CanvasAssignments, HEURISTICS,
                         ZoneAnalysis, analyze_canvas, analyze_zone,
                         assign_canvas)
from .triggers import (FeatureOutcome, MouseTrigger, TriggerResult,
                       compute_triggers)
from .zones import (Feature, X_AXIS, Y_AXIS, Zone, zones_for_canvas,
                    zones_for_shape)

__all__ = [
    "Assignment", "CanvasAssignments", "HEURISTICS", "ZoneAnalysis",
    "analyze_canvas", "analyze_zone", "assign_canvas",
    "FeatureOutcome", "MouseTrigger", "TriggerResult", "compute_triggers",
    "Feature", "X_AXIS", "Y_AXIS", "Zone", "zones_for_canvas",
    "zones_for_shape",
]

"""Mouse triggers: from assignments to real-time program updates (§4.1).

``ComputeTrigger(kind, ρ, γ, v)`` returns a function ``τ(dx, dy) → ρ′`` that
solves one univariate value-trace equation per controlled attribute — using
the location chosen by γ — and composes the resulting bindings.  The
composition is order-dependent and therefore *plausible*, not faithful:
"we simply apply the individual substitutions in an arbitrary
(implementation-specific) order" (§4.1, Recap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..lang.ast import Loc
from ..lang.errors import SolverFailure
from ..svg.canvas import Canvas, Shape
from ..synthesis.solver import compile_solve_one
from ..trace.trace import Trace
from .assignment import Assignment, CanvasAssignments
from .zones import Feature, X_AXIS


@dataclass(frozen=True)
class FeatureOutcome:
    """Per-attribute result of firing a trigger."""

    feature: Feature
    loc: Loc
    target: float
    solution: Optional[float]
    error: Optional[str] = None

    @property
    def solved(self) -> bool:
        return self.solution is not None


@dataclass(frozen=True)
class TriggerResult:
    """The substitution computed by one trigger firing plus diagnostics.

    ``bindings`` holds only the *changed* locations; the caller applies them
    to the original program ("this substitution is then applied to the
    original program, the new program is run, and the new output is
    rendered", §4.1).
    """

    bindings: Dict[Loc, float]
    outcomes: Tuple[FeatureOutcome, ...]

    @property
    def all_solved(self) -> bool:
        return all(outcome.solved for outcome in self.outcomes)

    @property
    def any_solved(self) -> bool:
        return any(outcome.solved for outcome in self.outcomes)


class MouseTrigger:
    """τ = λ(dx, dy). ρ ⊕ (ℓ → SolveOne(…)) ⊕ …"""

    def __init__(self, shape: Shape, assignment: Assignment,
                 rho: Mapping[Loc, float]):
        self.shape = shape
        self.assignment = assignment
        self.rho = rho
        # Pre-read attribute values and traces once per Prepare (§4.1
        # computes triggers before any user action).  Uncontrolled
        # attributes (theta entry None) are skipped.
        self._features: List[Tuple[Feature, Loc, float, Trace]] = []
        for feature, loc in zip(assignment.zone.features, assignment.theta):
            if loc is None:
                continue
            number = shape.get_num(feature.ref)
            self._features.append((feature, loc, number.value, number.trace))
        # Per-feature solver closures, specialized on first firing: the
        # equation's structure and ρ are fixed for the trigger's
        # lifetime, only the target moves with the mouse.
        self._solvers = None

    def rebind(self, shape: Shape, rho: Mapping[Loc, float]
               ) -> "MouseTrigger":
        """A trigger for the same zone on a value-identical shape.

        Used by the incremental Prepare for shapes whose dependency set
        does not intersect the change set: their attribute values and
        traces are unchanged, so the pre-read feature tuples are shared
        and only ρ (which a substitution always replaces) is rebound.
        """
        trigger = MouseTrigger.__new__(MouseTrigger)
        trigger.shape = shape
        trigger.assignment = self.assignment
        trigger.rho = rho
        trigger._features = self._features
        trigger._solvers = None         # closures are specialized per ρ
        return trigger

    def __call__(self, dx: float, dy: float) -> TriggerResult:
        solvers = self._solvers
        if solvers is None:
            solvers = self._solvers = [
                compile_solve_one(self.rho, loc, trace)
                for _, loc, _, trace in self._features]
        bindings: Dict[Loc, float] = {}
        outcomes: List[FeatureOutcome] = []
        for (feature, loc, value, trace), solver in zip(self._features,
                                                        solvers):
            delta = dx if feature.axis == X_AXIS else dy
            target = value + feature.sign * delta
            try:
                solution = solver(target)
            except SolverFailure as failure:
                outcomes.append(FeatureOutcome(feature, loc, target, None,
                                               str(failure)))
                continue
            # Later bindings shadow earlier ones (plausible updates).
            bindings[loc] = solution
            outcomes.append(FeatureOutcome(feature, loc, target, solution))
        return TriggerResult(bindings, tuple(outcomes))


def compute_triggers(canvas: Canvas, assignments: CanvasAssignments,
                     rho: Mapping[Loc, float]
                     ) -> Dict[Tuple[int, str], MouseTrigger]:
    """Build a trigger for every Active zone — the editor's Prepare step
    ("once mouse triggers have been computed for all shapes, the editor is
    prepared to respond to any user action", §4.1)."""
    triggers: Dict[Tuple[int, str], MouseTrigger] = {}
    for key, assignment in assignments.chosen.items():
        shape = canvas[assignment.zone.shape_index]
        triggers[key] = MouseTrigger(shape, assignment, rho)
    return triggers


def compute_shape_triggers(canvas: Canvas, assignments: CanvasAssignments,
                           shape_index: int, rho: Mapping[Loc, float]
                           ) -> Dict[Tuple[int, str], MouseTrigger]:
    """Per-shape trigger entry point: fresh triggers for every Active zone
    of one shape — the unit the incremental Prepare re-computes when the
    shape's dependency set intersects the change set."""
    shape = canvas[shape_index]
    triggers: Dict[Tuple[int, str], MouseTrigger] = {}
    for key in assignments.keys_by_shape().get(shape_index, ()):
        triggers[key] = MouseTrigger(shape, assignments.chosen[key], rho)
    return triggers

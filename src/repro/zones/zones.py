"""Zones: the directly-manipulable areas of each shape kind (Figure 5).

Each zone controls a set of attributes; each controlled attribute varies
covariantly (``+dx``/``+dy``) or contravariantly (``−dx``/``−dy``) with the
mouse offset.  E.g. dragging a rect's BOTLEFTCORNER moves ``x`` with
``+dx``, ``width`` with ``−dx`` and ``height`` with ``+dy``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..svg.canvas import AttrRef, Shape

X_AXIS = "x"
Y_AXIS = "y"


@dataclass(frozen=True)
class Feature:
    """One attribute controlled by a zone, with its offset behaviour."""

    ref: AttrRef
    axis: str       # X_AXIS or Y_AXIS: which mouse delta applies
    sign: int       # +1 covariant, -1 contravariant


@dataclass(frozen=True)
class Zone:
    shape_index: int
    name: str
    features: Tuple[Feature, ...]

    def controlled_attrs(self) -> Tuple[str, ...]:
        return tuple(feature.ref.name for feature in self.features)


def _simple(key: str, axis: str, sign: int = 1) -> Feature:
    return Feature(AttrRef(key, (key,)), axis, sign)


def _point_feature(index: int, axis_index: int, axis: str,
                   sign: int = 1) -> Feature:
    name = f"points[{index}].{'x' if axis_index == 0 else 'y'}"
    return Feature(AttrRef(name, ("points", index, axis_index)), axis, sign)


def _rect_zones(shape: Shape) -> List[Zone]:
    i = shape.index
    x_dx = _simple("x", X_AXIS)
    y_dy = _simple("y", Y_AXIS)
    w_dx = _simple("width", X_AXIS)
    w_ndx = _simple("width", X_AXIS, -1)
    h_dy = _simple("height", Y_AXIS)
    h_ndy = _simple("height", Y_AXIS, -1)
    return [
        Zone(i, "INTERIOR", (x_dx, y_dy)),
        Zone(i, "RIGHTEDGE", (w_dx,)),
        Zone(i, "BOTRIGHTCORNER", (w_dx, h_dy)),
        Zone(i, "BOTEDGE", (h_dy,)),
        Zone(i, "BOTLEFTCORNER", (x_dx, w_ndx, h_dy)),
        Zone(i, "LEFTEDGE", (x_dx, w_ndx)),
        Zone(i, "TOPLEFTCORNER", (x_dx, y_dy, w_ndx, h_ndy)),
        Zone(i, "TOPEDGE", (y_dy, h_ndy)),
        Zone(i, "TOPRIGHTCORNER", (y_dy, w_dx, h_ndy)),
    ]


def _line_zones(shape: Shape) -> List[Zone]:
    i = shape.index
    return [
        Zone(i, "POINT1", (_simple("x1", X_AXIS), _simple("y1", Y_AXIS))),
        Zone(i, "POINT2", (_simple("x2", X_AXIS), _simple("y2", Y_AXIS))),
        Zone(i, "EDGE", (_simple("x1", X_AXIS), _simple("y1", Y_AXIS),
                         _simple("x2", X_AXIS), _simple("y2", Y_AXIS))),
    ]


def _circle_zones(shape: Shape) -> List[Zone]:
    i = shape.index
    return [
        Zone(i, "INTERIOR", (_simple("cx", X_AXIS), _simple("cy", Y_AXIS))),
        Zone(i, "RIGHTEDGE", (_simple("r", X_AXIS),)),
        Zone(i, "BOTEDGE", (_simple("r", Y_AXIS),)),
    ]


def _ellipse_zones(shape: Shape) -> List[Zone]:
    i = shape.index
    return [
        Zone(i, "INTERIOR", (_simple("cx", X_AXIS), _simple("cy", Y_AXIS))),
        Zone(i, "RIGHTEDGE", (_simple("rx", X_AXIS),)),
        Zone(i, "BOTEDGE", (_simple("ry", Y_AXIS),)),
    ]


def _poly_zones(shape: Shape, closed: bool) -> List[Zone]:
    i = shape.index
    points = shape.points()
    count = len(points)
    zones: List[Zone] = []
    for index in range(count):
        zones.append(Zone(i, f"POINT{index}",
                          (_point_feature(index, 0, X_AXIS),
                           _point_feature(index, 1, Y_AXIS))))
    edge_count = count if closed else count - 1
    for index in range(edge_count):
        next_index = (index + 1) % count
        zones.append(Zone(i, f"EDGE{index}",
                          (_point_feature(index, 0, X_AXIS),
                           _point_feature(index, 1, Y_AXIS),
                           _point_feature(next_index, 0, X_AXIS),
                           _point_feature(next_index, 1, Y_AXIS))))
    interior = []
    for index in range(count):
        interior.append(_point_feature(index, 0, X_AXIS))
        interior.append(_point_feature(index, 1, Y_AXIS))
    zones.append(Zone(i, "INTERIOR", tuple(interior)))
    return zones


def _path_zones(shape: Shape) -> List[Zone]:
    i = shape.index
    axes = shape.path_coordinate_axes()
    zones: List[Zone] = []
    # Group consecutive (x, y) coordinate pairs into POINT zones; stray
    # single coordinates (H/V commands) get their own single-axis zones.
    point_index = 0
    number_index = 0
    while number_index < len(axes):
        if (number_index + 1 < len(axes) and axes[number_index] == 0
                and axes[number_index + 1] == 1):
            zones.append(Zone(i, f"POINT{point_index}", (
                Feature(AttrRef(f"d[{number_index}]",
                                ("d", number_index)), X_AXIS, 1),
                Feature(AttrRef(f"d[{number_index + 1}]",
                                ("d", number_index + 1)), Y_AXIS, 1),
            )))
            number_index += 2
        else:
            axis = X_AXIS if axes[number_index] == 0 else Y_AXIS
            zones.append(Zone(i, f"POINT{point_index}", (
                Feature(AttrRef(f"d[{number_index}]",
                                ("d", number_index)), axis, 1),
            )))
            number_index += 1
        point_index += 1
    interior = tuple(
        Feature(AttrRef(f"d[{index}]", ("d", index)),
                X_AXIS if axis == 0 else Y_AXIS, 1)
        for index, axis in enumerate(axes))
    if interior:
        zones.append(Zone(i, "INTERIOR", interior))
    return zones


def _text_zones(shape: Shape) -> List[Zone]:
    return [Zone(shape.index, "INTERIOR",
                 (_simple("x", X_AXIS), _simple("y", Y_AXIS)))]


def _rotation_zones(shape: Shape) -> List[Zone]:
    """A built-in ROTATION zone per 'rotate' transform command (§5.2.2
    mentions "separate built-in rotation zones in our implementation").
    Horizontal dragging varies the angle."""
    from ..lang.values import VNum, VStr, is_list, to_pylist
    value = shape.node.attr("transform")
    if value is None or not is_list(value):
        return []
    zones: List[Zone] = []
    for index, command in enumerate(to_pylist(value)):
        if not is_list(command):
            continue
        parts = to_pylist(command)
        if (len(parts) >= 2 and isinstance(parts[0], VStr)
                and parts[0].value == "rotate"
                and isinstance(parts[1], VNum)):
            name = "ROTATION" if not zones else f"ROTATION{index}"
            ref = AttrRef(f"transform[{index}].angle",
                          ("transform", index, 1))
            zones.append(Zone(shape.index, name,
                              (Feature(ref, X_AXIS, 1),)))
    return zones


def _fill_color_zone(shape: Shape) -> List[Zone]:
    """A FILL zone when the fill is a *color number* (Appendix C): "our
    editor displays a slider right next to the object that allows direct
    manipulation control over the 'fill' attribute"."""
    from ..lang.values import VNum
    value = shape.node.attr("fill")
    if isinstance(value, VNum):
        return [Zone(shape.index, "FILL",
                     (Feature(AttrRef("fill", ("fill",)), X_AXIS, 1),))]
    return []


def zones_for_shape(shape: Shape) -> List[Zone]:
    """All zones of ``shape`` per the Figure 5 tables, plus the built-in
    ROTATION and FILL zones of the implementation appendix.

    A shape carrying the non-standard ``['ZONES' 'none']`` attribute opts
    out of direct manipulation entirely (Appendix A)."""
    from ..lang.values import VStr
    zones_attr = shape.node.attr("ZONES")
    if isinstance(zones_attr, VStr) and zones_attr.value == "none":
        return []
    kind = shape.kind
    if kind == "rect":
        zones = _rect_zones(shape)
    elif kind == "line":
        zones = _line_zones(shape)
    elif kind == "circle":
        zones = _circle_zones(shape)
    elif kind == "ellipse":
        zones = _ellipse_zones(shape)
    elif kind == "polygon":
        zones = _poly_zones(shape, closed=True)
    elif kind == "polyline":
        zones = _poly_zones(shape, closed=False)
    elif kind == "path":
        zones = _path_zones(shape)
    elif kind == "text":
        zones = _text_zones(shape)
    else:
        zones = []
    zones.extend(_rotation_zones(shape))
    zones.extend(_fill_color_zone(shape))
    return zones


def zones_for_canvas(canvas) -> List[Zone]:
    zones: List[Zone] = []
    for shape in canvas:
        zones.extend(zones_for_shape(shape))
    return zones

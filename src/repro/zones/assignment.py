"""Shape/attribute assignments and disambiguation heuristics (§4.1, App. B.1).

For each zone, every controlled attribute's trace yields a set of candidate
locations (``Locs``); an *attribute assignment* θ picks one location per
attribute, and the *shape assignment* γ picks one θ per zone.  Zones are:

* **Inactive** — zero candidate assignments (some attribute has no
  non-frozen location);
* **Unambiguous** — exactly one candidate;
* **Ambiguous** — more than one (§5.2.1 reports 3.83 candidates on average).

Two heuristics choose among candidates:

* ``fair`` — rotate through location sets, preferring the set assigned to
  the fewest previous zones ("we 'rotate' through each of the four attribute
  assignments", §4.1);
* ``biased`` — prefer location sets whose members occur in few run-time
  traces: ``Score({ℓ1…ℓn}) = Count(ℓ1) × … × Count(ℓn)``, lowest score wins
  (Appendix B.1), with fair rotation breaking ties.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..lang.ast import Loc
from ..svg.canvas import Canvas, Shape
from ..trace.trace import count_loc_occurrences, locs
from .zones import Zone, zones_for_canvas, zones_for_shape

#: Cap on explicitly enumerated candidates per zone (polygon INTERIOR zones
#: can have huge cross products; real location sets are tiny — §5.2.1).
MAX_ENUMERATED = 1024

HEURISTICS = ("fair", "biased")


@dataclass
class ZoneAnalysis:
    """Candidate structure of one zone.

    Features (controlled attributes) are grouped by their location set:
    attributes computed from the same constants make the same choice — the
    essence of a local update is the set of changed constants (§2.3).  A
    candidate assignment θ then picks one location per *distinct* location
    set; e.g. a rect INTERIOR with x-locs {x0, sep} and y-locs {y0, amp}
    has 2 × 2 = 4 candidates (§4.1), while a polygon INTERIOR whose six
    coordinates all share those two locsets also has 4, not 2⁶.
    """

    zone: Zone
    locsets: Tuple[Tuple[Loc, ...], ...]   # per-feature candidate locations
    groups: Tuple[Tuple[Loc, ...], ...]    # distinct non-empty locsets
    feature_group: Tuple[Optional[int], ...]  # feature -> group (or None)
    candidate_count: int                   # product of group sizes

    @property
    def active(self) -> bool:
        """Active iff *some* controlled attribute has a candidate location.
        Attributes whose traces mention no unfrozen location are simply not
        controlled — e.g. a user-defined slider's ball has a frozen 'cy'
        but a draggable 'cx' (§6.3)."""
        return self.candidate_count > 0

    @property
    def ambiguous(self) -> bool:
        return self.candidate_count > 1

    def iter_candidates(self, limit: int = MAX_ENUMERATED):
        """Yield candidate assignments θ as tuples of locations aligned
        with ``zone.features`` (at most ``limit``).  Uncontrolled features
        yield ``None`` entries."""
        if not self.active:
            return
        for group_choice in itertools.islice(
                itertools.product(*self.groups), limit):
            yield tuple(None if group is None else group_choice[group]
                        for group in self.feature_group)


@dataclass
class Assignment:
    """γ(v)(ζ): the chosen attribute assignment for one zone.

    ``theta`` is aligned with ``zone.features``; a ``None`` entry marks an
    uncontrolled attribute (no candidate locations)."""

    zone: Zone
    theta: Tuple[Optional[Loc], ...]

    @property
    def location_set(self) -> FrozenSet[Loc]:
        return frozenset(loc for loc in self.theta if loc is not None)

    def caption(self) -> str:
        """Editor hover caption: the constants that will change (§5)."""
        names = sorted({loc.display() for loc in self.location_set})
        return "Active: changes {" + ", ".join(names) + "}"


@dataclass
class CanvasAssignments:
    """Result of the Prepare step for a whole canvas."""

    analyses: List[ZoneAnalysis]
    chosen: Dict[Tuple[int, str], Assignment]
    heuristic: str

    def lookup(self, shape_index: int, zone_name: str
               ) -> Optional[Assignment]:
        return self.chosen.get((shape_index, zone_name))

    def analysis(self, shape_index: int, zone_name: str
                 ) -> Optional[ZoneAnalysis]:
        for analysis in self.analyses:
            if (analysis.zone.shape_index == shape_index
                    and analysis.zone.name == zone_name):
                return analysis
        return None

    def keys_by_shape(self) -> Dict[int, List[Tuple[int, str]]]:
        """Chosen zone keys grouped by shape index — the unit at which the
        incremental trigger stage re-computes.  Cached: the chosen dict is
        never mutated after construction."""
        grouped = getattr(self, "_keys_by_shape", None)
        if grouped is None:
            grouped = {}
            for key in self.chosen:
                grouped.setdefault(key[0], []).append(key)
            self._keys_by_shape = grouped
        return grouped

    def hover_data(self, shape_index: int, zone_name: str
                   ) -> Tuple[bool, str, Tuple[Loc, ...], Tuple[Loc, ...]]:
        """What the editor shows when hovering a zone (§5): whether it is
        Active, the constants that will change, and the contributing
        constants that were not selected.  Shared by the editor's hover
        caption and the incremental-Prepare equivalence checks."""
        assignment = self.lookup(shape_index, zone_name)
        analysis = self.analysis(shape_index, zone_name)
        if assignment is None or analysis is None:
            return False, "Inactive", (), ()
        selected = tuple(sorted(assignment.location_set,
                                key=lambda loc: loc.ident))
        contributing = set()
        for locset in analysis.locsets:
            contributing.update(locset)
        unselected = tuple(sorted(contributing - set(selected),
                                  key=lambda loc: loc.ident))
        return True, assignment.caption(), selected, unselected


def analyze_zone(canvas: Canvas, zone: Zone) -> ZoneAnalysis:
    """Compute candidate location sets for each feature of ``zone``."""
    locsets: List[Tuple[Loc, ...]] = []
    shape = canvas[zone.shape_index]
    for feature in zone.features:
        number = shape.get_num(feature.ref)
        candidates = tuple(sorted(locs(number.trace),
                                  key=lambda loc: loc.ident))
        locsets.append(candidates)
    groups: List[Tuple[Loc, ...]] = []
    feature_group: List[Optional[int]] = []
    group_index: Dict[Tuple[Loc, ...], int] = {}
    for locset in locsets:
        if not locset:
            feature_group.append(None)     # uncontrolled attribute
            continue
        if locset not in group_index:
            group_index[locset] = len(groups)
            groups.append(locset)
        feature_group.append(group_index[locset])
    if groups:
        count = 1
        for group in groups:
            count *= len(group)
    else:
        count = 0
    return ZoneAnalysis(zone, tuple(locsets), tuple(groups),
                        tuple(feature_group), count)


def analyze_shape(canvas: Canvas, shape: Shape) -> List[ZoneAnalysis]:
    """Per-shape analysis entry point: candidate structure of every zone
    of one shape.  The incremental Prepare re-runs this only for shapes
    whose loc-dependency set intersects the change set."""
    return [analyze_zone(canvas, zone) for zone in zones_for_shape(shape)]


def analyze_canvas(canvas: Canvas) -> List[ZoneAnalysis]:
    return [analyze_zone(canvas, zone) for zone in zones_for_canvas(canvas)]


def choose_assignments(canvas: Canvas, analyses: List[ZoneAnalysis],
                       heuristic: str = "fair") -> CanvasAssignments:
    """The selection half of Prepare: pick one assignment per Active zone.

    The choice depends only on the analyses' location sets (and, for the
    biased heuristic, the canvas trace pool) — never on attribute *values*
    — which is what lets the incremental Prepare reuse it wholesale when
    a change leaves every trace structurally intact.
    """
    if heuristic not in HEURISTICS:
        raise ValueError(f"unknown heuristic {heuristic!r}; "
                         f"expected one of {HEURISTICS}")
    usage: Dict[FrozenSet[Loc], int] = {}
    scores: Optional[Dict[Loc, int]] = None
    if heuristic == "biased":
        scores = count_loc_occurrences(canvas.all_numeric_traces())
    chosen: Dict[Tuple[int, str], Assignment] = {}
    for analysis in analyses:
        if not analysis.active:
            continue
        theta = _choose(analysis, usage, scores)
        location_set = frozenset(theta)
        usage[location_set] = usage.get(location_set, 0) + 1
        assignment = Assignment(analysis.zone, theta)
        chosen[(analysis.zone.shape_index, analysis.zone.name)] = assignment
    return CanvasAssignments(analyses, chosen, heuristic)


def assign_canvas(canvas: Canvas, heuristic: str = "fair"
                  ) -> CanvasAssignments:
    """The Prepare step: analyze all zones and choose one assignment per
    Active zone using the requested heuristic."""
    return choose_assignments(canvas, analyze_canvas(canvas), heuristic)


def _choose(analysis: ZoneAnalysis, usage: Dict[FrozenSet[Loc], int],
            scores: Optional[Dict[Loc, int]]) -> Tuple[Loc, ...]:
    best: Optional[Tuple[Loc, ...]] = None
    best_key = None
    for position, candidate in enumerate(analysis.iter_candidates()):
        location_set = frozenset(candidate)
        fairness = usage.get(location_set, 0)
        if scores is None:
            key = (fairness, position)
        else:
            score = 1
            for loc in location_set:
                score *= scores.get(loc, 0)
            key = (score, fairness, position)
        if best_key is None or key < best_key:
            best_key = key
            best = candidate
    assert best is not None   # caller checks analysis.active
    return best

"""Registry of the ``little`` example corpus.

The paper's evaluation runs over 68 example programs spanning ~2,000 lines
of little code (§5.2); this corpus reproduces the named examples whose
structure the paper describes (Appendix D/G).  All corpus-wide statistics
(zone counts, pre-equation solvability, timings) are computed over these
programs.
"""

from __future__ import annotations

import importlib.resources
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List

from ..lang.program import Program, parse_program


@dataclass(frozen=True)
class ExampleInfo:
    name: str
    title: str
    description: str


#: name -> (title, one-line description).  Order follows Appendix G.
_EXAMPLES: Dict[str, ExampleInfo] = {}


def _register(name: str, title: str, description: str) -> None:
    _EXAMPLES[name] = ExampleInfo(name, title, description)


_register("sine_wave_of_boxes", "Wave Boxes",
          "Figure 1: boxes along a sine wave; the paper's running example")
_register("wave_boxes_grid", "Wave Boxes Grid",
          "2-D grid of sine-wave rows")
_register("sketch_n_sketch_logo", "Logo",
          "three black polygons spaced by white lines (§6.1)")
_register("logo_sizes", "Logo Sizes",
          "the logo abstraction at three sizes")
_register("botanic_garden_logo", "Botanic Garden Logo",
          "Bezier leaves mirrored across a vertical axis (§6.1)")
_register("active_trans_logo", "Active Trans Logo",
          "city-skyline and road paths (§6.1)")
_register("chicago_flag", "Chicago Flag",
          "stripes plus four nStar stars and a group box (§6.1)")
_register("us13_flag", "US-13 Flag",
          "13 stripes, canton, ring of 13 stars")
_register("french_sudan_flag", "French Sudan Flag",
          "tricolor with a kanaga stick figure")
_register("sliders", "Sliders",
          "user-defined num/int/bool sliders (§6.3)")
_register("buttons", "Buttons", "a boolean button widget")
_register("widgets", "Widgets", "one of each user-defined widget kind")
_register("xy_slider", "xySlider", "two-dimensional slider (§6.3)")
_register("tile_pattern", "Tile Pattern",
          "grid controlled by xySlider/enumSlider/tokens (§6.3)")
_register("color_picker", "Color Picker",
          "RGB sliders driving a swatch fill")
_register("ferris_wheel", "Ferris Wheel",
          "the §6.2 case study, final version")
_register("ferris_task_before", "Ferris Task Before",
          "user-study initial ferris wheel")
_register("ferris_task_after", "Ferris Task After",
          "user-study target ferris wheel")
_register("hilbert_curve", "Hilbert Curve Animation",
          "slider-controlled curve order (§6.1)")
_register("bar_graph", "Bar Graph", "data-driven bars over an axis")
_register("pie_chart", "Pie Chart", "arc-path wedges")
_register("solar_system", "Solar System", "orbit rings and planets")
_register("clique", "Clique", "complete graph on circle points")
_register("eye_icon", "Eye Icon", "concentric circles plus a brow arc")
_register("wikimedia_logo", "Wikimedia Logo", "simplified mark")
_register("haskell_logo", "Haskell.org Logo", "the >λ= polygons")
_register("pop_pl_logo", "POP-PL Logo", "monogram of circles and strokes")
_register("lillicon_p", "Lillicon P",
          "semi-circle built from curves (§6.1)")
_register("keyboard", "Keyboard", "staggered key rows sharing key size")
_register("keyboard_task_before", "Keyboard Task Before",
          "user-study initial keyboard")
_register("keyboard_task_after", "Keyboard Task After",
          "user-study target keyboard")
_register("tessellation", "Tessellation Task Before",
          "triangle tiling (user-study initial)")
_register("tessellation_task_after", "Tessellation Task After",
          "user-study target tiling")
_register("floral_logo", "Floral Logo",
          "petals rotated about a common center (App. B.1)")
_register("spiral", "Spiral Spiral-Graph", "dots along a spiral")
_register("rounded_rect", "Rounded Rect",
          "rx/ry sliders beside the rectangle (§6.3)")
_register("thaw_freeze", "Thaw/Freeze", "frozen vs. manipulable boxes")
_register("three_boxes", "3 Boxes",
          "the 'hello world' of prodirect manipulation")
_register("n_boxes_slider", "N Boxes Sli", "box count on a slider")
_register("n_boxes", "N Boxes", "programmatic box count")
_register("elm_logo", "Elm Logo", "tangram without shared structure")
_register("rings", "Rings", "five interlocking rings")
_register("polygons", "Polygons", "equilateral triangles via nStar")
_register("stars", "Stars", "nStar with varying point counts")
_register("triangles", "Triangles", "two triangles sharing an edge")
_register("frank_lloyd_wright", "Frank Lloyd Wright",
          "art-glass window pattern")
_register("bezier_curves", "Bezier Curves",
          "cubic/quadratic curves with control markers")
_register("stick_figures", "Stick Figures", "figures sharing one size")
_register("misc_shapes", "Misc Shapes", "a mix of primitive kinds")
_register("paths_demo", "Paths", "path commands M/L/C/Q")
_register("sample_rotations", "Sample Rotations",
          "transform rotations about a pivot")
_register("grid_tile", "Grid Tile", "bordered grid of cells")
_register("zones_demo", "Zones", "one shape of each kind")
_register("fractal_tree", "Fractal Tree", "recursive branching")
_register("group_box_variant", "Wave Boxes (biased variant)",
          "the Appendix B.1 example where biased beats fair")
_register("sailboat", "Sailboat", "hull/mast/sails over wave circles")
_register("logo2", "Logo 2", "recolored logo on a group box")
_register("us50_flag", "US-50 Flag", "offset 50-star canton grid")
_register("survey_results", "Survey Results",
          "the Figure 9 histograms drawn in little")
_register("interface_buttons", "Interface Buttons",
          "toggle buttons showing/hiding layers")
_register("matrix_transformations", "Matrix Transformations",
          "explicit 2x2 matrix arithmetic")
_register("color_wheel", "Color Wheel",
          "color-number fills with FILL zones (Appendix C)")
_register("cover_logo", "Cover Logo", "block letter on a cell grid")


def example_names() -> List[str]:
    """All example names, in Appendix G order."""
    return list(_EXAMPLES)


def example_info(name: str) -> ExampleInfo:
    return _EXAMPLES[name]


@lru_cache(maxsize=None)
def example_source(name: str) -> str:
    if name not in _EXAMPLES:
        raise KeyError(f"unknown example {name!r}; "
                       f"see example_names()")
    resource = importlib.resources.files("repro.examples").joinpath(
        f"programs/{name}.little")
    return resource.read_text(encoding="utf-8")


def load_example(name: str, **kwargs) -> Program:
    """Parse one example into a :class:`~repro.lang.program.Program`."""
    return parse_program(example_source(name), **kwargs)


def load_all(**kwargs) -> Dict[str, Program]:
    """Parse the whole corpus."""
    return {name: load_example(name, **kwargs) for name in _EXAMPLES}

"""The little example corpus (paper §5.2, §6, Appendices D and G)."""

from .registry import (ExampleInfo, example_info, example_names,
                       example_source, load_all, load_example)

__all__ = ["ExampleInfo", "example_info", "example_names", "example_source",
           "load_all", "load_example"]

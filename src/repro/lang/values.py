"""Run-time values of ``little`` (paper Figure 2).

``v ::= nᵗ | s | b | [] | [v1|v2] | (λ p e)``

Numbers carry traces; every other value is traceless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from .ast import Expr, Pattern
from ..trace.trace import Trace


class VNum:
    """A number with its trace.  Hand-written (not a dataclass): VNum is
    constructed on the innermost evaluation path, and a plain ``__init__``
    beats the frozen-dataclass ``object.__setattr__`` protocol.  Treated
    as immutable by convention; equality/hash match the dataclass form."""

    __slots__ = ("value", "trace")

    def __init__(self, value: float, trace: Trace):
        self.value = value
        self.trace = trace

    def __eq__(self, other):
        if type(other) is not VNum:
            return NotImplemented
        return self.value == other.value and self.trace == other.trace

    def __hash__(self):
        return hash((self.value, self.trace))

    def __repr__(self):
        return f"VNum(value={self.value!r}, trace={self.trace!r})"


@dataclass(frozen=True, slots=True)
class VStr:
    value: str


@dataclass(frozen=True, slots=True)
class VBool:
    value: bool


@dataclass(frozen=True, slots=True)
class VNil:
    pass


class VCons:
    """A cons cell, hand-written for the same reason as :class:`VNum`."""

    __slots__ = ("head", "tail")

    def __init__(self, head: "Value", tail: "Value"):
        self.head = head
        self.tail = tail

    def __eq__(self, other):
        if type(other) is not VCons:
            return NotImplemented
        return self.head == other.head and self.tail == other.tail

    def __hash__(self):
        return hash((self.head, self.tail))

    def __repr__(self):
        return f"VCons(head={self.head!r}, tail={self.tail!r})"


class VClosure:
    """Function value.  Not a dataclass: closures are compared by identity
    and the captured environment may be back-patched for ``letrec``."""

    __slots__ = ("pattern", "body", "env")

    def __init__(self, pattern: Pattern, body: Expr, env):
        self.pattern = pattern
        self.body = body
        self.env = env

    def __repr__(self) -> str:
        return "<closure>"


Value = Union[VNum, VStr, VBool, VNil, VCons, VClosure]


def from_pylist(values) -> Value:
    """Build a little list value from a Python iterable of values."""
    result: Value = VNil()
    for value in reversed(list(values)):
        result = VCons(value, result)
    return result


def to_pylist(value: Value) -> list:
    """Flatten a little list value into a Python list (must be nil-terminated)."""
    items = []
    while isinstance(value, VCons):
        items.append(value.head)
        value = value.tail
    if not isinstance(value, VNil):
        raise TypeError(f"improper list (tail is {type(value).__name__})")
    return items


def is_list(value: Value) -> bool:
    while isinstance(value, VCons):
        value = value.tail
    return isinstance(value, VNil)


def value_equal(left: Value, right: Value) -> bool:
    """Structural equality *including* numeric values but ignoring traces."""
    if isinstance(left, VNum) and isinstance(right, VNum):
        return left.value == right.value
    if isinstance(left, VStr) and isinstance(right, VStr):
        return left.value == right.value
    if isinstance(left, VBool) and isinstance(right, VBool):
        return left.value == right.value
    if isinstance(left, VNil) and isinstance(right, VNil):
        return True
    if isinstance(left, VCons) and isinstance(right, VCons):
        return (value_equal(left.head, right.head)
                and value_equal(left.tail, right.tail))
    if isinstance(left, VClosure) and isinstance(right, VClosure):
        return left is right
    return False


def format_number(n: float) -> str:
    """Render a little number the way the SVG backend and toString do:
    integral floats print without a decimal point."""
    if n == int(n) and abs(n) < 1e15:
        return str(int(n))
    return repr(float(n))


def format_value(value: Value) -> str:
    """Debug/round-trip rendering of a value in little syntax."""
    if isinstance(value, VNum):
        return format_number(value.value)
    if isinstance(value, VStr):
        return f"'{value.value}'"
    if isinstance(value, VBool):
        return "true" if value.value else "false"
    if isinstance(value, VNil):
        return "[]"
    if isinstance(value, VCons):
        if is_list(value):
            inner = " ".join(format_value(item) for item in to_pylist(value))
            return f"[{inner}]"
        return f"[{format_value(value.head)}|{format_value(value.tail)}]"
    return repr(value)

"""Run-time values of ``little`` (paper Figure 2).

``v ::= nᵗ | s | b | [] | [v1|v2] | (λ p e)``

Numbers carry traces; every other value is traceless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from .ast import Expr, Pattern
from ..trace.trace import Trace


@dataclass(frozen=True)
class VNum:
    value: float
    trace: Trace


@dataclass(frozen=True)
class VStr:
    value: str


@dataclass(frozen=True)
class VBool:
    value: bool


@dataclass(frozen=True)
class VNil:
    pass


@dataclass(frozen=True)
class VCons:
    head: "Value"
    tail: "Value"


class VClosure:
    """Function value.  Not a dataclass: closures are compared by identity
    and the captured environment may be back-patched for ``letrec``."""

    __slots__ = ("pattern", "body", "env")

    def __init__(self, pattern: Pattern, body: Expr, env):
        self.pattern = pattern
        self.body = body
        self.env = env

    def __repr__(self) -> str:
        return "<closure>"


Value = Union[VNum, VStr, VBool, VNil, VCons, VClosure]


def from_pylist(values) -> Value:
    """Build a little list value from a Python iterable of values."""
    result: Value = VNil()
    for value in reversed(list(values)):
        result = VCons(value, result)
    return result


def to_pylist(value: Value) -> list:
    """Flatten a little list value into a Python list (must be nil-terminated)."""
    items = []
    while isinstance(value, VCons):
        items.append(value.head)
        value = value.tail
    if not isinstance(value, VNil):
        raise TypeError(f"improper list (tail is {type(value).__name__})")
    return items


def is_list(value: Value) -> bool:
    while isinstance(value, VCons):
        value = value.tail
    return isinstance(value, VNil)


def value_equal(left: Value, right: Value) -> bool:
    """Structural equality *including* numeric values but ignoring traces."""
    if isinstance(left, VNum) and isinstance(right, VNum):
        return left.value == right.value
    if isinstance(left, VStr) and isinstance(right, VStr):
        return left.value == right.value
    if isinstance(left, VBool) and isinstance(right, VBool):
        return left.value == right.value
    if isinstance(left, VNil) and isinstance(right, VNil):
        return True
    if isinstance(left, VCons) and isinstance(right, VCons):
        return (value_equal(left.head, right.head)
                and value_equal(left.tail, right.tail))
    if isinstance(left, VClosure) and isinstance(right, VClosure):
        return left is right
    return False


def format_number(n: float) -> str:
    """Render a little number the way the SVG backend and toString do:
    integral floats print without a decimal point."""
    if n == int(n) and abs(n) < 1e15:
        return str(int(n))
    return repr(float(n))


def format_value(value: Value) -> str:
    """Debug/round-trip rendering of a value in little syntax."""
    if isinstance(value, VNum):
        return format_number(value.value)
    if isinstance(value, VStr):
        return f"'{value.value}'"
    if isinstance(value, VBool):
        return "true" if value.value else "false"
    if isinstance(value, VNil):
        return "[]"
    if isinstance(value, VCons):
        if is_list(value):
            inner = " ".join(format_value(item) for item in to_pylist(value))
            return f"[{inner}]"
        return f"[{format_value(value.head)}|{format_value(value.tail)}]"
    return repr(value)

"""Structural program differ: text edits as :class:`ChangeSet`s (§4.1).

The paper's headline workflow *alternates* programmatic and direct
manipulation: the user drags a shape, then edits the source text, then
drags again — against one live artifact.  Direct manipulation already
flows through the incremental pipeline as value-only change sets
(``Program.substitute`` records exactly the rewritten locations); this
module gives *text edits* the same currency.

:func:`diff_source` parses the new text and aligns it against the current
program's AST, classifying the edit:

* **identity** — the new text parses to the very same program (formatting,
  comments): nothing to recompute, the session merely adopts the text;
* **value** — only numeric literal values changed: the edit is re-expressed
  as ``old.substitute(ρ)``, so every surviving literal keeps its
  :class:`~repro.lang.ast.Loc` and the pipeline's Run/Assign/Trigger/Slider
  stages reuse their caches exactly as a drag step does;
* **structural** — the shape changed somewhere, but literals in aligned
  regions survive: their fresh :class:`Loc`s are *re-keyed* back to the old
  ones, keeping names and identities stable across the reparse (the change
  set is still structural — every cache is rebuilt, correctly);
* **full** — nothing aligned; the fresh parse is used as-is.

Alignment is strict about everything the pipeline's caches key on: node
kinds, operators, variable names, patterns, string/boolean values,
freeze/thaw annotations and slider ranges.  Only a numeric literal's
*value* may differ under a value-only classification.

>>> from repro.lang.program import parse_program
>>> program = parse_program("(def x 10) (svg [(rect 'red' x 20 30 40)])")
>>> diff = diff_source(program, "(def x 99) (svg [(rect 'red' x 20 30 40)])")
>>> diff.kind, diff.change
('value', ChangeSet({x}))
>>> diff.program.user_locs() == program.user_locs()   # Locs survive
True
>>> diff_source(program, program.unparse()).kind      # identity is free
'identity'
>>> bigger = diff_source(
...     program, "(def x 10) (svg [(rect 'red' x 20 30 40) "
...              "(circle 'blue' 5 6 7)])")
>>> bigger.kind, bigger.rekeyed, bigger.fresh
('structural', 4, 3)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.changeset import ChangeSet, FULL_CHANGE
from .ast import (ECase, ECons, ELambda, ELet, ENil, ENum, EOp, EStr, EVar,
                  EApp, EBool, Expr, Loc, iter_numbers)
from .parser import parse_top_level
from .prelude import prelude_rho0
from .program import Program

__all__ = ["SourceDiff", "diff_source", "diff_programs",
           "IDENTITY", "VALUE", "STRUCTURAL", "FULL"]

#: The edit produced the same program (possibly different text).
IDENTITY = "identity"
#: Only numeric literal values changed — a non-structural ChangeSet.
VALUE = "value"
#: The AST shape changed, but surviving literals were re-keyed.
STRUCTURAL = "structural"
#: Nothing aligned; a from-scratch program.
FULL = "full"


@dataclass(frozen=True)
class SourceDiff:
    """The result of diffing a program against edited source text.

    ``program`` is the program the new text denotes, expressed so that
    surviving literals keep their old :class:`~repro.lang.ast.Loc`s, and
    ``change`` is the :class:`~repro.core.changeset.ChangeSet` to feed the
    staged pipeline (non-structural exactly when ``kind`` is ``'value'``
    or ``'identity'``).
    """

    kind: str
    program: Program
    change: ChangeSet
    #: Literals whose locations survived the reparse.
    rekeyed: int = 0
    #: Literals that received brand-new locations.
    fresh: int = 0


# ---------------------------------------------------------------------------
# Strict alignment: value-only detection
# ---------------------------------------------------------------------------

def _align(old: Expr, new: Expr, rho: dict) -> bool:
    """Lockstep-walk two ASTs; collect differing literal values into ρ.

    Returns ``True`` iff the trees are identical in everything but numeric
    literal values — same kinds, operators, names, patterns, annotations,
    slider ranges, and the same ``def``/``if`` sugar (so the unparse of the
    surviving AST matches what the user now sees).
    """
    stack = [(old, new)]
    while stack:
        a, b = stack.pop()
        kind = type(a)
        if kind is not type(b):
            return False
        if kind is ENum:
            if a.ann != b.ann or a.range_ann != b.range_ann:
                return False
            if b.value != a.value:
                rho[a.loc] = b.value
        elif kind is EStr or kind is EBool:
            if a.value != b.value:
                return False
        elif kind is EVar:
            if a.name != b.name:
                return False
        elif kind is ENil:
            pass
        elif kind is ECons:
            stack.append((a.head, b.head))
            stack.append((a.tail, b.tail))
        elif kind is ELambda:
            if a.pattern != b.pattern:
                return False
            stack.append((a.body, b.body))
        elif kind is EApp:
            stack.append((a.fn, b.fn))
            stack.append((a.arg, b.arg))
        elif kind is EOp:
            if a.op != b.op or len(a.args) != len(b.args):
                return False
            stack.extend(zip(a.args, b.args))
        elif kind is ELet:
            if (a.pattern != b.pattern or a.rec != b.rec
                    or a.from_def != b.from_def):
                return False
            stack.append((a.bound, b.bound))
            stack.append((a.body, b.body))
        else:                           # ECase
            if (len(a.branches) != len(b.branches)
                    or a.from_if != b.from_if):
                return False
            if any(pa != pb for (pa, _), (pb, _)
                   in zip(a.branches, b.branches)):
                return False
            stack.append((a.scrutinee, b.scrutinee))
            stack.extend((ba, bb) for (_, ba), (_, bb)
                         in zip(a.branches, b.branches))
    return True


# ---------------------------------------------------------------------------
# Tolerant re-keying: localized structural edits
# ---------------------------------------------------------------------------

def _count_fresh(expr: Expr) -> int:
    return sum(1 for _ in iter_numbers(expr))


def _let_spine(expr: Expr):
    """Flatten a chain of ``ELet``s into ``([(pattern, bound), ...], tail)``."""
    bindings = []
    while type(expr) is ELet:
        bindings.append((expr.pattern, expr.bound))
        expr = expr.body
    return bindings, expr


def _match_bindings(a_spine, b_spine):
    """Longest common subsequence of two binding spines, anchored on
    binder *patterns* — so inserting or deleting a ``def`` does not shift
    every later pairing (classic DP; spines are short)."""
    rows = len(a_spine) + 1
    cols = len(b_spine) + 1
    table = [[0] * cols for _ in range(rows)]
    for i in range(len(a_spine) - 1, -1, -1):
        for j in range(len(b_spine) - 1, -1, -1):
            if a_spine[i][0] == b_spine[j][0]:
                table[i][j] = table[i + 1][j + 1] + 1
            else:
                table[i][j] = max(table[i + 1][j], table[i][j + 1])
    pairs = []
    i = j = 0
    while i < len(a_spine) and j < len(b_spine):
        if a_spine[i][0] == b_spine[j][0]:
            pairs.append((i, j))
            i += 1
            j += 1
        elif table[i + 1][j] >= table[i][j + 1]:
            i += 1
        else:
            j += 1
    return pairs


def _rekey(old: Expr, new: Expr, changed: set, stats: list) -> None:
    """Walk the trees tolerantly, re-keying aligned literals in place.

    Wherever both sides have the same node kind the walk descends, even
    through renamed bindings and changed operators; an aligned pair of
    literals with the same annotation hands the *old* :class:`Loc` to the
    new ``ENum`` (adopting the fresh canonical name if the binding was
    renamed).  A kind mismatch ends the descent: literals below it keep
    their fresh locations.  ``stats`` is ``[rekeyed, fresh]``.
    """
    stack = [(old, new)]
    while stack:
        a, b = stack.pop()
        kind = type(a)
        if kind is not type(b):
            stats[1] += _count_fresh(b)
            continue
        if kind is ENum:
            if a.ann != b.ann:
                # The freeze/thaw mode lives on the Loc; a re-key would
                # smuggle the old mode past the solver.
                stats[1] += 1
                continue
            if b.loc.name != a.loc.name:
                # Rename-only edits keep the location *identity* but show
                # the new canonical name.  Loc equality/hashing is by
                # ident, so a fresh carrier object renames the edited
                # program without mutating the old one — the undo history
                # (and a rolled-back failed edit) keeps its old names.
                b.loc = Loc(a.loc.ident, b.loc.name, a.loc.frozen,
                            a.loc.in_prelude)
            else:
                b.loc = a.loc
            stats[0] += 1
            if b.value != a.value:
                changed.add(a.loc)
        elif kind is ECons:
            stack.append((a.head, b.head))
            stack.append((a.tail, b.tail))
        elif kind is ELambda:
            stack.append((a.body, b.body))
        elif kind is EApp:
            stack.append((a.fn, b.fn))
            stack.append((a.arg, b.arg))
        elif kind is EOp:
            stack.extend(zip(a.args, b.args))
            for extra in b.args[len(a.args):]:
                stats[1] += _count_fresh(extra)
        elif kind is ELet:
            a_spine, a_tail = _let_spine(a)
            b_spine, b_tail = _let_spine(b)
            if len(a_spine) == len(b_spine):
                # Same binding count: pair positionally, so a *renamed*
                # binding still hands its literal the old Loc.
                stack.extend((ba, bb) for (_, ba), (_, bb)
                             in zip(a_spine, b_spine))
            else:
                # Insertion or deletion: anchor pairs on equal binder
                # patterns so the rest of the spine does not shift —
                # prepending a def must not scramble every later Loc.
                matched_b = set()
                for i, j in _match_bindings(a_spine, b_spine):
                    matched_b.add(j)
                    stack.append((a_spine[i][1], b_spine[j][1]))
                for j, (_, bound) in enumerate(b_spine):
                    if j not in matched_b:
                        stats[1] += _count_fresh(bound)
            stack.append((a_tail, b_tail))
        elif kind is ECase:
            stack.append((a.scrutinee, b.scrutinee))
            stack.extend((ba, bb) for (_, ba), (_, bb)
                         in zip(a.branches, b.branches))
            for _, extra in b.branches[len(a.branches):]:
                stats[1] += _count_fresh(extra)
        # EStr / EBool / EVar / ENil: leaves without locations.


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def diff_programs(old: Program, new_ast: Expr, new_source: str) -> SourceDiff:
    """Diff ``old`` against an already-parsed replacement AST."""
    rho: dict = {}
    if _align(old.user_ast, new_ast, rho):
        program = old.substitute(rho)
        program.source = new_source
        change = program.last_change
        if not change:
            # An identity edit is not a *step*: the program still differs
            # from its undo-history predecessor exactly as ``old`` did, so
            # preserve that relation (undo reads ``last_change``) while
            # reporting the edit itself as empty.
            program.last_change = old.last_change
            return SourceDiff(IDENTITY, program, change,
                              rekeyed=len(program.user_locs()))
        return SourceDiff(VALUE, program, change,
                          rekeyed=len(program.user_locs()))
    changed: set = set()
    stats = [0, 0]
    _rekey(old.user_ast, new_ast, changed, stats)
    program = Program(new_ast, source=new_source,
                      with_prelude=old.with_prelude,
                      prelude_frozen=old.prelude_frozen,
                      auto_freeze=old.auto_freeze)
    if old.prelude_modified:
        # The session rewrote Prelude literals (only possible when the
        # Prelude is thawed); a structural edit must not silently reset
        # them — carry the overlays onto the fresh program.
        baseline = prelude_rho0(old.prelude_frozen)
        overlays = {loc: value for loc, value in old.rho0.items()
                    if loc.in_prelude and baseline.get(loc) != value}
        if overlays:
            program = program.substitute(overlays)
            program.last_change = FULL_CHANGE
    if stats[0]:
        return SourceDiff(STRUCTURAL, program,
                          ChangeSet(changed, structural=True),
                          rekeyed=stats[0], fresh=stats[1])
    return SourceDiff(FULL, program, FULL_CHANGE, fresh=stats[1])


def diff_source(old: Program, new_source: str) -> SourceDiff:
    """Diff ``old`` against edited source text.

    Parses ``new_source`` under ``old``'s parse options and classifies the
    edit (see the module docstring).  A syntax error propagates as
    :class:`~repro.lang.errors.LittleSyntaxError` before any state is
    touched, so callers can reject bad edits without losing the session.
    """
    new_ast = parse_top_level(new_source, auto_freeze=old.auto_freeze)
    return diff_programs(old, new_ast, new_source)

"""Shared semantics of ``little``'s numeric primitive operators.

Both the evaluator (rule E-OP-NUM) and the trace evaluator ``ρt`` used by the
solver (Appendix B.2) must agree on these, so they live in one place.
"""

from __future__ import annotations

import math

from .errors import LittleRuntimeError


def apply_numeric_op(op: str, args) -> float:
    """Evaluate numeric operator ``op`` on float ``args``.

    Raises :class:`LittleRuntimeError` on domain errors (division by zero,
    ``arccos`` outside [-1, 1], …) — little has no exception mechanism, so
    these abort evaluation, matching the reference implementation.
    """
    try:
        if op == "pi":
            return math.pi
        if op == "+":
            return args[0] + args[1]
        if op == "-":
            return args[0] - args[1]
        if op == "*":
            return args[0] * args[1]
        if op == "/":
            if args[1] == 0:
                raise LittleRuntimeError("division by zero")
            return args[0] / args[1]
        if op == "mod":
            if args[1] == 0:
                raise LittleRuntimeError("mod by zero")
            return math.fmod(args[0], args[1])
        if op == "pow":
            return math.pow(args[0], args[1])
        if op == "cos":
            return math.cos(args[0])
        if op == "sin":
            return math.sin(args[0])
        if op == "arccos":
            if not -1.0 <= args[0] <= 1.0:
                raise LittleRuntimeError("arccos argument outside [-1, 1]")
            return math.acos(args[0])
        if op == "arcsin":
            if not -1.0 <= args[0] <= 1.0:
                raise LittleRuntimeError("arcsin argument outside [-1, 1]")
            return math.asin(args[0])
        if op == "sqrt":
            if args[0] < 0:
                raise LittleRuntimeError("sqrt of a negative number")
            return math.sqrt(args[0])
        if op == "round":
            # Round half away from zero, the behaviour GUI users expect.
            return math.floor(args[0] + 0.5)
        if op == "floor":
            return math.floor(args[0])
        if op == "ceiling":
            return math.ceil(args[0])
        if op == "abs":
            return abs(args[0])
        if op == "neg":
            return -args[0]
    except (ValueError, OverflowError) as exc:
        raise LittleRuntimeError(f"numeric error in {op}: {exc}") from exc
    raise LittleRuntimeError(f"unknown numeric operator {op!r}")

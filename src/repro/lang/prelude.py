"""Loading and caching of the little Prelude.

The Prelude is parsed once per freeze mode and shared between programs: its
ASTs are read-only, and location objects are globally unique, so sharing is
safe.  ``frozen=True`` (the default) freezes every Prelude literal, per §2.2;
``frozen=False`` is used by experiments that enumerate *all* candidate
updates, including Prelude locations (paper Figure 1D shows ρ3 and ρ4 before
freezing is taken into account).
"""

from __future__ import annotations

import importlib.resources
from functools import lru_cache
from typing import List, Tuple

from .ast import Expr, Pattern
from .parser import parse_definition_sequence

Binding = Tuple[Pattern, Expr, bool]


@lru_cache(maxsize=None)
def prelude_source() -> str:
    resource = importlib.resources.files("repro.lang").joinpath(
        "programs/prelude.little")
    return resource.read_text(encoding="utf-8")


@lru_cache(maxsize=2)
def prelude_bindings(frozen: bool = True) -> Tuple[Binding, ...]:
    """The Prelude as a tuple of (pattern, expr, recursive) bindings."""
    return tuple(parse_definition_sequence(
        prelude_source(), auto_freeze=frozen, in_prelude=True))

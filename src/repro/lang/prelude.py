"""Loading and caching of the little Prelude.

The Prelude is parsed once per freeze mode and shared between programs: its
ASTs are read-only, and location objects are globally unique, so sharing is
safe.  ``frozen=True`` (the default) freezes every Prelude literal, per §2.2;
``frozen=False`` is used by experiments that enumerate *all* candidate
updates, including Prelude locations (paper Figure 1D shows ρ3 and ρ4 before
freezing is taken into account).

The caches are **single-flight**: a bare ``lru_cache`` lets two threads
race the first miss and parse the Prelude twice, yielding two distinct
``Loc`` identity sets — one ends up inside the cached ``prelude_env``'s
traces, the other inside a racing program's ρ0, and the solver later
fails with "location with no value in rho".  All entry points therefore
compute under one re-entrant lock, so every consumer observes Prelude
locations from the same parse.  (Found by the serve concurrency harness;
see ``tests/test_serve_concurrency.py``.)
"""

from __future__ import annotations

import importlib.resources
from functools import lru_cache
from threading import RLock
from typing import Dict, Tuple

from .ast import Expr, Loc, Pattern, iter_numbers
from .parser import parse_definition_sequence

Binding = Tuple[Pattern, Expr, bool]

#: One lock for every Prelude cache: computations nest (env → bindings →
#: source), hence re-entrant.  Warm hits pay one uncontended acquire.
_PRELUDE_LOCK = RLock()


@lru_cache(maxsize=None)
def _prelude_source() -> str:
    resource = importlib.resources.files("repro.lang").joinpath(
        "programs/prelude.little")
    return resource.read_text(encoding="utf-8")


def prelude_source() -> str:
    with _PRELUDE_LOCK:
        return _prelude_source()


@lru_cache(maxsize=2)
def _prelude_bindings(frozen: bool) -> Tuple[Binding, ...]:
    return tuple(parse_definition_sequence(
        prelude_source(), auto_freeze=frozen, in_prelude=True))


def prelude_bindings(frozen: bool = True) -> Tuple[Binding, ...]:
    """The Prelude as a tuple of (pattern, expr, recursive) bindings."""
    with _PRELUDE_LOCK:
        return _prelude_bindings(frozen)


@lru_cache(maxsize=2)
def _prelude_env(frozen: bool):
    from .errors import MatchFailure
    from .eval import Env, _eval, match

    base = Env()
    for pattern, bound, _rec in prelude_bindings(frozen):
        value = _eval(bound, base)
        bindings = match(pattern, value)
        if bindings is None:
            raise MatchFailure("prelude binding did not match its pattern")
        base.bindings.update(bindings)
    return base


def prelude_env(frozen: bool = True):
    """The Prelude evaluated once per freeze mode into a single flat
    environment (the live-sync fast path of §5.2.3: Prelude values never
    change during a drag, so re-evaluating the ``ELet`` spine on every
    mouse-move is pure waste).

    All bindings land in one shared dict: each definition is evaluated in
    the environment-so-far, exactly as the nested-let spine would, and
    closures capture the flat env so recursive definitions see themselves.
    The returned env is treated as read-only; callers evaluate user code
    in child environments.
    """
    with _PRELUDE_LOCK:
        return _prelude_env(frozen)


@lru_cache(maxsize=2)
def _prelude_rho0(frozen: bool) -> Dict[Loc, float]:
    rho0: Dict[Loc, float] = {}
    for _pattern, bound, _rec in prelude_bindings(frozen):
        for num in iter_numbers(bound):
            rho0[num.loc] = num.value
    return rho0


def prelude_rho0(frozen: bool = True) -> Dict[Loc, float]:
    """ρ0 restricted to Prelude literals, computed once per freeze mode.

    Program construction merges this with the user program's ρ0 instead of
    re-walking the combined Prelude+user AST every time.  Callers must not
    mutate the returned dict.
    """
    with _PRELUDE_LOCK:
        return _prelude_rho0(frozen)

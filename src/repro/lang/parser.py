"""Parser for ``little`` (paper Figure 2 plus the Appendix A sugar).

The parser produces core AST (:mod:`repro.lang.ast`), desugaring as it goes:

* ``(def p e1) e2``        → ``(let p e1 e2)``        (sequence contexts)
* ``(defrec p e1) e2``     → ``(letrec p e1 e2)``
* ``(if e1 e2 e3)``        → ``(case e1 (true e2) (false e3))``
* ``(λ (p1 … pm) e)``      → ``(λ p1 … (λ pm e))``
* ``(e0 e1 … em)``         → ``(((e0 e1) …) em)``
* ``[e1 … em]``            → cons cells ending in ``[]``
* ``[e1 … em | e0]``       → cons cells ending in ``e0``

Every numeric literal receives a fresh :class:`~repro.lang.ast.Loc`; the
canonical-naming pass then renames locations whose literals are immediately
bound to variables (§2.1: "we choose the canonical name x for the location").
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from .ast import (ALL_OPS, ECase, ECons, ELambda, ELet, ENil, ENum, EOp,
                  EStr, EVar, EApp, EBool, Expr, Loc, OP_ARITY, PBool, PCons,
                  PNil, PNum, PStr, PVar, Pattern, iter_numbers, plist)
from .errors import LittleSyntaxError
from .lexer import NumberToken, Token, tokenize


class LocAllocator:
    """Issues globally unique location identifiers.

    A single shared allocator lets the parsed Prelude be reused across
    programs without location-id collisions.
    """

    def __init__(self, start: int = 1):
        self._counter = itertools.count(start)

    def fresh(self, frozen: bool, in_prelude: bool) -> Loc:
        return Loc(next(self._counter), None, frozen, in_prelude)


DEFAULT_ALLOCATOR = LocAllocator()

_KEYWORDS = frozenset({"lambda", "let", "letrec", "def", "defrec", "case",
                       "if", "true", "false"})


class Parser:
    def __init__(self, tokens: List[Token], *, auto_freeze: bool = False,
                 in_prelude: bool = False,
                 allocator: Optional[LocAllocator] = None):
        self._tokens = tokens
        self._pos = 0
        self._auto_freeze = auto_freeze
        self._in_prelude = in_prelude
        self._allocator = allocator or DEFAULT_ALLOCATOR

    # -- token-stream helpers ------------------------------------------------

    def _peek(self) -> Optional[Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise LittleSyntaxError("unexpected end of input")
        self._pos += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._next()
        if token.kind != kind:
            raise LittleSyntaxError(
                f"expected {kind}, found {token.value!r}",
                token.line, token.col)
        return token

    def at_end(self) -> bool:
        return self._pos >= len(self._tokens)

    def _error(self, message: str, token: Optional[Token] = None):
        token = token or self._peek()
        if token is None:
            raise LittleSyntaxError(message)
        raise LittleSyntaxError(message, token.line, token.col)

    # -- expressions ---------------------------------------------------------

    def parse_expression(self) -> Expr:
        token = self._next()
        if token.kind == "NUM":
            return self._make_number(token.value)
        if token.kind == "STR":
            return EStr(token.value)
        if token.kind == "SYM":
            if token.value == "true":
                return EBool(True)
            if token.value == "false":
                return EBool(False)
            if token.value == "lambda":
                self._error("lambda outside parentheses", token)
            return EVar(token.value)
        if token.kind == "LBRACK":
            return self._parse_list_literal()
        if token.kind == "LPAREN":
            return self._parse_form()
        self._error(f"unexpected token {token.value!r}", token)

    def _make_number(self, num: NumberToken) -> ENum:
        frozen = num.ann == "!" or (self._auto_freeze and num.ann != "?")
        loc = self._allocator.fresh(frozen, self._in_prelude)
        return ENum(num.value, loc, num.ann, num.range_ann)

    def _parse_list_literal(self) -> Expr:
        elements: List[Expr] = []
        tail: Optional[Expr] = None
        while True:
            token = self._peek()
            if token is None:
                self._error("unterminated list literal")
            if token.kind == "RBRACK":
                self._next()
                break
            if token.kind == "BAR":
                self._next()
                tail = self.parse_expression()
                self._expect("RBRACK")
                break
            elements.append(self.parse_expression())
        expr: Expr = tail if tail is not None else ENil()
        for element in reversed(elements):
            expr = ECons(element, expr)
        return expr

    def _parse_form(self) -> Expr:
        head = self._peek()
        if head is None:
            self._error("unterminated form")
        if head.kind == "SYM":
            name = head.value
            if name == "lambda":
                self._next()
                return self._finish_lambda()
            if name in ("let", "letrec"):
                self._next()
                return self._finish_let(rec=(name == "letrec"))
            if name in ("def", "defrec"):
                self._error("(def ...) is only allowed at the top level of "
                            "a program or inside another definition "
                            "sequence", head)
            if name == "case":
                self._next()
                return self._finish_case()
            if name == "if":
                self._next()
                return self._finish_if()
            if name in ALL_OPS:
                self._next()
                return self._finish_op(name, head)
        return self._finish_application()

    def _finish_lambda(self) -> Expr:
        token = self._peek()
        if token is None:
            self._error("unterminated lambda")
        if token.kind == "LPAREN":
            # Multi-argument sugar: (λ (p1 … pm) e)
            self._next()
            patterns = []
            while True:
                inner = self._peek()
                if inner is None:
                    self._error("unterminated parameter list")
                if inner.kind == "RPAREN":
                    self._next()
                    break
                patterns.append(self.parse_pattern())
            if not patterns:
                self._error("lambda needs at least one parameter", token)
        else:
            patterns = [self.parse_pattern()]
        body = self.parse_expression()
        self._expect("RPAREN")
        for pattern in reversed(patterns):
            body = ELambda(pattern, body)
        return body

    def _finish_let(self, rec: bool) -> Expr:
        pattern = self.parse_pattern()
        bound = self.parse_expression()
        body = self.parse_expression()
        self._expect("RPAREN")
        return ELet(pattern, bound, body, rec=rec)

    def _finish_case(self) -> Expr:
        scrutinee = self.parse_expression()
        branches: List[Tuple[Pattern, Expr]] = []
        while True:
            token = self._peek()
            if token is None:
                self._error("unterminated case expression")
            if token.kind == "RPAREN":
                self._next()
                break
            self._expect("LPAREN")
            pattern = self.parse_pattern()
            branch = self.parse_expression()
            self._expect("RPAREN")
            branches.append((pattern, branch))
        if not branches:
            self._error("case needs at least one branch")
        return ECase(scrutinee, tuple(branches))

    def _finish_if(self) -> Expr:
        condition = self.parse_expression()
        then_branch = self.parse_expression()
        else_branch = self.parse_expression()
        self._expect("RPAREN")
        return ECase(condition,
                     ((PBool(True), then_branch), (PBool(False), else_branch)),
                     from_if=True)

    def _finish_op(self, name: str, head: Token) -> Expr:
        args: List[Expr] = []
        while True:
            token = self._peek()
            if token is None:
                self._error("unterminated operator application")
            if token.kind == "RPAREN":
                self._next()
                break
            args.append(self.parse_expression())
        arity = OP_ARITY[name]
        if len(args) != arity:
            self._error(f"operator {name} expects {arity} argument(s), "
                        f"got {len(args)}", head)
        return EOp(name, tuple(args))

    def _finish_application(self) -> Expr:
        fn = self.parse_expression()
        args: List[Expr] = []
        while True:
            token = self._peek()
            if token is None:
                self._error("unterminated application")
            if token.kind == "RPAREN":
                self._next()
                break
            args.append(self.parse_expression())
        if not args:
            self._error("application needs at least one argument")
        expr = fn
        for arg in args:
            expr = EApp(expr, arg)
        return expr

    # -- patterns ------------------------------------------------------------

    def parse_pattern(self) -> Pattern:
        token = self._next()
        if token.kind == "SYM":
            if token.value == "true":
                return PBool(True)
            if token.value == "false":
                return PBool(False)
            if token.value in _KEYWORDS or token.value in ALL_OPS:
                self._error(f"{token.value!r} cannot be used as a pattern "
                            "variable", token)
            return PVar(token.value)
        if token.kind == "NUM":
            return PNum(token.value.value)
        if token.kind == "STR":
            return PStr(token.value)
        if token.kind == "LBRACK":
            elements: List[Pattern] = []
            tail: Pattern = PNil()
            while True:
                inner = self._peek()
                if inner is None:
                    self._error("unterminated list pattern")
                if inner.kind == "RBRACK":
                    self._next()
                    break
                if inner.kind == "BAR":
                    self._next()
                    tail = self.parse_pattern()
                    self._expect("RBRACK")
                    break
                elements.append(self.parse_pattern())
            return plist(elements, tail)
        self._error(f"unexpected token in pattern: {token.value!r}", token)

    # -- definition sequences --------------------------------------------------

    def parse_definitions(self) -> List[Tuple[Pattern, Expr, bool]]:
        """Parse a sequence consisting solely of (def …)/(defrec …) forms."""
        bindings = []
        while not self.at_end():
            self._expect("LPAREN")
            keyword = self._expect("SYM")
            if keyword.value not in ("def", "defrec"):
                self._error("expected (def …) or (defrec …)", keyword)
            pattern = self.parse_pattern()
            bound = self.parse_expression()
            self._expect("RPAREN")
            bindings.append((pattern, bound, keyword.value == "defrec"))
        return bindings

    def parse_program_body(self) -> Expr:
        """Parse ``(def …)* expr`` — a top-level definition sequence followed
        by the main expression — into a nested let chain."""
        bindings: List[Tuple[Pattern, Expr, bool]] = []
        main: Optional[Expr] = None
        while not self.at_end():
            token = self._peek()
            if (token.kind == "LPAREN" and self._pos + 1 < len(self._tokens)
                    and self._tokens[self._pos + 1].kind == "SYM"
                    and self._tokens[self._pos + 1].value in ("def", "defrec")):
                if main is not None:
                    self._error("definition after the main expression", token)
                self._next()          # (
                keyword = self._next()  # def / defrec
                pattern = self.parse_pattern()
                bound = self.parse_expression()
                self._expect("RPAREN")
                bindings.append((pattern, bound, keyword.value == "defrec"))
            else:
                if main is not None:
                    self._error("multiple main expressions", token)
                main = self.parse_expression()
        if main is None:
            self._error("program has no main expression")
        for pattern, bound, rec in reversed(bindings):
            main = ELet(pattern, bound, main, rec=rec, from_def=True)
        return main


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

def parse_expr(source: str, *, auto_freeze: bool = False,
               in_prelude: bool = False,
               allocator: Optional[LocAllocator] = None) -> Expr:
    """Parse a single ``little`` expression."""
    parser = Parser(tokenize(source), auto_freeze=auto_freeze,
                    in_prelude=in_prelude, allocator=allocator)
    expr = parser.parse_expression()
    if not parser.at_end():
        parser._error("trailing tokens after expression")
    assign_canonical_names(expr)
    return expr


def parse_definition_sequence(source: str, *, auto_freeze: bool = False,
                              in_prelude: bool = False,
                              allocator: Optional[LocAllocator] = None):
    """Parse a pure definition sequence (used for the Prelude)."""
    parser = Parser(tokenize(source), auto_freeze=auto_freeze,
                    in_prelude=in_prelude, allocator=allocator)
    bindings = parser.parse_definitions()
    for pattern, bound, _rec in bindings:
        _name_binding(pattern, bound)
    return bindings


def parse_top_level(source: str, *, auto_freeze: bool = False,
                    in_prelude: bool = False,
                    allocator: Optional[LocAllocator] = None) -> Expr:
    """Parse ``(def …)* expr`` into a single expression."""
    parser = Parser(tokenize(source), auto_freeze=auto_freeze,
                    in_prelude=in_prelude, allocator=allocator)
    expr = parser.parse_program_body()
    assign_canonical_names(expr)
    return expr


# ---------------------------------------------------------------------------
# Canonical location naming (§2.1)
# ---------------------------------------------------------------------------

def assign_canonical_names(expr: Expr) -> None:
    """Name the location of every literal immediately bound to a variable.

    Handles both ``(let x 5 …)`` and the common parallel-binding form
    ``(let [x y] [3 4] …)``.
    """
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ELet):
            _name_binding(node.pattern, node.bound)
            stack.append(node.body)
            stack.append(node.bound)
        elif isinstance(node, ECons):
            stack.append(node.tail)
            stack.append(node.head)
        elif isinstance(node, ELambda):
            stack.append(node.body)
        elif isinstance(node, EApp):
            stack.append(node.arg)
            stack.append(node.fn)
        elif isinstance(node, EOp):
            stack.extend(node.args)
        elif isinstance(node, ECase):
            stack.append(node.scrutinee)
            stack.extend(branch for _, branch in node.branches)


def _name_binding(pattern: Pattern, bound: Expr) -> None:
    if isinstance(pattern, PVar) and isinstance(bound, ENum):
        if bound.loc.name is None:
            bound.loc.name = pattern.name
    elif isinstance(pattern, PCons) and isinstance(bound, ECons):
        _name_binding(pattern.head, bound.head)
        _name_binding(pattern.tail, bound.tail)


def collect_rho0(expr: Expr) -> dict:
    """The initial substitution ρ0 mapping every location to its literal
    value in the source program (§2.1)."""
    return {num.loc: num.value for num in iter_numbers(expr)}

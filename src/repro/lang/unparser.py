"""Pretty-printer for ``little`` ASTs.

``unparse(parse(src))`` re-parses to a structurally identical program (same
literal values, annotations, ranges and binding structure — location ids are
reassigned, as they would be by the reference implementation's parser).

The printer re-sugars the forms the parser recorded: ``(def …)`` sequences,
``(if …)``, multi-argument lambdas and list literals.
"""

from __future__ import annotations

from .ast import (ECase, ECons, ELambda, ELet, ENil, ENum, EOp, EStr, EVar,
                  EApp, EBool, Expr, PBool, PCons, PNil, PNum, PStr, PVar,
                  Pattern)
from .values import format_number


def unparse(expr: Expr) -> str:
    """Render ``expr`` as little source text."""
    return _unparse(expr, 0)


def unparse_pattern(pat: Pattern) -> str:
    if isinstance(pat, PVar):
        return pat.name
    if isinstance(pat, PNum):
        return format_number(pat.value)
    if isinstance(pat, PStr):
        return f"'{pat.value}'"
    if isinstance(pat, PBool):
        return "true" if pat.value else "false"
    if isinstance(pat, PNil):
        return "[]"
    if isinstance(pat, PCons):
        elements, tail = _split_pattern(pat)
        inner = " ".join(unparse_pattern(p) for p in elements)
        if isinstance(tail, PNil):
            return f"[{inner}]"
        return f"[{inner}|{unparse_pattern(tail)}]"
    raise TypeError(f"unknown pattern {pat!r}")


def unparse_number(expr: ENum) -> str:
    text = format_number(expr.value) + expr.ann
    if expr.range_ann is not None:
        lo, hi = expr.range_ann
        text += "{" + format_number(lo) + "-" + format_number(hi) + "}"
    return text


def _split_pattern(pat: Pattern):
    elements = []
    while isinstance(pat, PCons):
        elements.append(pat.head)
        pat = pat.tail
    return elements, pat


def _split_cons(expr: Expr):
    elements = []
    while isinstance(expr, ECons):
        elements.append(expr.head)
        expr = expr.tail
    return elements, expr


def _collect_lambda(expr: ELambda):
    patterns = []
    while isinstance(expr, ELambda):
        patterns.append(expr.pattern)
        expr = expr.body
    return patterns, expr


def _collect_app(expr: EApp):
    args = []
    while isinstance(expr, EApp):
        args.append(expr.arg)
        expr = expr.fn
    args.reverse()
    return expr, args


def _unparse(expr: Expr, indent: int) -> str:
    pad = "  " * indent
    if isinstance(expr, ENum):
        return unparse_number(expr)
    if isinstance(expr, EStr):
        return f"'{expr.value}'"
    if isinstance(expr, EBool):
        return "true" if expr.value else "false"
    if isinstance(expr, ENil):
        return "[]"
    if isinstance(expr, ECons):
        elements, tail = _split_cons(expr)
        inner = " ".join(_unparse(e, indent) for e in elements)
        if isinstance(tail, ENil):
            return f"[{inner}]"
        return f"[{inner}|{_unparse(tail, indent)}]"
    if isinstance(expr, EVar):
        return expr.name
    if isinstance(expr, ELambda):
        patterns, body = _collect_lambda(expr)
        if len(patterns) == 1:
            params = unparse_pattern(patterns[0])
        else:
            params = "(" + " ".join(unparse_pattern(p) for p in patterns) + ")"
        return f"(\\{params} {_unparse(body, indent)})"
    if isinstance(expr, EApp):
        fn, args = _collect_app(expr)
        parts = [_unparse(fn, indent)] + [_unparse(a, indent) for a in args]
        return "(" + " ".join(parts) + ")"
    if isinstance(expr, EOp):
        parts = [expr.op] + [_unparse(a, indent) for a in expr.args]
        return "(" + " ".join(parts) + ")"
    if isinstance(expr, ELet):
        if expr.from_def:
            keyword = "defrec" if expr.rec else "def"
            header = (f"({keyword} {unparse_pattern(expr.pattern)} "
                      f"{_unparse(expr.bound, indent + 1)})")
            return header + "\n" + pad + _unparse(expr.body, indent)
        keyword = "letrec" if expr.rec else "let"
        return (f"({keyword} {unparse_pattern(expr.pattern)} "
                f"{_unparse(expr.bound, indent + 1)}\n"
                f"{pad}  {_unparse(expr.body, indent + 1)})")
    if isinstance(expr, ECase):
        if expr.from_if:
            (_, then_branch), (_, else_branch) = expr.branches
            return (f"(if {_unparse(expr.scrutinee, indent)} "
                    f"{_unparse(then_branch, indent + 1)} "
                    f"{_unparse(else_branch, indent + 1)})")
        branches = " ".join(
            f"({unparse_pattern(pat)} {_unparse(branch, indent + 1)})"
            for pat, branch in expr.branches)
        return f"(case {_unparse(expr.scrutinee, indent)} {branches})"
    raise TypeError(f"cannot unparse {expr!r}")

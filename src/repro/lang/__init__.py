"""The ``little`` language: syntax, semantics and Prelude (paper §2, App. A)."""

from .ast import (ECase, ECons, ELambda, ELet, ENil, ENum, EOp, EStr, EVar,
                  EApp, EBool, Expr, Loc, PBool, PCons, PNil, PNum, PStr,
                  PVar, Pattern, iter_numbers, substitute)
from .diff import SourceDiff, diff_programs, diff_source
from .errors import (LittleError, LittleRuntimeError, LittleSyntaxError,
                     MatchFailure, SolverFailure, SvgError)
from .eval import Env, evaluate, match
from .parser import parse_expr, parse_top_level
from .program import Program, parse_program
from .unparser import unparse, unparse_pattern
from .values import (VBool, VClosure, VCons, VNil, VNum, VStr, Value,
                     format_number, format_value, from_pylist, is_list,
                     to_pylist, value_equal)

__all__ = [
    "ECase", "ECons", "ELambda", "ELet", "ENil", "ENum", "EOp", "EStr",
    "EVar", "EApp", "EBool", "Expr", "Loc", "PBool", "PCons", "PNil", "PNum",
    "PStr", "PVar", "Pattern", "iter_numbers", "substitute",
    "SourceDiff", "diff_programs", "diff_source",
    "LittleError", "LittleRuntimeError", "LittleSyntaxError", "MatchFailure",
    "SolverFailure", "SvgError",
    "Env", "evaluate", "match",
    "parse_expr", "parse_top_level", "Program", "parse_program",
    "unparse", "unparse_pattern",
    "VBool", "VClosure", "VCons", "VNil", "VNum", "VStr", "Value",
    "format_number", "format_value", "from_pylist", "is_list", "to_pylist",
    "value_equal",
]

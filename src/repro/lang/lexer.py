"""Tokenizer for ``little`` source text.

Token kinds:

* ``LPAREN`` / ``RPAREN`` — ``(`` and ``)``
* ``LBRACK`` / ``RBRACK`` — ``[`` and ``]``
* ``BAR`` — ``|`` (cons-tail separator in list literals and patterns)
* ``NUM`` — numeric literal with optional freeze/thaw annotation and
  optional ``{lo-hi}`` range annotation; value is a
  :class:`NumberToken`
* ``STR`` — single-quoted string literal
* ``SYM`` — identifier or operator symbol (``+``, ``<=``, ``map``, …)

Comments run from ``;`` to end of line.  ``λ`` and ``\\`` are both accepted
for lambda (paper Figure 2 uses λ; the ASCII implementation uses ``\\``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from .errors import LittleSyntaxError


@dataclass(frozen=True)
class NumberToken:
    value: float
    ann: str                                  # "", "!" or "?"
    range_ann: Optional[Tuple[float, float]]  # (lo, hi) or None


@dataclass(frozen=True)
class Token:
    kind: str
    value: object
    line: int
    col: int


_NUMBER = re.compile(r"-?(?:\d+\.\d+|\d+\.?|\.\d+)")
_RANGE = re.compile(
    r"\{\s*(-?(?:\d+\.\d+|\d+\.?|\.\d+))\s*-\s*(-?(?:\d+\.\d+|\d+\.?|\.\d+))\s*\}")
_SYMBOL = re.compile(r"[A-Za-z_][A-Za-z0-9_']*|<=|>=|[+\-*/<>=]")
_WHITESPACE = frozenset(" \t\r\n")
_PUNCT = {"(": "LPAREN", ")": "RPAREN", "[": "LBRACK", "]": "RBRACK",
          "|": "BAR"}


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``, raising :class:`LittleSyntaxError` on bad input."""
    return list(iter_tokens(source))


def iter_tokens(source: str) -> Iterator[Token]:
    pos = 0
    line = 1
    line_start = 0
    length = len(source)
    while pos < length:
        char = source[pos]
        if char in _WHITESPACE:
            if char == "\n":
                line += 1
                line_start = pos + 1
            pos += 1
            continue
        if char == ";":
            end = source.find("\n", pos)
            pos = length if end == -1 else end
            continue
        col = pos - line_start + 1
        if char in _PUNCT:
            yield Token(_PUNCT[char], char, line, col)
            pos += 1
            continue
        if char == "'":
            end = source.find("'", pos + 1)
            if end == -1:
                raise LittleSyntaxError("unterminated string literal",
                                        line, col)
            yield Token("STR", source[pos + 1:end], line, col)
            pos = end + 1
            continue
        if char in "\\λ":  # backslash or λ
            yield Token("SYM", "lambda", line, col)
            pos += 1
            continue
        number = _match_number(source, pos)
        if number is not None:
            token, pos = number
            yield Token("NUM", token, line, col)
            continue
        symbol = _SYMBOL.match(source, pos)
        if symbol is not None:
            yield Token("SYM", symbol.group(), line, col)
            pos = symbol.end()
            continue
        raise LittleSyntaxError(f"unexpected character {char!r}", line, col)


def _match_number(source: str, pos: int):
    """Match a numeric literal with annotations, or return None.

    A leading ``-`` is part of the number only when immediately followed by a
    digit or dot *and* the previous non-space token context permits it; the
    parser never needs unary minus as an operator, so we treat ``-4`` as a
    literal whenever ``-`` is directly attached to digits.  A bare ``-``
    (followed by whitespace or a delimiter) is the subtraction symbol.
    """
    char = source[pos]
    if char == "-":
        if pos + 1 >= len(source) or not (source[pos + 1].isdigit()
                                          or source[pos + 1] == "."):
            return None
    elif not (char.isdigit() or char == "."):
        return None
    match = _NUMBER.match(source, pos)
    if match is None or match.group() in ("-", "."):
        return None
    value = float(match.group())
    end = match.end()
    ann = ""
    if end < len(source) and source[end] in "!?":
        ann = source[end]
        end += 1
    range_ann = None
    if end < len(source) and source[end] == "{":
        range_match = _RANGE.match(source, end)
        if range_match is None:
            raise LittleSyntaxError(
                "malformed range annotation (expected {lo-hi})",
                *_line_col(source, end))
        range_ann = (float(range_match.group(1)),
                     float(range_match.group(2)))
        end = range_match.end()
    return NumberToken(value, ann, range_ann), end


def _line_col(source: str, pos: int) -> Tuple[int, int]:
    line = source.count("\n", 0, pos) + 1
    last_newline = source.rfind("\n", 0, pos)
    return line, pos - last_newline

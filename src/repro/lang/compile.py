"""Trace compiler: recorded evaluations lowered to specialized bytecode.

The guarded replay of :mod:`repro.lang.incremental` already avoids
re-running the program per mouse-move, but it still *interprets* trace
structures every step: ``_trace_value`` walks ``OpTrace`` trees node by
node, and ``_rebuild`` re-walks the whole output value tree.  This module
specializes one recorded evaluation (:class:`~repro.lang.incremental
.EvalCache`) into a single flat Python function — compiled once with
:func:`compile` — so a drag step becomes "evaluate a few hundred local
float expressions and check a predicate vector":

* every distinct trace node becomes one assignment of an inlined float
  expression (shared nodes are computed once, exactly like the
  interpreter's per-step memo);
* every recorded guard (comparison, ``toString``, numeric-literal match)
  becomes one ``if ...: return None`` — the predicate vector;
* the output rebuild becomes a flat sequence of ``old-if-unchanged-else
  -fresh`` node constructions mirroring ``_rebuild`` statement for
  statement, sharing every untouched subtree by identity.

**Equivalence discipline.**  The artifact is an optimization of the
interpreted replay, never a semantic layer: the generated code replicates
:func:`~repro.lang.ops.apply_numeric_op` float-for-float (including the
``arccos``/``arcsin`` domain checks that reject NaN, which bare
``math.acos`` would let through), charges the same evaluation-budget
amount, and answers the same verdict — the new output, or ``None`` for
"fall back to a full re-evaluation".  Any failure to compile or replay
escalates to the interpreter; nothing is ever reused wrongly
(``tests/test_compiled_equivalence.py`` locks this corpus-wide).

**Lifecycle.**  Artifacts attach lazily to the :class:`EvalCache` they
specialize (:func:`ensure_compiled`), so they ride along wherever the
cache is shared — the serve layer's compile cache, ``seed_run``,
snapshot restore — and die with it when a structural change forces a
re-record.  A cache whose compilation failed is marked and never
retried.  The knob: ``REPRO_COMPILED=0`` disables consultation globally
(:func:`compiled_enabled`); pipelines can also pin the policy per
instance.

>>> from repro.lang.incremental import record_evaluation
>>> from repro.lang.program import parse_program
>>> program = parse_program("(def x 10) (svg [(rect 'red' x 20 30 x)])")
>>> output, cache = record_evaluation(program)
>>> artifact = ensure_compiled(cache)
>>> loc = program.user_locs()[0]
>>> moved = program.substitute({loc: 75.0})
>>> replayed = artifact.replay(moved.rho0)
>>> replayed is not None and replayed is not output
True
>>> cache.compiled is artifact        # attached: compiled exactly once
True
"""

from __future__ import annotations

import math
import operator
import os
import threading
from contextlib import contextmanager
from typing import Dict, List, Optional

from .ast import Loc
from .errors import LittleRuntimeError, ResourceExhausted
from .eval import get_budget
from .values import VCons, VNum, format_number

__all__ = ["CompileUnsupported", "CompiledEvaluation", "compiled_enabled",
           "ensure_compiled", "force_compiled", "specialize"]

#: Statement budget for one specialized function.  Far above the corpus
#: (the heaviest example compiles to a few thousand statements); a
#: pathological program falls back to the interpreter instead of paying
#: an unbounded ``compile()``.
MAX_STATEMENTS = 60_000


class CompileUnsupported(Exception):
    """The recorded evaluation cannot be specialized (unknown operator,
    oversized artifact); the caller keeps using the interpreter."""


def _guarded_acos(x: float) -> float:
    # Replicates apply_numeric_op exactly: the explicit range check also
    # rejects NaN, where math.acos(nan) would *return* nan and silently
    # diverge from the interpreter.
    if not -1.0 <= x <= 1.0:
        raise LittleRuntimeError("arccos argument outside [-1, 1]")
    return math.acos(x)


def _guarded_asin(x: float) -> float:
    if not -1.0 <= x <= 1.0:
        raise LittleRuntimeError("arcsin argument outside [-1, 1]")
    return math.asin(x)


#: Binary operators inlined as native float expressions.  ``/`` needs no
#: zero check: ``ZeroDivisionError`` and the interpreter's domain error
#: both resolve to the same ``None`` verdict in :meth:`replay`.
_BINARY_INLINE = {"+", "-", "*", "/"}

#: Unary operators lowered to one call of an exact-semantics callable
#: (bound as function default arguments, so every lookup is ``LOAD_FAST``).
_UNARY_CALLS = {"cos": "_cos", "sin": "_sin", "sqrt": "_sqrt",
                "floor": "_floor", "ceiling": "_ceil", "abs": "_abs",
                "neg": "_neg", "arccos": "_acos", "arcsin": "_asin"}

_HEADER = ("def _specialized(r, L=L, K=K, O=O, _VNum=_VNum, _VCons=_VCons, "
           "_fmt=_fmt, _acos=_acos, _asin=_asin, _fmod=_fmod, _pow=_pow, "
           "_cos=_cos, _sin=_sin, _sqrt=_sqrt, _floor=_floor, _ceil=_ceil, "
           "_abs=_abs, _neg=_neg):")


class _Codegen:
    """Accumulates the flat statement list for one specialization."""

    def __init__(self):
        self.lines: List[str] = []
        self.locs: List[Loc] = []
        self.consts: List[object] = []
        self.objs: List[object] = []
        self._loc_index: Dict[object, int] = {}
        self._const_index: Dict[object, int] = {}
        self._obj_index: Dict[int, int] = {}
        self._trace_var: Dict[int, str] = {}
        self._vars = 0

    def emit(self, line: str) -> None:
        if len(self.lines) >= MAX_STATEMENTS:
            raise CompileUnsupported(
                f"artifact exceeds {MAX_STATEMENTS} statements")
        self.lines.append(line)

    def new_var(self) -> str:
        self._vars += 1
        return f"t{self._vars}"

    def const_ref(self, value) -> str:
        """Pool a float/str constant.  Pooling (instead of source
        literals) keeps ``repr`` round-tripping — NaN, signed zeros,
        arbitrary strings — out of the generated source entirely."""
        key = (type(value).__name__, value)
        try:
            index = self._const_index.get(key)
        except TypeError:       # unhashable: pool without deduplication
            index = None
            key = None
        if index is None:
            index = len(self.consts)
            self.consts.append(value)
            if key is not None:
                self._const_index[key] = index
        return f"K[{index}]"

    def obj_ref(self, value) -> str:
        """Pool a recorded output object (by identity)."""
        index = self._obj_index.get(id(value))
        if index is None:
            index = len(self.objs)
            self.objs.append(value)
            self._obj_index[id(value)] = index
        return f"O[{index}]"

    # -- traces -> float expressions ------------------------------------------

    def trace_expr(self, trace) -> str:
        """The variable holding ``ρt`` for this trace node, emitting its
        (deduplicated) computation.  Mirrors ``_trace_value``: one
        evaluation per distinct node per step."""
        if type(trace) is Loc:
            index = self._loc_index.get(trace.ident)
            if index is None:
                index = len(self.locs)
                self.locs.append(trace)
                self._loc_index[trace.ident] = index
                var = f"v{index}"
                self.emit(f"{var} = r[L[{index}]]")
            return f"v{index}"
        var = self._trace_var.get(id(trace))
        if var is not None:
            return var
        op = trace.op
        args = [self.trace_expr(arg) for arg in trace.args]
        if op in _BINARY_INLINE and len(args) == 2:
            expr = f"({args[0]} {op} {args[1]})"
        elif op == "mod" and len(args) == 2:
            expr = f"_fmod({args[0]}, {args[1]})"
        elif op == "pow" and len(args) == 2:
            expr = f"_pow({args[0]}, {args[1]})"
        elif op == "round" and len(args) == 1:
            expr = f"_floor({args[0]} + 0.5)"
        elif op in _UNARY_CALLS and len(args) == 1:
            expr = f"{_UNARY_CALLS[op]}({args[0]})"
        elif op == "pi" and not args:
            return self.const_ref(math.pi)
        else:
            raise CompileUnsupported(
                f"operator {op!r}/{len(args)} has no specialized form")
        var = self.new_var()
        self.emit(f"{var} = {expr}")
        self._trace_var[id(trace)] = var
        return var

    # -- guards -> the predicate vector ---------------------------------------

    def emit_guards(self, cache) -> None:
        for op, left, right, expected in cache.comparisons:
            a = self.trace_expr(left)
            b = self.trace_expr(right)
            cond = f"({a} {'==' if op == '=' else op} {b})"
            self.emit(f"if not {cond}: return None" if expected
                      else f"if {cond}: return None")
        for trace, rendered in cache.tostrings:
            t = self.trace_expr(trace)
            self.emit(f"if _fmt({t}) != {self.const_ref(rendered)}: "
                      f"return None")
        for trace, pattern_value, expected in cache.num_matches:
            t = self.trace_expr(trace)
            pattern = self.const_ref(pattern_value)
            self.emit(f"if {t} != {pattern}: return None" if expected
                      else f"if {t} == {pattern}: return None")

    # -- output rebuild, flattened --------------------------------------------

    def visit_value(self, value) -> Optional[str]:
        """Emit the rebuild of one recorded output node, returning the
        variable holding the rebuilt value — or ``None`` for a subtree
        with no numeric leaf, which ``_rebuild`` provably returns as-is
        (zero statements, shared by identity)."""
        kind = type(value)
        if kind is VNum:
            t = self.trace_expr(value.trace)
            o = self.obj_ref(value)
            var = self.new_var()
            # Exactly _rebuild's check (== on floats, so a recomputed
            # -0.0 still shares the recorded 0.0 node, and vice versa).
            self.emit(f"{var} = {o} if {t} == {o}.value "
                      f"else _VNum({t}, {o}.trace)")
            return var
        if kind is VCons:
            head = self.visit_value(value.head)
            tail = self.visit_value(value.tail)
            if head is None and tail is None:
                return None
            o = self.obj_ref(value)
            conditions = []
            if head is None:
                head = f"{o}.head"
            else:
                conditions.append(f"{head} is {o}.head")
            if tail is None:
                tail = f"{o}.tail"
            else:
                conditions.append(f"{tail} is {o}.tail")
            var = self.new_var()
            self.emit(f"{var} = {o} if {' and '.join(conditions)} "
                      f"else _VCons({head}, {tail})")
            return var
        return None

    # -- assembly ----------------------------------------------------------------

    def build(self, cache) -> "CompiledEvaluation":
        self.emit_guards(cache)
        root = self.visit_value(cache.output)
        self.emit(f"return {root}" if root is not None
                  else f"return {self.obj_ref(cache.output)}")
        source = _HEADER + "\n" + "\n".join(
            "    " + line for line in self.lines)
        namespace = {
            "L": tuple(self.locs), "K": tuple(self.consts),
            "O": tuple(self.objs), "_VNum": VNum, "_VCons": VCons,
            "_fmt": format_number, "_acos": _guarded_acos,
            "_asin": _guarded_asin, "_fmod": math.fmod, "_pow": math.pow,
            "_cos": math.cos, "_sin": math.sin, "_sqrt": math.sqrt,
            "_floor": math.floor, "_ceil": math.ceil, "_abs": abs,
            "_neg": operator.neg,
        }
        exec(compile(source, "<repro.lang.compile>", "exec"), namespace)
        guard_charge = (len(cache.comparisons) + len(cache.tostrings)
                        + len(cache.num_matches))
        return CompiledEvaluation(namespace["_specialized"], guard_charge,
                                  len(self.lines))


class CompiledEvaluation:
    """One specialized drag-step artifact: ``replay(ρ)`` answers exactly
    what :func:`~repro.lang.incremental.reevaluate` would — the rebuilt
    output, or ``None`` to escalate — only flat and compiled."""

    __slots__ = ("_fn", "guard_charge", "statements")

    def __init__(self, fn, guard_charge: int, statements: int):
        self._fn = fn
        #: Fuel charged per replay: one step per recorded guard, the same
        #: coarse accounting as the interpreted fast path.
        self.guard_charge = guard_charge
        #: Size of the generated function, for introspection and tests.
        self.statements = statements

    def replay(self, rho) -> Optional[object]:
        """Re-run the recorded evaluation under ``rho`` (the program's
        location-keyed ρ0).  Returns the new output value — bit-identical
        to the interpreted replay — or ``None`` when a guard flipped or
        any evaluation error occurred (the caller escalates to a full
        re-evaluation, which reproduces the interpreter's exact error
        behavior).  An exhausted budget propagates, never masked."""
        budget = get_budget()
        if budget is not None:
            # Charged before the try, like reevaluate: ResourceExhausted
            # must propagate, not read as a guard flip.
            budget.consume(self.guard_charge)
        try:
            return self._fn(rho)
        except ResourceExhausted:
            raise
        except Exception:
            # KeyError (loc missing from ρ), LittleRuntimeError /
            # ZeroDivisionError / ValueError / OverflowError (domain
            # errors the interpreter maps to LittleRuntimeError),
            # RecursionError — and anything unforeseen: the artifact is
            # an optimization, so every failure escalates to the ground
            # truth instead of crashing or answering wrongly.
            return None


def specialize(cache) -> CompiledEvaluation:
    """Lower one recorded evaluation into a :class:`CompiledEvaluation`.

    Raises :class:`CompileUnsupported` (or any codegen error) when the
    recording cannot be specialized; use :func:`ensure_compiled` for the
    attach-once, fail-once lifecycle.
    """
    return _Codegen().build(cache)


def ensure_compiled(cache, probe=None) -> Optional[CompiledEvaluation]:
    """The artifact for ``cache``, compiling (and attaching) it on first
    use; ``None`` when this cache cannot be specialized.

    ``probe(event)``, if given, observes the lifecycle — ``"attempt"``
    before compiling (the serve layer's ``compile.specialize`` fault
    point fires here), then ``"compiled"`` or ``"failed"``.  A failed
    specialization is remembered on the cache and never retried; the
    caller keeps the interpreted replay.  Caches are shared read-mostly
    across sessions (the serve compile cache): concurrent first calls
    may both compile, and either identical artifact winning the write is
    fine.
    """
    compiled = cache.compiled
    if compiled is not None:
        return compiled
    if cache.compile_failed:
        return None
    try:
        if probe is not None:
            probe("attempt")
        compiled = specialize(cache)
    except Exception:
        cache.compile_failed = True
        if probe is not None:
            probe("failed")
        return None
    cache.compiled = compiled
    if probe is not None:
        probe("compiled")
    return compiled


# ---------------------------------------------------------------------------
# The REPRO_COMPILED knob
# ---------------------------------------------------------------------------

_forced = threading.local()


@contextmanager
def force_compiled(enabled: Optional[bool]):
    """Pin :func:`compiled_enabled` for this thread — the benchmark
    harness measures the interpreted and compiled paths side by side
    regardless of the ambient ``REPRO_COMPILED``."""
    previous = getattr(_forced, "value", None)
    _forced.value = enabled
    try:
        yield
    finally:
        _forced.value = previous


def compiled_enabled() -> bool:
    """Should pipelines consult compiled artifacts?  Per-call so the
    ``REPRO_COMPILED`` environment knob (default on; ``0`` disables) and
    :func:`force_compiled` take effect immediately, even on sessions
    that already exist."""
    forced = getattr(_forced, "value", None)
    if forced is not None:
        return forced
    return os.environ.get("REPRO_COMPILED", "1") != "0"

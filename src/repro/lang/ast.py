"""Abstract syntax for the ``little`` language (paper Figure 2 + Appendix A).

Expressions are plain immutable-by-convention dataclasses.  The one deliberate
exception is :class:`Loc`: the canonical-naming pass (paper §2.1) assigns a
variable name to a location *after* parsing, so ``Loc`` exposes a mutable
``name`` field while identity (equality and hashing) is by integer id only.

Every numeric literal carries:

* a location ``loc`` — the ℓ of the paper, inserted by the parser,
* an annotation ``ann`` — ``""`` (none), ``"!"`` (frozen) or ``"?"`` (thawed),
* an optional ``range_ann`` — the ``{lo-hi}`` slider range of §2.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union


class Loc:
    """A source-code location ℓ identifying one numeric literal.

    Identity is the integer ``ident``; ``name`` is the canonical display name
    ("when a number n is immediately bound to a variable x, we choose the
    canonical name x for the location", §2.1).  ``frozen`` marks literals the
    synthesizer must not change; ``in_prelude`` marks Prelude literals, which
    are frozen by default (§2.2).
    """

    __slots__ = ("ident", "name", "frozen", "in_prelude")

    def __init__(self, ident: int, name: Optional[str] = None,
                 frozen: bool = False, in_prelude: bool = False):
        self.ident = ident
        self.name = name
        self.frozen = frozen
        self.in_prelude = in_prelude

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Loc) and self.ident == other.ident

    def __hash__(self) -> int:
        return hash(self.ident)

    def __repr__(self) -> str:
        label = self.name if self.name is not None else f"`{self.ident}"
        flags = "!" if self.frozen else ""
        return f"Loc({label}{flags})"

    def display(self) -> str:
        """Human-readable name used in captions and reports."""
        return self.name if self.name is not None else f"loc{self.ident}"


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PVar:
    name: str


@dataclass(frozen=True)
class PNum:
    value: float


@dataclass(frozen=True)
class PStr:
    value: str


@dataclass(frozen=True)
class PBool:
    value: bool


@dataclass(frozen=True)
class PNil:
    pass


@dataclass(frozen=True)
class PCons:
    head: "Pattern"
    tail: "Pattern"


Pattern = Union[PVar, PNum, PStr, PBool, PNil, PCons]


def plist(elements, tail: Pattern = PNil()) -> Pattern:
    """Build the cons-pattern for ``[p1 ... pm | tail]``."""
    pat = tail
    for element in reversed(list(elements)):
        pat = PCons(element, pat)
    return pat


def pattern_vars(pat: Pattern) -> list:
    """All variable names bound by ``pat``, left to right."""
    if isinstance(pat, PVar):
        return [pat.name]
    if isinstance(pat, PCons):
        return pattern_vars(pat.head) + pattern_vars(pat.tail)
    return []


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class ENum:
    value: float
    loc: Loc
    ann: str = ""                       # "", "!" or "?"
    range_ann: Optional[Tuple[float, float]] = None


@dataclass
class EStr:
    value: str


@dataclass
class EBool:
    value: bool


@dataclass
class ENil:
    pass


@dataclass
class ECons:
    head: "Expr"
    tail: "Expr"


@dataclass
class EVar:
    name: str


@dataclass
class ELambda:
    pattern: Pattern
    body: "Expr"


@dataclass
class EApp:
    fn: "Expr"
    arg: "Expr"


@dataclass
class EOp:
    op: str
    args: Tuple["Expr", ...]


@dataclass
class ELet:
    pattern: Pattern
    bound: "Expr"
    body: "Expr"
    rec: bool = False
    from_def: bool = False              # remembers (def ...) sugar for unparsing


@dataclass
class ECase:
    scrutinee: "Expr"
    branches: Tuple[Tuple[Pattern, "Expr"], ...]
    from_if: bool = False               # remembers (if ...) sugar for unparsing


Expr = Union[ENum, EStr, EBool, ENil, ECons, EVar, ELambda, EApp, EOp,
             ELet, ECase]


def elist(elements, tail: Expr = None) -> Expr:
    """Build the cons-expression for ``[e1 ... em | tail]``."""
    expr = ENil() if tail is None else tail
    for element in reversed(list(elements)):
        expr = ECons(element, expr)
    return expr


# ---------------------------------------------------------------------------
# Primitive operators (paper Figure 2)
# ---------------------------------------------------------------------------

OPS0 = frozenset({"pi"})
OPS1 = frozenset({
    "not", "cos", "sin", "arccos", "arcsin", "round", "floor", "ceiling",
    "sqrt", "abs", "neg", "toString",
})
OPS2 = frozenset({
    "+", "-", "*", "/", "<", ">", "<=", ">=", "=", "mod", "pow",
})

OP_ARITY = {op: 0 for op in OPS0}
OP_ARITY.update({op: 1 for op in OPS1})
OP_ARITY.update({op: 2 for op in OPS2})

ALL_OPS = frozenset(OP_ARITY)

#: Operators whose (numeric) results carry expression traces.  Comparison
#: operators produce booleans, which are traceless (§2.1, "dataflow-only").
NUMERIC_OPS = ALL_OPS - {"not", "<", ">", "<=", ">=", "=", "toString"}


# ---------------------------------------------------------------------------
# Generic traversals
# ---------------------------------------------------------------------------

def iter_numbers(expr: Expr):
    """Yield every :class:`ENum` in ``expr`` in parse order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ENum):
            yield node
        elif isinstance(node, ECons):
            stack.append(node.tail)
            stack.append(node.head)
        elif isinstance(node, ELambda):
            stack.append(node.body)
        elif isinstance(node, EApp):
            stack.append(node.arg)
            stack.append(node.fn)
        elif isinstance(node, EOp):
            stack.extend(reversed(node.args))
        elif isinstance(node, ELet):
            stack.append(node.body)
            stack.append(node.bound)
        elif isinstance(node, ECase):
            for _, branch in reversed(node.branches):
                stack.append(branch)
            stack.append(node.scrutinee)


def substitute(expr: Expr, rho, collect=None) -> Expr:
    """Apply a substitution ρ (mapping :class:`Loc` → number) to ``expr``.

    Returns a new expression; subtrees without substituted literals are
    shared with the input.  This is the "apply ρ to the original program"
    step of §2.2 — locations, annotations and structure are preserved so the
    result stays manipulable.

    ``collect``, when given, is a dict that receives ``loc → new ENum`` for
    every literal actually rewritten — the incremental ``Loc → ENum`` index
    maintenance of the live-sync fast path.
    """
    if isinstance(expr, ENum):
        if expr.loc in rho:
            new_value = rho[expr.loc]
            if new_value != expr.value:
                replacement = ENum(new_value, expr.loc, expr.ann,
                                   expr.range_ann)
                if collect is not None:
                    collect[expr.loc] = replacement
                return replacement
        return expr
    if isinstance(expr, ECons):
        head = substitute(expr.head, rho, collect)
        tail = substitute(expr.tail, rho, collect)
        if head is expr.head and tail is expr.tail:
            return expr
        return ECons(head, tail)
    if isinstance(expr, ELambda):
        body = substitute(expr.body, rho, collect)
        return expr if body is expr.body else ELambda(expr.pattern, body)
    if isinstance(expr, EApp):
        fn = substitute(expr.fn, rho, collect)
        arg = substitute(expr.arg, rho, collect)
        if fn is expr.fn and arg is expr.arg:
            return expr
        return EApp(fn, arg)
    if isinstance(expr, EOp):
        args = tuple(substitute(a, rho, collect) for a in expr.args)
        if all(new is old for new, old in zip(args, expr.args)):
            return expr
        return EOp(expr.op, args)
    if isinstance(expr, ELet):
        bound = substitute(expr.bound, rho, collect)
        body = substitute(expr.body, rho, collect)
        if bound is expr.bound and body is expr.body:
            return expr
        return ELet(expr.pattern, bound, body, expr.rec, expr.from_def)
    if isinstance(expr, ECase):
        scrutinee = substitute(expr.scrutinee, rho, collect)
        branches = tuple((pat, substitute(branch, rho, collect))
                         for pat, branch in expr.branches)
        if scrutinee is expr.scrutinee and all(
                new[1] is old[1] for new, old in zip(branches, expr.branches)):
            return expr
        return ECase(scrutinee, branches, expr.from_if)
    return expr

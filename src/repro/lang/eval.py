"""Big-step evaluator for ``little`` with trace instrumentation.

The distinguishing rule is E-OP-NUM (paper Figure 2): applying a primitive
operator to numbers ``n1^t1 … nm^tm`` yields ``n^t`` where
``t = (op t1 … tm)`` — traces are built *in parallel with* evaluation and
record data flow only.
"""

from __future__ import annotations

import sys
from typing import Dict, Optional

from .ast import (ECase, ECons, ELambda, ELet, ENil, ENum, EOp, EStr, EVar,
                  EApp, EBool, Expr, NUMERIC_OPS, PBool, PCons, PNil, PNum,
                  PStr, PVar, Pattern)
from .errors import LittleRuntimeError, MatchFailure
from .ops import apply_numeric_op
from .values import (VBool, VClosure, VCons, VNil, VNum, VStr, Value,
                     format_number)
from ..trace.trace import OpTrace

_MIN_RECURSION_LIMIT = 20000


class Env:
    """Environment as a parent-linked chain of small binding dicts."""

    __slots__ = ("bindings", "parent")

    def __init__(self, bindings: Optional[Dict[str, Value]] = None,
                 parent: Optional["Env"] = None):
        self.bindings = bindings if bindings is not None else {}
        self.parent = parent

    def lookup(self, name: str) -> Value:
        env: Optional[Env] = self
        while env is not None:
            value = env.bindings.get(name)
            if value is not None:
                return value
            if name in env.bindings:      # a binding whose value is None-like
                return env.bindings[name]
            env = env.parent
        raise LittleRuntimeError(f"unbound variable {name!r}")

    def child(self, bindings: Dict[str, Value]) -> "Env":
        return Env(bindings, self)


def match(pattern: Pattern, value: Value) -> Optional[Dict[str, Value]]:
    """Match ``value`` against ``pattern``; return bindings or ``None``."""
    if isinstance(pattern, PVar):
        return {pattern.name: value}
    if isinstance(pattern, PNum):
        if isinstance(value, VNum) and value.value == pattern.value:
            return {}
        return None
    if isinstance(pattern, PStr):
        if isinstance(value, VStr) and value.value == pattern.value:
            return {}
        return None
    if isinstance(pattern, PBool):
        if isinstance(value, VBool) and value.value == pattern.value:
            return {}
        return None
    if isinstance(pattern, PNil):
        return {} if isinstance(value, VNil) else None
    if isinstance(pattern, PCons):
        if not isinstance(value, VCons):
            return None
        head_bindings = match(pattern.head, value.head)
        if head_bindings is None:
            return None
        tail_bindings = match(pattern.tail, value.tail)
        if tail_bindings is None:
            return None
        head_bindings.update(tail_bindings)
        return head_bindings
    raise LittleRuntimeError(f"unknown pattern {pattern!r}")


def evaluate(expr: Expr, env: Optional[Env] = None) -> Value:
    """Evaluate ``expr`` in ``env`` (empty by default)."""
    if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
        sys.setrecursionlimit(_MIN_RECURSION_LIMIT)
    return _eval(expr, env if env is not None else Env())


def _eval(expr: Expr, env: Env) -> Value:
    # A while-loop on `expr`/`env` implements tail calls for let bodies and
    # case branches, which keeps Python stack depth proportional to true
    # (non-tail) recursion depth only.
    while True:
        kind = type(expr)
        if kind is ENum:
            return VNum(expr.value, expr.loc)
        if kind is EStr:
            return VStr(expr.value)
        if kind is EBool:
            return VBool(expr.value)
        if kind is ENil:
            return VNil()
        if kind is EVar:
            return env.lookup(expr.name)
        if kind is ECons:
            return VCons(_eval(expr.head, env), _eval(expr.tail, env))
        if kind is ELambda:
            return VClosure(expr.pattern, expr.body, env)
        if kind is ELet:
            if expr.rec:
                rec_env = env.child({})
                bound = _eval(expr.bound, rec_env)
                bindings = match(expr.pattern, bound)
                if bindings is None:
                    raise MatchFailure("letrec pattern did not match")
                rec_env.bindings.update(bindings)
                env = rec_env
            else:
                bound = _eval(expr.bound, env)
                bindings = match(expr.pattern, bound)
                if bindings is None:
                    raise MatchFailure("let pattern did not match")
                env = env.child(bindings)
            expr = expr.body
            continue
        if kind is EApp:
            fn = _eval(expr.fn, env)
            arg = _eval(expr.arg, env)
            if not isinstance(fn, VClosure):
                raise LittleRuntimeError(
                    f"attempt to apply a non-function: {fn!r}")
            bindings = match(fn.pattern, arg)
            if bindings is None:
                raise MatchFailure("function argument did not match "
                                   "parameter pattern")
            expr = fn.body
            env = fn.env.child(bindings)
            continue
        if kind is ECase:
            scrutinee = _eval(expr.scrutinee, env)
            for pattern, branch in expr.branches:
                bindings = match(pattern, scrutinee)
                if bindings is not None:
                    env = env.child(bindings) if bindings else env
                    expr = branch
                    break
            else:
                raise MatchFailure("no case branch matched")
            continue
        if kind is EOp:
            return _eval_op(expr, env)
        raise LittleRuntimeError(f"cannot evaluate {expr!r}")


def _eval_op(expr: EOp, env: Env) -> Value:
    op = expr.op
    args = [_eval(arg, env) for arg in expr.args]

    if all(isinstance(arg, VNum) for arg in args):
        if op in NUMERIC_OPS:
            # E-OP-NUM: compute the number and build the expression trace.
            result = apply_numeric_op(op, [arg.value for arg in args])
            return VNum(result, OpTrace(op, tuple(arg.trace for arg in args)))
        if op == "=":
            return VBool(args[0].value == args[1].value)
        if op == "<":
            return VBool(args[0].value < args[1].value)
        if op == ">":
            return VBool(args[0].value > args[1].value)
        if op == "<=":
            return VBool(args[0].value <= args[1].value)
        if op == ">=":
            return VBool(args[0].value >= args[1].value)
        if op == "toString":
            return VStr(format_number(args[0].value))

    if op == "not" and isinstance(args[0], VBool):
        return VBool(not args[0].value)
    if op == "+" and isinstance(args[0], VStr) and isinstance(args[1], VStr):
        return VStr(args[0].value + args[1].value)
    if op == "=" and isinstance(args[0], VStr) and isinstance(args[1], VStr):
        return VBool(args[0].value == args[1].value)
    if op == "=" and isinstance(args[0], VBool) and isinstance(args[1], VBool):
        return VBool(args[0].value == args[1].value)
    if op == "toString":
        if isinstance(args[0], VStr):
            return args[0]
        if isinstance(args[0], VBool):
            return VStr("true" if args[0].value else "false")

    shapes = ", ".join(type(arg).__name__ for arg in args)
    raise LittleRuntimeError(f"operator {op!r} not defined on ({shapes})")

"""Big-step evaluator for ``little`` with trace instrumentation.

The distinguishing rule is E-OP-NUM (paper Figure 2): applying a primitive
operator to numbers ``n1^t1 … nm^tm`` yields ``n^t`` where
``t = (op t1 … tm)`` — traces are built *in parallel with* evaluation and
record data flow only.
"""

from __future__ import annotations

import sys
import threading
from typing import Dict, Optional

from .ast import (ECase, ECons, ELambda, ELet, ENil, ENum, EOp, EStr, EVar,
                  EApp, EBool, Expr, NUMERIC_OPS, PBool, PCons, PNil, PNum,
                  PStr, PVar, Pattern)
from .errors import LittleRuntimeError, MatchFailure, ResourceExhausted
from .ops import apply_numeric_op
from .values import (VBool, VClosure, VCons, VNil, VNum, VStr, Value,
                     format_number)
from ..trace.trace import OpTrace

_MIN_RECURSION_LIMIT = 20000

#: Active guard recorder (see :mod:`repro.lang.incremental`), per thread.
#: When set, every value-dependent control-flow decision on this thread is
#: recorded.  A process-global here would let two sessions recording
#: concurrently pollute each other's guard lists — ``reevaluate`` would
#: then silently validate stale outputs (found by the serve concurrency
#: harness, ``tests/test_serve_concurrency.py``).
#: The recording checkpoints below read ``getattr(_RECORDERS, "value",
#: None)`` inline rather than calling :func:`get_recorder` — a
#: deliberate hot-path optimization (comparisons run in the evaluator's
#: inner loop); keep the helper and the inline reads in sync.
_RECORDERS = threading.local()


def get_recorder():
    """This thread's active guard recorder, or ``None``."""
    return getattr(_RECORDERS, "value", None)


def set_recorder(recorder) -> None:
    """Install (or clear, with ``None``) this thread's guard recorder."""
    _RECORDERS.value = recorder


#: Active evaluation budget, per thread (same discipline as the guard
#: recorder above): installed around one evaluation via
#: :func:`budget_scope`, read inline in the interpreter loop.
_BUDGETS = threading.local()


class EvalBudget:
    """Cooperative resource budget for one evaluation run.

    Three independent caps, each ``None`` for unlimited:

    * ``max_fuel`` — evaluation *steps* (interpreter loop iterations, plus
      a coarse per-guard charge on the incremental replay path), the
      wall-clock proxy that stops an infinite tail-recursive loop;
    * ``max_depth`` — non-tail little-level recursion depth, which fires
      long before Python's own recursion limit would produce an opaque
      ``RecursionError`` traceback;
    * ``max_size`` — allocated value cells (cons cells, produced string
      characters), which stops an exponential list build before it stops
      the machine.

    The counters are mutable and reset per run (:func:`budget_scope`), so
    one instance serves a session's lifetime but must not be shared
    across threads — clone per concurrent consumer (:meth:`clone`).

    >>> from repro.lang.program import parse_program
    >>> looping = parse_program(
    ...     "(defrec spin (\\\\n (spin (+ n 1)))) "
    ...     "(svg [(rect 'red' (spin 0) 0 5 5)])")
    >>> with budget_scope(EvalBudget(max_fuel=10000)):
    ...     looping.evaluate()
    Traceback (most recent call last):
        ...
    repro.lang.errors.ResourceExhausted: program exceeded its evaluation \
budget: 10000 steps (fuel)
    """

    __slots__ = ("max_fuel", "max_depth", "max_size", "fuel", "depth",
                 "size")

    #: Defaults sized for interactive serving: two orders of magnitude
    #: above the hungriest corpus program (us50_flag evaluates in ~5e4
    #: steps), small enough that a runaway program fails within a second.
    DEFAULT_FUEL = 5_000_000
    #: Non-tail recursion depth; must stay comfortably below the Python
    #: recursion limit the evaluator configures (each little-level frame
    #: costs a couple of Python frames), so the budget fires first.
    DEFAULT_DEPTH = 4_000
    DEFAULT_SIZE = 5_000_000

    def __init__(self, max_fuel: Optional[int] = DEFAULT_FUEL,
                 max_depth: Optional[int] = DEFAULT_DEPTH,
                 max_size: Optional[int] = DEFAULT_SIZE):
        self.max_fuel = float("inf") if max_fuel is None else max_fuel
        self.max_depth = float("inf") if max_depth is None else max_depth
        self.max_size = float("inf") if max_size is None else max_size
        self.fuel = 0
        self.depth = 0
        self.size = 0

    def clone(self) -> "EvalBudget":
        """A fresh budget with the same limits and zeroed counters."""
        clone = EvalBudget.__new__(EvalBudget)
        clone.max_fuel = self.max_fuel
        clone.max_depth = self.max_depth
        clone.max_size = self.max_size
        clone.fuel = clone.depth = clone.size = 0
        return clone

    def reset(self) -> None:
        self.fuel = 0
        self.depth = 0
        self.size = 0

    def _exhausted(self, kind: str, limit: float, unit: str):
        limit_text = int(limit) if limit != float("inf") else limit
        raise ResourceExhausted(
            kind, limit, f"program exceeded its evaluation budget: "
                         f"{limit_text} {unit} ({kind})")

    def step(self) -> None:
        """One interpreter loop iteration."""
        self.fuel += 1
        if self.fuel > self.max_fuel:
            self._exhausted("fuel", self.max_fuel, "steps")

    def consume(self, amount: int) -> None:
        """Charge ``amount`` steps at once (the replay path's coarse
        per-guard accounting)."""
        self.fuel += amount
        if self.fuel > self.max_fuel:
            self._exhausted("fuel", self.max_fuel, "steps")

    def enter(self) -> None:
        """One non-tail little-level call frame (paired with a direct
        ``depth -= 1`` in the evaluator's ``finally``)."""
        self.depth += 1
        if self.depth > self.max_depth:
            self._exhausted("depth", self.max_depth, "frames")

    def allocate(self, cells: int) -> None:
        """Charge ``cells`` allocated value cells."""
        self.size += cells
        if self.size > self.max_size:
            self._exhausted("size", self.max_size, "cells")


def get_budget() -> Optional[EvalBudget]:
    """This thread's active evaluation budget, or ``None``."""
    return getattr(_BUDGETS, "value", None)


class _BudgetScope:
    """Install ``budget`` (reset) for the dynamic extent of one
    evaluation, restoring the previous budget on exit.  ``budget=None``
    is a cheap no-op, so the unbudgeted paths stay unchanged."""

    __slots__ = ("budget", "previous")

    def __init__(self, budget: Optional[EvalBudget]):
        self.budget = budget
        self.previous = None

    def __enter__(self) -> Optional[EvalBudget]:
        budget = self.budget
        if budget is not None:
            budget.reset()
            self.previous = getattr(_BUDGETS, "value", None)
            _BUDGETS.value = budget
        return budget

    def __exit__(self, *exc_info) -> bool:
        if self.budget is not None:
            _BUDGETS.value = self.previous
        return False


def budget_scope(budget: Optional[EvalBudget]) -> _BudgetScope:
    """Context manager installing ``budget`` for one evaluation run."""
    return _BudgetScope(budget)


_MISSING = object()


class Env:
    """Environment as a parent-linked chain of small binding dicts."""

    __slots__ = ("bindings", "parent")

    def __init__(self, bindings: Optional[Dict[str, Value]] = None,
                 parent: Optional["Env"] = None):
        self.bindings = bindings if bindings is not None else {}
        self.parent = parent

    def lookup(self, name: str) -> Value:
        env: Optional[Env] = self
        while env is not None:
            value = env.bindings.get(name, _MISSING)
            if value is not _MISSING:
                return value
            env = env.parent
        raise LittleRuntimeError(f"unbound variable {name!r}")

    def child(self, bindings: Dict[str, Value]) -> "Env":
        return Env(bindings, self)


def match(pattern: Pattern, value: Value) -> Optional[Dict[str, Value]]:
    """Match ``value`` against ``pattern``; return bindings or ``None``."""
    if isinstance(pattern, PVar):
        return {pattern.name: value}
    if isinstance(pattern, PNum):
        matched = isinstance(value, VNum) and value.value == pattern.value
        recorder = getattr(_RECORDERS, "value", None)
        if recorder is not None and isinstance(value, VNum):
            recorder.num_matches.append(
                (value.trace, pattern.value, matched))
        return {} if matched else None
    if isinstance(pattern, PStr):
        if isinstance(value, VStr) and value.value == pattern.value:
            return {}
        return None
    if isinstance(pattern, PBool):
        if isinstance(value, VBool) and value.value == pattern.value:
            return {}
        return None
    if isinstance(pattern, PNil):
        return {} if isinstance(value, VNil) else None
    if isinstance(pattern, PCons):
        if not isinstance(value, VCons):
            return None
        head_bindings = match(pattern.head, value.head)
        if head_bindings is None:
            return None
        tail_bindings = match(pattern.tail, value.tail)
        if tail_bindings is None:
            return None
        head_bindings.update(tail_bindings)
        return head_bindings
    raise LittleRuntimeError(f"unknown pattern {pattern!r}")


def evaluate(expr: Expr, env: Optional[Env] = None) -> Value:
    """Evaluate ``expr`` in ``env`` (empty by default)."""
    if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
        sys.setrecursionlimit(_MIN_RECURSION_LIMIT)
    return _eval(expr, env if env is not None else Env())


# Interned leaf values: little's nil and booleans are immutable and
# traceless, so one instance of each serves every evaluation.
_NIL = VNil()
_TRUE = VBool(True)
_FALSE = VBool(False)


def _eval_str(expr: EStr, env: Env) -> Value:
    cached = getattr(expr, "_vcache", None)
    if cached is None:
        cached = VStr(expr.value)
        expr._vcache = cached
    return cached


def _eval_bool(expr: EBool, env: Env) -> Value:
    return _TRUE if expr.value else _FALSE


def _eval_nil(expr: ENil, env: Env) -> Value:
    return _NIL


def _eval_cons(expr: ECons, env: Env) -> Value:
    # Evaluate the cons spine iteratively: list literals are long, and one
    # Python frame per element costs more than the loop.
    heads = []
    node = expr
    while type(node) is ECons:
        heads.append(_eval(node.head, env))
        node = node.tail
    value = _eval(node, env)
    budget = getattr(_BUDGETS, "value", None)
    if budget is not None:
        # The only VCons allocation site: every little list cell — literal
        # or built one cons at a time by recursive prelude functions —
        # passes through here, so charging the spine length meters total
        # list allocation.
        budget.allocate(len(heads))
    for head in reversed(heads):
        value = VCons(head, value)
    return value


def _eval_lambda(expr: ELambda, env: Env) -> Value:
    return VClosure(expr.pattern, expr.body, env)


#: Dispatch table for expression kinds that produce a value directly; the
#: tail-callable kinds (let/app/case) and the hottest leaves (variables,
#: numbers) are handled inline in the ``_eval`` loop instead.
_LEAF_HANDLERS = {
    EStr: _eval_str,
    EBool: _eval_bool,
    ENil: _eval_nil,
    ECons: _eval_cons,
    ELambda: _eval_lambda,
}


def _eval(expr: Expr, env: Env) -> Value:
    # A while-loop on `expr`/`env` implements tail calls for let bodies and
    # case branches, which keeps Python stack depth proportional to true
    # (non-tail) recursion depth only.  The hottest kinds (variable lookup,
    # application, literals) are inlined ahead of the dispatch table.
    #
    # Budget accounting mirrors that structure: one depth frame per _eval
    # entry (non-tail recursion only, by construction), one fuel step per
    # loop iteration (so tail-recursive spins still burn fuel).  The fuel
    # increment is inlined — like the recorder reads — because it runs
    # once per evaluated node; try/finally is zero-cost on the
    # no-exception path in CPython 3.11+.
    budget = getattr(_BUDGETS, "value", None)
    if budget is not None:
        budget.enter()
    try:
        while True:
            if budget is not None:
                budget.fuel += 1
                if budget.fuel > budget.max_fuel:
                    budget._exhausted("fuel", budget.max_fuel, "steps")
            kind = type(expr)
            if kind is EVar:
                name = expr.name
                scope: Optional[Env] = env
                while scope is not None:
                    value = scope.bindings.get(name, _MISSING)
                    if value is not _MISSING:
                        return value
                    scope = scope.parent
                raise LittleRuntimeError(f"unbound variable {name!r}")
            if kind is EApp:
                fn = _eval(expr.fn, env)
                arg = _eval(expr.arg, env)
                if type(fn) is not VClosure:
                    raise LittleRuntimeError(
                        f"attempt to apply a non-function: {fn!r}")
                pattern = fn.pattern
                if type(pattern) is PVar:
                    env = Env({pattern.name: arg}, fn.env)
                else:
                    bindings = match(pattern, arg)
                    if bindings is None:
                        raise MatchFailure("function argument did not match "
                                           "parameter pattern")
                    env = Env(bindings, fn.env)
                expr = fn.body
                continue
            if kind is ENum:
                # A literal's value/loc never change, so its VNum is interned
                # on the node (substitution replaces the node, invalidating
                # the cache naturally).
                cached = getattr(expr, "_vcache", None)
                if cached is None:
                    cached = VNum(expr.value, expr.loc)
                    expr._vcache = cached
                return cached
            if kind is EOp:
                return _eval_op(expr, env)
            if kind is ELet:
                if expr.rec:
                    rec_env = env.child({})
                    bound = _eval(expr.bound, rec_env)
                    bindings = match(expr.pattern, bound)
                    if bindings is None:
                        raise MatchFailure("letrec pattern did not match")
                    rec_env.bindings.update(bindings)
                    env = rec_env
                else:
                    bound = _eval(expr.bound, env)
                    bindings = match(expr.pattern, bound)
                    if bindings is None:
                        raise MatchFailure("let pattern did not match")
                    env = env.child(bindings)
                expr = expr.body
                continue
            if kind is ECase:
                scrutinee = _eval(expr.scrutinee, env)
                for pattern, branch in expr.branches:
                    bindings = match(pattern, scrutinee)
                    if bindings is not None:
                        env = env.child(bindings) if bindings else env
                        expr = branch
                        break
                else:
                    raise MatchFailure("no case branch matched")
                continue
            handler = _LEAF_HANDLERS.get(kind)
            if handler is not None:
                return handler(expr, env)
            raise LittleRuntimeError(f"cannot evaluate {expr!r}")
    finally:
        if budget is not None:
            budget.depth -= 1


def _bool(flag: bool) -> VBool:
    return _TRUE if flag else _FALSE


def _eval_op(expr: EOp, env: Env) -> Value:
    op = expr.op
    operands = expr.args
    # Arity-specialized operand evaluation: no intermediate list building
    # or re-scanning on the binary/unary hot paths (E-OP-NUM fires once per
    # arithmetic node per re-evaluation, so this is the innermost loop).
    if len(operands) == 2:
        a = _eval(operands[0], env)
        b = _eval(operands[1], env)
        if type(a) is VNum and type(b) is VNum:
            av = a.value
            bv = b.value
            if op == "+":
                return VNum(av + bv, OpTrace("+", (a.trace, b.trace)))
            if op == "-":
                return VNum(av - bv, OpTrace("-", (a.trace, b.trace)))
            if op == "*":
                return VNum(av * bv, OpTrace("*", (a.trace, b.trace)))
            if op == "<":
                outcome = av < bv
                recorder = getattr(_RECORDERS, "value", None)
                if recorder is not None:
                    recorder.comparisons.append(
                        ("<", a.trace, b.trace, outcome))
                return _TRUE if outcome else _FALSE
            if op in NUMERIC_OPS:
                result = apply_numeric_op(op, (av, bv))
                return VNum(result, OpTrace(op, (a.trace, b.trace)))
        args = (a, b)
    elif len(operands) == 1:
        a = _eval(operands[0], env)
        if type(a) is VNum and op in NUMERIC_OPS:
            result = apply_numeric_op(op, (a.value,))
            return VNum(result, OpTrace(op, (a.trace,)))
        args = (a,)
    else:
        args = tuple(_eval(arg, env) for arg in operands)

    all_nums = True
    for arg in args:
        if type(arg) is not VNum:
            all_nums = False
            break

    if all_nums:
        if op in NUMERIC_OPS:
            # E-OP-NUM: compute the number and build the expression trace.
            result = apply_numeric_op(op, [arg.value for arg in args])
            return VNum(result, OpTrace(op, tuple(arg.trace for arg in args)))
        if op in ("=", "<", ">", "<=", ">="):
            left = args[0]
            right = args[1]
            if op == "=":
                outcome = left.value == right.value
            elif op == "<":
                outcome = left.value < right.value
            elif op == ">":
                outcome = left.value > right.value
            elif op == "<=":
                outcome = left.value <= right.value
            else:
                outcome = left.value >= right.value
            recorder = getattr(_RECORDERS, "value", None)
            if recorder is not None:
                recorder.comparisons.append(
                    (op, left.trace, right.trace, outcome))
            return _bool(outcome)
        if op == "toString":
            rendered = format_number(args[0].value)
            recorder = getattr(_RECORDERS, "value", None)
            if recorder is not None:
                recorder.tostrings.append((args[0].trace, rendered))
            return VStr(rendered)

    if op == "not" and isinstance(args[0], VBool):
        return _bool(not args[0].value)
    if op == "+" and isinstance(args[0], VStr) and isinstance(args[1], VStr):
        result = args[0].value + args[1].value
        budget = getattr(_BUDGETS, "value", None)
        if budget is not None:
            # Quadratic string building (repeated concat) is the string
            # analogue of an exponential list: charge produced characters.
            budget.allocate(len(result))
        return VStr(result)
    if op == "=" and isinstance(args[0], VStr) and isinstance(args[1], VStr):
        return _bool(args[0].value == args[1].value)
    if op == "=" and isinstance(args[0], VBool) and isinstance(args[1], VBool):
        return _bool(args[0].value == args[1].value)
    if op == "toString":
        if isinstance(args[0], VStr):
            return args[0]
        if isinstance(args[0], VBool):
            return VStr("true" if args[0].value else "false")

    shapes = ", ".join(type(arg).__name__ for arg in args)
    raise LittleRuntimeError(f"operator {op!r} not defined on ({shapes})")

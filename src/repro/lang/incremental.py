"""Guarded trace-driven re-evaluation — the drag-loop fast path (§4.1).

During live synchronization the program *structure* is fixed; a mouse-move
only changes the substitution ρ.  Every number in the output carries a
trace, and its value is exactly ``ρt`` (the property tested by
``test_rho0_reproduces_output_values``).  So instead of re-running the
whole program per mouse-move, we can:

1. run the program **once**, recording every place where a *value*
   influenced *control flow* — numeric comparisons, ``toString`` on
   numbers, and numeric-literal pattern matches — together with the
   operand traces and observed outcomes (the *guards*);
2. on each subsequent ρ, check that every guard evaluates to the same
   outcome.  If so, the re-run is guaranteed to take the same path, and
   the new output is the old output with each numeric leaf replaced by
   ``ρt`` of its (unchanged) trace;
3. if any guard flips (a clamp saturates, a branch changes, a list length
   would differ), fall back to a full evaluation and re-record.

The rebuilt values are bit-identical to a from-scratch evaluation: the
trace records the exact float-operation tree the evaluator would execute.

Limitations (by construction): a number that is computed but feeds neither
the output nor any guard is not re-evaluated, so a domain error hiding in
dead arithmetic would not abort an incremental step.  Guards are
conservative everywhere control flow can observe a number.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .ast import Loc
from .errors import LittleRuntimeError
from .ops import apply_numeric_op
from .values import (VBool, VCons, VNum, VStr, Value, format_number)

__all__ = ["EvalCache", "record_evaluation", "reevaluate"]


class Recorder:
    """Collects guards during one full evaluation."""

    __slots__ = ("comparisons", "tostrings", "num_matches")

    def __init__(self):
        # (op, left trace, right trace, outcome)
        self.comparisons: List[Tuple[str, object, object, bool]] = []
        # (trace, rendered string)
        self.tostrings: List[Tuple[object, str]] = []
        # (trace, pattern value, matched?)
        self.num_matches: List[Tuple[object, float, bool]] = []


class EvalCache:
    """A recorded run: the output value plus the guards that pin down its
    control flow.  Valid for any ρ under which every guard holds."""

    __slots__ = ("output", "comparisons", "tostrings", "num_matches",
                 "compiled", "compile_failed")

    def __init__(self, output: Value, recorder: Recorder):
        self.output = output
        self.comparisons = recorder.comparisons
        self.tostrings = recorder.tostrings
        self.num_matches = recorder.num_matches
        #: Lazily attached :class:`~repro.lang.compile.CompiledEvaluation`
        #: (:func:`~repro.lang.compile.ensure_compiled`).  Lives and dies
        #: with this recording: a guard flip or structural change replaces
        #: the whole cache, artifact included.  ``compile_failed`` marks a
        #: recording whose specialization failed — never retried; the
        #: interpreted replay below stays the fast path.
        self.compiled = None
        self.compile_failed = False


def record_evaluation(program) -> Tuple[Value, EvalCache]:
    """Fully evaluate ``program`` while recording control-flow guards."""
    from . import eval as eval_module

    recorder = Recorder()
    previous = eval_module.get_recorder()
    eval_module.set_recorder(recorder)
    try:
        output = program.evaluate()
    finally:
        eval_module.set_recorder(previous)
    return output, EvalCache(output, recorder)


def _trace_value(trace, rho: Dict[int, float], memo: Dict[int, float]
                 ) -> float:
    """``ρt`` with sharing: identical trace nodes evaluate once per step.

    ``rho`` is keyed by ``loc.ident`` (plain ints hash at C speed; ``Loc``
    hashing is a Python-level call on this innermost path).  The binary
    arithmetic cases are inlined for the same reason.
    """
    if type(trace) is Loc:
        return rho[trace.ident]
    key = id(trace)
    value = memo.get(key)
    if value is not None:
        return value
    args = trace.args
    if len(args) == 2:
        left = _trace_value(args[0], rho, memo)
        right = _trace_value(args[1], rho, memo)
        op = trace.op
        if op == "+":
            value = left + right
        elif op == "-":
            value = left - right
        elif op == "*":
            value = left * right
        else:
            value = apply_numeric_op(op, (left, right))
    elif len(args) == 1:
        value = apply_numeric_op(trace.op,
                                 (_trace_value(args[0], rho, memo),))
    else:
        value = apply_numeric_op(
            trace.op, [_trace_value(arg, rho, memo) for arg in args])
    memo[key] = value
    return value


def _compare(op: str, left: float, right: float) -> bool:
    if op == "<":
        return left < right
    if op == ">":
        return left > right
    if op == "<=":
        return left <= right
    if op == ">=":
        return left >= right
    return left == right        # "="


def _rebuild(value: Value, rho: Dict[Loc, float],
             memo: Dict[int, float]) -> Value:
    """The old output with numeric leaves recomputed under ρ; unchanged
    subtrees are returned as-is (identity-shared)."""
    kind = type(value)
    if kind is VNum:
        new_value = _trace_value(value.trace, rho, memo)
        if new_value == value.value:
            return value
        return VNum(new_value, value.trace)
    if kind is VCons:
        head = _rebuild(value.head, rho, memo)
        tail = _rebuild(value.tail, rho, memo)
        if head is value.head and tail is value.tail:
            return value
        return VCons(head, tail)
    return value


def reevaluate(cache: EvalCache, rho: Dict[Loc, float]) -> Optional[Value]:
    """Re-run the recorded evaluation under a new ρ.

    Returns the new output value — bit-identical to a from-scratch
    evaluation — or ``None`` when some guard no longer holds (the caller
    must fall back to a full evaluation).
    """
    rho = {loc.ident: value for loc, value in rho.items()}
    memo: Dict[int, float] = {}
    # Coarse budget accounting for the fast path: one fuel step per guard,
    # charged up front.  Deliberately *before* the try — an exhausted
    # budget must propagate as ResourceExhausted (a LittleRuntimeError
    # subtype), not be swallowed as a guard flip, which would send the
    # caller into an even more expensive full re-evaluation.
    from . import eval as eval_module
    budget = eval_module.get_budget()
    if budget is not None:
        budget.consume(len(cache.comparisons) + len(cache.tostrings)
                       + len(cache.num_matches))
    try:
        for op, left, right, expected in cache.comparisons:
            if _compare(op, _trace_value(left, rho, memo),
                        _trace_value(right, rho, memo)) != expected:
                return None
        for trace, rendered in cache.tostrings:
            if format_number(_trace_value(trace, rho, memo)) != rendered:
                return None
        for trace, pattern_value, expected in cache.num_matches:
            if (_trace_value(trace, rho, memo) == pattern_value) != expected:
                return None
        return _rebuild(cache.output, rho, memo)
    except (KeyError, LittleRuntimeError, RecursionError):
        return None

"""Exception hierarchy for the ``little`` language implementation."""

from __future__ import annotations


class LittleError(Exception):
    """Base class for all errors raised by the ``little`` implementation."""


class LittleSyntaxError(LittleError):
    """Lexical or grammatical error in ``little`` source text."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.line = line
        self.col = col
        super().__init__(f"{message} (line {line}, col {col})"
                         if line else message)


class LittleRuntimeError(LittleError):
    """Error raised during evaluation of a ``little`` program."""


class MatchFailure(LittleRuntimeError):
    """No case branch matched the scrutinee value."""


class ResourceExhausted(LittleRuntimeError):
    """Evaluation exceeded a configured resource budget.

    Raised by the cooperative budget counters in :mod:`repro.lang.eval`
    (see :class:`~repro.lang.eval.EvalBudget`): ``kind`` names the
    dimension that ran out — ``"fuel"`` (evaluation steps), ``"depth"``
    (non-tail little-level recursion) or ``"size"`` (allocated value
    cells).  A runaway program — unbounded recursion, an exponential
    list build — surfaces as this typed, one-line error instead of a
    Python ``RecursionError`` or an interpreter that never returns.
    """

    def __init__(self, kind: str, limit: float, message: str):
        self.kind = kind
        self.limit = limit
        super().__init__(message)


class SvgError(LittleError):
    """The program's output value is not a well-formed SVG node."""


class SvgImportError(SvgError):
    """An SVG document cannot be imported as a little program.

    Raised by :mod:`repro.svg.importer` with a one-line message and a
    short machine-readable ``reason`` — the failure class the bulk
    ingestion pipeline (:mod:`repro.svg.ingest`) counts quarantined
    documents under: ``"xml"`` (not well-formed), ``"not-svg"`` (wrong
    root element), ``"string"`` (a quote character the little lexer
    cannot represent), ``"number"`` (a non-finite numeric attribute),
    ``"path"`` (malformed path data), ``"points"`` (malformed points
    list), ``"transform"`` (an unsupported transform function),
    ``"root"`` (a malformed viewBox) or ``"convert"`` (anything else).
    """

    def __init__(self, message: str, *, reason: str = "convert"):
        self.reason = reason
        super().__init__(message)


class SolverFailure(LittleError):
    """The value-trace equation solver could not compute a solution.

    The paper's solver is partial ("Not all primitive operations have total
    inverses, so SolveOne sometimes fails to compute a solution", §5.1).
    """

"""Exception hierarchy for the ``little`` language implementation."""

from __future__ import annotations


class LittleError(Exception):
    """Base class for all errors raised by the ``little`` implementation."""


class LittleSyntaxError(LittleError):
    """Lexical or grammatical error in ``little`` source text."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.line = line
        self.col = col
        super().__init__(f"{message} (line {line}, col {col})"
                         if line else message)


class LittleRuntimeError(LittleError):
    """Error raised during evaluation of a ``little`` program."""


class MatchFailure(LittleRuntimeError):
    """No case branch matched the scrutinee value."""


class SvgError(LittleError):
    """The program's output value is not a well-formed SVG node."""


class SolverFailure(LittleError):
    """The value-trace equation solver could not compute a solution.

    The paper's solver is partial ("Not all primitive operations have total
    inverses, so SolveOne sometimes fails to compute a solution", §5.1).
    """

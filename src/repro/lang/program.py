"""Programs: user source + Prelude, with the machinery of §2–§3.

A :class:`Program` bundles the parsed user AST, the Prelude, the combined
expression that actually evaluates, and ρ0 — "the substitution that records
location-value mappings from the source program" (§2.1).
"""

from __future__ import annotations

from typing import Dict, Optional

from .ast import ELet, Expr, Loc, iter_numbers, substitute
from .eval import evaluate
from .parser import collect_rho0, parse_top_level
from .prelude import prelude_bindings
from .unparser import unparse
from .values import Value


class Program:
    """A parsed little program, ready to evaluate and synthesize against."""

    def __init__(self, user_ast: Expr, *, source: str = "",
                 with_prelude: bool = True, prelude_frozen: bool = True):
        self.user_ast = user_ast
        self.source = source
        self.with_prelude = with_prelude
        self.prelude_frozen = prelude_frozen
        if with_prelude:
            ast = user_ast
            for pattern, bound, rec in reversed(
                    prelude_bindings(prelude_frozen)):
                ast = ELet(pattern, bound, ast, rec=rec, from_def=True)
            self.ast = ast
        else:
            self.ast = user_ast
        self.rho0: Dict[Loc, float] = collect_rho0(self.ast)

    # -- core operations -----------------------------------------------------

    def evaluate(self) -> Value:
        return evaluate(self.ast)

    def substitute(self, rho: Dict[Loc, float]) -> "Program":
        """Apply a local update ρ, yielding the new program ρe (§2.2)."""
        new_user = substitute(self.user_ast, rho)
        touches_prelude = any(loc.in_prelude for loc in rho)
        if not touches_prelude and self.with_prelude:
            # Fast path: rebuild only the user portion; the Prelude spine is
            # reconstructed from the shared cached bindings.
            return Program(new_user, source=self.source,
                           with_prelude=True,
                           prelude_frozen=self.prelude_frozen)
        program = Program.__new__(Program)
        program.user_ast = new_user
        program.source = self.source
        program.with_prelude = self.with_prelude
        program.prelude_frozen = self.prelude_frozen
        program.ast = substitute(self.ast, rho)
        program.rho0 = dict(self.rho0)
        program.rho0.update(rho)
        return program

    def unparse(self) -> str:
        """The user-visible program text (Prelude not shown, as in the
        reference editor)."""
        return unparse(self.user_ast)

    # -- queries ---------------------------------------------------------------

    def user_locs(self):
        """Locations of literals in the user program (not the Prelude)."""
        return [num.loc for num in iter_numbers(self.user_ast)]

    def range_annotations(self):
        """(loc, lo, hi, current) for every range-annotated literal — the
        built-in sliders of §2.4."""
        sliders = []
        for num in iter_numbers(self.user_ast):
            if num.range_ann is not None:
                lo, hi = num.range_ann
                sliders.append((num.loc, lo, hi, num.value))
        return sliders


def parse_program(source: str, *, with_prelude: bool = True,
                  prelude_frozen: bool = True,
                  auto_freeze: bool = False) -> Program:
    """Parse little source (``(def …)* expr``) into a :class:`Program`.

    ``auto_freeze`` freezes every user literal except those thawed with ``?``
    (the alternative mode of Appendix C, "Thawing and Freezing Constants").
    """
    user_ast = parse_top_level(source, auto_freeze=auto_freeze)
    return Program(user_ast, source=source, with_prelude=with_prelude,
                   prelude_frozen=prelude_frozen)

"""Programs: user source + Prelude, with the machinery of §2–§3.

A :class:`Program` bundles the parsed user AST, the Prelude, the combined
expression that actually evaluates, and ρ0 — "the substitution that records
location-value mappings from the source program" (§2.1).

The live-sync hot path (drag → substitute → evaluate, §4.1) is incremental:

* the Prelude is evaluated **once** per freeze mode into a cached
  environment (:func:`~repro.lang.prelude.prelude_env`), so ``evaluate``
  only runs the user AST;
* Prelude ρ0 is computed once and merged by dict-update instead of
  re-walking the combined AST in the constructor;
* ``substitute`` maintains a ``Loc → ENum`` index over the user AST and
  shares every unmodified subtree copy-on-write — and the rewrite itself
  is deferred until some consumer actually reads ``user_ast``, so a drag
  step pays only for the ρ0/index dict merges.

Substituting a Prelude location (possible when ``prelude_frozen=False``)
leaves the shared caches untouched: such programs carry their own combined
AST and evaluate it from scratch.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.changeset import ChangeSet, FULL_CHANGE
from .ast import ELet, ENum, Expr, Loc, iter_numbers, substitute
from .eval import Env, evaluate
from .parser import collect_rho0, parse_top_level
from .prelude import prelude_bindings, prelude_env, prelude_rho0
from .unparser import unparse
from .values import Value


class Program:
    """A parsed little program, ready to evaluate and synthesize against."""

    __slots__ = ("_user_ast", "_lazy_base", "_lazy_rho", "source",
                 "with_prelude", "prelude_frozen", "auto_freeze", "rho0",
                 "last_change", "_ast", "_num_index", "_prelude_modified")

    def __init__(self, user_ast: Expr, *, source: str = "",
                 with_prelude: bool = True, prelude_frozen: bool = True,
                 auto_freeze: bool = False):
        self._user_ast = user_ast
        self._lazy_base: Optional[Expr] = None
        self._lazy_rho: Optional[Dict[Loc, float]] = None
        self.source = source
        self.with_prelude = with_prelude
        self.prelude_frozen = prelude_frozen
        #: The parse mode that produced ``user_ast`` from ``source`` — kept
        #: so a snapshot (``LiveSession.snapshot``) can re-parse the same
        #: program later.
        self.auto_freeze = auto_freeze
        self._ast: Optional[Expr] = None
        self._num_index: Optional[Dict[Loc, ENum]] = None
        self._prelude_modified = False
        #: How this program differs from its predecessor (the ChangeSet
        #: contract of repro.core): a freshly parsed/constructed program has
        #: no predecessor, so everything downstream must be (re)computed.
        self.last_change: ChangeSet = FULL_CHANGE
        if with_prelude:
            self.rho0 = dict(prelude_rho0(prelude_frozen))
            self.rho0.update(collect_rho0(user_ast))
        else:
            self.rho0 = collect_rho0(user_ast)

    # -- the user AST (rewritten lazily; the drag loop never reads it) ---------

    @property
    def user_ast(self) -> Expr:
        """The user AST with every substitution applied.

        The drag loop only consumes ρ0 and the change set — the tree
        itself is read by the full-evaluation fallback, ``unparse``, and
        structural edits.  ``substitute``'s fast path therefore defers the
        copy-on-write rewrite, recording ``(base AST, accumulated ρ)``;
        the walk happens here, on first access.
        """
        if self._user_ast is None:
            self._user_ast = substitute(self._lazy_base, self._lazy_rho)
            self._lazy_base = None
            self._lazy_rho = None
        return self._user_ast

    # -- the combined AST (built lazily; the fast paths never need it) ---------

    @property
    def ast(self) -> Expr:
        """User AST wrapped in the Prelude's ``ELet`` spine."""
        if self._ast is None:
            if self.with_prelude:
                ast = self.user_ast
                for pattern, bound, rec in reversed(
                        prelude_bindings(self.prelude_frozen)):
                    ast = ELet(pattern, bound, ast, rec=rec, from_def=True)
                self._ast = ast
            else:
                self._ast = self.user_ast
        return self._ast

    def _index(self) -> Dict[Loc, ENum]:
        """Loc → ENum index over the user AST (parse order preserved)."""
        if self._num_index is None:
            self._num_index = {num.loc: num
                               for num in iter_numbers(self.user_ast)}
        return self._num_index

    # -- core operations -----------------------------------------------------

    def evaluate(self, *, naive: bool = False) -> Value:
        """Evaluate the program.

        The fast path runs only the user AST in the cached Prelude
        environment; ``naive=True`` forces the from-scratch evaluation of
        the full combined ``ELet`` spine (used by benchmarks and as the
        fallback once Prelude literals have been substituted).
        """
        if naive or self._prelude_modified or not self.with_prelude:
            return evaluate(self.ast)
        return evaluate(self.user_ast, prelude_env(self.prelude_frozen))

    def substitute(self, rho: Dict[Loc, float]) -> "Program":
        """Apply a local update ρ, yielding the new program ρe (§2.2)."""
        touches_prelude = any(loc.in_prelude for loc in rho)
        if touches_prelude or self._prelude_modified or not self.with_prelude:
            return self._substitute_full(rho)
        # Fast path: ρ only touches user literals.  Use the Loc → ENum
        # index to drop no-op entries and update rho0/index by dict-merge —
        # the Prelude is never walked, and the user-AST rewrite itself is
        # deferred (see :attr:`user_ast`): the drag loop reads only ρ0 and
        # ``last_change``, so per-step the walk never runs at all.
        index = self._index()
        effective = {loc: value for loc, value in rho.items()
                     if loc in index}
        replaced: Dict[Loc, ENum] = {}
        for loc, value in effective.items():
            num = index[loc]
            if value != num.value:      # the no-op check substitute applies
                replaced[loc] = ENum(value, loc, num.ann, num.range_ann)
        program = Program.__new__(Program)
        if not replaced:
            program._user_ast = self._user_ast
            program._lazy_base = self._lazy_base
            program._lazy_rho = self._lazy_rho
        else:
            program._user_ast = None
            changed = {loc: num.value for loc, num in replaced.items()}
            if self._user_ast is not None:
                program._lazy_base = self._user_ast
                program._lazy_rho = changed
            else:                       # compose with our own pending ρ
                merged = dict(self._lazy_rho)
                merged.update(changed)
                program._lazy_base = self._lazy_base
                program._lazy_rho = merged
        program.source = self.source
        program.with_prelude = self.with_prelude
        program.prelude_frozen = self.prelude_frozen
        program.auto_freeze = self.auto_freeze
        program._ast = None
        program._prelude_modified = False
        # Only the literals actually rewritten (no-op entries were dropped
        # above) — the change set downstream stages key on.
        program.last_change = ChangeSet.of(replaced)
        program.rho0 = dict(self.rho0)
        program.rho0.update(effective)
        new_index = dict(index)
        new_index.update(replaced)
        program._num_index = new_index
        return program

    def _substitute_full(self, rho: Dict[Loc, float]) -> "Program":
        """Slow path: ρ may touch Prelude literals, so the combined AST is
        rewritten and the program stops relying on the shared caches."""
        program = Program.__new__(Program)
        program._user_ast = substitute(self.user_ast, rho)
        program._lazy_base = None
        program._lazy_rho = None
        program.source = self.source
        program.with_prelude = self.with_prelude
        program.prelude_frozen = self.prelude_frozen
        program.auto_freeze = self.auto_freeze
        program.last_change = ChangeSet.of(rho)
        if self.with_prelude:
            program._ast = substitute(self.ast, rho)
            program._prelude_modified = True
        else:
            program._ast = program.user_ast
            program._prelude_modified = False
        program._num_index = None
        program.rho0 = dict(self.rho0)
        program.rho0.update(rho)
        return program

    def unparse(self) -> str:
        """The user-visible program text (Prelude not shown, as in the
        reference editor)."""
        return unparse(self.user_ast)

    # -- queries ---------------------------------------------------------------

    @property
    def prelude_modified(self) -> bool:
        """Whether a substitution has rewritten a Prelude literal (only
        possible when ``prelude_frozen=False``).  Such programs carry their
        own combined AST instead of the shared Prelude caches."""
        return self._prelude_modified

    def user_locs(self):
        """Locations of literals in the user program (not the Prelude).

        The list is in parse order, which is stable across re-parses of the
        same source — the coordinate system snapshots use to name literals.
        """
        return list(self._index())

    def user_values(self):
        """Current values of the user literals, in parse order.

        Together with :meth:`user_locs` this gives a serializable picture
        of the program state: ``source`` (text) plus ``user_values()``
        (floats) reconstructs any program reached by substitutions, because
        a substitution never changes the AST shape.

        >>> program = parse_program("(def x 10) (svg [(rect 'red' x 0 5 5)])")
        >>> program.user_values()
        [10.0, 0.0, 5.0, 5.0]
        >>> moved = program.substitute({program.user_locs()[0]: 42.0})
        >>> moved.user_values()
        [42.0, 0.0, 5.0, 5.0]
        """
        return [num.value for num in self._index().values()]

    def range_annotations(self):
        """(loc, lo, hi, current) for every range-annotated literal — the
        built-in sliders of §2.4."""
        sliders = []
        for num in self._index().values():
            if num.range_ann is not None:
                lo, hi = num.range_ann
                sliders.append((num.loc, lo, hi, num.value))
        return sliders


def parse_program(source: str, *, with_prelude: bool = True,
                  prelude_frozen: bool = True,
                  auto_freeze: bool = False) -> Program:
    """Parse little source (``(def …)* expr``) into a :class:`Program`.

    ``auto_freeze`` freezes every user literal except those thawed with ``?``
    (the alternative mode of Appendix C, "Thawing and Freezing Constants").
    """
    user_ast = parse_top_level(source, auto_freeze=auto_freeze)
    return Program(user_ast, source=source, with_prelude=with_prelude,
                   prelude_frozen=prelude_frozen, auto_freeze=auto_freeze)
